//! Minimal flag parsing: positional arguments plus `--key value` /
//! `-k value` options. No external dependencies; strict about unknown
//! flags so typos surface immediately.

use std::collections::HashMap;

/// Parsed arguments: positionals in order, flags by (long) name.
#[derive(Debug, Default)]
pub struct Parsed {
    pub positionals: Vec<String>,
    flags: HashMap<String, String>,
}

/// Specification of the flags a subcommand accepts: maps every accepted
/// spelling (e.g. `-o` and `--output`) to the canonical name. Canonical
/// names listed as *switches* take no value.
pub struct FlagSpec {
    aliases: Vec<(&'static str, &'static str)>,
    switches: Vec<&'static str>,
}

impl FlagSpec {
    /// Builds a spec from `(spelling, canonical)` pairs.
    pub fn new(aliases: &[(&'static str, &'static str)]) -> Self {
        FlagSpec {
            aliases: aliases.to_vec(),
            switches: Vec::new(),
        }
    }

    /// Marks canonical names as boolean switches (present/absent, no
    /// value consumed).
    pub fn with_switches(mut self, switches: &[&'static str]) -> Self {
        self.switches = switches.to_vec();
        self
    }

    fn canonical(&self, spelling: &str) -> Option<&'static str> {
        self.aliases
            .iter()
            .find(|(s, _)| *s == spelling)
            .map(|&(_, c)| c)
    }
}

/// Parses `argv` against `spec`. Every flag takes exactly one value,
/// except declared switches, which take none.
pub fn parse(argv: &[String], spec: &FlagSpec) -> Result<Parsed, String> {
    let mut out = Parsed::default();
    let mut i = 0;
    while i < argv.len() {
        let a = &argv[i];
        if a.starts_with('-') && a.len() > 1 {
            let canonical = spec
                .canonical(a)
                .ok_or_else(|| format!("unknown flag '{a}'"))?;
            let value = if spec.switches.contains(&canonical) {
                i += 1;
                "true".to_string()
            } else {
                let value = argv
                    .get(i + 1)
                    .ok_or_else(|| format!("flag '{a}' needs a value"))?
                    .clone();
                i += 2;
                value
            };
            if out.flags.insert(canonical.to_string(), value).is_some() {
                return Err(format!("flag '{a}' given twice"));
            }
        } else {
            out.positionals.push(a.clone());
            i += 1;
        }
    }
    Ok(out)
}

impl Parsed {
    /// The single required positional argument.
    pub fn one_positional(&self, what: &str) -> Result<&str, String> {
        match self.positionals.as_slice() {
            [p] => Ok(p),
            [] => Err(format!("missing {what}")),
            _ => Err(format!(
                "expected exactly one {what}, got {:?}",
                self.positionals
            )),
        }
    }

    /// String flag with a default.
    pub fn str_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.flags.get(key).map(|s| s.as_str()).unwrap_or(default)
    }

    /// Optional string flag.
    pub fn opt_str(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(|s| s.as_str())
    }

    /// Whether a boolean switch was given.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }

    /// Parsed numeric flag with a default.
    pub fn num_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag '--{key}' has invalid value '{v}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    fn spec() -> FlagSpec {
        FlagSpec::new(&[
            ("-o", "output"),
            ("--output", "output"),
            ("--rank", "rank"),
            ("--verbose", "verbose"),
            ("-v", "verbose"),
        ])
        .with_switches(&["verbose"])
    }

    #[test]
    fn positionals_and_flags_mix() -> Result<(), String> {
        let p = parse(&argv(&["file.tns", "--rank", "32", "-o", "out"]), &spec())?;
        assert_eq!(p.positionals, vec!["file.tns"]);
        assert_eq!(p.str_or("output", "x"), "out");
        assert_eq!(p.num_or("rank", 8usize)?, 32);
        Ok(())
    }

    #[test]
    fn alias_maps_to_canonical() -> Result<(), String> {
        let a = parse(&argv(&["--output", "a"]), &spec())?;
        let b = parse(&argv(&["-o", "a"]), &spec())?;
        assert_eq!(a.opt_str("output"), b.opt_str("output"));
        Ok(())
    }

    #[test]
    fn switches_consume_no_value() -> Result<(), String> {
        let p = parse(&argv(&["--verbose", "file.tns", "--rank", "8"]), &spec())?;
        assert!(p.flag("verbose"));
        assert_eq!(p.positionals, vec!["file.tns"]);
        assert_eq!(p.num_or("rank", 1usize)?, 8);
        let q = parse(&argv(&["file.tns"]), &spec())?;
        assert!(!q.flag("verbose"));
        let short = parse(&argv(&["-v", "x"]), &spec())?;
        assert!(short.flag("verbose"));
        Ok(())
    }

    #[test]
    fn duplicate_switch_is_an_error() {
        assert!(parse(&argv(&["--verbose", "--verbose"]), &spec()).is_err());
    }

    #[test]
    fn unknown_flag_is_an_error() {
        assert!(parse(&argv(&["--bogus", "1"]), &spec()).is_err());
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(parse(&argv(&["--rank"]), &spec()).is_err());
    }

    #[test]
    fn duplicate_flag_is_an_error() {
        assert!(parse(&argv(&["--rank", "1", "--rank", "2"]), &spec()).is_err());
    }

    #[test]
    fn bad_number_is_an_error() -> Result<(), String> {
        let p = parse(&argv(&["--rank", "abc"]), &spec())?;
        assert!(p.num_or("rank", 1usize).is_err());
        Ok(())
    }

    #[test]
    fn one_positional_enforced() -> Result<(), String> {
        let p = parse(&argv(&[]), &spec())?;
        assert!(p.one_positional("tensor").is_err());
        let p2 = parse(&argv(&["a", "b"]), &spec())?;
        assert!(p2.one_positional("tensor").is_err());
        let p3 = parse(&argv(&["a"]), &spec())?;
        assert_eq!(p3.one_positional("tensor")?, "a");
        Ok(())
    }

    #[test]
    fn defaults_apply() -> Result<(), String> {
        let p = parse(&argv(&["x"]), &spec())?;
        assert_eq!(p.num_or("rank", 16usize)?, 16);
        assert_eq!(p.str_or("output", "default"), "default");
        assert!(p.opt_str("output").is_none());
        Ok(())
    }
}
