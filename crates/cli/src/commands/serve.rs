//! `stef serve` — the self-healing decomposition daemon.
//!
//! Runs the HTTP service from `stef_core::serve` on top of the batch
//! supervisor: `POST /jobs` admits refits (priced against the
//! envelopes; over-envelope submits get 503), `GET /models/...` serves
//! fitted factors from atomically-swapped snapshots, and the journal
//! makes the whole thing crash-recoverable — if the journal already
//! exists at startup the daemon **resumes** it, restarting every
//! unfinished job from its latest checkpoint (bit-identically, by the
//! supervisor's resume guarantee).
//!
//! SIGTERM or Ctrl-C drains gracefully: admission stops, in-flight
//! jobs get `--drain-grace-ms` to finish (then checkpoint and journal
//! `Interrupted`), the journal is compacted and fsynced, and the
//! process exits 0. A second signal hard-exits with 130.

use crate::args::{parse, FlagSpec};
use crate::commands::batch::{cli_factory, cli_loader, fault_directives_from_env};
use crate::error::CliError;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use stef::{outcome_hook, CancelToken, ServeConfig, Server, SnapshotStore, Supervisor, SupervisorConfig};

pub fn run(argv: &[String]) -> Result<(), CliError> {
    let spec = FlagSpec::new(&[
        ("--addr", "addr"),
        ("--journal", "journal"),
        ("--ckpt-dir", "ckpt-dir"),
        ("--max-concurrent", "max-concurrent"),
        ("--threads", "threads"),
        ("--checkpoint-every", "checkpoint-every"),
        ("--cache-mb", "cache-mb"),
        ("--memory-envelope", "memory-envelope"),
        ("--traffic-envelope", "traffic-envelope"),
        ("--max-retries", "max-retries"),
        ("--backoff-ms", "backoff-ms"),
        ("--backoff-cap-ms", "backoff-cap-ms"),
        ("--metrics-out", "metrics-out"),
        ("--default-rank", "default-rank"),
        ("--handler-threads", "handler-threads"),
        ("--accept-backlog", "accept-backlog"),
        ("--io-timeout-ms", "io-timeout-ms"),
        ("--drain-grace-ms", "drain-grace-ms"),
        ("--max-requests-per-conn", "max-requests-per-conn"),
        ("--max-conn-lifetime-ms", "max-conn-lifetime-ms"),
        ("--metrics-flush-ms", "metrics-flush-ms"),
        ("--drift-threshold", "drift-threshold"),
    ]);
    let p = parse(argv, &spec)?;
    if !p.positionals.is_empty() {
        return Err(CliError::Usage(format!(
            "serve takes no positional arguments, got {:?}",
            p.positionals
        )));
    }
    let addr = p.str_or("addr", "127.0.0.1:7464");
    let journal: PathBuf = PathBuf::from(p.str_or("journal", "serve.journal"));
    let ckpt_dir: PathBuf = PathBuf::from(p.str_or("ckpt-dir", "serve.ckpts"));
    let threads: usize = p.num_or("threads", 1)?;

    let store = Arc::new(SnapshotStore::new());
    let mut cfg = SupervisorConfig::new(&journal, &ckpt_dir);
    cfg.checkpoint_every = p.num_or("checkpoint-every", 1)?;
    cfg.max_concurrent = p.num_or("max-concurrent", 1)?;
    cfg.threads_per_job = threads.max(1);
    cfg.cache_bytes = p.num_or::<usize>("cache-mb", 16)? << 20;
    cfg.memory_envelope = p.num_or::<u64>("memory-envelope", 0)?;
    cfg.traffic_envelope = p.num_or::<f64>("traffic-envelope", 0.0)?;
    cfg.max_retries = p.num_or("max-retries", 2)?;
    cfg.backoff_base = Duration::from_millis(p.num_or("backoff-ms", 100)?);
    cfg.backoff_cap = Duration::from_millis(p.num_or("backoff-cap-ms", 5000)?);
    cfg.metrics_path = p.opt_str("metrics-out").map(PathBuf::from);
    cfg.drift_warn_threshold = p.num_or("drift-threshold", cfg.drift_warn_threshold)?;
    cfg.on_outcome = Some(outcome_hook(Arc::clone(&store)));

    // A daemon panic should leave the flight recorder's last events on
    // disk even when the pool's catch_unwind later converts the panic
    // into a job failure.
    stef::flight::install_panic_hook();

    // SIGTERM / first Ctrl-C cancels this token → graceful drain; a
    // second signal hard-exits 130 from the handler.
    let stop = CancelToken::new();
    cfg.cancel = Some(stop.clone());
    let _cancel_scope = crate::cancel::install(&stop);

    let faults = fault_directives_from_env()?;

    // Crash recovery: an existing journal is a crashed (or SIGKILLed)
    // daemon's record of truth — resume it, re-running every job
    // without a terminal record from its latest checkpoint.
    let resumed = journal.exists();
    let sup = if resumed {
        Supervisor::resume(cfg, cli_loader(), cli_factory(threads, faults))?
    } else {
        Supervisor::new(cfg, cli_loader(), cli_factory(threads, faults))?
    };
    if resumed {
        let (queued, _) = sup.load_counts();
        println!(
            "resuming journal {} ({queued} unfinished job(s) restarting from checkpoints)",
            journal.display()
        );
    }

    let mut serve_cfg = ServeConfig::new(addr);
    serve_cfg.handler_threads = p.num_or("handler-threads", 4)?;
    serve_cfg.accept_backlog = p.num_or("accept-backlog", 64)?;
    let io_timeout = Duration::from_millis(p.num_or("io-timeout-ms", 5000)?);
    serve_cfg.read_timeout = io_timeout;
    serve_cfg.write_timeout = io_timeout;
    serve_cfg.default_rank = p.num_or("default-rank", 16)?;
    serve_cfg.drain_grace = Duration::from_millis(p.num_or("drain-grace-ms", 2000)?);
    // Keep-alive fairness: one connection serves at most this many
    // requests / this long before it is closed, so a handful of
    // slow-but-active clients cannot monopolize the handler pool.
    serve_cfg.max_requests_per_conn = p.num_or("max-requests-per-conn", 32)?;
    serve_cfg.max_conn_lifetime =
        Duration::from_millis(p.num_or("max-conn-lifetime-ms", 30_000)?);
    // 0 disables the periodic registry flush into --metrics-out.
    serve_cfg.metrics_flush = Duration::from_millis(p.num_or("metrics-flush-ms", 10_000)?);

    let server = Server::bind(serve_cfg, Arc::new(sup), store, stop)?;
    // The kill-9 / drain tests (and anything scripting the daemon)
    // parse this line to learn the bound port; keep it first and
    // flushed.
    println!("serving on {}", server.local_addr());
    use std::io::Write;
    let _ = std::io::stdout().flush();

    let report = server.run();
    println!(
        "drained: {} done, {} failed, {} shed, {} interrupted (journal {})",
        report.done(),
        report.failed(),
        report.shed(),
        report.interrupted(),
        journal.display()
    );
    // A drain is a *successful* daemon exit regardless of individual
    // job outcomes — those are answered per-job over HTTP and recorded
    // in the journal; interrupted jobs restart on the next launch.
    Ok(())
}
