//! `stef list` — show the synthetic suite and available engines.

pub fn run(argv: &[String]) -> Result<(), String> {
    if !argv.is_empty() {
        return Err("`stef list` takes no arguments".into());
    }
    println!("suite tensors (use as suite:<name>[:tiny|small|full]):");
    for spec in workloads::paper_suite() {
        let dims: Vec<String> = spec.dims.iter().map(|d| d.to_string()).collect();
        println!(
            "  {:<20} {:>9} nnz @small   dims {}",
            spec.name,
            spec.base_nnz,
            dims.join("x")
        );
    }
    println!("\nengines:");
    for (name, blurb) in [
        (
            "stef",
            "memoized MTTKRP, nnz-balanced, model-chosen config (the paper's system)",
        ),
        ("stef2", "stef + second CSF for the leaf mode"),
        ("splatt-1", "single CSF, slice-parallel, no memoization"),
        ("splatt-2", "two CSFs, slice-parallel"),
        ("splatt-all", "one CSF per mode, slice-parallel"),
        ("adatm", "op-count-model memoization, slice-parallel"),
        (
            "alto",
            "bit-interleaved linearized engine, nnz-partitioned, model-priced",
        ),
        (
            "auto",
            "model-priced pick between stef (csf) and alto per tensor",
        ),
        (
            "alto-baseline",
            "serial linearized oracle, recompute-always",
        ),
        ("taco", "per-mode CSF with chunk-size auto-tuning"),
        (
            "hicoo",
            "block-compressed COO (extension; pairs well with Lexi-Order)",
        ),
        ("reference", "naive COO oracle (slow; for validation)"),
    ] {
        println!("  {name:<11} {blurb}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    #[test]
    fn list_runs_cleanly() {
        assert!(super::run(&[]).is_ok());
    }

    #[test]
    fn list_rejects_arguments() {
        assert!(super::run(&["extra".to_string()]).is_err());
    }
}
