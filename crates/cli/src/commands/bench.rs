//! `stef bench` — compare every engine's MTTKRP sweep time on one
//! tensor (a single-tensor slice of the paper's Figures 3/4).

use crate::args::{parse, FlagSpec};
use crate::commands::{accum_by_name, apply_simd_flag};
use crate::error::CliError;
use crate::tensor_source::load;
use std::time::{Duration, Instant};
use stef::{init_factors, CancelToken};
use workloads::SuiteScale;

pub fn run(argv: &[String]) -> Result<(), CliError> {
    let spec = FlagSpec::new(&[
        ("--rank", "rank"),
        ("-r", "rank"),
        ("--reps", "reps"),
        ("--threads", "threads"),
        ("--accum", "accum"),
        ("--simd", "simd"),
        ("--timeout", "timeout"),
    ]);
    let p = parse(argv, &spec)?;
    let tensor_spec = p.one_positional("tensor")?;
    let rank: usize = p.num_or("rank", 32)?;
    let reps: usize = p.num_or("reps", 3)?;
    let threads: usize = p.num_or("threads", 0)?;
    let timeout: f64 = p.num_or("timeout", 0.0)?;
    let accum = accum_by_name(p.str_or("accum", "auto")).map_err(CliError::Usage)?;
    apply_simd_flag(p.str_or("simd", "auto")).map_err(CliError::Usage)?;

    let token = CancelToken::new();
    if timeout > 0.0 {
        token.set_deadline(Duration::from_secs_f64(timeout));
    }
    let _cancel_scope = crate::cancel::install(&token);

    let (label, t) = load(tensor_spec, SuiteScale::Small).map_err(CliError::Input)?;
    println!(
        "benchmarking {label}: {} nnz, rank {rank}, {reps} reps, {} rayon threads",
        t.nnz(),
        rayon::current_num_threads()
    );
    println!("simd kernels: {}\n", linalg::simd::describe());

    let factors = init_factors(t.dims(), rank, 7);
    let mut results: Vec<(String, f64, f64)> = Vec::new();
    for (done, mut engine) in baselines::all_engines_with(&t, rank, threads, accum)
        .into_iter()
        .enumerate()
    {
        // Bench sweeps can run for minutes on large tensors; honor
        // --timeout / Ctrl-C between engines and between sweeps.
        if token.expired() {
            return Err(cancelled(&token, done));
        }
        let prep_start = Instant::now();
        let sweep = engine.sweep_order();
        // Warm-up (auto-tuners settle here).
        for _ in 0..4 {
            for &m in &sweep {
                std::hint::black_box(engine.mttkrp(&factors, m));
            }
        }
        let warm = prep_start.elapsed().as_secs_f64();
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            if token.expired() {
                return Err(cancelled(&token, done));
            }
            let t0 = Instant::now();
            for &m in &sweep {
                std::hint::black_box(engine.mttkrp(&factors, m));
            }
            best = best.min(t0.elapsed().as_secs_f64());
        }
        results.push((engine.name(), best, warm));
    }
    let fastest = results
        .iter()
        .map(|&(_, s, _)| s)
        .fold(f64::INFINITY, f64::min);
    println!(
        "{:<12} {:>12} {:>10} {:>12}",
        "engine", "sweep (ms)", "vs best", "warmup (ms)"
    );
    println!("{}", "-".repeat(50));
    for (name, secs, warm) in &results {
        println!(
            "{:<12} {:>12.3} {:>9.2}x {:>12.1}",
            name,
            secs * 1e3,
            secs / fastest,
            warm * 1e3
        );
    }
    Ok(())
}

fn cancelled(token: &stef::CancelToken, engines_done: usize) -> CliError {
    CliError::Cancelled(stef::StefError::Cancelled {
        iteration: engines_done,
        deadline: token.deadline_expired(),
        checkpoint_iteration: None,
    })
}

#[cfg(test)]
mod tests {
    fn argv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn bench_runs_on_tiny_tensor() {
        super::run(&argv(&["suite:nips:tiny", "--rank", "2", "--reps", "1"])).unwrap();
    }

    #[test]
    fn rejects_missing_tensor() {
        assert!(super::run(&argv(&["--rank", "2"])).is_err());
    }

    #[test]
    fn bench_accepts_accum_flag() {
        super::run(&argv(&[
            "suite:nips:tiny",
            "--rank",
            "2",
            "--reps",
            "1",
            "--accum",
            "atomic",
        ]))
        .unwrap();
    }

    #[test]
    fn rejects_unknown_accum() {
        assert!(super::run(&argv(&["suite:nips:tiny", "--accum", "magic"])).is_err());
    }

    #[test]
    fn rejects_unknown_simd() {
        assert!(super::run(&argv(&["suite:nips:tiny", "--simd", "sse9"])).is_err());
    }

    #[test]
    fn expired_timeout_exits_with_the_cancel_code() {
        let err = super::run(&argv(&[
            "suite:nips:tiny",
            "--rank",
            "2",
            "--reps",
            "1",
            "--timeout",
            "0.000001",
        ]))
        .expect_err("expired deadline must cancel the bench");
        assert_eq!(err.exit_code(), 6, "{err}");
    }
}
