//! `stef bench` — compare every engine's MTTKRP sweep time on one
//! tensor (a single-tensor slice of the paper's Figures 3/4).

use crate::args::{parse, FlagSpec};
use crate::commands::accum_by_name;
use crate::tensor_source::load;
use std::time::Instant;
use stef::init_factors;
use workloads::SuiteScale;

pub fn run(argv: &[String]) -> Result<(), String> {
    let spec = FlagSpec::new(&[
        ("--rank", "rank"),
        ("-r", "rank"),
        ("--reps", "reps"),
        ("--threads", "threads"),
        ("--accum", "accum"),
    ]);
    let p = parse(argv, &spec)?;
    let tensor_spec = p.one_positional("tensor")?;
    let rank: usize = p.num_or("rank", 32)?;
    let reps: usize = p.num_or("reps", 3)?;
    let threads: usize = p.num_or("threads", 0)?;
    let accum = accum_by_name(p.str_or("accum", "auto"))?;

    let (label, t) = load(tensor_spec, SuiteScale::Small)?;
    println!(
        "benchmarking {label}: {} nnz, rank {rank}, {reps} reps, {} rayon threads\n",
        t.nnz(),
        rayon::current_num_threads()
    );

    let factors = init_factors(t.dims(), rank, 7);
    let mut results: Vec<(String, f64, f64)> = Vec::new();
    for mut engine in baselines::all_engines_with(&t, rank, threads, accum) {
        let prep_start = Instant::now();
        let sweep = engine.sweep_order();
        // Warm-up (auto-tuners settle here).
        for _ in 0..4 {
            for &m in &sweep {
                std::hint::black_box(engine.mttkrp(&factors, m));
            }
        }
        let warm = prep_start.elapsed().as_secs_f64();
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            for &m in &sweep {
                std::hint::black_box(engine.mttkrp(&factors, m));
            }
            best = best.min(t0.elapsed().as_secs_f64());
        }
        results.push((engine.name(), best, warm));
    }
    let fastest = results
        .iter()
        .map(|&(_, s, _)| s)
        .fold(f64::INFINITY, f64::min);
    println!(
        "{:<12} {:>12} {:>10} {:>12}",
        "engine", "sweep (ms)", "vs best", "warmup (ms)"
    );
    println!("{}", "-".repeat(50));
    for (name, secs, warm) in &results {
        println!(
            "{:<12} {:>12.3} {:>9.2}x {:>12.1}",
            name,
            secs * 1e3,
            secs / fastest,
            warm * 1e3
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    fn argv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn bench_runs_on_tiny_tensor() {
        super::run(&argv(&["suite:nips:tiny", "--rank", "2", "--reps", "1"])).unwrap();
    }

    #[test]
    fn rejects_missing_tensor() {
        assert!(super::run(&argv(&["--rank", "2"])).is_err());
    }

    #[test]
    fn bench_accepts_accum_flag() {
        super::run(&argv(&[
            "suite:nips:tiny",
            "--rank",
            "2",
            "--reps",
            "1",
            "--accum",
            "atomic",
        ]))
        .unwrap();
    }

    #[test]
    fn rejects_unknown_accum() {
        assert!(super::run(&argv(&["suite:nips:tiny", "--accum", "magic"])).is_err());
    }
}
