//! `stef analyze` — structure statistics and model decisions for one
//! tensor: what Table I reports, plus what STeF would do with it.

use crate::args::{parse, FlagSpec};
use crate::commands::apply_simd_flag;
use crate::tensor_source::load;
use sptensor::{build_csf, count_fibers_if_last_two_swapped, sort_modes_by_length, TensorStats};
use stef::{LevelProfile, MttkrpEngine, Stef, StefOptions};
use workloads::SuiteScale;

pub fn run(argv: &[String]) -> Result<(), String> {
    let spec = FlagSpec::new(&[
        ("--rank", "rank"),
        ("-r", "rank"),
        ("--cache-mb", "cache-mb"),
        ("--threads", "threads"),
        ("--simd", "simd"),
    ]);
    let p = parse(argv, &spec)?;
    let tensor_spec = p.one_positional("tensor")?;
    let rank: usize = p.num_or("rank", 32)?;
    let cache_mb: usize = p.num_or("cache-mb", 16)?;
    let threads: usize = p.num_or("threads", 0)?;
    apply_simd_flag(p.str_or("simd", "auto"))?;

    let (label, t) = load(tensor_spec, SuiteScale::Small)?;
    println!("tensor: {label}");
    println!(
        "  dims {:?}, nnz {}, density {:.3e}",
        t.dims(),
        t.nnz(),
        t.density()
    );

    let order = sort_modes_by_length(t.dims());
    let csf = build_csf(&t, &order);
    let stats = TensorStats::from_csf(&csf, t.dims());
    println!("  CSF order {:?} ({})", order, stats.dims_string());
    println!("  fibers per level: {:?}", stats.fiber_counts);
    println!(
        "  root slices: {} (imbalance {:.2}x) — slice scheduling would cap at {} busy threads",
        stats.root_slices, stats.slice_imbalance, stats.root_slices
    );
    let d = csf.ndim();
    let swapped = count_fibers_if_last_two_swapped(&csf);
    println!(
        "  Algorithm 9: level-{} fibers {} (base) vs {} (last two modes swapped)",
        d - 2,
        csf.nfibers(d - 2),
        swapped
    );

    let mut opts = StefOptions::new(rank);
    opts.cache_bytes = cache_mb << 20;
    opts.num_threads = threads;
    let mut engine = Stef::prepare(&t, opts.clone());
    let plan = engine.plan();
    println!("\nSTeF plan (R={rank}, cache {cache_mb} MiB):");
    println!("  swap last two modes: {}", plan.swap_last_two);
    println!(
        "  memoized levels: {:?}",
        plan.save
            .iter()
            .enumerate()
            .filter(|(_, &s)| s)
            .map(|(l, _)| l)
            .collect::<Vec<_>>()
    );
    println!(
        "  predicted traffic: {:.2} M elements/iter (best other order {:.2} M)",
        plan.predicted / 1e6,
        plan.predicted_other_order / 1e6
    );
    println!(
        "  partial storage: {:.2} MB vs CSF+factors {:.2} MB (ratio {:.2})",
        engine.partial_bytes() as f64 / 1e6,
        engine.csf_and_factor_bytes() as f64 / 1e6,
        engine.partial_bytes() as f64 / engine.csf_and_factor_bytes() as f64
    );

    // Extremes for context.
    let base_profile = LevelProfile::from_csf(engine.csf(), rank, opts.cache_bytes);
    let none = base_profile.total_traffic(&vec![false; d]);
    let mut all = vec![false; d];
    if d >= 3 {
        for flag in all.iter_mut().take(d - 1).skip(1) {
            *flag = true;
        }
    }
    let all_traffic = base_profile.total_traffic(&all);
    println!(
        "  traffic extremes on chosen order: save-none {:.2} M, save-all {:.2} M",
        none / 1e6,
        all_traffic / 1e6
    );

    // One warm MTTKRP sweep on the engine's executor, then surface the
    // worker-pool counters so imbalance is visible from the CLI.
    let factors = stef::init_factors(t.dims(), rank, 1);
    for mode in engine.sweep_order() {
        std::hint::black_box(engine.mttkrp(&factors, mode));
    }
    let rc = engine.runtime_counters();
    println!(
        "\nruntime ({:?} executor, {} workers) after one warm sweep:",
        engine.executor().kind(),
        rc.workers
    );
    println!("  simd kernels: {}", linalg::simd::describe());
    let topo = stef::NumaTopology::detect();
    let cpus: Vec<usize> = topo.nodes().iter().map(|n| n.cpus.len()).collect();
    println!(
        "  numa topology: {} node{} (cpus per node {:?}), policy {}",
        topo.num_nodes(),
        if topo.num_nodes() == 1 { "" } else { "s" },
        cpus,
        opts.numa.as_str()
    );
    let placement = engine.executor().placement();
    if placement.is_empty() {
        println!("  numa placement: none (serial or scoped executor)");
    } else {
        let pinned = placement.iter().filter(|p| p.pinned).count();
        let mut per_node = vec![0usize; topo.num_nodes().max(1)];
        for p in &placement {
            if let Some(c) = per_node.get_mut(p.node) {
                *c += 1;
            }
        }
        println!(
            "  numa placement: {} workers over {} segment{} (per node {:?}), {} pinned",
            placement.len(),
            engine.executor().numa_nodes(),
            if engine.executor().numa_nodes() == 1 { "" } else { "s" },
            per_node,
            pinned
        );
    }
    println!(
        "  dispatches {} (inline {}), dispatcher claimed {} chunks",
        rc.dispatches, rc.inline_runs, rc.dispatcher_chunks
    );
    print!("{}", stef::telemetry::render_load_balance(&rc));
    Ok(())
}

#[cfg(test)]
mod tests {
    fn argv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn analyzes_suite_tensor() {
        super::run(&argv(&["suite:uber:tiny", "--rank", "8"])).unwrap();
    }

    #[test]
    fn analyzes_with_simd_flag() {
        super::run(&argv(&["suite:uber:tiny", "--rank", "4", "--simd", "auto"])).unwrap();
    }

    #[test]
    fn missing_tensor_errors() {
        assert!(super::run(&argv(&[])).is_err());
    }

    #[test]
    fn bad_rank_errors() {
        assert!(super::run(&argv(&["suite:uber:tiny", "--rank", "zero"])).is_err());
    }
}
