//! `stef decompose` — run CPD-ALS and optionally write the factors.
//!
//! Factors are written as one whitespace-separated text matrix per mode
//! (`mode0.mat`, `mode1.mat`, …) plus `lambda.txt`, a format trivially
//! loadable from numpy/Julia/R.

use crate::args::{parse, FlagSpec};
use crate::commands::{
    accum_by_name, apply_simd_flag, engine_by_name, numa_by_name, runtime_by_name, EngineConfig,
};
use crate::error::CliError;
use crate::tensor_source::load;
use linalg::Mat;
use std::io::Write;
use std::path::Path;
use std::time::Duration;
use stef::{cpd_als, CancelToken, Checkpoint, CheckpointPolicy, CpdOptions};
use workloads::SuiteScale;

/// Checkpoint path used when a run is interruptible (`--timeout`) but
/// the user gave no `--checkpoint`; interrupted runs stay resumable.
const DEFAULT_INTERRUPT_CHECKPOINT: &str = "stef-interrupted.ckpt";

pub fn run(argv: &[String]) -> Result<(), CliError> {
    let spec = FlagSpec::new(&[
        ("--rank", "rank"),
        ("-r", "rank"),
        ("--iters", "iters"),
        ("--tol", "tol"),
        ("--engine", "engine"),
        ("--threads", "threads"),
        ("--out", "out"),
        ("--seed", "seed"),
        ("--mode", "mode"),
        ("--accum", "accum"),
        ("--runtime", "runtime"),
        ("--simd", "simd"),
        ("--numa", "numa"),
        ("--checkpoint", "checkpoint"),
        ("--checkpoint-every", "checkpoint-every"),
        ("--resume", "resume"),
        ("--timeout", "timeout"),
        ("--memory-budget", "memory-budget"),
        ("--metrics-out", "metrics-out"),
        ("--trace-out", "trace-out"),
        ("--verbose", "verbose"),
        ("-v", "verbose"),
    ])
    .with_switches(&["verbose"]);
    let p = parse(argv, &spec)?;
    let tensor_spec = p.one_positional("tensor")?;
    let rank: usize = p.num_or("rank", 16)?;
    let iters: usize = p.num_or("iters", 50)?;
    let tol: f64 = p.num_or("tol", 1e-5)?;
    let seed: u64 = p.num_or("seed", 42)?;
    let threads: usize = p.num_or("threads", 0)?;
    let timeout: f64 = p.num_or("timeout", 0.0)?;
    let memory_budget: usize = p.num_or("memory-budget", 0)?;
    if !timeout.is_finite() || timeout < 0.0 {
        return Err(CliError::Usage(format!(
            "--timeout must be a non-negative number of seconds, got {timeout}"
        )));
    }
    let engine_name = p.str_or("engine", "stef");
    let update_mode = p.str_or("mode", "als");
    let accum = accum_by_name(p.str_or("accum", "auto")).map_err(CliError::Usage)?;
    let runtime = runtime_by_name(p.str_or("runtime", "pool")).map_err(CliError::Usage)?;
    let simd = apply_simd_flag(p.str_or("simd", "auto")).map_err(CliError::Usage)?;
    // No flag → honor STEF_NUMA (defaults to auto).
    let numa = match p.opt_str("numa") {
        Some(name) => numa_by_name(name).map_err(CliError::Usage)?,
        None => stef::NumaPolicy::from_env(),
    };
    let checkpoint_every: usize = p.num_or("checkpoint-every", 5)?;
    let checkpoint = match p.opt_str("checkpoint") {
        Some(path) => Some(CheckpointPolicy::new(path, checkpoint_every)),
        // An interruptible run must leave something to resume from.
        None if timeout > 0.0 => {
            println!(
                "no --checkpoint given; an interrupted run will checkpoint to {DEFAULT_INTERRUPT_CHECKPOINT}"
            );
            Some(CheckpointPolicy::new(
                DEFAULT_INTERRUPT_CHECKPOINT,
                checkpoint_every,
            ))
        }
        None => None,
    };
    let resume = match p.opt_str("resume") {
        Some(path) => {
            let cp = Checkpoint::load(Path::new(path))?;
            println!(
                "resuming from {path} (iteration {}, engine '{}')",
                cp.iteration, cp.engine
            );
            Some(cp)
        }
        None => None,
    };

    let metrics_out = p.opt_str("metrics-out").map(String::from);
    let trace_out = p.opt_str("trace-out").map(String::from);
    let verbose = p.flag("verbose");
    if (metrics_out.is_some() || trace_out.is_some()) && !stef::telemetry::COMPILED {
        return Err(CliError::Usage(
            "--metrics-out/--trace-out need the 'telemetry' cargo feature \
             (this binary was built with --no-default-features)"
            .into(),
        ));
    }
    // Span capture must be armed before the engine (and its worker
    // pool) dispatches anything we want on the trace.
    stef::telemetry::set_trace_enabled(trace_out.is_some());

    let (label, t) = load(tensor_spec, SuiteScale::Small).map_err(CliError::Input)?;
    println!(
        "decomposing {label} ({} nnz) with engine '{engine_name}', rank {rank}",
        t.nnz()
    );

    // One token serves --timeout, Ctrl-C, the engine's own kernels and
    // the dense fan-outs; the scope guard detaches it when we return.
    let token = CancelToken::new();
    if timeout > 0.0 {
        token.set_deadline(Duration::from_secs_f64(timeout));
        println!("deadline armed: {timeout}s");
    }
    let _cancel_scope = crate::cancel::install(&token);

    let cfg = EngineConfig {
        rank,
        threads,
        accum,
        runtime,
        memory_budget,
        cancel: Some(token.clone()),
        simd,
        numa,
    };
    let mut engine = engine_by_name(engine_name, &t, &cfg)?;
    let opts = CpdOptions {
        rank,
        max_iters: iters,
        tol,
        seed,
        checkpoint,
        resume,
        cancel: Some(token.clone()),
        ..CpdOptions::new(rank)
    };
    match update_mode {
        "als" => {
            let result = match cpd_als(engine.as_mut(), &opts) {
                Ok(r) => r,
                Err(e) => {
                    if let stef::StefError::Cancelled {
                        checkpoint_iteration: Some(it),
                        ..
                    } = &e
                    {
                        if let Some(policy) = &opts.checkpoint {
                            println!(
                                "cancelled; checkpoint at iteration {it} — resume with --resume {}",
                                policy.path.display()
                            );
                        }
                    }
                    return Err(e.into());
                }
            };
            for ev in &result.degradations {
                println!("memory budget: {ev}");
            }
            println!(
                "fit {:.6} after {} iterations (converged: {}); {:?} total, {:?} in MTTKRP",
                result.final_fit(),
                result.iterations,
                result.converged,
                result.total_time,
                result.mttkrp_time
            );
            if result.irregular_solves > 0 {
                println!(
                    "note: {} solves needed ridge/LU fallback",
                    result.irregular_solves
                );
            }
            for ev in &result.recovery.events {
                println!(
                    "recovery: iteration {} {:?}: {}",
                    ev.iteration, ev.action, ev.detail
                );
            }
            if result.checkpoints_written > 0 {
                println!("{} checkpoints written", result.checkpoints_written);
            }
            if let Some(path) = &metrics_out {
                let body = stef::telemetry::render_metrics_jsonl(&result.telemetry);
                std::fs::write(path, body)
                    .map_err(|e| CliError::Input(format!("cannot write '{path}': {e}")))?;
                println!(
                    "metrics written to {path} ({} iteration records)",
                    result.telemetry.records.len()
                );
            }
            if let Some(path) = &trace_out {
                stef::telemetry::set_trace_enabled(false);
                let body = stef::telemetry::render_chrome_trace(&result.telemetry.spans);
                std::fs::write(path, body)
                    .map_err(|e| CliError::Input(format!("cannot write '{path}': {e}")))?;
                println!(
                    "trace written to {path} ({} spans) — load in Perfetto or chrome://tracing",
                    result.telemetry.spans.len()
                );
            }
            if verbose {
                print!("{}", stef::telemetry::render_summary(&result.telemetry));
                if let Some(counters) = engine.telemetry_runtime_counters() {
                    print!("{}", stef::telemetry::render_load_balance(&counters));
                }
            }
            if let Some(dir) = p.opt_str("out") {
                write_factors(dir, &result.factors, &result.lambda)
                    .map_err(|e| CliError::Input(format!("cannot write factors to '{dir}': {e}")))?;
                println!("factors written to {dir}/");
            }
        }
        "nonneg" => {
            if metrics_out.is_some() || trace_out.is_some() {
                println!(
                    "note: --metrics-out/--trace-out only instrument --mode als; \
                     the nonnegative driver records no telemetry"
                );
            }
            let result = stef::cpd_mu_nonneg(engine.as_mut(), &opts);
            println!(
                "nonnegative fit {:.6} after {} iterations (converged: {}); {:?} total",
                result.final_fit(),
                result.iterations,
                result.converged,
                result.total_time
            );
            if let Some(dir) = p.opt_str("out") {
                let lambda = vec![1.0; rank];
                write_factors(dir, &result.factors, &lambda)
                    .map_err(|e| CliError::Input(format!("cannot write factors to '{dir}': {e}")))?;
                println!("factors written to {dir}/");
            }
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown --mode '{other}' (als|nonneg)"
            )))
        }
    }
    Ok(())
}

fn write_factors(dir: &str, factors: &[Mat], lambda: &[f64]) -> std::io::Result<()> {
    let dir = Path::new(dir);
    std::fs::create_dir_all(dir)?;
    for (m, f) in factors.iter().enumerate() {
        let mut w =
            std::io::BufWriter::new(std::fs::File::create(dir.join(format!("mode{m}.mat")))?);
        for i in 0..f.rows() {
            let row: Vec<String> = f.row(i).iter().map(|v| format!("{v:.17e}")).collect();
            writeln!(w, "{}", row.join(" "))?;
        }
    }
    let mut w = std::io::BufWriter::new(std::fs::File::create(dir.join("lambda.txt"))?);
    for l in lambda {
        writeln!(w, "{l:.17e}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    fn argv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn decomposes_and_writes_factors() {
        let dir = std::env::temp_dir().join("stef-cli-decomp");
        let dir_str = dir.to_str().unwrap().to_string();
        super::run(&argv(&[
            "suite:uber:tiny",
            "--rank",
            "4",
            "--iters",
            "3",
            "--out",
            &dir_str,
        ]))
        .unwrap();
        // uber has 4 modes.
        for m in 0..4 {
            let path = dir.join(format!("mode{m}.mat"));
            let body = std::fs::read_to_string(&path).unwrap();
            let rows = body.lines().count();
            assert!(rows > 0, "mode{m}.mat empty");
            let cols = body.lines().next().unwrap().split_whitespace().count();
            assert_eq!(cols, 4);
        }
        let lambda = std::fs::read_to_string(dir.join("lambda.txt")).unwrap();
        assert_eq!(lambda.lines().count(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn telemetry_sinks_are_written() {
        if !stef::telemetry::COMPILED {
            return;
        }
        let dir = std::env::temp_dir().join("stef-cli-telemetry");
        std::fs::create_dir_all(&dir).unwrap();
        let metrics = dir.join("metrics.jsonl");
        let trace = dir.join("trace.json");
        super::run(&argv(&[
            "suite:uber:tiny",
            "--rank",
            "3",
            "--iters",
            "3",
            "--tol",
            "0",
            "--metrics-out",
            metrics.to_str().unwrap(),
            "--trace-out",
            trace.to_str().unwrap(),
            "--verbose",
        ]))
        .unwrap();
        let body = std::fs::read_to_string(&metrics).unwrap();
        assert_eq!(body.lines().count(), 3, "one JSONL record per iteration");
        for line in body.lines() {
            assert!(line.starts_with("{\"schema\":1,"), "{line}");
            assert!(line.contains("\"modes\":["), "{line}");
        }
        let trace_body = std::fs::read_to_string(&trace).unwrap();
        assert!(trace_body.trim_start().starts_with('['));
        assert!(trace_body.contains("\"thread_name\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn nonneg_mode_runs() {
        super::run(&argv(&[
            "suite:uber:tiny",
            "--rank",
            "3",
            "--iters",
            "3",
            "--mode",
            "nonneg",
        ]))
        .unwrap();
    }

    #[test]
    fn rejects_unknown_mode() {
        assert!(super::run(&argv(&["suite:uber:tiny", "--mode", "magic"])).is_err());
    }

    #[test]
    fn rejects_unknown_engine() {
        assert!(super::run(&argv(&["suite:uber:tiny", "--engine", "hype"])).is_err());
    }

    #[test]
    fn explicit_accum_strategies_run() {
        for accum in ["auto", "privatized", "atomic"] {
            super::run(&argv(&[
                "suite:uber:tiny",
                "--rank",
                "3",
                "--iters",
                "2",
                "--accum",
                accum,
            ]))
            .unwrap();
        }
    }

    #[test]
    fn explicit_simd_paths_run() {
        for simd in ["auto", "scalar"] {
            super::run(&argv(&[
                "suite:uber:tiny",
                "--rank",
                "3",
                "--iters",
                "2",
                "--simd",
                simd,
            ]))
            .unwrap();
        }
        // Leave the process on the detected path for other tests.
        linalg::simd::apply(stef::SimdPolicy::Force(linalg::simd::detect()));
    }

    #[test]
    fn rejects_unknown_simd_as_usage_error() {
        let err = super::run(&argv(&["suite:uber:tiny", "--simd", "sse9"]))
            .expect_err("bad --simd must fail");
        assert_eq!(err.exit_code(), 2, "{err}");
    }

    #[test]
    fn rejects_unknown_accum_as_usage_error() {
        let err = super::run(&argv(&["suite:uber:tiny", "--accum", "sometimes"]))
            .expect_err("bad --accum must fail");
        assert_eq!(err.exit_code(), 2, "{err}");
    }

    #[test]
    fn checkpoint_and_resume_flags_work() -> Result<(), String> {
        let dir = std::env::temp_dir().join("stef-cli-ckpt");
        std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
        let ckpt = dir.join("run.ckpt");
        let ckpt_str = ckpt.to_str().ok_or("non-UTF-8 temp path")?;
        super::run(&argv(&[
            "suite:uber:tiny",
            "--rank",
            "3",
            "--iters",
            "4",
            "--tol",
            "0",
            "--checkpoint",
            ckpt_str,
            "--checkpoint-every",
            "2",
        ]))
        .map_err(|e| e.to_string())?;
        assert!(ckpt.exists(), "checkpoint file not written");
        super::run(&argv(&[
            "suite:uber:tiny",
            "--rank",
            "3",
            "--iters",
            "6",
            "--tol",
            "0",
            "--resume",
            ckpt_str,
        ]))
        .map_err(|e| e.to_string())?;
        // Resuming under a different rank must fail with the checkpoint
        // exit class, not crash.
        let err = super::run(&argv(&[
            "suite:uber:tiny",
            "--rank",
            "5",
            "--resume",
            ckpt_str,
        ]))
        .expect_err("rank mismatch must fail");
        assert_eq!(err.exit_code(), 5, "{err}");
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn expired_timeout_exits_with_the_cancel_code() {
        let err = super::run(&argv(&[
            "suite:uber:tiny",
            "--rank",
            "3",
            "--iters",
            "50",
            "--tol",
            "0",
            "--timeout",
            "0.000001",
        ]))
        .expect_err("an already-expired deadline must cancel the run");
        assert_eq!(err.exit_code(), 6, "{err}");
    }

    #[test]
    fn non_finite_timeout_is_a_usage_error() {
        let err = super::run(&argv(&["suite:uber:tiny", "--timeout", "nan"]))
            .expect_err("nan timeout must be rejected");
        assert_eq!(err.exit_code(), 2, "{err}");
    }

    #[test]
    fn generous_memory_budget_still_decomposes() {
        super::run(&argv(&[
            "suite:uber:tiny",
            "--rank",
            "3",
            "--iters",
            "2",
            "--memory-budget",
            "100000000",
        ]))
        .unwrap();
    }

    #[test]
    fn every_engine_decomposes_a_tiny_tensor() {
        for engine in ["stef2", "splatt-all", "alto", "auto", "alto-baseline", "adatm"] {
            super::run(&argv(&[
                "suite:nips:tiny",
                "--rank",
                "3",
                "--iters",
                "2",
                "--engine",
                engine,
            ]))
            .unwrap();
        }
    }

    #[test]
    fn numa_flag_parses_and_off_runs() {
        super::run(&argv(&[
            "suite:uber:tiny",
            "--rank",
            "3",
            "--iters",
            "2",
            "--numa",
            "off",
        ]))
        .unwrap();
        let err = super::run(&argv(&["suite:uber:tiny", "--numa", "maybe"]))
            .expect_err("bad --numa must fail");
        assert_eq!(err.exit_code(), 2, "{err}");
    }
}
