//! `stef validate` — cross-check an engine against the naive COO
//! reference on a given tensor (wrapper around
//! `stef::validate::validate_engine`).

use crate::args::{parse, FlagSpec};
use crate::commands::{accum_by_name, engine_by_name, runtime_by_name, EngineConfig};
use crate::error::CliError;
use crate::tensor_source::load;
use std::time::Duration;
use stef::CancelToken;
use workloads::SuiteScale;

pub fn run(argv: &[String]) -> Result<(), CliError> {
    let spec = FlagSpec::new(&[
        ("--rank", "rank"),
        ("-r", "rank"),
        ("--engine", "engine"),
        ("--threads", "threads"),
        ("--tol", "tol"),
        ("--accum", "accum"),
        ("--runtime", "runtime"),
        ("--timeout", "timeout"),
    ]);
    let p = parse(argv, &spec)?;
    let tensor_spec = p.one_positional("tensor")?;
    let rank: usize = p.num_or("rank", 8)?;
    let threads: usize = p.num_or("threads", 0)?;
    let tol: f64 = p.num_or("tol", 1e-9)?;
    let timeout: f64 = p.num_or("timeout", 0.0)?;
    let engine_name = p.str_or("engine", "stef");

    let (label, t) = load(tensor_spec, SuiteScale::Tiny).map_err(CliError::Input)?;
    if t.nnz() > 2_000_000 {
        stef::telemetry::warn("validate", || {
            format!(
                "the reference MTTKRP is O(nnz·d·R) per mode; {} nnz will be slow",
                t.nnz()
            )
        });
    }
    println!("validating engine '{engine_name}' on {label} at rank {rank} (tol {tol:e})…");
    let accum = accum_by_name(p.str_or("accum", "auto")).map_err(CliError::Usage)?;
    let runtime = runtime_by_name(p.str_or("runtime", "pool")).map_err(CliError::Usage)?;

    let token = CancelToken::new();
    if timeout > 0.0 {
        token.set_deadline(Duration::from_secs_f64(timeout));
    }
    let _cancel_scope = crate::cancel::install(&token);

    let mut cfg = EngineConfig::new(rank, threads);
    cfg.accum = accum;
    cfg.runtime = runtime;
    cfg.cancel = Some(token.clone());
    let mut engine = engine_by_name(engine_name, &t, &cfg)?;
    if token.expired() {
        return Err(cancelled(&token, 0));
    }
    let report = stef::validate_engine(engine.as_mut(), &t, rank, tol, 42);
    // A cancelled sweep produces partial outputs; don't report those as
    // mismatches.
    if token.expired() {
        return Err(cancelled(&token, report.modes_checked.len()));
    }
    if report.is_ok() {
        println!(
            "OK: {} modes × 2 sweeps agree with the reference",
            report.modes_checked.len()
        );
        Ok(())
    } else {
        for m in &report.mismatches {
            stef::telemetry::warn("validate", || {
                format!(
                    "MISMATCH mode {} at ({}, {}): engine {} vs reference {}",
                    m.mode, m.row, m.col, m.got, m.expected
                )
            });
        }
        Err(CliError::Input(format!(
            "{} mismatching mode passes",
            report.mismatches.len()
        )))
    }
}

fn cancelled(token: &CancelToken, progress: usize) -> CliError {
    CliError::Cancelled(stef::StefError::Cancelled {
        iteration: progress,
        deadline: token.deadline_expired(),
        checkpoint_iteration: None,
    })
}

#[cfg(test)]
mod tests {
    fn argv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn validates_every_engine_on_a_tiny_tensor() {
        for engine in ["stef", "stef2", "splatt-2", "alto", "taco"] {
            super::run(&argv(&[
                "suite:nips:tiny",
                "--rank",
                "2",
                "--engine",
                engine,
            ]))
            .unwrap_or_else(|e| panic!("{engine}: {e}"));
        }
    }

    #[test]
    fn unknown_engine_fails() {
        assert!(super::run(&argv(&["suite:nips:tiny", "--engine", "nope"])).is_err());
    }
}
