//! `stef generate` — write a synthetic suite tensor to a `.tns` file.

use crate::args::{parse, FlagSpec};
use crate::tensor_source::parse_scale;
use workloads::SuiteScale;

pub fn run(argv: &[String]) -> Result<(), String> {
    let spec = FlagSpec::new(&[
        ("-o", "output"),
        ("--output", "output"),
        ("--scale", "scale"),
        ("--seed", "seed"),
    ]);
    let p = parse(argv, &spec)?;
    let name = p.one_positional("suite tensor name")?;
    let scale = match p.opt_str("scale") {
        Some(s) => parse_scale(s)?,
        None => SuiteScale::Small,
    };
    let mut suite_spec = workloads::paper_suite()
        .into_iter()
        .find(|s| s.name == name)
        .ok_or_else(|| format!("unknown suite tensor '{name}' (try `stef list`)"))?;
    if let Some(seed) = p.opt_str("seed") {
        suite_spec.seed = seed.parse().map_err(|_| format!("invalid seed '{seed}'"))?;
    }
    let default_out = format!("{name}.tns");
    let out = p.str_or("output", &default_out);
    let t = suite_spec.generate(scale);
    sptensor::io::write_tns_file(&t, out).map_err(|e| format!("cannot write '{out}': {e}"))?;
    println!(
        "wrote {} ({} nnz, dims {:?}, seed {})",
        out,
        t.nnz(),
        t.dims(),
        suite_spec.seed
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    fn argv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn generates_a_file_and_round_trips() -> Result<(), String> {
        let dir = std::env::temp_dir().join("stef-cli-gen");
        std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
        let out = dir.join("uber.tns");
        let out_str = out.to_str().ok_or("non-UTF-8 temp path")?;
        super::run(&argv(&["uber", "-o", out_str, "--scale", "tiny"]))?;
        let t = sptensor::io::read_tns_file(&out).map_err(|e| e.to_string())?;
        assert!(t.nnz() >= 500);
        std::fs::remove_file(&out).ok();
        Ok(())
    }

    #[test]
    fn unknown_tensor_errors() {
        assert!(super::run(&argv(&["not-a-tensor"])).is_err());
    }

    #[test]
    fn bad_scale_errors() {
        assert!(super::run(&argv(&["uber", "--scale", "giant"])).is_err());
    }

    #[test]
    fn custom_seed_changes_content() -> Result<(), String> {
        let dir = std::env::temp_dir().join("stef-cli-gen-seed");
        std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
        let a = dir.join("a.tns");
        let b = dir.join("b.tns");
        let a_str = a.to_str().ok_or("non-UTF-8 temp path")?;
        let b_str = b.to_str().ok_or("non-UTF-8 temp path")?;
        super::run(&argv(&["nips", "-o", a_str, "--scale", "tiny"]))?;
        super::run(&argv(&[
            "nips", "-o", b_str, "--scale", "tiny", "--seed", "999",
        ]))?;
        let ta = std::fs::read_to_string(&a).map_err(|e| e.to_string())?;
        let tb = std::fs::read_to_string(&b).map_err(|e| e.to_string())?;
        assert_ne!(ta, tb);
        std::fs::remove_file(&a).ok();
        std::fs::remove_file(&b).ok();
        Ok(())
    }
}
