//! `stef top` — a terminal dashboard over a running daemon's
//! `GET /metrics` endpoint.
//!
//! One-shot by default (scrape, render, exit 0); `--watch-ms N`
//! re-scrapes every N milliseconds until Ctrl-C (or `--count` scrapes).
//! Everything is computed client-side from the Prometheus text
//! exposition, so `top` works against any historical daemon build that
//! serves `/metrics` and needs no state on the server beyond the
//! registry itself.

use crate::args::{parse, FlagSpec};
use crate::error::CliError;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;
use stef::{parse_prometheus_text, quantile_from_buckets, PromSample};

pub fn run(argv: &[String]) -> Result<(), CliError> {
    let spec = FlagSpec::new(&[
        ("--addr", "addr"),
        ("--watch-ms", "watch-ms"),
        ("--count", "count"),
    ]);
    let p = parse(argv, &spec)?;
    if !p.positionals.is_empty() {
        return Err(CliError::Usage(format!(
            "top takes no positional arguments, got {:?}",
            p.positionals
        )));
    }
    let addr = p.str_or("addr", "127.0.0.1:7464").to_string();
    let watch_ms: u64 = p.num_or("watch-ms", 0)?;
    let count: usize = p.num_or("count", 0)?;
    let mut shown = 0usize;
    loop {
        let text = scrape(&addr)?;
        let samples = parse_prometheus_text(&text)
            .map_err(|e| CliError::Input(format!("bad /metrics exposition from {addr}: {e}")))?;
        if watch_ms > 0 && shown > 0 {
            println!();
        }
        print!("{}", render(&addr, &samples));
        shown += 1;
        if watch_ms == 0 || (count > 0 && shown >= count) {
            return Ok(());
        }
        std::thread::sleep(Duration::from_millis(watch_ms));
    }
}

/// One `GET /metrics` over a fresh connection (the daemon caps
/// keep-alive lifetimes anyway, and `top` scrapes at human timescales).
fn scrape(addr: &str) -> Result<String, CliError> {
    let mut stream = TcpStream::connect(addr)
        .map_err(|e| CliError::Input(format!("cannot connect to '{addr}': {e}")))?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: stef-top\r\nConnection: close\r\n\r\n")
        .map_err(|e| CliError::Input(format!("request to '{addr}' failed: {e}")))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| CliError::Input(format!("response from '{addr}' failed: {e}")))?;
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| CliError::Input(format!("malformed response from '{addr}'")))?;
    if status != 200 {
        return Err(CliError::Input(format!(
            "'{addr}' answered {status} for GET /metrics"
        )));
    }
    Ok(response
        .split("\r\n\r\n")
        .nth(1)
        .unwrap_or_default()
        .to_string())
}

/// Sum of every sample of `name` whose labels all match `want`.
fn total(samples: &[PromSample], name: &str, want: &[(&str, &str)]) -> f64 {
    // `+ 0.0` normalizes the empty sum: f64's additive identity is
    // -0.0, which `{:.0}` would render as "-0".
    samples
        .iter()
        .filter(|s| s.name == name && want.iter().all(|(k, v)| s.label(k) == Some(v)))
        .map(|s| s.value)
        .sum::<f64>()
        + 0.0
}

/// Distinct values of `key` across every sample of `name`.
fn label_values(samples: &[PromSample], name: &str, key: &str) -> Vec<String> {
    let mut out: Vec<String> = samples
        .iter()
        .filter(|s| s.name == name)
        .filter_map(|s| s.label(key).map(String::from))
        .collect();
    out.sort();
    out.dedup();
    out
}

/// Cumulative `(le, count)` pairs for one histogram series, ready for
/// [`quantile_from_buckets`].
fn buckets(samples: &[PromSample], base: &str, want: &[(&str, &str)]) -> Vec<(f64, f64)> {
    let bucket_name = format!("{base}_bucket");
    let mut out: Vec<(f64, f64)> = samples
        .iter()
        .filter(|s| s.name == bucket_name && want.iter().all(|(k, v)| s.label(k) == Some(v)))
        .filter_map(|s| {
            let le = s.label("le")?;
            let le = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse().ok()?
            };
            Some((le, s.value))
        })
        .collect();
    out.sort_by(|a, b| a.0.total_cmp(&b.0));
    out
}

fn fmt_secs(s: f64) -> String {
    if !s.is_finite() {
        "-".into()
    } else if s < 1e-3 {
        format!("{:.1}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

/// One histogram line: `label  count  p50  p99`.
fn hist_line(out: &mut String, label: &str, samples: &[PromSample], base: &str, want: &[(&str, &str)]) {
    let b = buckets(samples, base, want);
    let n = total(samples, &format!("{base}_count"), want);
    if n == 0.0 {
        return;
    }
    let p50 = quantile_from_buckets(&b, 0.50);
    let p99 = quantile_from_buckets(&b, 0.99);
    out.push_str(&format!(
        "  {label:<18} {n:>10}   p50 {:>9}   p99 {:>9}\n",
        fmt_secs(p50),
        fmt_secs(p99),
    ));
}

fn render(addr: &str, samples: &[PromSample]) -> String {
    let v = |name: &str| total(samples, name, &[]);
    let mut out = String::new();
    out.push_str(&format!(
        "stef daemon at {addr} — up {:.0}s\n",
        v("stef_uptime_seconds")
    ));
    out.push_str(&format!(
        "jobs   queued {:.0}  running {:.0}  | done {:.0}  failed {:.0}  interrupted {:.0}  \
         shed {:.0}  retries {:.0}\n",
        v("stef_jobs_queued"),
        v("stef_jobs_running"),
        total(samples, "stef_jobs_completed_total", &[("outcome", "done")]),
        total(samples, "stef_jobs_completed_total", &[("outcome", "failed")]),
        total(
            samples,
            "stef_jobs_completed_total",
            &[("outcome", "interrupted")]
        ),
        v("stef_jobs_shed_total"),
        v("stef_job_retries_total"),
    ));
    out.push_str(&format!(
        "models {:.0} ({:.0} stale)  installs {:.0}  | http reqs {:.0}  queries {:.0}  \
         busy-rejected {:.0}\n",
        v("stef_snapshot_models"),
        v("stef_snapshot_stale"),
        v("stef_snapshot_generations"),
        v("stef_http_requests_total"),
        v("stef_serve_queries"),
        v("stef_serve_busy_rejected"),
    ));
    out.push_str("latency              count\n");
    hist_line(&mut out, "http request", samples, "stef_http_request_seconds", &[]);
    hist_line(&mut out, "pool dispatch", samples, "stef_dispatch_seconds", &[]);
    for mode in label_values(samples, "stef_mttkrp_seconds_bucket", "mode") {
        hist_line(
            &mut out,
            &format!("mttkrp mode {mode}"),
            samples,
            "stef_mttkrp_seconds",
            &[("mode", &mode)],
        );
    }
    for outcome in label_values(samples, "stef_job_attempt_seconds_bucket", "outcome") {
        hist_line(
            &mut out,
            &format!("attempt {outcome}"),
            samples,
            "stef_job_attempt_seconds",
            &[("outcome", &outcome)],
        );
    }
    let drift: Vec<&PromSample> = samples
        .iter()
        .filter(|s| s.name == "stef_model_drift_rel_err")
        .collect();
    if !drift.is_empty() {
        out.push_str("model drift (|measured-predicted|/predicted traffic)\n");
        for s in drift {
            out.push_str(&format!(
                "  engine {:<6} mode {:<3} rel_err {:.3}\n",
                s.label("engine").unwrap_or("?"),
                s.label("mode").unwrap_or("?"),
                s.value,
            ));
        }
    }
    let workers = label_values(samples, "stef_worker_bursts_total", "worker");
    if !workers.is_empty() {
        out.push_str("workers  (bursts / chunks / parks)\n");
        for w in workers {
            let want: &[(&str, &str)] = &[("worker", &w)];
            out.push_str(&format!(
                "  w{w:<3} {:>10.0} {:>12.0} {:>10.0}\n",
                total(samples, "stef_worker_bursts_total", want),
                total(samples, "stef_worker_chunks_total", want),
                total(samples, "stef_worker_parks_total", want),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIXTURE: &str = "\
# TYPE stef_uptime_seconds gauge\n\
stef_uptime_seconds 12.5\n\
# TYPE stef_jobs_completed_total counter\n\
stef_jobs_completed_total{outcome=\"done\"} 8\n\
stef_jobs_completed_total{outcome=\"failed\"} 1\n\
# TYPE stef_http_request_seconds histogram\n\
stef_http_request_seconds_bucket{le=\"0.001\"} 90\n\
stef_http_request_seconds_bucket{le=\"0.01\"} 99\n\
stef_http_request_seconds_bucket{le=\"+Inf\"} 100\n\
stef_http_request_seconds_sum 0.5\n\
stef_http_request_seconds_count 100\n\
# TYPE stef_model_drift_rel_err gauge\n\
stef_model_drift_rel_err{engine=\"csf\",mode=\"0\"} 0.07\n";

    #[test]
    fn renders_the_fixture_scrape() {
        let samples = parse_prometheus_text(FIXTURE).unwrap();
        let out = render("127.0.0.1:7464", &samples);
        assert!(out.contains("up 12s") || out.contains("up 13s"), "{out}");
        assert!(out.contains("done 8"), "{out}");
        assert!(out.contains("failed 1"), "{out}");
        assert!(out.contains("http request"), "{out}");
        assert!(out.contains("rel_err 0.070"), "{out}");
    }

    #[test]
    fn bucket_extraction_orders_and_parses_inf() {
        let samples = parse_prometheus_text(FIXTURE).unwrap();
        let b = buckets(&samples, "stef_http_request_seconds", &[]);
        assert_eq!(b.len(), 3);
        assert!(b[2].0.is_infinite());
        let p50 = quantile_from_buckets(&b, 0.5);
        assert!(p50 <= 0.001, "{p50}");
    }

    #[test]
    fn totals_filter_by_label() {
        let samples = parse_prometheus_text(FIXTURE).unwrap();
        assert_eq!(
            total(&samples, "stef_jobs_completed_total", &[("outcome", "done")]),
            8.0
        );
        assert_eq!(total(&samples, "stef_jobs_completed_total", &[]), 9.0);
        // A family absent from the scrape must render "0", not "-0"
        // (f64's empty-sum identity is negative zero).
        let none = total(&samples, "stef_no_such_family", &[]);
        assert_eq!(format!("{none:.0}"), "0");
    }
}
