//! `stef batch` — run a list of decomposition jobs under the
//! crash-consistent supervisor.
//!
//! The jobs file is one job per line:
//!
//! ```text
//! # tensor-spec        [rank=R] [iters=N] [tol=T] [seed=S] [engine=NAME] [deadline=SECS]
//! suite:uber:tiny      rank=4 iters=10
//! data/flickr.tns      rank=16 engine=stef2 deadline=120
//! ```
//!
//! Every job transition lands in an append-only checksummed journal
//! before it takes effect, so after a crash (`kill -9` included)
//! rerunning with `--resume-journal` restarts exactly the unfinished
//! jobs from their latest checkpoints. Admission is priced with the
//! paper's §IV-C data-movement model; submissions that do not fit the
//! `--memory-envelope` / `--traffic-envelope` are shed with exit code 7
//! while admitted jobs run to completion.
//!
//! `STEF_BATCH_FAULT` (e.g. `0:transient@3,2:fuse@1+50`) injects faults
//! into first attempts only — the CI soak uses it to prove the retry
//! ladder and deadline handling against journaled outcomes.

use crate::args::{parse, FlagSpec};
use crate::commands::{engine_by_name, EngineConfig};
use crate::error::CliError;
use crate::tensor_source;
use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;
use stef::{
    parse_fault_directives, parse_job_line, scan_journal, AccumStrategy, CancelToken,
    EngineFactory, Fault, FaultyEngine, JobAttempt, JobSpec, JobStatus, JournalRecord, Runtime,
    StefError, Supervisor, SupervisorConfig, TensorLoader,
};
use workloads::SuiteScale;

pub fn run(argv: &[String]) -> Result<(), CliError> {
    let spec = FlagSpec::new(&[
        ("--journal", "journal"),
        ("--ckpt-dir", "ckpt-dir"),
        ("--resume-journal", "resume-journal"),
        ("--status", "status"),
        ("--max-concurrent", "max-concurrent"),
        ("--threads", "threads"),
        ("--checkpoint-every", "checkpoint-every"),
        ("--cache-mb", "cache-mb"),
        ("--memory-envelope", "memory-envelope"),
        ("--traffic-envelope", "traffic-envelope"),
        ("--max-retries", "max-retries"),
        ("--backoff-ms", "backoff-ms"),
        ("--backoff-cap-ms", "backoff-cap-ms"),
        ("--metrics-out", "metrics-out"),
    ])
    .with_switches(&["resume-journal", "status"]);
    let p = parse(argv, &spec)?;
    let jobs_path = p.one_positional("jobs list")?;
    let journal: PathBuf = p
        .opt_str("journal")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(format!("{jobs_path}.journal")));
    let ckpt_dir: PathBuf = p
        .opt_str("ckpt-dir")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(format!("{jobs_path}.ckpts")));

    if p.flag("status") {
        return print_status(&journal);
    }

    let jobs = parse_jobs_file(jobs_path)?;
    if jobs.is_empty() {
        return Err(CliError::Input(format!("'{jobs_path}' lists no jobs")));
    }
    let threads: usize = p.num_or("threads", 1)?;
    let resume = p.flag("resume-journal");

    let mut cfg = SupervisorConfig::new(&journal, &ckpt_dir);
    cfg.checkpoint_every = p.num_or("checkpoint-every", 1)?;
    cfg.max_concurrent = p.num_or("max-concurrent", 1)?;
    cfg.threads_per_job = threads.max(1);
    cfg.cache_bytes = p.num_or::<usize>("cache-mb", 16)? << 20;
    cfg.memory_envelope = p.num_or::<u64>("memory-envelope", 0)?;
    cfg.traffic_envelope = p.num_or::<f64>("traffic-envelope", 0.0)?;
    cfg.max_retries = p.num_or("max-retries", 2)?;
    cfg.backoff_base = Duration::from_millis(p.num_or("backoff-ms", 100)?);
    cfg.backoff_cap = Duration::from_millis(p.num_or("backoff-cap-ms", 5000)?);
    cfg.metrics_path = p.opt_str("metrics-out").map(PathBuf::from);

    // One batch token serves Ctrl-C (first press: cooperative drain with
    // checkpoints; second press: immediate exit 130) for every job.
    let batch_token = CancelToken::new();
    cfg.cancel = Some(batch_token.clone());
    let _cancel_scope = crate::cancel::install(&batch_token);

    let faults = fault_directives_from_env()?;

    let sup = if resume {
        Supervisor::resume(cfg, cli_loader(), cli_factory(threads, faults))?
    } else {
        if journal.exists() {
            return Err(CliError::Input(format!(
                "journal '{}' already exists — rerun with --resume-journal to \
                 continue that batch, or remove it to start over",
                journal.display()
            )));
        }
        Supervisor::new(cfg, cli_loader(), cli_factory(threads, faults))?
    };

    // On resume the journal already holds jobs 0..known; submit only the
    // tail the crash never reached (list order == job id order).
    let known = sup.report().outcomes.len();
    if known > jobs.len() {
        return Err(CliError::Input(format!(
            "journal '{}' knows {known} jobs but '{jobs_path}' lists only {} — wrong jobs file?",
            journal.display(),
            jobs.len()
        )));
    }
    for job in jobs.into_iter().skip(known) {
        let tensor = job.tensor.clone();
        match sup.submit(job) {
            Ok(id) => println!("job {id} admitted ({tensor})"),
            Err(e @ StefError::Overloaded { .. }) => println!("job shed ({tensor}): {e}"),
            Err(other) => return Err(other.into()),
        }
    }
    if resume && known > 0 {
        println!("resumed journal {} ({known} jobs on record)", journal.display());
    }

    let report = sup.run_all();
    for (id, status) in &report.outcomes {
        match status {
            JobStatus::Done {
                attempts,
                iterations,
                final_fit,
            } => println!(
                "job {id} done: fit {final_fit:.6} after {iterations} iterations, {attempts} attempt(s)"
            ),
            JobStatus::Failed { attempts, error } => {
                println!("job {id} failed after {attempts} attempt(s): {error}")
            }
            JobStatus::Shed => println!("job {id} shed at admission"),
            JobStatus::Interrupted => println!(
                "job {id} interrupted (resume with --resume-journal)"
            ),
            other => println!("job {id} {other:?}"),
        }
    }
    println!(
        "batch: {} done, {} failed, {} shed, {} interrupted (journal {})",
        report.done(),
        report.failed(),
        report.shed(),
        report.interrupted(),
        journal.display()
    );
    match report.exit_error() {
        Some(e) => Err(e.into()),
        None => Ok(()),
    }
}

/// Maps jobs-file tensor specs through the shared `<tensor>` resolver
/// (`suite:` names or `.tns` paths).
pub(crate) fn cli_loader() -> TensorLoader {
    Arc::new(|spec: &str| {
        tensor_source::load(spec, SuiteScale::Small)
            .map(|(_, t)| t)
            .map_err(StefError::Input)
    })
}

/// Builds engines through the CLI registry, wrapping first attempts in
/// a [`FaultyEngine`] when `STEF_BATCH_FAULT` targets the job. Faults
/// apply to attempt 1 only, so a transient injection consumes exactly
/// one retry and the retry succeeds on a clean engine.
pub(crate) fn cli_factory(threads: usize, faults: HashMap<usize, Vec<Fault>>) -> EngineFactory {
    Arc::new(move |spec: &JobSpec, tensor, token: &CancelToken, at: JobAttempt| {
        let cfg = EngineConfig {
            rank: spec.rank,
            threads,
            accum: AccumStrategy::Auto,
            runtime: Runtime::Pool,
            memory_budget: 0,
            cancel: Some(token.clone()),
            simd: stef::SimdPolicy::Auto,
            numa: stef::NumaPolicy::from_env(),
        };
        let engine = engine_by_name(&spec.engine, tensor, &cfg)
            .map_err(|e| StefError::Input(e.to_string()))?;
        let injected = match faults.get(&at.job) {
            Some(list) if at.attempt == 1 => list.clone(),
            _ => return Ok(engine),
        };
        let needs_exec = injected
            .iter()
            .any(|f| matches!(f, Fault::WorkerPanicOnce { .. }));
        let mut faulty = FaultyEngine::new(engine, injected).with_cancel(token.clone());
        if needs_exec {
            faulty = faulty.with_executor(stef::Executor::new(Runtime::Scoped, 1));
        }
        Ok(Box::new(faulty))
    })
}

/// Parses `STEF_BATCH_FAULT` into per-job fault lists. Malformed
/// directives are usage errors — a fault harness that silently drops an
/// injection proves nothing.
pub(crate) fn fault_directives_from_env() -> Result<HashMap<usize, Vec<Fault>>, CliError> {
    let raw = std::env::var("STEF_BATCH_FAULT").unwrap_or_default();
    let mut by_job: HashMap<usize, Vec<Fault>> = HashMap::new();
    for (job, fault) in parse_fault_directives(&raw)
        .map_err(|e| CliError::Usage(format!("STEF_BATCH_FAULT: {e}")))?
    {
        by_job.entry(job).or_default().push(fault);
    }
    Ok(by_job)
}

/// Parses the jobs file: one `<tensor-spec> key=value...` job per line
/// (the shared [`parse_job_line`] grammar, also spoken by the `stef
/// serve` submit endpoint); blank lines and `#` comments are skipped.
fn parse_jobs_file(path: &str) -> Result<Vec<JobSpec>, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Input(format!("cannot read '{path}': {e}")))?;
    let mut jobs = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let job = parse_job_line(line, 16)
            .map_err(|e| CliError::Input(format!("{path}:{}: {e}", lineno + 1)))?;
        jobs.push(job);
    }
    Ok(jobs)
}

/// `--status`: fold the journal into one final state per job and print
/// it, without running anything. The CI soak asserts on these lines.
fn print_status(journal: &Path) -> Result<(), CliError> {
    let scan = scan_journal(journal)?;
    let mut state: BTreeMap<usize, String> = BTreeMap::new();
    for record in &scan.records {
        match record {
            JournalRecord::Submitted { id, spec, .. } => {
                state.insert(
                    *id,
                    format!("queued tensor={} engine={} rank={}", spec.tensor, spec.engine, spec.rank),
                );
            }
            JournalRecord::Shed { id, resource, .. } => {
                state.insert(*id, format!("shed resource={resource}"));
            }
            JournalRecord::Started { id, attempt } => {
                state.insert(*id, format!("running attempt={attempt}"));
            }
            JournalRecord::Checkpointed { id, iteration } => {
                state.insert(*id, format!("running checkpointed={iteration}"));
            }
            JournalRecord::Degraded { .. } => {}
            JournalRecord::Retrying { id, attempt, .. } => {
                state.insert(*id, format!("retrying attempt={attempt}"));
            }
            JournalRecord::Interrupted { id } => {
                state.insert(*id, "interrupted".into());
            }
            JournalRecord::Failed {
                id,
                attempts,
                error,
            } => {
                state.insert(*id, format!("failed attempts={attempts} error={error}"));
            }
            JournalRecord::Done {
                id,
                attempts,
                iterations,
                fit,
            } => {
                state.insert(
                    *id,
                    format!("done attempts={attempts} iterations={iterations} fit={fit:.6}"),
                );
            }
        }
    }
    for (id, s) in &state {
        println!("job {id} {s}");
    }
    if scan.torn_tail {
        println!("note: dropped a torn final record (crash mid-append)");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("stef-batch-cmd-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_jobs(dir: &Path, body: &str) -> String {
        let path = dir.join("jobs.tns-list");
        std::fs::write(&path, body).unwrap();
        path.to_str().unwrap().to_string()
    }

    #[test]
    fn jobs_file_parses_fields_and_comments() {
        let dir = tmp_dir("parse");
        let path = write_jobs(
            &dir,
            "# comment\n\nsuite:uber:tiny rank=4 iters=6 tol=1e-4 seed=9 engine=stef2 deadline=30\nsuite:nips:tiny\n",
        );
        let jobs = parse_jobs_file(&path).unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].rank, 4);
        assert_eq!(jobs[0].max_iters, 6);
        assert_eq!(jobs[0].seed, 9);
        assert_eq!(jobs[0].engine, "stef2");
        assert_eq!(jobs[0].deadline, Some(Duration::from_secs(30)));
        assert_eq!(jobs[1].tensor, "suite:nips:tiny");
        assert_eq!(jobs[1].engine, "stef");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_job_fields_are_input_errors() {
        let dir = tmp_dir("badfield");
        for body in ["suite:uber:tiny rank=x\n", "suite:uber:tiny magic=1\n", "suite:uber:tiny deadline=-2\n"] {
            let path = write_jobs(&dir, body);
            let err = parse_jobs_file(&path).expect_err(body);
            assert_eq!(err.exit_code(), 3, "{body}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_runs_jobs_and_status_reports_them() {
        let dir = tmp_dir("run");
        let jobs = write_jobs(&dir, "suite:uber:tiny rank=3 iters=3\nsuite:nips:tiny rank=3 iters=3\n");
        let journal = dir.join("b.journal");
        let journal_str = journal.to_str().unwrap().to_string();
        let ckpts = dir.join("ckpts");
        super::run(&argv(&[
            &jobs,
            "--journal",
            &journal_str,
            "--ckpt-dir",
            ckpts.to_str().unwrap(),
        ]))
        .unwrap();
        let scan = scan_journal(&journal).unwrap();
        let done = scan
            .records
            .iter()
            .filter(|r| matches!(r, JournalRecord::Done { .. }))
            .count();
        assert_eq!(done, 2, "both jobs journaled done");
        super::print_status(&journal).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn existing_journal_without_resume_flag_is_refused() {
        let dir = tmp_dir("refuse");
        let jobs = write_jobs(&dir, "suite:uber:tiny rank=3 iters=2\n");
        let journal = dir.join("b.journal");
        let journal_str = journal.to_str().unwrap().to_string();
        let ckpts = dir.join("ckpts");
        let args = argv(&[
            &jobs,
            "--journal",
            &journal_str,
            "--ckpt-dir",
            ckpts.to_str().unwrap(),
        ]);
        super::run(&args).unwrap();
        let err = super::run(&args).expect_err("existing journal must be refused");
        assert_eq!(err.exit_code(), 3, "{err}");
        assert!(err.to_string().contains("--resume-journal"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_flag_completes_a_submitted_but_unrun_batch() {
        let dir = tmp_dir("resume");
        let jobs = write_jobs(&dir, "suite:uber:tiny rank=3 iters=3\n");
        let journal = dir.join("b.journal");
        let journal_str = journal.to_str().unwrap().to_string();
        let ckpts = dir.join("ckpts");
        // Fabricate a crashed batch: submitted, never run.
        {
            let mut cfg = SupervisorConfig::new(&journal, &ckpts);
            cfg.backoff_base = Duration::from_millis(1);
            let sup = Supervisor::new(cfg, cli_loader(), cli_factory(1, HashMap::new())).unwrap();
            sup.submit(JobSpec {
                tensor: "suite:uber:tiny".into(),
                rank: 3,
                max_iters: 3,
                tol: 1e-5,
                seed: 42,
                engine: "stef".into(),
                deadline: None,
                model: None,
            })
            .unwrap();
        }
        super::run(&argv(&[
            &jobs,
            "--journal",
            &journal_str,
            "--ckpt-dir",
            ckpts.to_str().unwrap(),
            "--resume-journal",
        ]))
        .unwrap();
        let scan = scan_journal(&journal).unwrap();
        assert!(
            scan.records
                .iter()
                .any(|r| matches!(r, JournalRecord::Done { id: 0, .. })),
            "resumed job must finish"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn overloaded_batch_exits_with_code_7_but_finishes_admitted_jobs() {
        let dir = tmp_dir("shed");
        let jobs = write_jobs(&dir, "suite:uber:tiny rank=3 iters=3\nsuite:uber:tiny rank=3 iters=3\n");
        let journal = dir.join("b.journal");
        let journal_str = journal.to_str().unwrap().to_string();
        let ckpts = dir.join("ckpts");
        // Size the envelope for exactly one copy of this job.
        let (_, t) = tensor_source::load("suite:uber:tiny", SuiteScale::Small).unwrap();
        let price = stef::price_job(&t, 3, 1, 16 << 20);
        let envelope = (price.mem_bytes + price.mem_bytes / 2).to_string();
        let err = super::run(&argv(&[
            &jobs,
            "--journal",
            &journal_str,
            "--ckpt-dir",
            ckpts.to_str().unwrap(),
            "--memory-envelope",
            &envelope,
        ]))
        .expect_err("a shed job must surface in the exit code");
        assert_eq!(err.exit_code(), 7, "{err}");
        let scan = scan_journal(&journal).unwrap();
        assert!(scan.records.iter().any(|r| matches!(r, JournalRecord::Done { id: 0, .. })));
        assert!(scan.records.iter().any(|r| matches!(r, JournalRecord::Shed { id: 1, .. })));
        std::fs::remove_dir_all(&dir).ok();
    }
}
