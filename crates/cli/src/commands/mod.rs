//! Subcommand implementations.

pub mod analyze;
pub mod bench;
pub mod decompose;
pub mod generate;
pub mod list;
pub mod validate;

use stef::MttkrpEngine;

/// Builds an engine by CLI name.
pub fn engine_by_name(
    name: &str,
    tensor: &sptensor::CooTensor,
    rank: usize,
    threads: usize,
) -> Result<Box<dyn MttkrpEngine>, String> {
    let mut opts = stef::StefOptions::new(rank);
    opts.num_threads = threads;
    Ok(match name {
        "stef" => Box::new(stef::Stef::prepare(tensor, opts)),
        "stef2" => Box::new(stef::Stef2::prepare(tensor, opts)),
        "splatt-1" => Box::new(baselines::Splatt::prepare(
            tensor,
            baselines::SplattVariant::One,
            rank,
            threads,
        )),
        "splatt-2" => Box::new(baselines::Splatt::prepare(
            tensor,
            baselines::SplattVariant::Two,
            rank,
            threads,
        )),
        "splatt-all" => Box::new(baselines::Splatt::prepare(
            tensor,
            baselines::SplattVariant::All,
            rank,
            threads,
        )),
        "adatm" => Box::new(baselines::AdaTm::prepare(tensor, rank, threads)),
        "alto" => Box::new(baselines::Alto::prepare(tensor, rank, threads)),
        "taco" => Box::new(baselines::TacoLike::prepare(tensor, rank, threads)),
        "hicoo" => Box::new(baselines::HiCoo::prepare(tensor, rank, threads)),
        "reference" => Box::new(stef::ReferenceEngine::new(tensor.clone())),
        other => {
            return Err(format!(
                "unknown engine '{other}' (stef stef2 splatt-1 splatt-2 splatt-all adatm alto taco hicoo reference)"
            ))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::uniform_tensor;

    #[test]
    fn every_engine_name_resolves() {
        let t = uniform_tensor(&[8, 8, 8], 100, 1);
        for name in [
            "stef",
            "stef2",
            "splatt-1",
            "splatt-2",
            "splatt-all",
            "adatm",
            "alto",
            "taco",
            "hicoo",
            "reference",
        ] {
            let e = engine_by_name(name, &t, 2, 1).unwrap();
            assert_eq!(e.dims(), t.dims());
        }
    }

    #[test]
    fn unknown_engine_errors() {
        let t = uniform_tensor(&[4, 4], 10, 2);
        assert!(engine_by_name("magic", &t, 2, 1).is_err());
    }
}
