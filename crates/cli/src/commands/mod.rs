//! Subcommand implementations.

pub mod analyze;
pub mod bench;
pub mod decompose;
pub mod generate;
pub mod list;
pub mod validate;

use stef::{AccumStrategy, MttkrpEngine, Runtime};

/// Parses a `--accum` value. Errors are usage errors (exit code 2).
pub fn accum_by_name(name: &str) -> Result<AccumStrategy, String> {
    match name {
        "auto" => Ok(AccumStrategy::Auto),
        "privatized" => Ok(AccumStrategy::Privatized),
        "atomic" => Ok(AccumStrategy::Atomic),
        other => Err(format!(
            "unknown --accum '{other}' (auto|privatized|atomic)"
        )),
    }
}

/// Parses a `--runtime` value. Errors are usage errors (exit code 2).
pub fn runtime_by_name(name: &str) -> Result<Runtime, String> {
    match name {
        "pool" => Ok(Runtime::Pool),
        "scoped" => Ok(Runtime::Scoped),
        other => Err(format!("unknown --runtime '{other}' (pool|scoped)")),
    }
}

/// Builds an engine by CLI name. `accum` applies to the STeF engines;
/// baselines resolve output conflicts their own way and ignore it.
pub fn engine_by_name(
    name: &str,
    tensor: &sptensor::CooTensor,
    rank: usize,
    threads: usize,
    accum: AccumStrategy,
    runtime: Runtime,
) -> Result<Box<dyn MttkrpEngine>, String> {
    let mut opts = stef::StefOptions::new(rank);
    opts.num_threads = threads;
    opts.accum = accum;
    opts.runtime = runtime;
    Ok(match name {
        "stef" => Box::new(stef::Stef::prepare(tensor, opts)),
        "stef2" => Box::new(stef::Stef2::prepare(tensor, opts)),
        "splatt-1" => Box::new(baselines::Splatt::prepare(
            tensor,
            baselines::SplattVariant::One,
            rank,
            threads,
        )),
        "splatt-2" => Box::new(baselines::Splatt::prepare(
            tensor,
            baselines::SplattVariant::Two,
            rank,
            threads,
        )),
        "splatt-all" => Box::new(baselines::Splatt::prepare(
            tensor,
            baselines::SplattVariant::All,
            rank,
            threads,
        )),
        "adatm" => Box::new(baselines::AdaTm::prepare(tensor, rank, threads)),
        "alto" => Box::new(baselines::Alto::prepare(tensor, rank, threads)),
        "taco" => Box::new(baselines::TacoLike::prepare(tensor, rank, threads)),
        "hicoo" => Box::new(baselines::HiCoo::prepare(tensor, rank, threads)),
        "reference" => Box::new(stef::ReferenceEngine::new(tensor.clone())),
        other => {
            return Err(format!(
                "unknown engine '{other}' (stef stef2 splatt-1 splatt-2 splatt-all adatm alto taco hicoo reference)"
            ))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::uniform_tensor;

    #[test]
    fn every_engine_name_resolves() {
        let t = uniform_tensor(&[8, 8, 8], 100, 1);
        for name in [
            "stef",
            "stef2",
            "splatt-1",
            "splatt-2",
            "splatt-all",
            "adatm",
            "alto",
            "taco",
            "hicoo",
            "reference",
        ] {
            let e = engine_by_name(name, &t, 2, 1, AccumStrategy::Auto, Runtime::Pool).unwrap();
            assert_eq!(e.dims(), t.dims());
        }
    }

    #[test]
    fn unknown_engine_errors() {
        let t = uniform_tensor(&[4, 4], 10, 2);
        assert!(engine_by_name("magic", &t, 2, 1, AccumStrategy::Auto, Runtime::Pool).is_err());
    }

    #[test]
    fn runtime_names_parse() {
        assert_eq!(runtime_by_name("pool").unwrap(), Runtime::Pool);
        assert_eq!(runtime_by_name("scoped").unwrap(), Runtime::Scoped);
        assert!(runtime_by_name("magic").is_err());
    }

    #[test]
    fn accum_names_parse() {
        assert_eq!(accum_by_name("auto").unwrap(), AccumStrategy::Auto);
        assert_eq!(
            accum_by_name("privatized").unwrap(),
            AccumStrategy::Privatized
        );
        assert_eq!(accum_by_name("atomic").unwrap(), AccumStrategy::Atomic);
        assert!(accum_by_name("magic").is_err());
    }
}
