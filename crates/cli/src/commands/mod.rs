//! Subcommand implementations.

pub mod analyze;
pub mod batch;
pub mod bench;
pub mod decompose;
pub mod generate;
pub mod list;
pub mod serve;
pub mod top;
pub mod validate;

use crate::error::CliError;
use stef::{AccumStrategy, CancelToken, EngineChoice, MttkrpEngine, NumaPolicy, Runtime, SimdPolicy};

/// Parses a `--simd` value and applies it process-wide (all engines in
/// the process share the kernel dispatch selection). A forced path that
/// the CPU cannot run degrades to the detected one with a warning from
/// the dispatch layer; an unrecognized name is a usage error (exit
/// code 2).
pub fn apply_simd_flag(name: &str) -> Result<SimdPolicy, String> {
    let policy = SimdPolicy::parse(name)
        .ok_or_else(|| format!("unknown --simd '{name}' (auto|scalar|avx2|neon)"))?;
    linalg::simd::apply(policy);
    Ok(policy)
}

/// Parses a `--accum` value. Errors are usage errors (exit code 2).
pub fn accum_by_name(name: &str) -> Result<AccumStrategy, String> {
    match name {
        "auto" => Ok(AccumStrategy::Auto),
        "privatized" => Ok(AccumStrategy::Privatized),
        "atomic" => Ok(AccumStrategy::Atomic),
        other => Err(format!(
            "unknown --accum '{other}' (auto|privatized|atomic)"
        )),
    }
}

/// Parses a `--runtime` value. Errors are usage errors (exit code 2).
pub fn runtime_by_name(name: &str) -> Result<Runtime, String> {
    match name {
        "pool" => Ok(Runtime::Pool),
        "scoped" => Ok(Runtime::Scoped),
        other => Err(format!("unknown --runtime '{other}' (pool|scoped)")),
    }
}

/// Parses a `--numa` value. Errors are usage errors (exit code 2).
pub fn numa_by_name(name: &str) -> Result<NumaPolicy, String> {
    NumaPolicy::parse(name).ok_or_else(|| format!("unknown --numa '{name}' (auto|off)"))
}

/// Engine construction parameters shared by the subcommands. The
/// budget and cancellation fields apply to the STeF engines; baselines
/// manage their own memory and ignore them.
pub struct EngineConfig {
    pub rank: usize,
    pub threads: usize,
    pub accum: AccumStrategy,
    pub runtime: Runtime,
    /// Soft memory budget in bytes for workspace + memoized partials
    /// (0 = unlimited). The engine degrades its plan to fit; only an
    /// infeasible minimal plan is an error.
    pub memory_budget: usize,
    /// Cooperative cancellation token, installed on the engine's
    /// executor so in-flight kernels observe `--timeout`/Ctrl-C.
    pub cancel: Option<CancelToken>,
    /// SIMD kernel-path policy (`--simd`). Applied process-wide when a
    /// STeF engine is prepared; `Auto` keeps the current selection.
    pub simd: SimdPolicy,
    /// NUMA worker-placement policy (`--numa`) for the STeF-owned
    /// executors; baselines run their own pools and ignore it.
    pub numa: NumaPolicy,
}

impl EngineConfig {
    pub fn new(rank: usize, threads: usize) -> Self {
        EngineConfig {
            rank,
            threads,
            accum: AccumStrategy::Auto,
            runtime: Runtime::Pool,
            memory_budget: 0,
            cancel: None,
            simd: SimdPolicy::Auto,
            numa: NumaPolicy::from_env(),
        }
    }
}

/// Builds an engine by CLI name. `accum` applies to the STeF engines;
/// baselines resolve output conflicts their own way and ignore it.
pub fn engine_by_name(
    name: &str,
    tensor: &sptensor::CooTensor,
    cfg: &EngineConfig,
) -> Result<Box<dyn MttkrpEngine>, CliError> {
    let EngineConfig { rank, threads, .. } = *cfg;
    let mut opts = stef::StefOptions::new(rank);
    opts.num_threads = threads;
    opts.accum = cfg.accum;
    opts.runtime = cfg.runtime;
    opts.memory_budget = cfg.memory_budget;
    opts.cancel = cfg.cancel.clone();
    opts.simd = cfg.simd;
    opts.numa = cfg.numa;
    Ok(match name {
        "stef" | "csf" => Box::new(stef::Stef::try_prepare(tensor, opts)?),
        "alto" => {
            opts.engine = EngineChoice::Alto;
            Box::new(stef::build_engine(tensor, opts)?)
        }
        "auto" => {
            opts.engine = EngineChoice::Auto;
            Box::new(stef::build_engine(tensor, opts)?)
        }
        "stef2" => Box::new(stef::Stef2::try_prepare(tensor, opts)?),
        "splatt-1" => Box::new(baselines::Splatt::prepare(
            tensor,
            baselines::SplattVariant::One,
            rank,
            threads,
        )),
        "splatt-2" => Box::new(baselines::Splatt::prepare(
            tensor,
            baselines::SplattVariant::Two,
            rank,
            threads,
        )),
        "splatt-all" => Box::new(baselines::Splatt::prepare(
            tensor,
            baselines::SplattVariant::All,
            rank,
            threads,
        )),
        "adatm" => Box::new(baselines::AdaTm::prepare(tensor, rank, threads)),
        "alto-baseline" => Box::new(baselines::Alto::prepare(tensor, rank, threads)),
        "taco" => Box::new(baselines::TacoLike::prepare(tensor, rank, threads)),
        "hicoo" => Box::new(baselines::HiCoo::prepare(tensor, rank, threads)),
        "reference" => Box::new(stef::ReferenceEngine::new(tensor.clone())),
        other => {
            return Err(CliError::Usage(format!(
                "unknown engine '{other}' (stef csf stef2 alto auto splatt-1 splatt-2 splatt-all adatm alto-baseline taco hicoo reference)"
            )))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::uniform_tensor;

    #[test]
    fn every_engine_name_resolves() {
        let t = uniform_tensor(&[8, 8, 8], 100, 1);
        for name in [
            "stef",
            "csf",
            "stef2",
            "alto",
            "auto",
            "splatt-1",
            "splatt-2",
            "splatt-all",
            "adatm",
            "alto-baseline",
            "taco",
            "hicoo",
            "reference",
        ] {
            let e = engine_by_name(name, &t, &EngineConfig::new(2, 1)).unwrap();
            assert_eq!(e.dims(), t.dims());
        }
    }

    #[test]
    fn unknown_engine_errors() {
        let t = uniform_tensor(&[4, 4], 10, 2);
        let err = match engine_by_name("magic", &t, &EngineConfig::new(2, 1)) {
            Err(e) => e,
            Ok(_) => panic!("unknown engine must fail"),
        };
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn infeasible_budget_is_an_input_error() {
        let t = uniform_tensor(&[8, 8, 8], 100, 1);
        let mut cfg = EngineConfig::new(4, 2);
        cfg.memory_budget = 1; // nothing fits in one byte
        let err = match engine_by_name("stef", &t, &cfg) {
            Err(e) => e,
            Ok(_) => panic!("one-byte budget must be rejected"),
        };
        assert_eq!(err.exit_code(), 3, "{err}");
    }

    #[test]
    fn runtime_names_parse() {
        assert_eq!(runtime_by_name("pool").unwrap(), Runtime::Pool);
        assert_eq!(runtime_by_name("scoped").unwrap(), Runtime::Scoped);
        assert!(runtime_by_name("magic").is_err());
    }

    #[test]
    fn numa_names_parse() {
        assert_eq!(numa_by_name("auto").unwrap(), NumaPolicy::Auto);
        assert_eq!(numa_by_name("off").unwrap(), NumaPolicy::Off);
        assert!(numa_by_name("magic").is_err());
    }

    #[test]
    fn alto_name_builds_the_linearized_engine() {
        // "alto" is the first-class linearized engine; the differential
        // oracle stays reachable as "alto-baseline".
        let t = uniform_tensor(&[8, 8, 8], 100, 1);
        let e = engine_by_name("alto", &t, &EngineConfig::new(2, 1)).unwrap();
        assert_eq!(e.name(), "alto");
        let b = engine_by_name("alto-baseline", &t, &EngineConfig::new(2, 1)).unwrap();
        assert_ne!(b.name(), "alto");
    }

    #[test]
    fn simd_names_parse_and_apply() {
        use stef::SimdPath;
        assert_eq!(apply_simd_flag("auto").unwrap(), SimdPolicy::Auto);
        assert_eq!(
            apply_simd_flag("scalar").unwrap(),
            SimdPolicy::Force(SimdPath::Scalar)
        );
        // Forcing an ISA always parses; an unavailable one degrades to
        // the detected path inside the dispatch layer instead of
        // erroring, so both spellings are accepted here.
        assert_eq!(
            apply_simd_flag("avx2").unwrap(),
            SimdPolicy::Force(SimdPath::Avx2)
        );
        let err = apply_simd_flag("sse9").unwrap_err();
        assert!(err.contains("unknown --simd"), "{err}");
        // Leave the process on the detected path for other tests.
        linalg::simd::apply(SimdPolicy::Force(linalg::simd::detect()));
    }

    #[test]
    fn accum_names_parse() {
        assert_eq!(accum_by_name("auto").unwrap(), AccumStrategy::Auto);
        assert_eq!(
            accum_by_name("privatized").unwrap(),
            AccumStrategy::Privatized
        );
        assert_eq!(accum_by_name("atomic").unwrap(), AccumStrategy::Atomic);
        assert!(accum_by_name("magic").is_err());
    }
}
