//! Typed CLI errors with distinct process exit codes, so scripts can
//! tell "you called me wrong" from "your data is bad" from "the
//! decomposition failed numerically" without parsing stderr.

use stef::{CheckpointError, StefError};

/// Everything the `stef` binary can fail with.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line: unknown flag, missing argument, invalid value.
    /// Exit code 2.
    Usage(String),
    /// The input tensor could not be loaded or is invalid. Exit code 3.
    Input(String),
    /// The decomposition failed numerically beyond recovery. Exit code 4.
    Numerical(StefError),
    /// A checkpoint could not be saved, loaded, or matched to the run.
    /// Exit code 5.
    Checkpoint(CheckpointError),
    /// The run was cancelled cooperatively — deadline expiry (`--timeout`)
    /// or Ctrl-C. Distinct from numerical failure so scripts can retry
    /// with `--resume`. Exit code 6.
    Cancelled(StefError),
    /// The batch supervisor shed work at admission: the job's predicted
    /// resource price did not fit the configured envelope. Distinct from
    /// numerical failure so schedulers can resubmit when load drains.
    /// Exit code 7.
    Overloaded(StefError),
}

impl CliError {
    /// The process exit code for this error class.
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Input(_) => 3,
            CliError::Numerical(_) => 4,
            CliError::Checkpoint(_) => 5,
            CliError::Cancelled(_) => 6,
            CliError::Overloaded(_) => 7,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Input(msg) => write!(f, "{msg}"),
            CliError::Numerical(e) => write!(f, "{e}"),
            CliError::Checkpoint(e) => write!(f, "{e}"),
            CliError::Cancelled(e) => write!(f, "{e}"),
            CliError::Overloaded(e) => write!(f, "{e}"),
        }
    }
}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Usage(msg)
    }
}

impl From<StefError> for CliError {
    fn from(e: StefError) -> Self {
        match e {
            // Checkpoint trouble gets its own exit code even when it
            // surfaces through the decomposition driver.
            StefError::Checkpoint(c) => CliError::Checkpoint(c),
            StefError::Input(msg) => CliError::Input(msg),
            StefError::Tns(t) => CliError::Input(t.to_string()),
            // A budget the minimal plan cannot fit is a configuration
            // problem with the invocation, not a numerical failure.
            e @ StefError::BudgetExceeded { .. } => CliError::Input(e.to_string()),
            e @ StefError::Cancelled { .. } => CliError::Cancelled(e),
            e @ StefError::Overloaded { .. } => CliError::Overloaded(e),
            // A future-version or foreign-endianness file is checkpoint
            // trouble — same exit class as corruption, different message.
            StefError::CheckpointVersion {
                found,
                supported,
                detail,
            } => CliError::Checkpoint(CheckpointError::Version {
                found,
                supported,
                detail,
            }),
            other => CliError::Numerical(other),
        }
    }
}

impl From<CheckpointError> for CliError {
    fn from(e: CheckpointError) -> Self {
        CliError::Checkpoint(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct() {
        let codes = [
            CliError::Usage("u".into()).exit_code(),
            CliError::Input("i".into()).exit_code(),
            CliError::Numerical(StefError::Input("n".into())).exit_code(),
            CliError::Checkpoint(CheckpointError::Corrupt {
                reason: "c".into(),
            })
            .exit_code(),
            CliError::Cancelled(StefError::Cancelled {
                iteration: 1,
                deadline: true,
                checkpoint_iteration: None,
            })
            .exit_code(),
            CliError::Overloaded(StefError::Overloaded {
                resource: "memory",
                required: 1.0,
                outstanding: 1.0,
                envelope: 1.0,
            })
            .exit_code(),
        ];
        let mut unique = codes.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), codes.len(), "{codes:?}");
        assert!(codes.iter().all(|&c| c != 0 && c != 1));
    }

    #[test]
    fn stef_errors_map_to_the_right_class() {
        let e: CliError = StefError::Diverged {
            iteration: 3,
            drops: 3,
            last_fit: 0.1,
        }
        .into();
        assert_eq!(e.exit_code(), 4);
        let e: CliError = StefError::Checkpoint(CheckpointError::Corrupt {
            reason: "truncated".into(),
        })
        .into();
        assert_eq!(e.exit_code(), 5);
        let e: CliError = StefError::Input("empty tensor".into()).into();
        assert_eq!(e.exit_code(), 3);
        let e: CliError = StefError::Cancelled {
            iteration: 2,
            deadline: false,
            checkpoint_iteration: Some(2),
        }
        .into();
        assert_eq!(e.exit_code(), 6);
        let e: CliError = StefError::WorkerPanic {
            iteration: 1,
            mode: Some(0),
            message: "boom".into(),
        }
        .into();
        assert_eq!(e.exit_code(), 4);
        let e: CliError = StefError::BudgetExceeded {
            required: 4096,
            budget: 100,
        }
        .into();
        assert_eq!(e.exit_code(), 3);
        let e: CliError = StefError::Overloaded {
            resource: "traffic",
            required: 2.0,
            outstanding: 9.0,
            envelope: 10.0,
        }
        .into();
        assert_eq!(e.exit_code(), 7);
        let e: CliError = StefError::CheckpointVersion {
            found: 9,
            supported: 1,
            detail: "newer build".into(),
        }
        .into();
        assert_eq!(e.exit_code(), 5);
    }
}
