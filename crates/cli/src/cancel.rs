//! Process-level cancellation plumbing: Ctrl-C, SIGTERM and
//! `--timeout`.
//!
//! The handler itself only flips an `AtomicBool` (the one operation
//! that is async-signal-safe); a detached watchdog thread polls the
//! flag and cancels whichever [`CancelToken`] is currently installed.
//! Deadlines need no thread at all — the token carries its own expiry
//! and every cooperative checkpoint in the library consults it.
//!
//! SIGTERM rides the same ladder as SIGINT: the first signal of either
//! kind cancels cooperatively (so a supervisor's `kill <pid>` gets the
//! same checkpoint-and-drain behavior an interactive Ctrl-C does — this
//! is how `stef serve` drains), and a **second** signal escalates: once
//! the watchdog has delivered a cooperative cancel, the next
//! SIGINT/SIGTERM calls `_exit(130)` straight from the handler — no
//! flushing, no checkpointing, just out. This is the escape hatch for a
//! run whose cancel path is itself wedged.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, Once, OnceLock};
use std::time::Duration;
use stef::CancelToken;

/// Set from the signal handler; drained by the watchdog.
static SIGNAL_SEEN: AtomicBool = AtomicBool::new(false);

/// Set by the watchdog after it delivers a cooperative cancel; a signal
/// arriving while this is up skips cooperation and exits immediately.
static ESCALATE: AtomicBool = AtomicBool::new(false);

/// The hard-interrupt exit code: 128 + SIGINT, the convention shells
/// use for signal deaths.
pub const HARD_INTERRUPT_EXIT: i32 = 130;

/// The token the watchdog cancels when Ctrl-C arrives.
static CURRENT: OnceLock<Mutex<Option<CancelToken>>> = OnceLock::new();

/// One-time signal-handler + watchdog installation.
static INSTALL: Once = Once::new();

const SIGINT: i32 = 2;
const SIGUSR1: i32 = 10;
const SIGTERM: i32 = 15;

extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    /// Raw process exit — async-signal-safe, unlike `std::process::exit`
    /// (which runs atexit handlers and may take locks).
    fn _exit(code: i32) -> !;
}

extern "C" fn on_signal(_signum: i32) {
    // Second interrupt — in either order: SIGINT then SIGTERM, two
    // SIGTERMs, etc. — or one arriving after the watchdog already
    // cancelled cooperatively: give up on cooperation and exit now.
    // Both loads and `_exit` are async-signal-safe.
    if SIGNAL_SEEN.swap(true, Ordering::Relaxed) || ESCALATE.load(Ordering::Relaxed) {
        unsafe { _exit(HARD_INTERRUPT_EXIT) }
    }
}

extern "C" fn on_sigusr1(_signum: i32) {
    // One relaxed atomic store — async-signal-safe. The actual file
    // write happens on a normal thread: the watchdog below, or the
    // serve accept loop's idle poll, whichever sees the flag first.
    stef::flight::request_dump();
}

fn current() -> &'static Mutex<Option<CancelToken>> {
    CURRENT.get_or_init(|| Mutex::new(None))
}

/// Guard that scopes a token as the process's interruptible run: while
/// it lives, Ctrl-C cancels `token` (and `stef`'s global executor
/// observes it for dense fan-outs). Dropping the guard detaches both,
/// so later runs in the same process start clean.
pub struct CancelScope {
    _private: (),
}

impl Drop for CancelScope {
    fn drop(&mut self) {
        stef::set_global_cancel(None);
        match current().lock() {
            Ok(mut slot) => *slot = None,
            Err(poisoned) => *poisoned.into_inner() = None,
        }
        // A finished run resets the interrupt state so a later run in
        // the same process gets a fresh two-stage Ctrl-C.
        SIGNAL_SEEN.store(false, Ordering::Relaxed);
        ESCALATE.store(false, Ordering::Relaxed);
    }
}

/// Installs `token` as the run's cancellation token: registers the
/// SIGINT/SIGTERM handlers (once per process), points the watchdog at
/// the token, and mirrors it onto the global executor so `linalg::par`
/// fan-outs also observe it. Returns a guard that undoes the
/// installation on drop.
pub fn install(token: &CancelToken) -> CancelScope {
    match current().lock() {
        Ok(mut slot) => *slot = Some(token.clone()),
        Err(poisoned) => *poisoned.into_inner() = Some(token.clone()),
    }
    stef::set_global_cancel(Some(token.clone()));
    INSTALL.call_once(|| {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
            signal(SIGUSR1, on_sigusr1);
        }
        std::thread::Builder::new()
            .name("stef-cancel-watchdog".into())
            .spawn(watchdog)
            .ok(); // if the spawn fails, --timeout still works
    });
    CancelScope { _private: () }
}

fn watchdog() {
    loop {
        std::thread::sleep(Duration::from_millis(50));
        // SIGUSR1 service for non-serve commands (the serve accept
        // loop polls the same one-shot flag at a faster cadence, so
        // under a running daemon it usually wins the swap).
        if stef::flight::take_dump_request() {
            if let Some(path) = stef::flight::dump("sigusr1") {
                stef::telemetry::info("cancel", || {
                    format!("flight recorder dumped to {}", path.display())
                });
            }
        }
        if SIGNAL_SEEN.load(Ordering::Relaxed) && !ESCALATE.load(Ordering::Relaxed) {
            let token = match current().lock() {
                Ok(slot) => slot.clone(),
                Err(poisoned) => poisoned.into_inner().clone(),
            };
            match token {
                Some(t) => {
                    stef::telemetry::warn("cancel", || {
                        "interrupt received; cancelling (checkpoint will be written if \
                         configured) — signal again to exit immediately"
                            .to_string()
                    });
                    t.cancel();
                    // From here on any further SIGINT/SIGTERM
                    // hard-exits from the handler itself; leave
                    // SIGNAL_SEEN up so the handler's swap also sees
                    // "already interrupted".
                    ESCALATE.store(true, Ordering::Relaxed);
                }
                // No run in flight: restore default Ctrl-C behavior.
                None => std::process::exit(HARD_INTERRUPT_EXIT),
            }
        }
    }
}
