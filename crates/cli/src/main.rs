//! `stef` — command-line front end for the STeF reproduction.
//!
//! ```text
//! stef generate <suite-name> [-o out.tns] [--scale tiny|small|full]
//! stef analyze  <tensor>     [--rank R] [--cache-mb N]
//! stef decompose <tensor>    [--rank R] [--iters N] [--tol T]
//!                            [--engine NAME] [--threads N] [--out DIR] [--seed S]
//!                            [--accum auto|privatized|atomic]
//! stef bench    <tensor>     [--rank R] [--reps N] [--threads N]
//!                            [--accum auto|privatized|atomic]
//! stef validate <tensor>    [--rank R] [--engine NAME] [--tol T]
//! stef list
//! ```
//!
//! `<tensor>` is either a FROSTT `.tns` path or `suite:<name>` for a
//! synthetic analogue of the paper's tensor suite (see `stef list`).

mod args;
mod cancel;
mod commands;
mod error;
mod tensor_source;

use error::CliError;
use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            // Post-mortem breadcrumb: anything that actually *ran*
            // (usage errors didn't) leaves the flight recorder's last
            // events on disk next to the error. No events → no file.
            if e.exit_code() != 2 {
                if let Some(path) = stef::flight::dump("error") {
                    eprintln!("flight recorder: {}", path.display());
                }
            }
            ExitCode::from(e.exit_code())
        }
    }
}

fn run(argv: &[String]) -> Result<(), CliError> {
    let Some(cmd) = argv.first() else {
        print_usage();
        return Err(CliError::Usage("missing subcommand".into()));
    };
    let rest = &argv[1..];
    match cmd.as_str() {
        "generate" => commands::generate::run(rest).map_err(CliError::from),
        "analyze" => commands::analyze::run(rest).map_err(CliError::from),
        "decompose" => commands::decompose::run(rest),
        "batch" => commands::batch::run(rest),
        "serve" => commands::serve::run(rest),
        "top" => commands::top::run(rest),
        "bench" => commands::bench::run(rest),
        "list" => commands::list::run(rest).map_err(CliError::from),
        "validate" => commands::validate::run(rest),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => {
            print_usage();
            Err(CliError::Usage(format!("unknown subcommand '{other}'")))
        }
    }
}

fn print_usage() {
    eprintln!(
        "stef — sparsity-aware tensor decomposition (IPDPS 2022 reproduction)\n\
         \n\
         USAGE:\n\
         \u{20}stef generate <suite-name> [-o out.tns] [--scale tiny|small|full]\n\
         \u{20}stef analyze  <tensor> [--rank R] [--cache-mb N]\n\
         \u{20}stef decompose <tensor> [--rank R] [--iters N] [--tol T]\n\
         \u{20}                        [--engine NAME] [--threads N] [--out DIR] [--seed S]\n\
         \u{20}                        [--accum auto|privatized|atomic] [--simd PATH] [--numa auto|off]\n\
         \u{20}                        [--checkpoint FILE] [--checkpoint-every N] [--resume FILE]\n\
         \u{20}                        [--timeout SECS] [--memory-budget BYTES]\n\
         \u{20}                        [--metrics-out FILE.jsonl] [--trace-out FILE.json] [--verbose]\n\
         \u{20}stef batch    <jobs-list> [--journal FILE] [--ckpt-dir DIR] [--resume-journal]\n\
         \u{20}                          [--max-concurrent N] [--threads N] [--max-retries N]\n\
         \u{20}                          [--memory-envelope BYTES] [--traffic-envelope ELEMS]\n\
         \u{20}                          [--checkpoint-every N] [--metrics-out FILE.jsonl] [--status]\n\
         \u{20}stef serve    [--addr HOST:PORT] [--journal FILE] [--ckpt-dir DIR]\n\
         \u{20}              [--max-concurrent N] [--threads N] [--memory-envelope BYTES]\n\
         \u{20}              [--traffic-envelope ELEMS] [--default-rank R] [--handler-threads N]\n\
         \u{20}              [--accept-backlog N] [--io-timeout-ms N] [--drain-grace-ms N]\n\
         \u{20}              [--max-requests-per-conn N] [--max-conn-lifetime-ms N]\n\
         \u{20}              [--metrics-flush-ms N] [--drift-threshold F]\n\
         \u{20}stef top      [--addr HOST:PORT] [--watch-ms N] [--count N]\n\
         \u{20}stef bench    <tensor> [--rank R] [--reps N] [--threads N] [--accum auto|privatized|atomic]\n\
         \u{20}                       [--timeout SECS]\n\
         \u{20}stef validate <tensor> [--rank R] [--engine NAME] [--tol T] [--accum auto|privatized|atomic]\n\
         \u{20}                       [--timeout SECS]\n\
         \u{20}stef list\n\
         \n\
         <tensor> = path to a .tns file, or suite:<name> (see `stef list`).\n\
         engines: stef(=csf) alto auto stef2 splatt-1 splatt-2 splatt-all adatm\n\
         \u{20}        alto-baseline taco reference (`stef list` describes each)\n\
         exit codes: 0 ok, 2 usage, 3 input, 4 numerical, 5 checkpoint, 6 cancelled,\n\
         \u{20}           7 overloaded (batch admission shed), 130 hard interrupt\n\
         Ctrl-C and --timeout cancel cooperatively; decompose writes a checkpoint first.\n\
         A second Ctrl-C skips cooperation and exits immediately with code 130.\n\
         batch: <jobs-list> holds one '<tensor> [rank=R] [iters=N] [tol=T] [seed=S]\n\
         \u{20}[engine=NAME] [deadline=SECS] [model=NAME]' job per line; outcomes are journaled\n\
         \u{20}and a killed batch resumes from checkpoints with --resume-journal.\n\
         serve: long-running daemon; POST /jobs with a batch job line submits a refit,\n\
         \u{20}GET /models/<name>[/factor/<mode>/<row>] serves fitted factors from atomic\n\
         \u{20}snapshots, GET /metrics is a Prometheus scrape, GET /healthz answers 503 once\n\
         \u{20}draining. An existing --journal is auto-resumed (crash recovery); SIGTERM or\n\
         \u{20}Ctrl-C drains gracefully and exits 0; SIGUSR1 dumps the flight recorder.\n\
         top: scrapes a daemon's /metrics and renders a compact dashboard.\n\
         telemetry: --metrics-out writes one JSONL record per ALS iteration (schema 1),\n\
         --trace-out writes a Chrome trace_event JSON (Perfetto / chrome://tracing),\n\
         STEF_LOG=off|warn|info|debug controls library diagnostics (default warn);\n\
         lines are stamped 'stef[<level> <elapsed>s <module>] <message>'."
    );
}
