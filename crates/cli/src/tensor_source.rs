//! Resolving a `<tensor>` CLI argument: either a FROSTT `.tns` path or
//! `suite:<name>[:scale]` for a synthetic analogue of the paper suite.

use sptensor::CooTensor;
use workloads::{suite_tensor, SuiteScale};

/// Loads a tensor from a CLI spec string.
pub fn load(spec: &str, default_scale: SuiteScale) -> Result<(String, CooTensor), String> {
    if let Some(rest) = spec.strip_prefix("suite:") {
        let (name, scale) = match rest.split_once(':') {
            Some((n, s)) => (n, parse_scale(s)?),
            None => (rest, default_scale),
        };
        let t = suite_tensor(name, scale)
            .ok_or_else(|| format!("unknown suite tensor '{name}' (try `stef list`)"))?;
        Ok((format!("suite:{name}"), t))
    } else {
        let t =
            sptensor::io::read_tns_file(spec).map_err(|e| format!("cannot read '{spec}': {e}"))?;
        Ok((spec.to_string(), t))
    }
}

/// Parses a scale name strictly (CLI errors should be loud).
pub fn parse_scale(s: &str) -> Result<SuiteScale, String> {
    match s.to_ascii_lowercase().as_str() {
        "tiny" => Ok(SuiteScale::Tiny),
        "small" => Ok(SuiteScale::Small),
        "full" => Ok(SuiteScale::Full),
        other => Err(format!("unknown scale '{other}' (tiny|small|full)")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_spec_loads() {
        let (name, t) = load("suite:uber:tiny", SuiteScale::Small).unwrap();
        assert_eq!(name, "suite:uber");
        assert_eq!(t.dims(), &[183, 24, 1000, 2000]);
    }

    #[test]
    fn suite_spec_uses_default_scale() {
        let (_, a) = load("suite:uber:tiny", SuiteScale::Tiny).unwrap();
        let (_, b) = load("suite:uber", SuiteScale::Tiny).unwrap();
        assert_eq!(a.nnz(), b.nnz());
    }

    #[test]
    fn unknown_suite_name_errors() {
        assert!(load("suite:nope", SuiteScale::Tiny).is_err());
    }

    #[test]
    fn bad_scale_errors() {
        assert!(load("suite:uber:huge", SuiteScale::Tiny).is_err());
        assert!(parse_scale("medium").is_err());
    }

    #[test]
    fn missing_file_errors() {
        assert!(load("/nonexistent/file.tns", SuiteScale::Tiny).is_err());
    }

    #[test]
    fn tns_file_loads() {
        let dir = std::env::temp_dir().join("stef-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.tns");
        std::fs::write(&path, "1 1 1 2.5\n2 2 2 -1.0\n").unwrap();
        let (_, t) = load(path.to_str().unwrap(), SuiteScale::Tiny).unwrap();
        assert_eq!(t.nnz(), 2);
        std::fs::remove_file(&path).ok();
    }
}
