//! Daemon crash-recovery and drain, end to end against the real `stef`
//! binary:
//!
//! * an uninterrupted `stef serve` refit establishes the reference
//!   factor checksum;
//! * a second daemon is `kill -9`'d mid-refit, restarted on the same
//!   journal (auto-resume), and must converge to the **bit-identical**
//!   checksum — the journal + checkpoint replay is exact, not
//!   approximate;
//! * SIGTERM drains gracefully: admission stops, the journal is
//!   compacted, and the process exits 0.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("stef-kill9-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Deterministic ~6.7k-nnz tensor, 1-indexed FROSTT text, no
/// duplicates. Big enough that a several-hundred-iteration reference
/// refit runs for seconds in a debug binary — room to land a `kill -9`
/// mid-job.
fn write_tensor(path: &Path) {
    let mut body = String::new();
    let mut x: u64 = 0x5eed;
    for i in 1..=30u32 {
        for j in 1..=30u32 {
            for k in 1..=30u32 {
                if (i * 7 + j * 3 + k) % 4 == 0 {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let v = ((x >> 33) % 2000) as f64 / 1000.0 - 1.0;
                    body.push_str(&format!("{i} {j} {k} {v}\n"));
                }
            }
        }
    }
    std::fs::write(path, body).unwrap();
}

struct Daemon {
    child: Child,
    addr: String,
    stdout: BufReader<std::process::ChildStdout>,
}

fn spawn_daemon(dir: &Path) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_stef"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--journal",
            dir.join("serve.journal").to_str().unwrap(),
            "--ckpt-dir",
            dir.join("ckpts").to_str().unwrap(),
            "--checkpoint-every",
            "1",
            "--drain-grace-ms",
            "10000",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn stef serve");
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    // Scan for the bound-address line (a resume prints its banner
    // first).
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        let mut line = String::new();
        let n = stdout.read_line(&mut line).expect("daemon stdout");
        if let Some(rest) = line.trim().strip_prefix("serving on ") {
            break rest.to_string();
        }
        assert!(
            n > 0 && Instant::now() < deadline,
            "daemon never printed its address (last line: {line:?})"
        );
    };
    Daemon {
        child,
        addr,
        stdout,
    }
}

fn http(addr: &str, method: &str, path: &str, body: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match TcpStream::connect(addr) {
            Ok(mut s) => {
                s.set_read_timeout(Some(Duration::from_secs(10))).ok();
                let req = format!(
                    "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                    body.len()
                );
                s.write_all(req.as_bytes()).unwrap();
                let mut response = String::new();
                s.read_to_string(&mut response).unwrap();
                let status = response.split_whitespace().nth(1).unwrap_or("").to_string();
                let payload = response.split("\r\n\r\n").nth(1).unwrap_or_default();
                return format!("{status} {payload}");
            }
            Err(e) => {
                assert!(Instant::now() < deadline, "cannot connect to {addr}: {e}");
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }
}

fn await_done(addr: &str, id: u64) {
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let r = http(addr, "GET", &format!("/jobs/{id}"), "");
        if r.contains("\"status\":\"done\"") {
            return;
        }
        assert!(
            !r.contains("\"status\":\"failed\"") && !r.contains("\"status\":\"shed\""),
            "job {id} terminal without done: {r}"
        );
        assert!(Instant::now() < deadline, "job {id} never finished: {r}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn model_checksum(addr: &str) -> String {
    let meta = http(addr, "GET", "/models/m", "");
    assert!(meta.starts_with("200"), "{meta}");
    assert!(meta.contains("\"stale\":false"), "{meta}");
    meta.split("\"checksum\":\"")
        .nth(1)
        .and_then(|t| t.split('"').next())
        .expect("checksum in model meta")
        .to_string()
}

fn sigterm(child: &Child) {
    let ok = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("kill -TERM")
        .success();
    assert!(ok, "kill -TERM failed");
}

fn sigkill(child: &Child) {
    let ok = Command::new("kill")
        .args(["-9", &child.id().to_string()])
        .status()
        .expect("kill -9")
        .success();
    assert!(ok, "kill -9 failed");
}

/// The shared refit job: deterministic single-threaded reference
/// engine, tol=0 so it always runs all iterations.
fn job_line(tns: &Path) -> String {
    format!(
        "{} rank=6 iters=3000 tol=0 seed=9 engine=reference model=m",
        tns.display()
    )
}

#[test]
fn kill9_resume_is_bit_identical_and_sigterm_drains_exit_0() {
    let dir = tmp_dir("main");
    let tns = dir.join("t.tns");
    write_tensor(&tns);

    // --- Reference: uninterrupted refit, then SIGTERM drain. ---
    let ref_dir = dir.join("reference");
    std::fs::create_dir_all(&ref_dir).unwrap();
    let mut daemon = spawn_daemon(&ref_dir);
    let r = http(&daemon.addr, "POST", "/jobs", &job_line(&tns));
    assert!(r.starts_with("200"), "{r}");
    await_done(&daemon.addr, 0);
    let reference_checksum = model_checksum(&daemon.addr);

    sigterm(&daemon.child);
    let status = daemon.child.wait().expect("daemon exit");
    assert_eq!(status.code(), Some(0), "SIGTERM drain must exit 0: {status:?}");
    // Drain compacted the journal: rescanning it must show only
    // terminal-state records for job 0 (the submitted+done pair).
    let journal = std::fs::read_to_string(ref_dir.join("serve.journal")).unwrap();
    assert!(journal.contains("done"), "compacted journal lost the outcome:\n{journal}");

    // --- Crash: kill -9 mid-refit, restart, resume, compare. ---
    let crash_dir = dir.join("crash");
    std::fs::create_dir_all(&crash_dir).unwrap();
    let mut daemon = spawn_daemon(&crash_dir);
    let r = http(&daemon.addr, "POST", "/jobs", &job_line(&tns));
    assert!(r.starts_with("200"), "{r}");
    // Let it get properly mid-flight (checkpoint-every=1 guarantees
    // on-disk progress), then pull the plug.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let r = http(&daemon.addr, "GET", "/jobs/0", "");
        if r.contains("\"status\":\"running\"") {
            break;
        }
        assert!(
            !r.contains("\"status\":\"done\""),
            "job finished before the kill could land; enlarge the tensor"
        );
        assert!(Instant::now() < deadline, "job never started: {r}");
        std::thread::sleep(Duration::from_millis(10));
    }
    std::thread::sleep(Duration::from_millis(500));
    // The refit must still be mid-flight when the plug is pulled — a
    // job that already journaled `done` replays as done on restart
    // without re-firing the snapshot hook (snapshots are in-memory),
    // which would turn this into a test of nothing.
    let r = http(&daemon.addr, "GET", "/jobs/0", "");
    assert!(
        r.contains("\"status\":\"running\""),
        "job finished before the kill could land ({r}); enlarge the tensor or iters"
    );
    sigkill(&daemon.child);
    daemon.child.wait().expect("killed daemon reaped");

    // Restart on the same journal: auto-resume must finish job 0 from
    // its checkpoint and publish the same bits.
    let mut daemon = spawn_daemon(&crash_dir);
    await_done(&daemon.addr, 0);
    let resumed_checksum = model_checksum(&daemon.addr);
    assert_eq!(
        resumed_checksum, reference_checksum,
        "kill -9 resume must reproduce the factors bit-identically"
    );

    // The resumed daemon also drains cleanly.
    sigterm(&daemon.child);
    let status = daemon.child.wait().expect("resumed daemon exit");
    assert_eq!(status.code(), Some(0), "{status:?}");

    // Silence unused-field warning; stdout handle must stay alive so
    // the child never blocks on a full pipe.
    let _ = &mut daemon.stdout;
    std::fs::remove_dir_all(&dir).ok();
}
