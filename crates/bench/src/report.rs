//! Plain-text tables, ASCII bar charts and JSON dumps for the bench
//! binaries.

use serde::Serialize;
use std::path::PathBuf;

/// A simple aligned text table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders with column alignment.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, (c, w)) in cells.iter().zip(widths).enumerate() {
                if i == 0 {
                    // First column left-aligned.
                    line.push_str(&format!("{c:<w$}"));
                } else {
                    line.push_str(&format!("  {c:>w$}"));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Renders labelled horizontal bars scaled to `width` characters at the
/// maximum value — a terminal stand-in for the paper's bar figures.
pub fn render_bar_chart(items: &[(String, f64)], width: usize) -> String {
    let max = items.iter().map(|&(_, v)| v).fold(0.0_f64, f64::max);
    let label_w = items.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, v) in items {
        let bar_len = if max > 0.0 {
            ((v / max) * width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "{label:<label_w$} | {}{} {v:.3}\n",
            "#".repeat(bar_len),
            " ".repeat(width.saturating_sub(bar_len)),
        ));
    }
    out
}

/// Writes a serializable value to `target/stef-results/<name>.json`,
/// returning the path. Errors are printed, not fatal — benchmarks should
/// not die on a read-only filesystem.
pub fn write_json<T: Serialize>(name: &str, value: &T) -> Option<PathBuf> {
    let dir = PathBuf::from("target/stef-results");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return None;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(body) => {
            if let Err(e) = std::fs::write(&path, body) {
                eprintln!("warning: cannot write {}: {e}", path.display());
                return None;
            }
            Some(path)
        }
        Err(e) => {
            eprintln!("warning: serialization failed: {e}");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["tensor", "nnz"]);
        t.row(vec!["uber".into(), "3M".into()]);
        t.row(vec!["delicious-4d".into(), "140M".into()]);
        let s = t.render();
        assert!(s.contains("tensor"));
        assert!(s.contains("delicious-4d"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows same width.
        assert_eq!(lines[0].len(), lines[2].len().max(lines[0].len()));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let s = render_bar_chart(&[("fast".to_string(), 2.0), ("slow".to_string(), 1.0)], 10);
        let lines: Vec<&str> = s.lines().collect();
        let hashes = |l: &str| l.chars().filter(|&c| c == '#').count();
        assert_eq!(hashes(lines[0]), 10);
        assert_eq!(hashes(lines[1]), 5);
    }

    #[test]
    fn bar_chart_handles_zeroes() {
        let s = render_bar_chart(&[("z".to_string(), 0.0)], 10);
        assert!(s.contains("z"));
    }
}
