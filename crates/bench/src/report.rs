//! Plain-text tables, ASCII bar charts and JSON dumps for the bench
//! binaries.

use std::path::PathBuf;

/// A simple aligned text table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders with column alignment.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, (c, w)) in cells.iter().zip(widths).enumerate() {
                if i == 0 {
                    // First column left-aligned.
                    line.push_str(&format!("{c:<w$}"));
                } else {
                    line.push_str(&format!("  {c:>w$}"));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Renders labelled horizontal bars scaled to `width` characters at the
/// maximum value — a terminal stand-in for the paper's bar figures.
pub fn render_bar_chart(items: &[(String, f64)], width: usize) -> String {
    let max = items.iter().map(|&(_, v)| v).fold(0.0_f64, f64::max);
    let label_w = items.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, v) in items {
        let bar_len = if max > 0.0 {
            ((v / max) * width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "{label:<label_w$} | {}{} {v:.3}\n",
            "#".repeat(bar_len),
            " ".repeat(width.saturating_sub(bar_len)),
        ));
    }
    out
}

/// Minimal JSON serialization for bench result rows. Hand-rolled because
/// the build environment is offline and serde is unavailable; covers
/// exactly the shapes the bench binaries dump.
pub trait ToJson {
    fn to_json(&self) -> String;
}

/// Escapes a string per JSON rules (quotes, backslashes, control chars).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl ToJson for String {
    fn to_json(&self) -> String {
        format!("\"{}\"", json_escape(self))
    }
}

impl ToJson for &str {
    fn to_json(&self) -> String {
        format!("\"{}\"", json_escape(self))
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> String {
        // JSON has no NaN/Inf literals; null keeps the dump parseable.
        if self.is_finite() {
            format!("{self}")
        } else {
            "null".to_string()
        }
    }
}

impl ToJson for usize {
    fn to_json(&self) -> String {
        format!("{self}")
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> String {
        format!("{self}")
    }
}

impl ToJson for bool {
    fn to_json(&self) -> String {
        format!("{self}")
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> String {
        self.as_slice().to_json()
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> String {
        let items: Vec<String> = self.iter().map(|x| x.to_json()).collect();
        format!("[{}]", items.join(", "))
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> String {
        self.as_slice().to_json()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> String {
        format!("[{}, {}]", self.0.to_json(), self.1.to_json())
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> String {
        format!(
            "[{}, {}, {}]",
            self.0.to_json(),
            self.1.to_json(),
            self.2.to_json()
        )
    }
}

/// Implements [`ToJson`] for a struct as a JSON object of its named
/// fields, in declaration order.
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> String {
                let fields: Vec<String> = vec![
                    $(format!(
                        "\"{}\": {}",
                        stringify!($field),
                        $crate::ToJson::to_json(&self.$field)
                    ),)+
                ];
                format!("{{{}}}", fields.join(", "))
            }
        }
    };
}

/// Writes a [`ToJson`] value to `target/stef-results/<name>.json`,
/// returning the path. Errors are printed, not fatal — benchmarks should
/// not die on a read-only filesystem.
pub fn write_json<T: ToJson + ?Sized>(name: &str, value: &T) -> Option<PathBuf> {
    let dir = PathBuf::from("target/stef-results");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return None;
    }
    write_json_at(dir.join(format!("{name}.json")), value)
}

/// Writes a [`ToJson`] value to an explicit path (used for tracked
/// trajectory files like `BENCH_mttkrp.json` at the repo root). Same
/// non-fatal error policy as [`write_json`].
pub fn write_json_at<T: ToJson + ?Sized>(path: PathBuf, value: &T) -> Option<PathBuf> {
    let mut body = value.to_json();
    body.push('\n');
    if let Err(e) = std::fs::write(&path, body) {
        eprintln!("warning: cannot write {}: {e}", path.display());
        return None;
    }
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["tensor", "nnz"]);
        t.row(vec!["uber".into(), "3M".into()]);
        t.row(vec!["delicious-4d".into(), "140M".into()]);
        let s = t.render();
        assert!(s.contains("tensor"));
        assert!(s.contains("delicious-4d"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows same width.
        assert_eq!(lines[0].len(), lines[2].len().max(lines[0].len()));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let s = render_bar_chart(&[("fast".to_string(), 2.0), ("slow".to_string(), 1.0)], 10);
        let lines: Vec<&str> = s.lines().collect();
        let hashes = |l: &str| l.chars().filter(|&c| c == '#').count();
        assert_eq!(hashes(lines[0]), 10);
        assert_eq!(hashes(lines[1]), 5);
    }

    #[test]
    fn bar_chart_handles_zeroes() {
        let s = render_bar_chart(&[("z".to_string(), 0.0)], 10);
        assert!(s.contains("z"));
    }

    struct Row {
        name: String,
        nnz: usize,
        seconds: Vec<(String, f64)>,
    }
    crate::impl_to_json!(Row { name, nnz, seconds });

    #[test]
    fn to_json_renders_structs_vecs_and_escapes() {
        let r = Row {
            name: "uber \"4d\"".to_string(),
            nnz: 3,
            seconds: vec![("stef".to_string(), 0.5)],
        };
        assert_eq!(
            r.to_json(),
            "{\"name\": \"uber \\\"4d\\\"\", \"nnz\": 3, \"seconds\": [[\"stef\", 0.5]]}"
        );
        assert_eq!(vec![r].to_json().chars().next(), Some('['));
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!([1.0f64, 2.0].to_json(), "[1, 2]");
    }
}
