//! Plain-text tables, ASCII bar charts and JSON dumps for the bench
//! binaries.

use std::path::PathBuf;

/// A simple aligned text table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders with column alignment.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, (c, w)) in cells.iter().zip(widths).enumerate() {
                if i == 0 {
                    // First column left-aligned.
                    line.push_str(&format!("{c:<w$}"));
                } else {
                    line.push_str(&format!("  {c:>w$}"));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Renders labelled horizontal bars scaled to `width` characters at the
/// maximum value — a terminal stand-in for the paper's bar figures.
pub fn render_bar_chart(items: &[(String, f64)], width: usize) -> String {
    let max = items.iter().map(|&(_, v)| v).fold(0.0_f64, f64::max);
    let label_w = items.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, v) in items {
        let bar_len = if max > 0.0 {
            ((v / max) * width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "{label:<label_w$} | {}{} {v:.3}\n",
            "#".repeat(bar_len),
            " ".repeat(width.saturating_sub(bar_len)),
        ));
    }
    out
}

/// Minimal JSON serialization for bench result rows. Hand-rolled because
/// the build environment is offline and serde is unavailable; covers
/// exactly the shapes the bench binaries dump.
pub trait ToJson {
    fn to_json(&self) -> String;
}

/// Escapes a string per JSON rules (quotes, backslashes, control chars).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl ToJson for String {
    fn to_json(&self) -> String {
        format!("\"{}\"", json_escape(self))
    }
}

impl ToJson for &str {
    fn to_json(&self) -> String {
        format!("\"{}\"", json_escape(self))
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> String {
        // JSON has no NaN/Inf literals; null keeps the dump parseable.
        if self.is_finite() {
            format!("{self}")
        } else {
            "null".to_string()
        }
    }
}

impl ToJson for usize {
    fn to_json(&self) -> String {
        format!("{self}")
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> String {
        format!("{self}")
    }
}

impl ToJson for bool {
    fn to_json(&self) -> String {
        format!("{self}")
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> String {
        self.as_slice().to_json()
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> String {
        let items: Vec<String> = self.iter().map(|x| x.to_json()).collect();
        format!("[{}]", items.join(", "))
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> String {
        self.as_slice().to_json()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> String {
        format!("[{}, {}]", self.0.to_json(), self.1.to_json())
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> String {
        format!(
            "[{}, {}, {}]",
            self.0.to_json(),
            self.1.to_json(),
            self.2.to_json()
        )
    }
}

/// Implements [`ToJson`] for a struct as a JSON object of its named
/// fields, in declaration order.
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> String {
                let fields: Vec<String> = vec![
                    $(format!(
                        "\"{}\": {}",
                        stringify!($field),
                        $crate::ToJson::to_json(&self.$field)
                    ),)+
                ];
                format!("{{{}}}", fields.join(", "))
            }
        }
    };
}

/// Writes a [`ToJson`] value to `target/stef-results/<name>.json`,
/// returning the path. Errors are printed, not fatal — benchmarks should
/// not die on a read-only filesystem.
pub fn write_json<T: ToJson + ?Sized>(name: &str, value: &T) -> Option<PathBuf> {
    let dir = PathBuf::from("target/stef-results");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return None;
    }
    write_json_at(dir.join(format!("{name}.json")), value)
}

/// Writes a [`ToJson`] value to an explicit path (used for tracked
/// trajectory files like `BENCH_mttkrp.json` at the repo root). Same
/// non-fatal error policy as [`write_json`].
pub fn write_json_at<T: ToJson + ?Sized>(path: PathBuf, value: &T) -> Option<PathBuf> {
    let mut body = value.to_json();
    body.push('\n');
    if let Err(e) = std::fs::write(&path, body) {
        eprintln!("warning: cannot write {}: {e}", path.display());
        return None;
    }
    Some(path)
}

/// A parsed JSON value. Minimal recursive-descent counterpart to
/// [`ToJson`], used to read the tracked `BENCH_*.json` trajectory files
/// and the telemetry exports back in tests and validators. Tolerant by
/// construction: consumers look fields up by name ([`Json::get`]), so
/// missing optional fields read as absent instead of failing the parse.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field by name (`None` for missing keys or non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one JSON value from `input` (the whole string must be that
/// value, modulo surrounding whitespace).
pub fn parse_json(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Json::Str(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                fields.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match b.get(*pos) {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::Str(s));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match b.get(*pos) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'/') => s.push('/'),
                            Some(b'n') => s.push('\n'),
                            Some(b'r') => s.push('\r'),
                            Some(b't') => s.push('\t'),
                            Some(b'b') => s.push('\u{8}'),
                            Some(b'f') => s.push('\u{c}'),
                            Some(b'u') => {
                                let hex = b
                                    .get(*pos + 1..*pos + 5)
                                    .ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                    16,
                                )
                                .map_err(|e| e.to_string())?;
                                // Surrogate pairs are not emitted by our
                                // writers; map lone surrogates to U+FFFD.
                                s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                                *pos += 4;
                            }
                            other => return Err(format!("bad escape {other:?}")),
                        }
                        *pos += 1;
                    }
                    Some(_) => {
                        // Multi-byte UTF-8 sequences pass through intact:
                        // advance over the full character.
                        let tail = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                        let c = tail.chars().next().ok_or("unterminated string")?;
                        s.push(c);
                        *pos += c.len_utf8();
                    }
                }
            }
        }
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("invalid number '{text}' at byte {start}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["tensor", "nnz"]);
        t.row(vec!["uber".into(), "3M".into()]);
        t.row(vec!["delicious-4d".into(), "140M".into()]);
        let s = t.render();
        assert!(s.contains("tensor"));
        assert!(s.contains("delicious-4d"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows same width.
        assert_eq!(lines[0].len(), lines[2].len().max(lines[0].len()));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let s = render_bar_chart(&[("fast".to_string(), 2.0), ("slow".to_string(), 1.0)], 10);
        let lines: Vec<&str> = s.lines().collect();
        let hashes = |l: &str| l.chars().filter(|&c| c == '#').count();
        assert_eq!(hashes(lines[0]), 10);
        assert_eq!(hashes(lines[1]), 5);
    }

    #[test]
    fn bar_chart_handles_zeroes() {
        let s = render_bar_chart(&[("z".to_string(), 0.0)], 10);
        assert!(s.contains("z"));
    }

    struct Row {
        name: String,
        nnz: usize,
        seconds: Vec<(String, f64)>,
    }
    crate::impl_to_json!(Row { name, nnz, seconds });

    #[test]
    fn to_json_renders_structs_vecs_and_escapes() {
        let r = Row {
            name: "uber \"4d\"".to_string(),
            nnz: 3,
            seconds: vec![("stef".to_string(), 0.5)],
        };
        assert_eq!(
            r.to_json(),
            "{\"name\": \"uber \\\"4d\\\"\", \"nnz\": 3, \"seconds\": [[\"stef\", 0.5]]}"
        );
        assert_eq!(vec![r].to_json().chars().next(), Some('['));
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!([1.0f64, 2.0].to_json(), "[1, 2]");
    }

    #[test]
    fn parse_json_round_trips_to_json_output() {
        let r = Row {
            name: "uber \"4d\"\nline2".to_string(),
            nnz: 3,
            seconds: vec![("stef".to_string(), 0.5)],
        };
        let v = parse_json(&r.to_json()).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("uber \"4d\"\nline2"));
        assert_eq!(v.get("nnz").unwrap().as_u64(), Some(3));
        let secs = v.get("seconds").unwrap().as_arr().unwrap();
        assert_eq!(secs[0].as_arr().unwrap()[1].as_f64(), Some(0.5));
    }

    #[test]
    fn parse_json_scalars_and_structure() {
        assert_eq!(parse_json("null").unwrap(), Json::Null);
        assert_eq!(parse_json(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse_json("-1.5e3").unwrap(), Json::Num(-1500.0));
        assert_eq!(parse_json("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(parse_json("{}").unwrap(), Json::Obj(vec![]));
        let v = parse_json("{\"a\": [1, {\"b\": null}], \"c\": \"x\"}").unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1].get("b"),
            Some(&Json::Null)
        );
    }

    #[test]
    fn parse_json_missing_fields_read_as_absent() {
        // Schema tolerance: a reader asking for an optional field that an
        // older writer never emitted gets None, not an error.
        let v = parse_json("{\"schema\": 1, \"bench\": \"x\"}").unwrap();
        assert_eq!(v.get("schema").unwrap().as_u64(), Some(1));
        assert!(v.get("optional_new_field").is_none());
        assert!(v.get("bench").unwrap().as_f64().is_none());
    }

    #[test]
    fn parse_json_rejects_malformed_input() {
        for bad in ["{", "[1,", "\"open", "{\"a\" 1}", "12ab", "[] []", "tru"] {
            assert!(parse_json(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn parse_json_unicode_escapes_and_utf8() {
        let v = parse_json("\"caf\u{e9} \\u00e9 \\t\"").unwrap();
        assert_eq!(v.as_str(), Some("café é \t"));
    }
}
