//! Figures 3 & 4: per-tensor MTTKRP performance of all eight algorithms
//! relative to `splatt-all`, for R ∈ {32, 64}.
//!
//! The paper shows one figure per machine (18-core Intel, 64-core AMD);
//! this binary runs on whatever host executes it and prints the host's
//! core count — run it on two machines to get both figures. Also prints
//! the geometric-mean speedups of STeF/STeF2 over every baseline
//! (the §VI-B headline numbers).
//!
//! ```text
//! cargo run -p stef-bench --release --bin fig3_4
//! STEF_SCALE=full STEF_REPS=5 cargo run -p stef-bench --release --bin fig3_4
//! ```

use stef_bench::{
    geomean, render_bar_chart, suite_selection, time_mttkrp_sweep, BenchConfig, Table,
};

struct FigRow {
    tensor: String,
    rank: usize,
    /// seconds per full MTTKRP sweep, keyed by algorithm name.
    seconds: Vec<(String, f64)>,
    /// speedup over splatt-all, keyed by algorithm name.
    relative: Vec<(String, f64)>,
}
stef_bench::impl_to_json!(FigRow { tensor, rank, seconds, relative });

fn main() {
    let config = BenchConfig::from_env();
    println!(
        "Figures 3/4 analogue on this host ({} rayon threads, scale {:?}, {} reps)\n",
        rayon::current_num_threads(),
        config.scale,
        config.reps
    );

    let mut all_rows: Vec<FigRow> = Vec::new();
    for rank in [32usize, 64] {
        println!("=== R = {rank} ===");
        let mut table_rel: Option<Table> = None;
        for spec in suite_selection() {
            let t = spec.generate(config.scale);
            let mut engines = baselines::all_engines(&t, rank, config.nthreads);
            let timings: Vec<(String, f64)> = engines
                .iter_mut()
                .map(|e| {
                    let timing = time_mttkrp_sweep(e.as_mut(), rank, config.reps);
                    (timing.name, timing.best_seconds)
                })
                .collect();
            let base = timings
                .iter()
                .find(|(n, _)| n == "splatt-all")
                .map(|&(_, s)| s)
                .expect("splatt-all must be among the engines");
            let relative: Vec<(String, f64)> =
                timings.iter().map(|(n, s)| (n.clone(), base / s)).collect();

            if table_rel.is_none() {
                let mut headers: Vec<&str> = vec!["Tensor"];
                let names: Vec<String> = relative.iter().map(|(n, _)| n.clone()).collect();
                let names_ref: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
                headers.extend(names_ref);
                table_rel = Some(Table::new(&headers));
            }
            let mut cells = vec![spec.name.to_string()];
            cells.extend(relative.iter().map(|(_, v)| format!("{v:.2}")));
            table_rel.as_mut().unwrap().row(cells);

            all_rows.push(FigRow {
                tensor: spec.name.to_string(),
                rank,
                seconds: timings,
                relative,
            });
        }
        if let Some(t) = table_rel {
            println!(
                "Speedup over splatt-all (higher is better):\n{}",
                t.render()
            );
        }
    }

    // §VI-B headline: geometric-mean speedup of stef / stef2 over each
    // baseline across all tensors and both ranks.
    let names: Vec<String> = all_rows[0].seconds.iter().map(|(n, _)| n.clone()).collect();
    println!("Geometric-mean speedups across all tensors and both ranks:");
    for ours in ["stef", "stef2"] {
        let mut chart = Vec::new();
        for other in &names {
            if other == ours {
                continue;
            }
            let ratios: Vec<f64> = all_rows
                .iter()
                .map(|row| {
                    let t_ours = row
                        .seconds
                        .iter()
                        .find(|(n, _)| n == ours)
                        .map(|&(_, s)| s)
                        .unwrap();
                    let t_other = row
                        .seconds
                        .iter()
                        .find(|(n, _)| n == other.as_str())
                        .map(|&(_, s)| s)
                        .unwrap();
                    t_other / t_ours
                })
                .collect();
            chart.push((format!("{ours} vs {other}"), geomean(&ratios)));
        }
        println!("{}", render_bar_chart(&chart, 40));
    }
    println!(
        "Paper shape check: STeF beats AdaTM/splatt-1/splatt-2/splatt-all/TACO\n\
         in geomean; STeF2 >= STeF; the vast-* rows should show the largest\n\
         STeF advantage over slice-scheduled baselines."
    );
    if let Some(path) = stef_bench::write_json("fig3_4", &all_rows) {
        println!("JSON written to {}", path.display());
    }
}
