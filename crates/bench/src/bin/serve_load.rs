//! `serve_load` — load generator for the `stef serve` daemon.
//!
//! Boots an in-process [`Server`] on a loopback port, publishes an
//! initial model, then runs a timed phase in which client threads
//! hammer the read path (factor-row and top-k queries over real HTTP
//! connections) while the main thread keeps the write path busy with
//! back-to-back refit submissions. The report answers the service
//! question the ROADMAP poses: *what query latency does the read side
//! hold while the supervisor is refitting underneath it?*
//!
//! Usage: `serve_load [--seconds N] [--clients N] [--out FILE]
//!                    [--scrape-out FILE]`
//!
//! Writes a schema-5 `BENCH_service.json`:
//!
//! ```json
//! {"schema": 5, "bench": "serve_load", ...,
//!  "jobs_per_sec": 3.1, "query_p50_us": 180.0, "query_p99_us": 950.0,
//!  "scrape_p99_us": 400.0, "metrics_per_op_on_ns": 9.0,
//!  "metrics_per_op_off_ns": 1.0, "metrics_overhead_pct": 0.01}
//! ```
//!
//! The metrics-overhead triple is the PR 10 budget gate: the measured
//! per-op cost of the enabled registry (counter inc + histogram
//! observe), the same loop with the registry switched off, and the
//! difference expressed as a percentage of the median query latency.
//! The run **fails** if that overhead exceeds 2% — observability that
//! taxes the hot path more than that doesn't ship.
//!
//! `--scrape-out` saves one raw `/metrics` exposition captured after
//! the timed phase (pre-drain) so CI can validate the Prometheus text
//! with `validate_telemetry`.
//!
//! `validate_telemetry` accepts the file as a non-gating CI artifact
//! for the latency numbers (hardware-dependent; the gate is only that
//! they exist and are finite-positive) but re-asserts the overhead
//! bound, which is a ratio and therefore portable.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use stef::{
    outcome_hook, CancelToken, EngineFactory, MttkrpEngine, ReferenceEngine, ServeConfig, Server,
    SnapshotStore, StefError, Supervisor, SupervisorConfig, TensorLoader,
};
use workloads::power_law_tensor;

fn loader() -> TensorLoader {
    Arc::new(|spec: &str| {
        // "pl:<d0>x<d1>x<d2>:<nnz>:<seed>"
        let parts: Vec<&str> = spec.split(':').collect();
        if parts.len() != 4 || parts[0] != "pl" {
            return Err(StefError::Input(format!("bad spec '{spec}'")));
        }
        let dims: Vec<usize> = parts[1]
            .split('x')
            .map(|t| t.parse().map_err(|_| StefError::Input("bad dim".into())))
            .collect::<Result<_, _>>()?;
        let nnz = parts[2]
            .parse()
            .map_err(|_| StefError::Input("bad nnz".into()))?;
        let seed = parts[3]
            .parse()
            .map_err(|_| StefError::Input("bad seed".into()))?;
        let skews = vec![0.5; dims.len()];
        Ok(power_law_tensor(&dims, nnz, &skews, seed))
    })
}

fn factory() -> EngineFactory {
    Arc::new(|_spec, tensor, _token, _attempt| {
        Ok(Box::new(ReferenceEngine::new(tensor.clone())) as Box<dyn MttkrpEngine>)
    })
}

/// One HTTP request on a fresh connection; returns the response body.
fn http(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> Result<String, String> {
    let mut s = TcpStream::connect(addr).map_err(|e| e.to_string())?;
    s.set_read_timeout(Some(Duration::from_secs(10))).ok();
    s.set_nodelay(true).ok();
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    s.write_all(req.as_bytes()).map_err(|e| e.to_string())?;
    let mut response = String::new();
    s.read_to_string(&mut response).map_err(|e| e.to_string())?;
    match response.split("\r\n\r\n").nth(1) {
        Some(payload) if response.starts_with("HTTP/1.1 200") => Ok(payload.to_string()),
        _ => Err(response.lines().next().unwrap_or("no response").to_string()),
    }
}

fn percentile(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)] as f64
}

/// Per-op cost of the metrics hot path (one counter inc + one
/// histogram observe behind the `enabled()` gate), measured with the
/// registry on and off. With the `telemetry` feature compiled out both
/// numbers collapse to the cost of one branch.
fn metrics_op_cost() -> (f64, f64) {
    use std::hint::black_box;
    let c = stef::metrics::counter(
        "stef_bench_overhead_total",
        "serve_load overhead microbench counter.",
        &[],
    );
    let h = stef::metrics::histogram(
        "stef_bench_overhead_seconds",
        "serve_load overhead microbench histogram.",
        &[],
        stef::metrics::TIME_BUCKETS,
    );
    let measure = || {
        const N: u64 = 1_000_000;
        let t = Instant::now();
        for i in 0..N {
            if stef::metrics::enabled() {
                c.inc();
                h.observe_ns(black_box(i));
            }
        }
        t.elapsed().as_nanos() as f64 / N as f64
    };
    let _ = measure(); // warm caches and the lazy registration
    let on = measure();
    stef::metrics::set_enabled(false);
    let off = measure();
    stef::metrics::set_enabled(true);
    (on, off)
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut seconds = 3u64;
    let mut clients = 4usize;
    let mut out = "BENCH_service.json".to_string();
    let mut scrape_out: Option<String> = None;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--seconds" => {
                seconds = argv[i + 1].parse().expect("--seconds N");
                i += 2;
            }
            "--clients" => {
                clients = argv[i + 1].parse().expect("--clients N");
                i += 2;
            }
            "--out" => {
                out = argv[i + 1].clone();
                i += 2;
            }
            "--scrape-out" => {
                scrape_out = Some(argv[i + 1].clone());
                i += 2;
            }
            other => {
                eprintln!(
                    "usage: serve_load [--seconds N] [--clients N] [--out FILE] \
                     [--scrape-out FILE] ({other}?)"
                );
                std::process::exit(2);
            }
        }
    }

    let dir = std::env::temp_dir().join(format!("stef-serve-load-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");

    let store = Arc::new(SnapshotStore::new());
    let mut scfg = SupervisorConfig::new(dir.join("load.journal"), dir.join("ckpts"));
    scfg.max_concurrent = 2;
    scfg.checkpoint_every = 4;
    scfg.on_outcome = Some(outcome_hook(Arc::clone(&store)));
    let sup = Arc::new(Supervisor::new(scfg, loader(), factory()).expect("supervisor"));
    let stop = CancelToken::new();
    let mut cfg = ServeConfig::new("127.0.0.1:0");
    cfg.handler_threads = clients.max(2);
    let server = Server::bind(cfg, sup, store, stop.clone()).expect("bind");
    let addr = server.local_addr();

    let running = AtomicBool::new(true);
    let query_errors = AtomicU64::new(0);
    std::thread::scope(|scope| {
        let runner = scope.spawn(|| server.run());

        // Seed the model the read side will query throughout.
        let seed_job = "pl:48x40x32:4000:7 rank=8 iters=5 tol=0 model=served";
        let resp = http(addr, "POST", "/jobs", seed_job).expect("seed submit");
        assert!(resp.contains("\"id\":0"), "{resp}");
        let t0 = Instant::now();
        loop {
            let s = http(addr, "GET", "/jobs/0", "").expect("poll");
            if s.contains("\"status\":\"done\"") {
                break;
            }
            assert!(
                t0.elapsed() < Duration::from_secs(120),
                "seed refit never finished: {s}"
            );
            std::thread::sleep(Duration::from_millis(20));
        }

        // Timed phase: read clients vs. continuous refits.
        let deadline = Instant::now() + Duration::from_secs(seconds);
        let latency_threads: Vec<_> = (0..clients)
            .map(|c| {
                let running = &running;
                let query_errors = &query_errors;
                scope.spawn(move || {
                    let mut lat_us: Vec<u64> = Vec::new();
                    let mut n = 0u64;
                    while running.load(Ordering::Relaxed) {
                        let (path, body, method) = match n % 3 {
                            0 => (format!("/models/served/factor/0/{}", n % 48), String::new(), "GET"),
                            1 => ("/models/served".to_string(), String::new(), "GET"),
                            _ => (
                                "/models/served/topk".to_string(),
                                format!("mode=0 target=1 k=5 rows={},{}", n % 48, (n + c as u64) % 48),
                                "POST",
                            ),
                        };
                        let t = Instant::now();
                        match http(addr, method, &path, &body) {
                            Ok(_) => lat_us.push(t.elapsed().as_micros() as u64),
                            Err(_) => {
                                query_errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        n += 1;
                    }
                    lat_us
                })
            })
            .collect();

        // Write side: keep refits flowing until the deadline.
        let mut submitted = 1u64; // the seed job
        let mut refit_seed = 100u64;
        while Instant::now() < deadline {
            let job = format!(
                "pl:48x40x32:4000:{refit_seed} rank=8 iters=5 tol=0 model=served"
            );
            match http(addr, "POST", "/jobs", &job) {
                Ok(_) => submitted += 1,
                Err(e) => panic!("refit submit failed: {e}"),
            }
            refit_seed += 1;
            // Pace submissions so the queue stays short but never empty.
            loop {
                let h = http(addr, "GET", "/healthz", "").expect("healthz");
                let backlogged = h.contains("\"queued\":2") || h.split("\"queued\":").nth(1)
                    .and_then(|t| t.split(',').next())
                    .and_then(|t| t.parse::<u64>().ok())
                    .map(|q| q >= 2)
                    .unwrap_or(false);
                if !backlogged || Instant::now() >= deadline {
                    break;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
        let elapsed = t0.elapsed();
        running.store(false, Ordering::Relaxed);
        let mut lat_us: Vec<u64> = latency_threads
            .into_iter()
            .flat_map(|t| t.join().expect("client thread"))
            .collect();
        lat_us.sort_unstable();

        // Completed refits over the whole measured window.
        let done = {
            let h = http(addr, "GET", "/healthz", "").expect("healthz");
            h.split("\"installs\":")
                .nth(1)
                .and_then(|t| t.split(',').next())
                .and_then(|t| t.parse::<u64>().ok())
                .unwrap_or(0)
        };

        // Scrape phase (still serving, pre-drain): time ~50 /metrics
        // GETs for the scrape-latency percentile and keep the last
        // exposition for --scrape-out / CI validation.
        let mut scrape_us: Vec<u64> = Vec::new();
        let mut last_scrape = String::new();
        for _ in 0..50 {
            let t = Instant::now();
            match http(addr, "GET", "/metrics", "") {
                Ok(text) => {
                    scrape_us.push(t.elapsed().as_micros() as u64);
                    last_scrape = text;
                }
                Err(e) => panic!("/metrics scrape failed: {e}"),
            }
        }
        scrape_us.sort_unstable();
        let scrape_p99 = percentile(&scrape_us, 0.99);
        if let Some(path) = &scrape_out {
            std::fs::write(path, &last_scrape).expect("write scrape");
        }

        stop.cancel();
        let report = runner.join().expect("server thread");

        let jobs_per_sec = done as f64 / elapsed.as_secs_f64();
        let p50 = percentile(&lat_us, 0.50);
        let p99 = percentile(&lat_us, 0.99);
        let errors = query_errors.load(Ordering::Relaxed);
        assert!(!lat_us.is_empty(), "no successful queries — read path broken");
        assert_eq!(errors, 0, "{errors} queries failed during concurrent refit");

        // Metrics-overhead budget: per-op registry cost (on vs off),
        // expressed against the median query. A query's handler does a
        // handful of instrumented ops; charge a generous 4 to stay
        // conservative, and gate at 2%.
        let (op_on_ns, op_off_ns) = metrics_op_cost();
        let overhead_pct = if p50.is_finite() && p50 > 0.0 {
            100.0 * 4.0 * (op_on_ns - op_off_ns).max(0.0) / (p50 * 1000.0)
        } else {
            0.0
        };
        assert!(
            overhead_pct < 2.0,
            "metrics overhead {overhead_pct:.3}% exceeds the 2% budget \
             (on {op_on_ns:.1} ns/op, off {op_off_ns:.1} ns/op, query p50 {p50:.0} µs)"
        );

        let json = format!(
            "{{\"schema\": 5, \"bench\": \"serve_load\", \"seconds\": {seconds}, \
             \"clients\": {clients}, \"submitted\": {submitted}, \"refits_done\": {done}, \
             \"queries\": {}, \"query_errors\": {errors}, \"jobs_per_sec\": {jobs_per_sec}, \
             \"query_p50_us\": {p50}, \"query_p99_us\": {p99}, \
             \"scrape_p99_us\": {scrape_p99}, \"metrics_per_op_on_ns\": {op_on_ns}, \
             \"metrics_per_op_off_ns\": {op_off_ns}, \"metrics_overhead_pct\": {overhead_pct}}}\n",
            lat_us.len(),
        );
        std::fs::write(&out, &json).expect("write report");
        println!(
            "serve_load: {done} refits in {:.1}s ({jobs_per_sec:.2} jobs/s), {} queries \
             (p50 {p50:.0} µs, p99 {p99:.0} µs, {errors} errors), scrape p99 {scrape_p99:.0} µs, \
             metrics {op_on_ns:.1}/{op_off_ns:.1} ns/op on/off ({overhead_pct:.3}% of a query) \
             -> {out}",
            elapsed.as_secs_f64(),
            lat_us.len(),
        );
        let _ = report;
    });
    let _ = std::fs::remove_dir_all(&dir);
}
