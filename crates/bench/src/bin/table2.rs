//! Table II: space requirement of the memoized partial MTTKRP results.
//!
//! For each tensor and R ∈ {32, 64}: bytes of the partials the
//! data-movement model chose to store, bytes of the CSF structure plus
//! factor matrices, and their ratio — plus the save-all ratio the paper
//! quotes in the text (e.g. 5.43 for `chicago-crime-comm`).
//!
//! ```text
//! cargo run -p stef-bench --release --bin table2
//! ```

use stef::{MemoPolicy, Stef, StefOptions};
use stef_bench::{suite_selection, BenchConfig, Table};

struct Table2Row {
    tensor: String,
    rank: usize,
    partial_bytes: usize,
    csf_and_factor_bytes: usize,
    ratio: f64,
    save_all_partial_bytes: usize,
    save_all_ratio: f64,
    saved_levels: Vec<bool>,
}
stef_bench::impl_to_json!(Table2Row {
    tensor,
    rank,
    partial_bytes,
    csf_and_factor_bytes,
    ratio,
    save_all_partial_bytes,
    save_all_ratio,
    saved_levels,
});

fn gb(bytes: usize) -> f64 {
    bytes as f64 / 1e9
}

fn main() {
    let config = BenchConfig::from_env();
    println!(
        "Table II analogue: space for stored partial MTTKRP results (scale {:?})\n",
        config.scale
    );
    let mut rows = Vec::new();
    let mut table = Table::new(&[
        "Tensor",
        "R",
        "Partials (MB)",
        "CSF+factors (MB)",
        "Ratio",
        "Save-all ratio",
        "Saved levels",
    ]);
    for spec in suite_selection() {
        let t = spec.generate(config.scale);
        for rank in [32usize, 64] {
            let mut opts = StefOptions::new(rank);
            opts.num_threads = config.nthreads;
            let model = Stef::prepare(&t, opts.clone());
            let mut all_opts = opts.clone();
            all_opts.memo = MemoPolicy::SaveAll;
            let save_all = Stef::prepare(&t, all_opts);

            let denom = model.csf_and_factor_bytes();
            let ratio = model.partial_bytes() as f64 / denom as f64;
            let all_ratio =
                save_all.partial_bytes() as f64 / save_all.csf_and_factor_bytes() as f64;
            table.row(vec![
                spec.name.to_string(),
                format!("{rank}"),
                format!("{:.2}", model.partial_bytes() as f64 / 1e6),
                format!("{:.2}", denom as f64 / 1e6),
                format!("{ratio:.2}"),
                format!("{all_ratio:.2}"),
                format!(
                    "{:?}",
                    model
                        .plan()
                        .save
                        .iter()
                        .enumerate()
                        .filter(|(_, &s)| s)
                        .map(|(l, _)| l)
                        .collect::<Vec<_>>()
                ),
            ]);
            rows.push(Table2Row {
                tensor: spec.name.to_string(),
                rank,
                partial_bytes: model.partial_bytes(),
                csf_and_factor_bytes: denom,
                ratio,
                save_all_partial_bytes: save_all.partial_bytes(),
                save_all_ratio: all_ratio,
                saved_levels: model.plan().save.clone(),
            });
        }
    }
    println!("{}", table.render());

    for rank in [32usize, 64] {
        let rs: Vec<&Table2Row> = rows.iter().filter(|r| r.rank == rank).collect();
        let avg_partial: f64 =
            rs.iter().map(|r| gb(r.partial_bytes)).sum::<f64>() / rs.len() as f64;
        let avg_denom: f64 =
            rs.iter().map(|r| gb(r.csf_and_factor_bytes)).sum::<f64>() / rs.len() as f64;
        let avg_ratio: f64 = rs.iter().map(|r| r.ratio).sum::<f64>() / rs.len() as f64;
        let max_ratio: f64 = rs.iter().map(|r| r.ratio).fold(0.0, f64::max);
        println!(
            "R={rank}: average partials {:.4} GB, average CSF+factors {:.4} GB, \
             average ratio {avg_ratio:.2}, max ratio {max_ratio:.2}",
            avg_partial, avg_denom
        );
    }
    println!(
        "\nPaper shape check: averages ~0.35 (R=32) / ~0.45 (R=64), max ≤ ~2.3;\n\
         freebase/vast-5d rows should be 0.00 (model declines to memoize)."
    );

    // §IV-A motivating example, on our analogues: raw read/write counts
    // for save-all vs not saving the biggest partial (uber) and for
    // save vs no-save (vast-2015-mc1-3d).
    println!("\n§IV-A raw traffic comparison (R=32, elements):");
    for name in ["uber", "vast-2015-mc1-3d"] {
        let Some(spec) = workloads::paper_suite()
            .into_iter()
            .find(|s| s.name == name)
        else {
            continue;
        };
        let t = spec.generate(config.scale);
        let order = sptensor::sort_modes_by_length(t.dims());
        let csf = sptensor::build_csf(&t, &order);
        let profile = stef::LevelProfile::from_csf(&csf, 32, 16 << 20);
        let d = csf.ndim();
        let mut save_all = vec![false; d];
        if d >= 3 {
            for flag in save_all.iter_mut().take(d - 1).skip(1) {
                *flag = true;
            }
        }
        // "Not saving the biggest partial": drop the deepest saved level.
        let mut drop_biggest = save_all.clone();
        if let Some(k) = (0..d).rev().find(|&l| drop_biggest[l]) {
            drop_biggest[k] = false;
        }
        let none = vec![false; d];
        for (label, save) in [
            ("save-all", &save_all),
            ("drop-biggest", &drop_biggest),
            ("save-none", &none),
        ] {
            let rt = profile.raw_traffic(save);
            println!(
                "  {name:<18} {label:<13} {:>8.1}M reads {:>8.2}M writes",
                rt.reads / 1e6,
                rt.writes / 1e6
            );
        }
    }
    if let Some(path) = stef_bench::write_json("table2", &rows) {
        println!("JSON written to {}", path.display());
    }
}
