//! `validate_telemetry` — CI gate for the telemetry export formats.
//!
//! Usage: `validate_telemetry <metrics.jsonl> <trace.json>
//!                            [BENCH_*.json | scrape.prom ...]`
//!
//! Checks, without jq or python, that the files a `stef decompose
//! --metrics-out --trace-out` run produced are well-formed:
//!
//! * every JSONL line is a schema-1 iteration record with a finite fit,
//!   a non-empty `modes` array, and per-mode measured/predicted traffic
//!   whose `rel_err` is a finite number (the model-vs-measured audit
//!   actually happened — `null` would mean one side was missing);
//!   schema-2 `"kind":"metrics_flush"` registry snapshots (the serve
//!   daemon's periodic flushes) are allowed to interleave;
//! * the trace is a Chrome `trace_event` JSON array with `thread_name`
//!   metadata and at least one complete (`"ph":"X"`) span event;
//! * optionally, the tracked kernel-bench trajectory file is a schema-1
//!   or schema-2 report with finite timings (schema 2 additionally
//!   requires the per-record `simd` path and a finite `bytes_per_ns`);
//!   schema 4/5 are the `BENCH_service.json` daemon load reports, and
//!   schema 5 additionally gates the metrics overhead at < 2%;
//! * a trailing argument ending in `.prom` is validated as a Prometheus
//!   text exposition (a mid-soak `/metrics` scrape): it must parse,
//!   carry the core runtime/supervisor/HTTP families, and every
//!   histogram series must have monotonically non-decreasing
//!   cumulative buckets ending in `+Inf`.
//!
//! Exits nonzero with a description of the first violation.

use std::process::ExitCode;
use stef_bench::{parse_json, Json};

fn check_metrics(path: &str) -> Result<(), String> {
    let body =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut iterations = 0usize;
    for (lineno, line) in body.lines().enumerate() {
        let n = lineno + 1;
        let rec = parse_json(line).map_err(|e| format!("{path}:{n}: {e}"))?;
        // The serve daemon's periodic registry flushes (schema 2)
        // interleave with iteration records in the same sink.
        if rec.get("kind").and_then(Json::as_str) == Some("metrics_flush") {
            if rec.get("schema").and_then(Json::as_u64) != Some(2) {
                return Err(format!("{path}:{n}: metrics_flush without schema 2"));
            }
            continue;
        }
        if rec.get("schema").and_then(Json::as_u64) != Some(1) {
            return Err(format!("{path}:{n}: missing or wrong \"schema\" (want 1)"));
        }
        rec.get("iteration")
            .and_then(Json::as_u64)
            .ok_or(format!("{path}:{n}: missing \"iteration\""))?;
        let fit = rec
            .get("fit")
            .and_then(Json::as_f64)
            .ok_or(format!("{path}:{n}: missing \"fit\""))?;
        if !fit.is_finite() {
            return Err(format!("{path}:{n}: non-finite fit"));
        }
        let modes = rec
            .get("modes")
            .and_then(Json::as_arr)
            .ok_or(format!("{path}:{n}: missing \"modes\" array"))?;
        if modes.is_empty() {
            return Err(format!("{path}:{n}: empty \"modes\" array"));
        }
        for m in modes {
            let mode = m
                .get("mode")
                .and_then(Json::as_u64)
                .ok_or(format!("{path}:{n}: mode entry without \"mode\""))?;
            for key in [
                "seconds",
                "measured_read_bytes",
                "measured_write_bytes",
                "predicted_read_bytes",
                "predicted_write_bytes",
                "rel_err",
            ] {
                let v = m
                    .get(key)
                    .and_then(Json::as_f64)
                    .ok_or(format!("{path}:{n}: mode {mode} \"{key}\" missing or null"))?;
                if !v.is_finite() {
                    return Err(format!("{path}:{n}: mode {mode} \"{key}\" not finite"));
                }
            }
        }
        iterations += 1;
    }
    if iterations == 0 {
        return Err(format!("{path}: no iteration records"));
    }
    println!("{path}: OK ({iterations} iteration records, schema 1, finite rel_err)");
    Ok(())
}

fn check_trace(path: &str) -> Result<(), String> {
    let body =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let events = parse_json(&body)
        .map_err(|e| format!("{path}: {e}"))?
        .as_arr()
        .ok_or(format!("{path}: top level is not an array"))?
        .to_vec();
    let mut named_threads = 0usize;
    let mut spans = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or(format!("{path}: event {i} has no \"ph\""))?;
        match ph {
            "M" => {
                if ev.get("name").and_then(Json::as_str) == Some("thread_name") {
                    named_threads += 1;
                }
            }
            "X" => {
                for key in ["ts", "dur"] {
                    let v = ev
                        .get(key)
                        .and_then(Json::as_f64)
                        .ok_or(format!("{path}: span event {i} \"{key}\" missing"))?;
                    if !v.is_finite() || v < 0.0 {
                        return Err(format!("{path}: span event {i} \"{key}\" invalid"));
                    }
                }
                ev.get("tid")
                    .and_then(Json::as_u64)
                    .ok_or(format!("{path}: span event {i} has no \"tid\""))?;
                spans += 1;
            }
            other => return Err(format!("{path}: event {i} has unexpected ph {other:?}")),
        }
    }
    if named_threads == 0 {
        return Err(format!("{path}: no thread_name metadata (no worker tracks)"));
    }
    if spans == 0 {
        return Err(format!("{path}: no complete (ph:X) span events"));
    }
    println!("{path}: OK ({named_threads} thread tracks, {spans} spans)");
    Ok(())
}

/// Validates a tracked kernel-bench trajectory file. Four schema
/// versions are accepted: schema 1 (pre-SIMD, one record per mode ×
/// accum), schema 2 (per-SIMD-path records with `simd` and
/// `bytes_per_ns` fields), schema 3 (the `BENCH_alto.json` engine
/// race: per-mode `csf_ns`/`alto_ns`/`speedup` records plus a
/// top-level `auto_pick` engine name and `sweep_speedup`), and
/// schema 4 (the `BENCH_service.json` daemon load report: refit
/// throughput plus query latency percentiles under concurrent refit —
/// no `records` array).
fn check_bench(path: &str) -> Result<(), String> {
    let body =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let rep = parse_json(&body).map_err(|e| format!("{path}: {e}"))?;
    let schema = rep
        .get("schema")
        .and_then(Json::as_u64)
        .ok_or(format!("{path}: missing \"schema\""))?;
    if !(1..=5).contains(&schema) {
        return Err(format!("{path}: unknown schema {schema} (want 1..5)"));
    }
    if schema == 4 || schema == 5 {
        for key in ["jobs_per_sec", "query_p50_us", "query_p99_us"] {
            let v = rep
                .get(key)
                .and_then(Json::as_f64)
                .ok_or(format!("{path}: schema {schema} report without \"{key}\""))?;
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("{path}: \"{key}\" not finite-positive"));
            }
        }
        let queries = rep
            .get("queries")
            .and_then(Json::as_u64)
            .ok_or(format!("{path}: schema {schema} report without \"queries\""))?;
        if queries == 0 {
            return Err(format!("{path}: schema {schema} report with zero queries"));
        }
        if schema == 5 {
            // The metrics-overhead fields are ratios/unit costs, so
            // unlike raw latencies they gate portably: the registry
            // must cost < 2% of a median query even on slow CI boxes.
            for key in ["scrape_p99_us", "metrics_per_op_on_ns", "metrics_per_op_off_ns"] {
                let v = rep
                    .get(key)
                    .and_then(Json::as_f64)
                    .ok_or(format!("{path}: schema 5 report without \"{key}\""))?;
                if !v.is_finite() || v < 0.0 {
                    return Err(format!("{path}: \"{key}\" not finite-nonnegative"));
                }
            }
            let overhead = rep
                .get("metrics_overhead_pct")
                .and_then(Json::as_f64)
                .ok_or(format!("{path}: schema 5 report without \"metrics_overhead_pct\""))?;
            if !overhead.is_finite() || overhead < 0.0 {
                return Err(format!("{path}: \"metrics_overhead_pct\" not finite-nonnegative"));
            }
            if overhead >= 2.0 {
                return Err(format!(
                    "{path}: metrics overhead {overhead}% breaches the 2% budget"
                ));
            }
        }
        println!("{path}: OK (service load report, schema {schema}, {queries} queries)");
        return Ok(());
    }
    if schema == 2 {
        rep.get("simd")
            .and_then(Json::as_str)
            .ok_or(format!("{path}: schema 2 report without \"simd\""))?;
    }
    if schema == 3 {
        let pick = rep
            .get("auto_pick")
            .and_then(Json::as_str)
            .ok_or(format!("{path}: schema 3 report without \"auto_pick\""))?;
        if pick.is_empty() {
            return Err(format!("{path}: empty \"auto_pick\""));
        }
        let sweep = rep
            .get("sweep_speedup")
            .and_then(Json::as_f64)
            .ok_or(format!("{path}: schema 3 report without \"sweep_speedup\""))?;
        if !sweep.is_finite() || sweep <= 0.0 {
            return Err(format!("{path}: \"sweep_speedup\" not finite-positive"));
        }
    }
    let records = rep
        .get("records")
        .and_then(Json::as_arr)
        .ok_or(format!("{path}: missing \"records\" array"))?;
    if records.is_empty() {
        return Err(format!("{path}: empty \"records\" array"));
    }
    for (i, r) in records.iter().enumerate() {
        r.get("mode")
            .and_then(Json::as_u64)
            .ok_or(format!("{path}: record {i} without \"mode\""))?;
        let numeric: Vec<&str> = match schema {
            1 => vec!["legacy_ns", "vectorized_ns", "speedup"],
            2 => vec!["legacy_ns", "vectorized_ns", "speedup", "bytes_per_ns"],
            _ => vec!["csf_ns", "alto_ns", "speedup"],
        };
        if schema <= 2 {
            r.get("accum")
                .and_then(Json::as_str)
                .ok_or(format!("{path}: record {i} without \"accum\""))?;
        }
        if schema == 2 {
            r.get("simd")
                .and_then(Json::as_str)
                .ok_or(format!("{path}: schema 2 record {i} without \"simd\""))?;
        }
        for key in numeric {
            let v = r
                .get(key)
                .and_then(Json::as_f64)
                .ok_or(format!("{path}: record {i} \"{key}\" missing or null"))?;
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("{path}: record {i} \"{key}\" not finite-positive"));
            }
        }
    }
    println!(
        "{path}: OK ({} records, schema {schema})",
        records.len()
    );
    Ok(())
}

/// Validates a saved `/metrics` scrape: parses the Prometheus text
/// exposition with the library's own strict parser, requires the core
/// instrumentation families, and checks every histogram series for
/// cumulative-bucket monotonicity ending in `+Inf`.
fn check_prometheus(path: &str) -> Result<(), String> {
    let body =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let samples =
        stef::parse_prometheus_text(&body).map_err(|e| format!("{path}: {e}"))?;
    if samples.is_empty() {
        return Err(format!("{path}: no samples"));
    }
    let total = |name: &str| -> f64 {
        samples
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.value)
            .sum()
    };
    // Families one mid-soak scrape of a working daemon must carry:
    // HTTP service, supervisor outcomes, kernel sweeps, uptime.
    for family in [
        "stef_uptime_seconds",
        "stef_http_requests_total",
        "stef_jobs_completed_total",
        "stef_mttkrp_seconds_count",
        "stef_snapshot_generations",
    ] {
        if !samples.iter().any(|s| s.name == family) {
            return Err(format!("{path}: missing family \"{family}\""));
        }
    }
    for family in ["stef_http_requests_total", "stef_jobs_completed_total"] {
        if total(family) <= 0.0 {
            return Err(format!("{path}: \"{family}\" is zero in a post-soak scrape"));
        }
    }
    // Histogram sanity: group _bucket samples by (name, labels minus
    // le); within a series, counts must be cumulative and end at +Inf.
    let mut series: std::collections::BTreeMap<String, Vec<(f64, f64)>> =
        std::collections::BTreeMap::new();
    for s in samples.iter().filter(|s| s.name.ends_with("_bucket")) {
        let le = s
            .label("le")
            .ok_or(format!("{path}: {} sample without \"le\"", s.name))?;
        let le = if le == "+Inf" {
            f64::INFINITY
        } else {
            le.parse::<f64>()
                .map_err(|_| format!("{path}: {} has bad le \"{le}\"", s.name))?
        };
        let mut key = s.name.clone();
        for (k, v) in &s.labels {
            if k != "le" {
                key.push_str(&format!(",{k}={v}"));
            }
        }
        series.entry(key).or_default().push((le, s.value));
    }
    let mut histograms = 0usize;
    for (key, mut buckets) in series {
        buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut prev = 0.0;
        for &(le, count) in &buckets {
            if count < prev {
                return Err(format!(
                    "{path}: histogram {key} not cumulative at le={le} ({count} < {prev})"
                ));
            }
            prev = count;
        }
        match buckets.last() {
            Some(&(le, _)) if le.is_infinite() => {}
            _ => return Err(format!("{path}: histogram {key} has no +Inf bucket")),
        }
        histograms += 1;
    }
    if histograms == 0 {
        return Err(format!("{path}: no histogram series at all"));
    }
    println!(
        "{path}: OK ({} samples, {histograms} histogram series, buckets cumulative)",
        samples.len()
    );
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (metrics, trace, benches) = match argv.as_slice() {
        [m, t, rest @ ..] => (m, t, rest),
        _ => {
            eprintln!(
                "usage: validate_telemetry <metrics.jsonl> <trace.json> \
                 [BENCH_*.json | scrape.prom ...]"
            );
            return ExitCode::from(2);
        }
    };
    let result = check_metrics(metrics)
        .and_then(|()| check_trace(trace))
        .and_then(|()| {
            benches.iter().try_for_each(|b| {
                if b.ends_with(".prom") {
                    check_prometheus(b)
                } else {
                    check_bench(b)
                }
            })
        });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("validate_telemetry: {e}");
            ExitCode::FAILURE
        }
    }
}
