//! Figure 6: ablation study of the paper's three optimizations, R = 32.
//!
//! Baseline = the model-chosen configuration. Each ablation flips one
//! choice and reports `100 × t_model / t_ablated` — "percent of
//! model-chosen performance", below 100% meaning the ablated run is
//! slower (i.e. the optimization helps):
//!
//! * **work distribution off** — slice-based scheduling instead of
//!   nnz-balanced (paper: −39% average on both machines);
//! * **save-all / save-none** — both extreme memoization policies
//!   instead of the data-movement model (paper: model wins by 12–13%
//!   on average, dramatically on a few tensors);
//! * **opposite mode order** — invert the model's last-two-mode switch
//!   (paper: −55% / −37% average).
//!
//! ```text
//! cargo run -p stef-bench --release --bin fig6
//! ```

use stef::{LoadBalance, MemoPolicy, ModeSwitchPolicy, Stef, StefOptions};
use stef_bench::{suite_selection, time_mttkrp_sweep, BenchConfig, Table};

struct Fig6Row {
    tensor: String,
    model_seconds: f64,
    /// (ablation label, seconds, percent of model-chosen performance)
    ablations: Vec<(String, f64, f64)>,
}
stef_bench::impl_to_json!(Fig6Row {
    tensor,
    model_seconds,
    ablations,
});

const RANK: usize = 32;

fn main() {
    let config = BenchConfig::from_env();
    println!(
        "Figure 6 analogue: ablations at R={RANK} (scale {:?}, {} reps)\n\
         100% = model-chosen configuration; below 100% = slower without\n\
         that optimization.\n",
        config.scale, config.reps
    );

    type Variant = (&'static str, Box<dyn Fn(&mut StefOptions)>);
    let variants: Vec<Variant> = vec![
        (
            "no-load-balance",
            Box::new(|o: &mut StefOptions| o.load_balance = LoadBalance::SliceBased),
        ),
        (
            "save-all",
            Box::new(|o: &mut StefOptions| o.memo = MemoPolicy::SaveAll),
        ),
        (
            "save-none",
            Box::new(|o: &mut StefOptions| o.memo = MemoPolicy::SaveNone),
        ),
        (
            "opposite-order",
            Box::new(|o: &mut StefOptions| o.mode_switch = ModeSwitchPolicy::OppositeOfModel),
        ),
    ];

    let mut rows: Vec<Fig6Row> = Vec::new();
    let mut table = Table::new(&[
        "Tensor",
        "model (ms)",
        "no-load-balance",
        "save-all",
        "save-none",
        "opposite-order",
    ]);
    for spec in suite_selection() {
        let t = spec.generate(config.scale);
        let mut base_opts = StefOptions::new(RANK);
        base_opts.num_threads = config.nthreads;
        let mut model_engine = Stef::prepare(&t, base_opts.clone());
        let t_model = time_mttkrp_sweep(&mut model_engine, RANK, config.reps).best_seconds;

        let mut cells = vec![spec.name.to_string(), format!("{:.2}", t_model * 1e3)];
        let mut ablations = Vec::new();
        for (label, mutate) in &variants {
            let mut opts = base_opts.clone();
            mutate(&mut opts);
            let mut engine = Stef::prepare(&t, opts);
            let t_abl = time_mttkrp_sweep(&mut engine, RANK, config.reps).best_seconds;
            let pct = 100.0 * t_model / t_abl;
            cells.push(format!("{pct:.0}%"));
            ablations.push((label.to_string(), t_abl, pct));
        }
        table.row(cells);
        rows.push(Fig6Row {
            tensor: spec.name.to_string(),
            model_seconds: t_model,
            ablations,
        });
    }
    println!("{}", table.render());

    // Hardware-independent load-balance model: the paper measured the
    // work-distribution ablation on 18- and 64-core machines; on hosts
    // with fewer cores the wall-clock effect cannot appear, so we also
    // report the schedule's critical-path speedup (total work / max
    // per-thread work) at both of the paper's thread counts.
    println!("Simulated parallel speedup (total work / max thread work):");
    let mut lb_table = Table::new(&[
        "Tensor",
        "nnz-bal @18",
        "slice @18",
        "nnz-bal @64",
        "slice @64",
    ]);
    let mut lb_rows: Vec<(String, [f64; 4])> = Vec::new();
    for spec in suite_selection() {
        let t = spec.generate(config.scale);
        let order = sptensor::sort_modes_by_length(t.dims());
        let csf = sptensor::build_csf(&t, &order);
        let vals = [
            stef::Schedule::nnz_balanced(&csf, 18).simulated_speedup(),
            stef::Schedule::slice_based(&csf, 18).simulated_speedup(),
            stef::Schedule::nnz_balanced(&csf, 64).simulated_speedup(),
            stef::Schedule::slice_based(&csf, 64).simulated_speedup(),
        ];
        lb_table.row(vec![
            spec.name.to_string(),
            format!("{:.1}x", vals[0]),
            format!("{:.1}x", vals[1]),
            format!("{:.1}x", vals[2]),
            format!("{:.1}x", vals[3]),
        ]);
        lb_rows.push((spec.name.to_string(), vals));
    }
    println!("{}", lb_table.render());
    let _ = stef_bench::write_json("fig6_loadbalance", &lb_rows);

    for (i, (label, _)) in variants.iter().enumerate() {
        let avg: f64 = rows.iter().map(|r| r.ablations[i].2).sum::<f64>() / rows.len() as f64;
        println!("{label}: average {avg:.0}% of model-chosen performance");
    }
    println!(
        "\nPaper shape check: no-load-balance well below 100% on average\n\
         (worst on the vast-* tensors); save-all and save-none each below\n\
         100% on *some* tensors (the model should rarely lose to either);\n\
         opposite-order well below 100% on tensors where the orders differ."
    );
    if let Some(path) = stef_bench::write_json("fig6", &rows) {
        println!("JSON written to {}", path.display());
    }
}
