//! Table I: properties of the tensor suite.
//!
//! Prints the dimension/nnz table of the paper plus the structural
//! statistics the rest of the evaluation hinges on (root slice count,
//! slice imbalance, per-level fiber counts at the CSF's length order).
//!
//! ```text
//! cargo run -p stef-bench --release --bin table1
//! ```

use sptensor::{build_csf, sort_modes_by_length, TensorStats};
use stef_bench::{suite_selection, BenchConfig, Table};

struct Table1Row {
    tensor: String,
    dims: Vec<usize>,
    dims_string: String,
    nnz: usize,
    root_slices: usize,
    slice_imbalance: f64,
    fiber_counts: Vec<usize>,
    mode_order: Vec<usize>,
}
stef_bench::impl_to_json!(Table1Row {
    tensor,
    dims,
    dims_string,
    nnz,
    root_slices,
    slice_imbalance,
    fiber_counts,
    mode_order,
});

fn main() {
    let config = BenchConfig::from_env();
    println!(
        "Table I analogue: tensor suite at scale {:?}\n",
        config.scale
    );
    let mut table = Table::new(&[
        "Tensor",
        "Dimensions",
        "NNZ",
        "Root slices",
        "Slice imbalance",
        "Fibers per level",
    ]);
    let mut rows = Vec::new();
    for spec in suite_selection() {
        let t = spec.generate(config.scale);
        let order = sort_modes_by_length(t.dims());
        let csf = build_csf(&t, &order);
        let stats = TensorStats::from_csf(&csf, t.dims());
        table.row(vec![
            spec.name.to_string(),
            stats.dims_string(),
            stats.nnz_string(),
            format!("{}", stats.root_slices),
            format!("{:.2}x", stats.slice_imbalance),
            format!("{:?}", stats.fiber_counts),
        ]);
        rows.push(Table1Row {
            tensor: spec.name.to_string(),
            dims: t.dims().to_vec(),
            dims_string: stats.dims_string(),
            nnz: stats.nnz,
            root_slices: stats.root_slices,
            slice_imbalance: stats.slice_imbalance,
            fiber_counts: stats.fiber_counts.clone(),
            mode_order: order,
        });
    }
    println!("{}", table.render());
    if let Some(path) = stef_bench::write_json("table1", &rows) {
        println!("JSON written to {}", path.display());
    }
    println!(
        "\nNote: synthetic analogues of the FROSTT/HaTen2 suite (same mode\n\
         counts and length ratios, scaled nnz); see DESIGN.md for the\n\
         substitution rationale. Real .tns files can be loaded with\n\
         sptensor::io::read_tns_file."
    );
}
