//! Figure 5: preprocessing overhead of the mode-switch decision.
//!
//! Algorithm 9 computes the swapped-order fiber count so the model can
//! decide whether to switch the last two modes. The paper shows this
//! preprocessing as a fraction of one CPD iteration's MTTKRP time, for
//! R ∈ {32, 64} — always below 100%, i.e. amortized after one iteration.
//!
//! ```text
//! cargo run -p stef-bench --release --bin fig5
//! ```

use sptensor::{build_csf, sort_modes_by_length};
use stef::{LevelProfile, Stef, StefOptions};
use stef_bench::{render_bar_chart, suite_selection, time_mttkrp_sweep, BenchConfig, Table};

struct Fig5Row {
    tensor: String,
    preprocess_seconds: f64,
    sweep_seconds_r32: f64,
    sweep_seconds_r64: f64,
    overhead_pct_r32: f64,
    overhead_pct_r64: f64,
}
stef_bench::impl_to_json!(Fig5Row {
    tensor,
    preprocess_seconds,
    sweep_seconds_r32,
    sweep_seconds_r64,
    overhead_pct_r32,
    overhead_pct_r64,
});

fn main() {
    let config = BenchConfig::from_env();
    println!(
        "Figure 5 analogue: Algorithm 9 preprocessing vs one MTTKRP sweep (scale {:?})\n",
        config.scale
    );
    let mut rows = Vec::new();
    let mut table = Table::new(&[
        "Tensor",
        "Alg.9 (ms)",
        "Sweep R=32 (ms)",
        "Sweep R=64 (ms)",
        "Overhead R=32",
        "Overhead R=64",
    ]);
    for spec in suite_selection() {
        let t = spec.generate(config.scale);
        let order = sort_modes_by_length(t.dims());
        let csf = build_csf(&t, &order);

        // Time Algorithm 9 (the swapped-profile computation).
        let reps = config.reps.max(3);
        let mut pre = f64::INFINITY;
        for _ in 0..reps {
            let t0 = std::time::Instant::now();
            std::hint::black_box(LevelProfile::swapped_from_csf(&csf, 32, 16 << 20));
            pre = pre.min(t0.elapsed().as_secs_f64());
        }

        let mut sweep = [0.0f64; 2];
        for (k, rank) in [32usize, 64].into_iter().enumerate() {
            let mut opts = StefOptions::new(rank);
            opts.num_threads = config.nthreads;
            let mut engine = Stef::prepare(&t, opts);
            sweep[k] = time_mttkrp_sweep(&mut engine, rank, config.reps).best_seconds;
        }
        let pct32 = 100.0 * pre / sweep[0];
        let pct64 = 100.0 * pre / sweep[1];
        table.row(vec![
            spec.name.to_string(),
            format!("{:.2}", pre * 1e3),
            format!("{:.2}", sweep[0] * 1e3),
            format!("{:.2}", sweep[1] * 1e3),
            format!("{pct32:.1}%"),
            format!("{pct64:.1}%"),
        ]);
        rows.push(Fig5Row {
            tensor: spec.name.to_string(),
            preprocess_seconds: pre,
            sweep_seconds_r32: sweep[0],
            sweep_seconds_r64: sweep[1],
            overhead_pct_r32: pct32,
            overhead_pct_r64: pct64,
        });
    }
    println!("{}", table.render());
    let avg32 = rows.iter().map(|r| r.overhead_pct_r32).sum::<f64>() / rows.len() as f64;
    let avg64 = rows.iter().map(|r| r.overhead_pct_r64).sum::<f64>() / rows.len() as f64;
    println!("Average overhead: {avg32:.1}% (R=32), {avg64:.1}% (R=64)");
    println!(
        "Paper shape check: averages ~19-25% (R=32) / ~10-14% (R=64); every\n\
         bar below 100% => the decision amortizes within one CPD iteration.\n"
    );
    let chart: Vec<(String, f64)> = rows
        .iter()
        .map(|r| (r.tensor.clone(), r.overhead_pct_r32))
        .collect();
    println!("Overhead %% at R=32:\n{}", render_bar_chart(&chart, 40));
    if let Some(path) = stef_bench::write_json("fig5", &rows) {
        println!("JSON written to {}", path.display());
    }
}
