//! # stef-bench — the harness that regenerates every table and figure
//!
//! One binary per artifact of the paper's evaluation (§VI):
//!
//! | binary    | regenerates |
//! |-----------|-------------|
//! | `table1`  | Table I — tensor suite properties |
//! | `table2`  | Table II — memoized-partial space requirements |
//! | `fig3_4`  | Figures 3/4 — per-tensor speedup of all 8 algorithms over `splatt-all`, R ∈ {32, 64} |
//! | `fig5`    | Figure 5 — preprocessing overhead of the mode-switch decision (Algorithm 9) |
//! | `fig6`    | Figure 6 — ablations: work distribution, memoization policy, mode-order choice |
//!
//! Each binary prints a human-readable table and writes machine-readable
//! JSON under `target/stef-results/`. Scale and repetitions are
//! controlled by environment variables:
//!
//! * `STEF_SCALE` — `tiny` (CI smoke), `small` (default), `full`
//! * `STEF_REPS` — timed repetitions per measurement (default 3)
//! * `STEF_TENSORS` — comma-separated subset of suite names
//!
//! Criterion micro-benchmarks (kernel-, scheduler-, model- and
//! format-level) live under `benches/`.

pub mod harness;
pub mod report;

pub use harness::{
    geomean, parse_scale, suite_selection, time_mttkrp_sweep, BenchConfig, SweepTiming,
};
pub use report::{
    json_escape, parse_json, render_bar_chart, write_json, write_json_at, Json, Table, ToJson,
};
