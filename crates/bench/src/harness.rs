//! Timing utilities shared by the table/figure binaries.

use stef::{init_factors, MttkrpEngine};
use workloads::{paper_suite, SuiteScale, SuiteSpec};

/// Runtime configuration read from the environment.
#[derive(Clone, Debug)]
pub struct BenchConfig {
    /// Suite scale.
    pub scale: SuiteScale,
    /// Timed repetitions per measurement.
    pub reps: usize,
    /// Logical thread count handed to engines (0 = rayon pool size).
    pub nthreads: usize,
}

impl BenchConfig {
    /// Reads `STEF_SCALE`, `STEF_REPS` and `STEF_THREADS`.
    pub fn from_env() -> Self {
        let scale = parse_scale(
            std::env::var("STEF_SCALE")
                .unwrap_or_else(|_| "small".into())
                .as_str(),
        );
        let reps = std::env::var("STEF_REPS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(3)
            .max(1);
        let nthreads = std::env::var("STEF_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        BenchConfig {
            scale,
            reps,
            nthreads,
        }
    }
}

/// Parses a scale name (defaults to `Small` for unknown strings).
pub fn parse_scale(s: &str) -> SuiteScale {
    match s.to_ascii_lowercase().as_str() {
        "tiny" => SuiteScale::Tiny,
        "full" => SuiteScale::Full,
        _ => SuiteScale::Small,
    }
}

/// The suite, filtered by the optional `STEF_TENSORS` comma list.
pub fn suite_selection() -> Vec<SuiteSpec> {
    let all = paper_suite();
    match std::env::var("STEF_TENSORS") {
        Ok(list) => {
            let wanted: Vec<String> = list
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            all.into_iter()
                .filter(|s| wanted.iter().any(|w| w == s.name))
                .collect()
        }
        Err(_) => all,
    }
}

/// Result of timing one engine's full MTTKRP sweep (all modes once — one
/// CPD iteration's worth, the unit the paper's Figures 3/4 report).
#[derive(Clone, Debug)]
pub struct SweepTiming {
    /// Engine name.
    pub name: String,
    /// Best (minimum) seconds over the timed repetitions.
    pub best_seconds: f64,
    /// Median seconds.
    pub median_seconds: f64,
}

/// Times `reps` full MTTKRP sweeps (after one untimed warm-up sweep that
/// also lets auto-tuners settle) with fixed factor matrices.
///
/// Factor updates are excluded on purpose: the paper's performance
/// comparison isolates the MTTKRP kernels, and keeping factors fixed
/// keeps every engine's memoized state valid sweep after sweep.
pub fn time_mttkrp_sweep(engine: &mut dyn MttkrpEngine, rank: usize, reps: usize) -> SweepTiming {
    let dims = engine.dims().to_vec();
    let factors = init_factors(&dims, rank, 7);
    let sweep = engine.sweep_order();
    // Warm-up (plus candidate settling for auto-tuned engines: TACO-like
    // needs one measured call per candidate per mode).
    for _ in 0..4 {
        for &m in &sweep {
            std::hint::black_box(engine.mttkrp(&factors, m));
        }
    }
    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        for &m in &sweep {
            std::hint::black_box(engine.mttkrp(&factors, m));
        }
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    SweepTiming {
        name: engine.name(),
        best_seconds: times[0],
        median_seconds: times[times.len() / 2],
    }
}

/// Geometric mean of strictly positive values (1.0 for an empty slice).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = xs.iter().map(|&x| x.max(1e-300).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stef::{ReferenceEngine, Stef, StefOptions};
    use workloads::uniform_tensor;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 1.0);
    }

    #[test]
    fn parse_scale_accepts_all_names() {
        assert_eq!(parse_scale("tiny"), SuiteScale::Tiny);
        assert_eq!(parse_scale("FULL"), SuiteScale::Full);
        assert_eq!(parse_scale("anything"), SuiteScale::Small);
    }

    #[test]
    fn timing_returns_positive_times() {
        let t = uniform_tensor(&[20, 20, 20], 2_000, 1);
        let mut engine = Stef::prepare(&t, StefOptions::new(4));
        let timing = time_mttkrp_sweep(&mut engine, 4, 2);
        assert!(timing.best_seconds > 0.0);
        assert!(timing.median_seconds >= timing.best_seconds);
        assert_eq!(timing.name, "stef");
    }

    #[test]
    fn timing_works_on_reference_engine() {
        let t = uniform_tensor(&[10, 10, 10], 300, 2);
        let mut engine = ReferenceEngine::new(t);
        let timing = time_mttkrp_sweep(&mut engine, 2, 1);
        assert!(timing.best_seconds > 0.0);
    }

    #[test]
    fn suite_selection_returns_full_suite_without_env() {
        // (Assumes STEF_TENSORS is unset in the test environment.)
        if std::env::var("STEF_TENSORS").is_err() {
            assert_eq!(suite_selection().len(), 16);
        }
    }
}
