//! Design-choice ablations at the kernel level (DESIGN.md §4):
//!
//! * **memoize vs recompute across fanout** — sweeping the leaf-fiber
//!   fanout moves the workload across the crossover the data-movement
//!   model exists to find: at fanout ≈ 1 (freebase-like) memoization
//!   reads as much as it saves; at high fanout (nell-2-like) recompute
//!   re-traverses many leaves per fiber;
//! * **boundary replication vs atomics** for the mode-0 output;
//! * **nnz-balanced vs slice scheduling** under a starved root.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use linalg::Mat;
use sptensor::build_csf;
use stef::kernels::{mode0_pass, modeu_pass, KernelCtx, ResolvedAccum};
use stef::{init_factors, LoadBalance, PartialStore, Schedule};
use workloads::{power_law_tensor, split_root_tensor};

fn bench_memo_crossover(c: &mut Criterion) {
    let mut group = c.benchmark_group("memo_crossover");
    group.sample_size(10);
    let rank = 32;
    let nnz = 120_000;
    // Shrinking the middle dimension shrinks the number of distinct
    // (i, j) fibers, raising the average leaf fanout: the memoized
    // P^(1) gets smaller while recompute still walks all the leaves.
    for mid_dim in [2_000usize, 200, 20, 4] {
        let t = power_law_tensor(&[500, mid_dim, 100_000], nnz, &[0.4, 0.3, 0.0], 5);
        let csf = build_csf(&t, &[0, 1, 2]);
        let fanout = csf.nnz() as f64 / csf.nfibers(1) as f64;
        let nthreads = rayon::current_num_threads();
        let sched = Schedule::build(&csf, nthreads, LoadBalance::NnzBalanced);
        let factors = init_factors(t.dims(), rank, 7);
        let refs: Vec<&Mat> = factors.iter().collect();

        // Memoized path: mode-0 storing P^(1), then mode-1 from memo.
        let mut saved = PartialStore::allocate(&csf, &[false, true, false], nthreads, rank);
        {
            let ctx = KernelCtx::new(&csf, &sched, refs.clone(), rank);
            let mut out0 = Mat::zeros(t.dims()[0], rank);
            mode0_pass(&ctx, &mut saved, &mut out0);
        }
        group.bench_with_input(
            BenchmarkId::new(format!("memoized_fanout_{fanout:.1}"), mid_dim),
            &mid_dim,
            |b, _| {
                let ctx = KernelCtx::new(&csf, &sched, refs.clone(), rank);
                b.iter(|| modeu_pass(&ctx, &mut saved, 1, ResolvedAccum::Privatized, true));
            },
        );
        group.bench_with_input(
            BenchmarkId::new(format!("recompute_fanout_{fanout:.1}"), mid_dim),
            &mid_dim,
            |b, _| {
                let ctx = KernelCtx::new(&csf, &sched, refs.clone(), rank);
                b.iter(|| modeu_pass(&ctx, &mut saved, 1, ResolvedAccum::Privatized, false));
            },
        );
    }
    group.finish();
}

fn bench_scheduling_under_starved_root(c: &mut Criterion) {
    let mut group = c.benchmark_group("starved_root_scheduling");
    group.sample_size(10);
    let rank = 32;
    let t = split_root_tensor(&[2, 4_000, 4_000], 150_000, 0.85, &[0.0, 0.3, 0.3], 9);
    let csf = build_csf(&t, &[0, 1, 2]);
    let factors = init_factors(t.dims(), rank, 7);
    let refs: Vec<&Mat> = factors.iter().collect();
    let nthreads = rayon::current_num_threads().max(2);
    for (label, kind) in [
        ("nnz_balanced", LoadBalance::NnzBalanced),
        ("slice_based", LoadBalance::SliceBased),
    ] {
        let sched = Schedule::build(&csf, nthreads, kind);
        let mut partials = PartialStore::empty(3, nthreads, rank);
        group.bench_function(label, |b| {
            let ctx = KernelCtx::new(&csf, &sched, refs.clone(), rank);
            let mut out0 = Mat::zeros(2, rank);
            b.iter(|| mode0_pass(&ctx, &mut partials, &mut out0));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_memo_crossover,
    bench_scheduling_under_starved_root
);
criterion_main!(benches);
