//! Kernel-level A/B benchmark: the allocation-free vectorized MTTKRP
//! path (`stef::kernels`) against the original recursive implementation
//! (`stef::kernels_legacy`), per mode and per accumulation strategy.
//!
//! Besides the usual stderr table this bench writes the tracked
//! trajectory file `BENCH_mttkrp.json` at the repo root so the speedup
//! of the kernel rewrite is recorded alongside the code.
//!
//! Environment knobs:
//!
//! * `STEF_BENCH_NNZ`  — nonzeros in the synthetic tensor (default 200 000)
//! * `STEF_BENCH_RANK` — factor rank (default 16)
//! * `STEF_THREADS`    — logical threads in the schedule (default 8)
//! * `STEF_REPS`       — timed repetitions, best-of (default 5)
//! * `STEF_RUNTIME`    — `pool` (persistent worker pool, default) or
//!   `scoped` (per-dispatch `std::thread::scope`) for the vectorized path

use linalg::Mat;
use sptensor::build_csf;
use std::time::Instant;
use stef::kernels::{mode0_with, modeu_with, KernelCtx, ResolvedAccum};
use stef::kernels_legacy;
use stef::{init_factors, LoadBalance, PartialStore, Schedule, Workspace};
use stef_bench::{impl_to_json, write_json_at, Table};
use workloads::power_law_tensor;

/// One mode × accumulation-strategy measurement (best-of-reps, ns).
struct Record {
    mode: usize,
    accum: String,
    use_saved: bool,
    legacy_ns: f64,
    vectorized_ns: f64,
    speedup: f64,
}
impl_to_json!(Record {
    mode,
    accum,
    use_saved,
    legacy_ns,
    vectorized_ns,
    speedup
});

struct Report {
    schema: usize,
    bench: String,
    dims: Vec<usize>,
    nnz: usize,
    rank: usize,
    threads: usize,
    reps: usize,
    runtime: String,
    pool_workers: usize,
    records: Vec<Record>,
}
impl_to_json!(Report {
    schema,
    bench,
    dims,
    nnz,
    rank,
    threads,
    reps,
    runtime,
    pool_workers,
    records
});

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
        .max(1)
}

/// Best-of-`reps` wall time in nanoseconds, after `warmups` untimed runs.
fn best_ns(warmups: usize, reps: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..warmups {
        f();
    }
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_nanos() as f64);
    }
    best
}

fn accum_name(a: ResolvedAccum) -> &'static str {
    match a {
        ResolvedAccum::Privatized => "privatized",
        ResolvedAccum::Atomic => "atomic",
    }
}

fn main() {
    let nnz = env_usize("STEF_BENCH_NNZ", 200_000);
    let rank = env_usize("STEF_BENCH_RANK", 16);
    let nthreads = env_usize("STEF_THREADS", 8);
    let reps = env_usize("STEF_REPS", 5);
    let runtime = match std::env::var("STEF_RUNTIME").as_deref() {
        Ok("scoped") => stef::Runtime::Scoped,
        _ => stef::Runtime::Pool,
    };
    let dims = [2_000usize, 5_000, 8_000];

    let t = power_law_tensor(&dims, nnz, &[0.8, 0.5, 0.3], 42);
    let csf = build_csf(&t, &[0, 1, 2]);
    let d = csf.ndim();
    let sched = Schedule::build(&csf, nthreads, LoadBalance::NnzBalanced);
    let factors = init_factors(&dims, rank, 7);
    let refs: Vec<&Mat> = factors.iter().collect();
    let ctx = KernelCtx::new(&csf, &sched, refs, rank);

    // Memoize P^(1) — the paper's standard 3-way configuration.
    let save = [false, true, false];
    let mut partials = PartialStore::allocate(&csf, &save, nthreads, rank);
    let max_dim = *csf.level_dims().iter().max().unwrap();
    let mut ws = Workspace::new(d, rank, nthreads, max_dim);
    let rt = stef::Executor::new(runtime, stef::runtime::resolve_workers(0));

    eprintln!(
        "mttkrp A/B: dims {dims:?}, {} nnz, rank {rank}, {nthreads} logical threads, \
         {:?} runtime ({} workers), best of {reps} \
         (legacy = pre-rewrite recursive kernels)",
        t.nnz(),
        rt.kind(),
        rt.workers()
    );

    let mut records: Vec<Record> = Vec::new();

    // Mode 0 (root pass, stores partials; output rows are disjoint per
    // subtree so the accumulation strategy does not apply).
    {
        let mut out = Mat::zeros(csf.level_dims()[0], rank);
        let legacy = best_ns(2, reps, || {
            kernels_legacy::mode0_pass(&ctx, &mut partials, &mut out);
        });
        let views = partials.shared_views();
        let vectorized = {
            let mut out = Mat::zeros(csf.level_dims()[0], rank);
            best_ns(2, reps, || {
                mode0_with(&ctx, &views, &rt, &mut ws, &mut out);
            })
        };
        records.push(Record {
            mode: 0,
            accum: "n/a".into(),
            use_saved: false,
            legacy_ns: legacy,
            vectorized_ns: vectorized,
            speedup: legacy / vectorized,
        });
    }

    // Modes 1..d, both accumulation strategies. Partials are fresh: the
    // mode-0 timing loop just rebuilt them with fixed factors.
    for u in 1..d {
        let use_saved = save[u];
        for accum in [ResolvedAccum::Privatized, ResolvedAccum::Atomic] {
            let legacy = best_ns(2, reps, || {
                std::hint::black_box(kernels_legacy::modeu_pass(
                    &ctx,
                    &mut partials,
                    u,
                    accum,
                    use_saved,
                ));
            });
            let views = partials.shared_views();
            let vectorized = {
                let mut out = Mat::zeros(csf.level_dims()[u], rank);
                best_ns(2, reps, || {
                    modeu_with(&ctx, &views, use_saved, u, accum, &rt, &mut ws, &mut out);
                })
            };
            records.push(Record {
                mode: u,
                accum: accum_name(accum).into(),
                use_saved,
                legacy_ns: legacy,
                vectorized_ns: vectorized,
                speedup: legacy / vectorized,
            });
        }
    }

    let mut table = Table::new(&[
        "mode",
        "accum",
        "memo",
        "legacy (ms)",
        "vectorized (ms)",
        "speedup",
    ]);
    for r in &records {
        table.row(vec![
            r.mode.to_string(),
            r.accum.clone(),
            if r.use_saved { "saved" } else { "-" }.to_string(),
            format!("{:.3}", r.legacy_ns / 1e6),
            format!("{:.3}", r.vectorized_ns / 1e6),
            format!("{:.2}x", r.speedup),
        ]);
    }
    eprintln!("{}", table.render());

    let report = Report {
        schema: 1,
        bench: "mttkrp_legacy_vs_vectorized".into(),
        dims: dims.to_vec(),
        nnz: t.nnz(),
        rank,
        threads: nthreads,
        reps,
        runtime: format!("{:?}", rt.kind()).to_lowercase(),
        pool_workers: rt.workers(),
        records,
    };
    // `cargo bench` runs benches from the crate dir; the repo root is
    // two levels up from crates/bench.
    let root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| std::path::PathBuf::from("."));
    if let Some(path) = write_json_at(root.join("BENCH_mttkrp.json"), &report) {
        eprintln!("wrote {}", path.display());
    }
}
