//! Kernel-level benchmarks: mode-0 (with and without memo stores), an
//! internal mode consuming a memoized partial vs recomputing, and the
//! leaf mode — the per-kernel costs behind Figures 3/4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_kernels(c: &mut Criterion) {
    use linalg::Mat;
    use sptensor::build_csf;
    use stef::kernels::{mode0_pass, modeu_pass, KernelCtx, ResolvedAccum};
    use stef::{init_factors, LoadBalance, PartialStore, Schedule};
    use workloads::power_law_tensor;

    let dims = [2_000usize, 5_000, 8_000];
    let nnz = 200_000;
    let rank = 32;
    let t = power_law_tensor(&dims, nnz, &[0.8, 0.5, 0.3], 42);
    let csf = build_csf(&t, &[0, 1, 2]);
    let nthreads = rayon::current_num_threads();
    let sched = Schedule::build(&csf, nthreads, LoadBalance::NnzBalanced);
    let factors = init_factors(&dims, rank, 7);
    let refs: Vec<&Mat> = factors.iter().collect();

    let mut group = c.benchmark_group("mttkrp_kernels");
    group.sample_size(10);

    group.bench_function("mode0_no_memo", |b| {
        let mut partials = PartialStore::empty(3, nthreads, rank);
        let ctx = KernelCtx::new(&csf, &sched, refs.clone(), rank);
        let mut out = Mat::zeros(dims[0], rank);
        b.iter(|| mode0_pass(&ctx, &mut partials, &mut out));
    });

    group.bench_function("mode0_saving_p1", |b| {
        let mut partials = PartialStore::allocate(&csf, &[false, true, false], nthreads, rank);
        let ctx = KernelCtx::new(&csf, &sched, refs.clone(), rank);
        let mut out = Mat::zeros(dims[0], rank);
        b.iter(|| mode0_pass(&ctx, &mut partials, &mut out));
    });

    // Internal mode: memoized load vs full recompute.
    let mut partials = PartialStore::allocate(&csf, &[false, true, false], nthreads, rank);
    {
        let ctx = KernelCtx::new(&csf, &sched, refs.clone(), rank);
        let mut out = Mat::zeros(dims[0], rank);
        mode0_pass(&ctx, &mut partials, &mut out);
    }
    group.bench_function("mode1_from_memo", |b| {
        let ctx = KernelCtx::new(&csf, &sched, refs.clone(), rank);
        b.iter(|| modeu_pass(&ctx, &mut partials, 1, ResolvedAccum::Privatized, true));
    });
    group.bench_function("mode1_recompute", |b| {
        let ctx = KernelCtx::new(&csf, &sched, refs.clone(), rank);
        b.iter(|| modeu_pass(&ctx, &mut partials, 1, ResolvedAccum::Privatized, false));
    });
    group.bench_function("leaf_mode_scatter", |b| {
        let ctx = KernelCtx::new(&csf, &sched, refs.clone(), rank);
        b.iter(|| modeu_pass(&ctx, &mut partials, 2, ResolvedAccum::Privatized, false));
    });

    // Accumulation strategies at the leaf (scatter-heavy) mode.
    for (label, accum) in [
        ("leaf_privatized", ResolvedAccum::Privatized),
        ("leaf_atomic", ResolvedAccum::Atomic),
    ] {
        group.bench_with_input(BenchmarkId::new("accum", label), &accum, |b, &accum| {
            let ctx = KernelCtx::new(&csf, &sched, refs.clone(), rank);
            b.iter(|| modeu_pass(&ctx, &mut partials, 2, accum, false));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
