//! Kernel-level A/B benchmark: the allocation-free vectorized MTTKRP
//! path (`stef::kernels`) against the original recursive implementation
//! (`stef::kernels_legacy`), per mode, per accumulation strategy and
//! per SIMD dispatch path.
//!
//! Besides the usual stderr table this bench writes the tracked
//! trajectory file `BENCH_mttkrp.json` at the repo root so the speedup
//! of the kernel rewrite is recorded alongside the code.
//!
//! The legacy baseline is always measured with dispatch forced to
//! `scalar` — that is bit- and instruction-identical to the pre-rewrite
//! autovectorized kernels, so speedups stay comparable across the
//! whole trajectory. The vectorized path is measured once per
//! available SIMD variant (`scalar` plus the detected best ISA), one
//! record per variant. Each lane of a cell is timed consecutively
//! (warm caches — alternating lanes would evict each other's working
//! set and penalize the cache-resident modes) with a best-of rep count
//! high enough that every lane finds a quiet window on a shared box.
//!
//! Schema 2 additions: a top-level `simd` field (the detected path),
//! a per-record `simd` field (the dispatch path of that measurement)
//! and a per-record `bytes_per_ns` — the mode's counted kernel traffic
//! (`stef::count_sweep`, elements × 8 bytes) over the vectorized time,
//! i.e. the achieved effective bandwidth of that mode.
//!
//! Environment knobs:
//!
//! * `STEF_BENCH_NNZ`  — nonzeros in the synthetic tensor (default 200 000)
//! * `STEF_BENCH_RANK` — factor rank (default 16)
//! * `STEF_THREADS`    — logical threads in the schedule (default 8)
//! * `STEF_REPS`       — timed repetitions, best-of (default 5)
//! * `STEF_RUNTIME`    — `pool` (persistent worker pool, default) or
//!   `scoped` (per-dispatch `std::thread::scope`) for the vectorized path
//! * `STEF_SIMD`       — forces a single dispatch path; the bench then
//!   records only that variant

use linalg::simd::{self, SimdPath, SimdPolicy};
use linalg::Mat;
use sptensor::build_csf;
use std::time::Instant;
use stef::kernels::{mode0_with, modeu_with, KernelCtx, ResolvedAccum};
use stef::kernels_legacy;
use stef::{count_sweep, init_factors, LoadBalance, PartialStore, Schedule, Workspace};
use stef_bench::{impl_to_json, write_json_at, Table};
use workloads::power_law_tensor;

/// One mode × accumulation-strategy × SIMD-path measurement
/// (best-of-reps, ns). `legacy_ns` is the scalar-dispatch legacy
/// baseline; `bytes_per_ns` is counted kernel traffic over
/// `vectorized_ns`.
struct Record {
    mode: usize,
    accum: String,
    use_saved: bool,
    simd: String,
    legacy_ns: f64,
    vectorized_ns: f64,
    speedup: f64,
    bytes_per_ns: f64,
}
impl_to_json!(Record {
    mode,
    accum,
    use_saved,
    simd,
    legacy_ns,
    vectorized_ns,
    speedup,
    bytes_per_ns
});

struct Report {
    schema: usize,
    bench: String,
    dims: Vec<usize>,
    nnz: usize,
    rank: usize,
    threads: usize,
    reps: usize,
    runtime: String,
    pool_workers: usize,
    simd: String,
    records: Vec<Record>,
}
impl_to_json!(Report {
    schema,
    bench,
    dims,
    nnz,
    rank,
    threads,
    reps,
    runtime,
    pool_workers,
    simd,
    records
});

/// One mode of the engine race: the CSF engine against the linearized
/// (ALTO-style) engine, full-engine `mttkrp` calls (best-of-reps, ns).
struct EngineRecord {
    mode: usize,
    csf_ns: f64,
    alto_ns: f64,
    speedup: f64,
}
impl_to_json!(EngineRecord {
    mode,
    csf_ns,
    alto_ns,
    speedup
});

/// The tracked `BENCH_alto.json` trajectory (schema 3): engine-level
/// CSF vs ALTO on an irregular hypersparse tensor, plus which engine
/// `--engine auto` (the §IV-C pricing) selects for it.
struct EngineReport {
    schema: usize,
    bench: String,
    dims: Vec<usize>,
    nnz: usize,
    rank: usize,
    threads: usize,
    reps: usize,
    simd: String,
    auto_pick: String,
    sweep_speedup: f64,
    records: Vec<EngineRecord>,
}
impl_to_json!(EngineReport {
    schema,
    bench,
    dims,
    nnz,
    rank,
    threads,
    reps,
    simd,
    auto_pick,
    sweep_speedup,
    records
});

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
        .max(1)
}

/// Best-of-`reps` wall time per lane in nanoseconds. Each lane runs its
/// `warmups` untimed reps and then its timed reps *consecutively*:
/// these kernels are cache-resident, and alternating lanes would make
/// every rep a cold-cache run for both sides. Each lane is responsible
/// for forcing its own dispatch path before doing work.
fn race_ns(warmups: usize, reps: usize, lanes: &mut [Box<dyn FnMut() + '_>]) -> Vec<f64> {
    let mut best = vec![f64::INFINITY; lanes.len()];
    for (i, f) in lanes.iter_mut().enumerate() {
        for _ in 0..warmups {
            f();
        }
        for _ in 0..reps {
            let t0 = Instant::now();
            f();
            best[i] = best[i].min(t0.elapsed().as_nanos() as f64);
        }
    }
    best
}

fn accum_name(a: ResolvedAccum) -> &'static str {
    match a {
        ResolvedAccum::Privatized => "privatized",
        ResolvedAccum::Atomic => "atomic",
    }
}

fn main() {
    let nnz = env_usize("STEF_BENCH_NNZ", 200_000);
    let rank = env_usize("STEF_BENCH_RANK", 16);
    let nthreads = env_usize("STEF_THREADS", 8);
    let reps = env_usize("STEF_REPS", 5);
    let runtime = match std::env::var("STEF_RUNTIME").as_deref() {
        Ok("scoped") => stef::Runtime::Scoped,
        _ => stef::Runtime::Pool,
    };
    let dims = [2_000usize, 5_000, 8_000];

    // Dispatch variants to measure: scalar (the trajectory baseline)
    // plus the detected best ISA when one exists. A `STEF_SIMD` env
    // override narrows the bench to that single path.
    let detected = simd::detect();
    let variants: Vec<SimdPath> = match std::env::var("STEF_SIMD") {
        Ok(name) => match SimdPath::parse(name.trim()) {
            Some(p) if p.available() => vec![p],
            _ => vec![detected],
        },
        Err(_) if detected != SimdPath::Scalar => vec![SimdPath::Scalar, detected],
        Err(_) => vec![SimdPath::Scalar],
    };

    let t = power_law_tensor(&dims, nnz, &[0.8, 0.5, 0.3], 42);
    let csf = build_csf(&t, &[0, 1, 2]);
    let d = csf.ndim();
    let sched = Schedule::build(&csf, nthreads, LoadBalance::NnzBalanced);
    let factors = init_factors(&dims, rank, 7);
    let refs: Vec<&Mat> = factors.iter().collect();
    let ctx = KernelCtx::new(&csf, &sched, refs, rank);

    // Memoize P^(1) — the paper's standard 3-way configuration. Legacy
    // and vectorized sides keep separate partial stores so lane order
    // never affects inputs (the mode-0 lanes rebuild them every rep).
    let save = [false, true, false];
    let mut partials = PartialStore::allocate(&csf, &save, nthreads, rank);
    let mut partials_legacy = PartialStore::allocate(&csf, &save, nthreads, rank);
    let max_dim = *csf.level_dims().iter().max().unwrap();
    let ws = std::cell::RefCell::new(Workspace::new(d, rank, nthreads, max_dim));
    let rt = stef::Executor::new(runtime, stef::runtime::resolve_workers(0));

    // Counted kernel traffic per mode (elements), for the effective
    // bandwidth column. Accumulation strategy does not enter the count.
    let traffic = count_sweep(&csf, &save, rank);

    eprintln!(
        "mttkrp A/B: dims {dims:?}, {} nnz, rank {rank}, {nthreads} logical threads, \
         {:?} runtime ({} workers), best of {reps}, simd variants {:?} \
         (legacy = pre-rewrite recursive kernels, scalar dispatch)",
        t.nnz(),
        rt.kind(),
        rt.workers(),
        variants.iter().map(|v| v.as_str()).collect::<Vec<_>>(),
    );

    let mut records: Vec<Record> = Vec::new();
    let mode_bytes = |mode: usize| {
        let (rd, wr) = traffic.per_mode[mode];
        (rd + wr) * 8.0
    };

    let views = partials.shared_views();

    // Mode 0 (root pass, stores partials; output rows are disjoint per
    // subtree so the accumulation strategy does not apply).
    {
        let mut out_l = Mat::zeros(csf.level_dims()[0], rank);
        let mut outs: Vec<Mat> = variants
            .iter()
            .map(|_| Mat::zeros(csf.level_dims()[0], rank))
            .collect();
        let mut lanes: Vec<Box<dyn FnMut()>> = Vec::new();
        {
            let (ctx, pl, out_l) = (&ctx, &mut partials_legacy, &mut out_l);
            lanes.push(Box::new(move || {
                simd::apply(SimdPolicy::Force(SimdPath::Scalar));
                kernels_legacy::mode0_pass(ctx, pl, out_l);
            }));
        }
        for (out, &path) in outs.iter_mut().zip(&variants) {
            let (ctx, views, rt, ws) = (&ctx, &views, &rt, &ws);
            lanes.push(Box::new(move || {
                simd::apply(SimdPolicy::Force(path));
                mode0_with(ctx, views, rt, &mut ws.borrow_mut(), out);
            }));
        }
        let times = race_ns(2, reps, &mut lanes);
        drop(lanes);
        for (i, &path) in variants.iter().enumerate() {
            let vectorized = times[i + 1];
            records.push(Record {
                mode: 0,
                accum: "n/a".into(),
                use_saved: false,
                simd: path.as_str().into(),
                legacy_ns: times[0],
                vectorized_ns: vectorized,
                speedup: times[0] / vectorized,
                bytes_per_ns: mode_bytes(0) / vectorized,
            });
        }
    }

    // Modes 1..d, both accumulation strategies. Partials are fresh: the
    // mode-0 timing lanes just rebuilt both stores with fixed factors.
    for u in 1..d {
        let use_saved = save[u];
        for accum in [ResolvedAccum::Privatized, ResolvedAccum::Atomic] {
            let mut outs: Vec<Mat> = variants
                .iter()
                .map(|_| Mat::zeros(csf.level_dims()[u], rank))
                .collect();
            let mut lanes: Vec<Box<dyn FnMut()>> = Vec::new();
            {
                let (ctx, pl) = (&ctx, &mut partials_legacy);
                lanes.push(Box::new(move || {
                    simd::apply(SimdPolicy::Force(SimdPath::Scalar));
                    std::hint::black_box(kernels_legacy::modeu_pass(ctx, pl, u, accum, use_saved));
                }));
            }
            for (out, &path) in outs.iter_mut().zip(&variants) {
                let (ctx, views, rt, ws) = (&ctx, &views, &rt, &ws);
                lanes.push(Box::new(move || {
                    simd::apply(SimdPolicy::Force(path));
                    modeu_with(ctx, views, use_saved, u, accum, rt, &mut ws.borrow_mut(), out);
                }));
            }
            let times = race_ns(2, reps, &mut lanes);
            drop(lanes);
            for (i, &path) in variants.iter().enumerate() {
                let vectorized = times[i + 1];
                records.push(Record {
                    mode: u,
                    accum: accum_name(accum).into(),
                    use_saved,
                    simd: path.as_str().into(),
                    legacy_ns: times[0],
                    vectorized_ns: vectorized,
                    speedup: times[0] / vectorized,
                    bytes_per_ns: mode_bytes(u) / vectorized,
                });
            }
        }
    }
    simd::apply(SimdPolicy::Force(detected));

    let mut table = Table::new(&[
        "mode",
        "accum",
        "memo",
        "simd",
        "legacy (ms)",
        "vectorized (ms)",
        "speedup",
        "GB/s",
    ]);
    for r in &records {
        table.row(vec![
            r.mode.to_string(),
            r.accum.clone(),
            if r.use_saved { "saved" } else { "-" }.to_string(),
            r.simd.clone(),
            format!("{:.3}", r.legacy_ns / 1e6),
            format!("{:.3}", r.vectorized_ns / 1e6),
            format!("{:.2}x", r.speedup),
            format!("{:.2}", r.bytes_per_ns),
        ]);
    }
    eprintln!("{}", table.render());

    let report = Report {
        schema: 2,
        bench: "mttkrp_legacy_vs_vectorized".into(),
        dims: dims.to_vec(),
        nnz: t.nnz(),
        rank,
        threads: nthreads,
        reps,
        runtime: format!("{:?}", rt.kind()).to_lowercase(),
        pool_workers: rt.workers(),
        simd: detected.as_str().into(),
        records,
    };
    // `cargo bench` runs benches from the crate dir; the repo root is
    // two levels up from crates/bench.
    let root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| std::path::PathBuf::from("."));
    if let Some(path) = write_json_at(root.join("BENCH_mttkrp.json"), &report) {
        eprintln!("wrote {}", path.display());
    }

    // --------------------------------------------------------------
    // Engine dimension: the CSF engine vs the linearized (ALTO-style)
    // engine, full `MttkrpEngine::mttkrp` calls on an irregular
    // hypersparse tensor — huge mode lengths, almost no fiber
    // collapse, the regime where the CSF pays its structure walk for
    // nothing. Also records which engine `--engine auto` selects via
    // the §IV-C pricing, so the model's pick is tracked alongside the
    // measured outcome.
    let alto_nnz = env_usize("STEF_BENCH_ALTO_NNZ", 100_000);
    let hdims = vec![1usize << 16, 1 << 16, 1 << 16];
    let ht = workloads::uniform_tensor(&hdims, alto_nnz, 97);
    let mut opts = stef::StefOptions::new(rank);
    opts.num_threads = nthreads;
    let mut csf_engine = stef::Stef::prepare(&ht, opts.clone());
    let mut alto_engine = stef::AltoEngine::prepare(&ht, opts.clone());
    opts.engine = stef::EngineChoice::Auto;
    let auto_pick = {
        use stef::MttkrpEngine as _;
        stef::build_engine(&ht, opts).expect("auto engine builds").name()
    };
    let hfactors = init_factors(&hdims, rank, 11);
    let d_h = hdims.len();
    let mut engine_records: Vec<EngineRecord> = Vec::new();
    {
        use stef::MttkrpEngine as _;
        for mode in 0..d_h {
            let mut lanes: Vec<Box<dyn FnMut()>> = Vec::new();
            {
                let (e, f) = (&mut csf_engine, &hfactors);
                lanes.push(Box::new(move || {
                    std::hint::black_box(e.mttkrp(f, mode));
                }));
            }
            {
                let (e, f) = (&mut alto_engine, &hfactors);
                lanes.push(Box::new(move || {
                    std::hint::black_box(e.mttkrp(f, mode));
                }));
            }
            let times = race_ns(1, reps, &mut lanes);
            engine_records.push(EngineRecord {
                mode,
                csf_ns: times[0],
                alto_ns: times[1],
                speedup: times[0] / times[1],
            });
        }
    }
    let csf_sweep: f64 = engine_records.iter().map(|r| r.csf_ns).sum();
    let alto_sweep: f64 = engine_records.iter().map(|r| r.alto_ns).sum();

    let mut etable = Table::new(&["mode", "csf (ms)", "alto (ms)", "speedup"]);
    for r in &engine_records {
        etable.row(vec![
            r.mode.to_string(),
            format!("{:.3}", r.csf_ns / 1e6),
            format!("{:.3}", r.alto_ns / 1e6),
            format!("{:.2}x", r.speedup),
        ]);
    }
    eprintln!(
        "engine race: dims {hdims:?}, {} nnz, auto picks '{auto_pick}', \
         sweep speedup {:.2}x\n{}",
        ht.nnz(),
        csf_sweep / alto_sweep,
        etable.render()
    );

    let engine_report = EngineReport {
        schema: 3,
        bench: "mttkrp_csf_vs_alto".into(),
        dims: hdims,
        nnz: ht.nnz(),
        rank,
        threads: nthreads,
        reps,
        simd: detected.as_str().into(),
        auto_pick,
        sweep_speedup: csf_sweep / alto_sweep,
        records: engine_records,
    };
    if let Some(path) = write_json_at(root.join("BENCH_alto.json"), &engine_report) {
        eprintln!("wrote {}", path.display());
    }
}
