//! Scheduler benchmarks: cost of building the nnz-balanced schedule
//! (Algorithm 3) vs the slice-based one, across thread counts — the
//! setup-time side of the paper's load-balancing contribution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sptensor::build_csf;
use stef::{LoadBalance, Schedule};
use workloads::power_law_tensor;

fn bench_schedule(c: &mut Criterion) {
    let dims = [3_000usize, 6_000, 9_000];
    let t = power_law_tensor(&dims, 300_000, &[0.7, 0.4, 0.2], 9);
    let csf = build_csf(&t, &[0, 1, 2]);

    let mut group = c.benchmark_group("schedule_build");
    for nthreads in [4usize, 16, 64] {
        group.bench_with_input(
            BenchmarkId::new("nnz_balanced", nthreads),
            &nthreads,
            |b, &nt| b.iter(|| Schedule::build(&csf, nt, LoadBalance::NnzBalanced)),
        );
        group.bench_with_input(
            BenchmarkId::new("slice_based", nthreads),
            &nthreads,
            |b, &nt| b.iter(|| Schedule::build(&csf, nt, LoadBalance::SliceBased)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_schedule);
criterion_main!(benches);
