//! Runtime micro-benchmark: dispatch latency and load-imbalance
//! behavior of the persistent worker pool against the scoped-spawn
//! fallback it replaced.
//!
//! Two experiments, both on an explicitly 8-worker pool so the numbers
//! are comparable across machines:
//!
//! 1. **Dispatch latency** — a trivial fan-out body, `nthreads`
//!    1..=16: measures pure runtime overhead (publish + wake + claim +
//!    join for the pool; thread spawn + join for the scoped fallback).
//! 2. **Imbalance** — 64 logical tasks with deliberately uneven spin
//!    work: the pool's dynamic chunk claiming should absorb the skew
//!    that the scoped fallback's static contiguous blocks cannot.
//!
//! Writes the tracked trajectory file `BENCH_runtime.json` at the repo
//! root. Knobs: `STEF_REPS` (timed repetitions per configuration,
//! median-of, default 300).

use std::time::Instant;
use stef::runtime::scoped_fanout;
use stef::{Executor, Runtime};
use stef_bench::{impl_to_json, write_json_at, Table};

const WORKERS: usize = 8;

struct LatencyRecord {
    nthreads: usize,
    pool_ns: f64,
    scoped_ns: f64,
    speedup: f64,
}
impl_to_json!(LatencyRecord {
    nthreads,
    pool_ns,
    scoped_ns,
    speedup
});

struct ImbalanceRecord {
    tasks: usize,
    skew: usize,
    pool_ns: f64,
    scoped_ns: f64,
    speedup: f64,
}
impl_to_json!(ImbalanceRecord {
    tasks,
    skew,
    pool_ns,
    scoped_ns,
    speedup
});

struct Report {
    schema: usize,
    bench: String,
    workers: usize,
    reps: usize,
    pool_dispatch_ns_8w: f64,
    scoped_dispatch_ns_8w: f64,
    speedup_8w: f64,
    latency: Vec<LatencyRecord>,
    imbalance: ImbalanceRecord,
}
impl_to_json!(Report {
    schema,
    bench,
    workers,
    reps,
    pool_dispatch_ns_8w,
    scoped_dispatch_ns_8w,
    speedup_8w,
    latency,
    imbalance
});

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
        .max(1)
}

/// Median wall time over `reps` timed runs (after warmup). Dispatch
/// latency is long-tailed — a single descheduled worker stretches one
/// sample by a full timeslice — so the median is the honest statistic.
fn median_ns(warmups: usize, reps: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..warmups {
        f();
    }
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos() as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Burns deterministic CPU time proportional to `units`.
#[inline(never)]
fn spin_work(units: usize) -> u64 {
    let mut acc = 0u64;
    for i in 0..units * 40 {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i as u64);
        std::hint::black_box(acc);
    }
    acc
}

fn main() {
    let reps = env_usize("STEF_REPS", 300);
    let pool = Executor::new(Runtime::Pool, WORKERS);

    eprintln!(
        "runtime dispatch bench: {WORKERS} workers, median of {reps} \
         (pool = persistent epoch-dispatched pool, scoped = per-dispatch thread::scope)"
    );

    // ---- experiment 1: dispatch latency ----
    let mut latency: Vec<LatencyRecord> = Vec::new();
    for nthreads in 1..=16usize {
        let sink = std::sync::atomic::AtomicU64::new(0);
        let body = |th: usize| {
            sink.fetch_add(th as u64, std::sync::atomic::Ordering::Relaxed);
        };
        let pool_ns = median_ns(50, reps, || pool.fanout(nthreads, body));
        let scoped_ns = median_ns(5, reps.min(100), || {
            scoped_fanout(WORKERS, nthreads, &body)
        });
        latency.push(LatencyRecord {
            nthreads,
            pool_ns,
            scoped_ns,
            speedup: scoped_ns / pool_ns,
        });
    }

    // ---- experiment 2: uneven work ----
    // 64 tasks; every 8th task is 32x heavier than the rest. Static
    // blocks hand one worker a run of heavy tasks; dynamic chunks
    // spread them.
    const TASKS: usize = 64;
    const SKEW: usize = 32;
    let work = |th: usize| {
        let units = if th % 8 == 0 { SKEW } else { 1 };
        std::hint::black_box(spin_work(units));
    };
    let imb_reps = reps.min(100);
    let pool_imb = median_ns(5, imb_reps, || pool.fanout(TASKS, work));
    let scoped_imb = median_ns(2, imb_reps, || scoped_fanout(WORKERS, TASKS, &work));
    let imbalance = ImbalanceRecord {
        tasks: TASKS,
        skew: SKEW,
        pool_ns: pool_imb,
        scoped_ns: scoped_imb,
        speedup: scoped_imb / pool_imb,
    };

    let mut table = Table::new(&["nthreads", "pool (µs)", "scoped (µs)", "speedup"]);
    for r in &latency {
        table.row(vec![
            r.nthreads.to_string(),
            format!("{:.2}", r.pool_ns / 1e3),
            format!("{:.2}", r.scoped_ns / 1e3),
            format!("{:.2}x", r.speedup),
        ]);
    }
    eprintln!("{}", table.render());
    eprintln!(
        "imbalance ({TASKS} tasks, {SKEW}x skew): pool {:.2} µs, scoped {:.2} µs ({:.2}x)",
        imbalance.pool_ns / 1e3,
        imbalance.scoped_ns / 1e3,
        imbalance.speedup
    );
    let c = pool.counters();
    eprintln!(
        "pool counters: {} dispatches, {} inline, dispatcher claimed {} chunks",
        c.dispatches, c.inline_runs, c.dispatcher_chunks
    );

    let at8 = &latency[7];
    assert_eq!(at8.nthreads, 8);
    let report = Report {
        schema: 1,
        bench: "runtime_dispatch".into(),
        workers: WORKERS,
        reps,
        pool_dispatch_ns_8w: at8.pool_ns,
        scoped_dispatch_ns_8w: at8.scoped_ns,
        speedup_8w: at8.speedup,
        latency,
        imbalance,
    };
    let root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| std::path::PathBuf::from("."));
    if let Some(path) = write_json_at(root.join("BENCH_runtime.json"), &report) {
        eprintln!("wrote {}", path.display());
    }
}
