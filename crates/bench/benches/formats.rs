//! Format-construction benchmarks: CSF build (sort + scan) vs the
//! ALTO-style linearization, and the cost of the extra CSF copies the
//! splatt-2/splatt-all/STeF2 variants pay.

use baselines::{Alto, Splatt, SplattVariant};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sptensor::{build_csf, sort_modes_by_length};
use workloads::power_law_tensor;

fn bench_formats(c: &mut Criterion) {
    let dims = [2_000usize, 5_000, 8_000];
    let t = power_law_tensor(&dims, 200_000, &[0.8, 0.5, 0.3], 21);
    let order = sort_modes_by_length(t.dims());

    let mut group = c.benchmark_group("format_build");
    group.sample_size(10);

    group.bench_function("csf_single", |b| {
        b.iter(|| build_csf(&t, &order));
    });
    group.bench_function("alto_linearize", |b| {
        b.iter(|| Alto::prepare(&t, 32, 0));
    });
    group.bench_function("hicoo_blocks", |b| {
        b.iter(|| baselines::HiCoo::prepare(&t, 32, 0));
    });
    for variant in [SplattVariant::One, SplattVariant::Two, SplattVariant::All] {
        group.bench_with_input(
            BenchmarkId::new("splatt_prepare", format!("{variant:?}")),
            &variant,
            |b, &v| b.iter(|| Splatt::prepare(&t, v, 32, 0)),
        );
    }
    group.bench_function("stef_prepare_with_model", |b| {
        b.iter(|| stef::Stef::prepare(&t, stef::StefOptions::new(32)));
    });
    group.finish();
}

criterion_group!(benches, bench_formats);
criterion_main!(benches);
