//! Model benchmarks: Algorithm 9 (swapped-order fiber counting) and the
//! exhaustive configuration search — the preprocessing costs behind
//! Figure 5 and the claim that the model search is effectively free.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sptensor::{build_csf, count_fibers_if_last_two_swapped};
use stef::{
    model::{best_memo_set, choose_plan},
    LevelProfile,
};
use workloads::power_law_tensor;

fn bench_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("model");

    for (label, dims, nnz) in [
        ("3d_200k", vec![2_000usize, 5_000, 8_000], 200_000usize),
        ("4d_200k", vec![1_000, 3_000, 5_000, 64], 200_000),
        ("5d_100k", vec![500, 800, 500, 100, 89], 100_000),
    ] {
        let skews = vec![0.5; dims.len()];
        let t = power_law_tensor(&dims, nnz, &skews, 11);
        let order: Vec<usize> = (0..dims.len()).collect();
        let csf = build_csf(&t, &order);
        group.bench_with_input(BenchmarkId::new("algorithm9", label), &csf, |b, csf| {
            b.iter(|| count_fibers_if_last_two_swapped(csf))
        });
        let base = LevelProfile::from_csf(&csf, 32, 16 << 20);
        let swapped = LevelProfile::swapped_from_csf(&csf, 32, 16 << 20);
        group.bench_with_input(
            BenchmarkId::new("config_search", label),
            &(base, swapped),
            |b, (base, swapped)| b.iter(|| choose_plan(base, swapped)),
        );
    }

    // Search scaling with dimensionality (2^(d-2) subsets).
    for d in [3usize, 5, 8] {
        let profile = LevelProfile {
            dims: (0..d).map(|i| 100 * (i + 1)).collect(),
            fibers: (0..d).map(|i| 10usize.pow(i.min(6) as u32 + 1)).collect(),
            rank: 32,
            cache_elems: 1 << 20,
        };
        group.bench_with_input(BenchmarkId::new("subset_enum", d), &profile, |b, p| {
            b.iter(|| best_memo_set(p))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_model);
criterion_main!(benches);
