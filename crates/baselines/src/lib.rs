//! # stef-baselines — the comparison systems of the STeF paper
//!
//! Re-implementations of every baseline the paper evaluates against
//! (§VI-B), each behind the same [`stef::MttkrpEngine`] trait as STeF so
//! the CPD driver and the benchmark harness treat all algorithms
//! identically:
//!
//! * [`splatt::Splatt`] — SPLATT with one, two, or `d` CSF copies
//!   (`splatt-1`, `splatt-2`, `splatt-all`), slice-based parallelism, no
//!   memoization;
//! * [`adatm::AdaTm`] — AdaTM-style memoization: op-count-driven save
//!   decisions (Θ(√d) partials kept), slice-based parallelism, no mode
//!   switching;
//! * [`alto::Alto`] — ALTO-style linearized storage: bit-interleaved
//!   64-bit indices, nnz-partitioned parallelism, every mode recomputed
//!   from scratch;
//! * [`tacolike::TacoLike`] — a TACO-flavoured per-mode-CSF engine that
//!   auto-tunes its parallel chunk granularity on first use, paying a
//!   small preprocessing cost for better steady-state scheduling.
//!
//! These are *strategy* reproductions, not line-by-line ports: each
//! baseline keeps its defining storage format, parallelization
//! granularity and memoization policy, while sharing the surrounding
//! machinery (dense solves, CPD loop, tensor substrate) with STeF. That
//! isolates exactly the variables the paper's comparison is about.

#![allow(clippy::needless_range_loop)] // index loops over parallel arrays are the clearest form in these kernels

pub mod adatm;
pub mod alto;
pub mod hicoo;
pub mod splatt;
pub mod tacolike;

pub use adatm::AdaTm;
pub use alto::Alto;
pub use hicoo::HiCoo;
pub use splatt::{Splatt, SplattVariant};
pub use tacolike::TacoLike;

use stef::MttkrpEngine;

/// Instantiates every engine the paper's Figures 3/4 compare, in the
/// order they appear in the plots. `nthreads = 0` means the rayon pool
/// size.
pub fn all_engines(
    coo: &sptensor::CooTensor,
    rank: usize,
    nthreads: usize,
) -> Vec<Box<dyn MttkrpEngine>> {
    all_engines_with(coo, rank, nthreads, stef::AccumStrategy::Auto)
}

/// [`all_engines`] with an explicit accumulation strategy for the STeF
/// engines (the baselines resolve conflicts their own way and ignore it).
pub fn all_engines_with(
    coo: &sptensor::CooTensor,
    rank: usize,
    nthreads: usize,
    accum: stef::AccumStrategy,
) -> Vec<Box<dyn MttkrpEngine>> {
    let mut opts = stef::StefOptions::new(rank);
    opts.num_threads = nthreads;
    opts.accum = accum;
    vec![
        Box::new(Splatt::prepare(coo, SplattVariant::One, rank, nthreads)),
        Box::new(Splatt::prepare(coo, SplattVariant::Two, rank, nthreads)),
        Box::new(Splatt::prepare(coo, SplattVariant::All, rank, nthreads)),
        Box::new(AdaTm::prepare(coo, rank, nthreads)),
        Box::new(Alto::prepare(coo, rank, nthreads)),
        Box::new(TacoLike::prepare(coo, rank, nthreads)),
        Box::new(stef::Stef::prepare(coo, opts.clone())),
        Box::new(stef::Stef2::prepare(coo, opts)),
    ]
}
