//! HiCOO-style block-compressed COO engine (Li et al., SC 2018 —
//! the format family the Lexi-Order reordering paper targets; included
//! here as an extension beyond the paper's comparison set).
//!
//! HiCOO groups non-zeros into small dense-indexable blocks: each block
//! stores its base coordinates once at full width, and every non-zero
//! inside the block stores only a narrow (here `u8`) offset per mode.
//! For tensors with locality (natural or Lexi-Order-induced), this
//! shrinks index memory well below COO and even CSF, at the price of a
//! two-level indirection during MTTKRP.
//!
//! Strategy characteristics, mirroring the original:
//!
//! * one representation serves all modes (like ALTO, unlike SPLATT-all);
//! * no memoization — every mode recomputes;
//! * parallelism over *blocks* with privatized outputs (the original
//!   uses per-thread buffers with a block partition, same effect).

use linalg::Mat;
use rayon::prelude::*;
use sptensor::CooTensor;
use stef::MttkrpEngine;

/// Block edge length per mode (so a block spans `2^BLOCK_BITS` indices).
const BLOCK_BITS: u32 = 7; // 128 — offsets fit u8 with headroom

/// One compressed block.
struct Block {
    /// Base coordinate of the block (element coordinates are
    /// `base[m] + offsets[m][e]`).
    base: Vec<u32>,
    /// Per-mode narrow offsets, struct-of-arrays.
    offsets: Vec<Vec<u8>>,
    vals: Vec<f64>,
}

impl Block {
    fn nnz(&self) -> usize {
        self.vals.len()
    }
}

/// The HiCOO-like engine.
pub struct HiCoo {
    dims: Vec<usize>,
    rank: usize,
    nthreads: usize,
    norm_sq: f64,
    blocks: Vec<Block>,
    nnz: usize,
}

impl HiCoo {
    /// Builds the block structure (sort by block id, then group).
    pub fn prepare(coo: &CooTensor, rank: usize, nthreads: usize) -> Self {
        assert!(coo.nnz() > 0, "empty tensors are not supported");
        let nthreads = if nthreads == 0 {
            rayon::current_num_threads()
        } else {
            nthreads
        };
        let d = coo.ndim();
        let mut dedup = coo.clone();
        dedup.sort_dedup();

        // Block key per entry: the per-mode block indices.
        let block_of = |e: usize| -> Vec<u32> {
            (0..d)
                .map(|m| dedup.indices()[m][e] >> BLOCK_BITS)
                .collect()
        };
        let mut order: Vec<u32> = (0..dedup.nnz() as u32).collect();
        order.sort_unstable_by_key(|&e| block_of(e as usize));

        let mut blocks: Vec<Block> = Vec::new();
        let mut current_key: Option<Vec<u32>> = None;
        for &eu in &order {
            let e = eu as usize;
            let key = block_of(e);
            if current_key.as_ref() != Some(&key) {
                blocks.push(Block {
                    base: key.iter().map(|&b| b << BLOCK_BITS).collect(),
                    offsets: vec![Vec::new(); d],
                    vals: Vec::new(),
                });
                current_key = Some(key);
            }
            let blk = blocks.last_mut().unwrap();
            for m in 0..d {
                let off = dedup.indices()[m][e] - blk.base[m];
                debug_assert!(off < (1 << BLOCK_BITS));
                blk.offsets[m].push(off as u8);
            }
            blk.vals.push(dedup.values()[e]);
        }
        HiCoo {
            dims: coo.dims().to_vec(),
            rank,
            nthreads,
            norm_sq: coo.norm_sq(),
            nnz: dedup.nnz(),
            blocks,
        }
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Index+value bytes: block bases at 4 bytes/mode, offsets at
    /// 1 byte/mode/nnz, values 8 bytes.
    pub fn memory_bytes(&self) -> usize {
        let d = self.dims.len();
        self.blocks.len() * d * 4 + self.nnz * d + self.nnz * 8
    }
}

impl MttkrpEngine for HiCoo {
    fn dims(&self) -> &[usize] {
        &self.dims
    }

    fn name(&self) -> String {
        "hicoo".into()
    }

    fn sweep_order(&self) -> Vec<usize> {
        (0..self.dims.len()).collect()
    }

    fn norm_sq(&self) -> f64 {
        self.norm_sq
    }

    fn mttkrp(&mut self, factors: &[Mat], mode: usize) -> Mat {
        let d = self.dims.len();
        assert_eq!(factors.len(), d);
        let r = self.rank;
        let n_out = self.dims[mode];
        let nblocks = self.blocks.len();
        let chunk = nblocks.div_ceil(self.nthreads);
        let mut locals: Vec<Mat> = (0..self.nthreads)
            .into_par_iter()
            .map(|th| {
                let mut local = Mat::zeros(n_out, r);
                let lo = (th * chunk).min(nblocks);
                let hi = ((th + 1) * chunk).min(nblocks);
                let mut scratch = vec![0.0; r];
                for blk in &self.blocks[lo..hi] {
                    for e in 0..blk.nnz() {
                        scratch.iter_mut().for_each(|s| *s = blk.vals[e]);
                        for m in 0..d {
                            if m == mode {
                                continue;
                            }
                            let idx = blk.base[m] as usize + blk.offsets[m][e] as usize;
                            for (s, &f) in scratch.iter_mut().zip(factors[m].row(idx)) {
                                *s *= f;
                            }
                        }
                        let out_idx = blk.base[mode] as usize + blk.offsets[mode][e] as usize;
                        for (o, &s) in local.row_mut(out_idx).iter_mut().zip(&scratch) {
                            *o += s;
                        }
                    }
                }
                local
            })
            .collect();
        let mut out = locals.remove(0);
        for l in locals {
            out.add_assign(&l);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sptensor::reorder::lexi_order;

    fn pseudo_tensor(dims: &[usize], nnz: usize, seed: u64) -> CooTensor {
        let mut t = CooTensor::new(dims.to_vec());
        let mut x = seed | 1;
        let mut coord = vec![0u32; dims.len()];
        for _ in 0..nnz {
            for (c, &d) in coord.iter_mut().zip(dims) {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *c = ((x >> 33) % d as u64) as u32;
            }
            t.push(&coord, ((x >> 40) % 9) as f64 * 0.3 + 0.4);
        }
        t.sort_dedup();
        t
    }

    fn rand_factors(dims: &[usize], r: usize, seed: u64) -> Vec<Mat> {
        let mut x = seed | 1;
        dims.iter()
            .map(|&n| {
                Mat::from_fn(n, r, |_, _| {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((x >> 35) % 1000) as f64 / 500.0 - 1.0
                })
            })
            .collect()
    }

    #[test]
    fn matches_reference_all_modes() {
        for dims in [vec![300usize, 200, 150], vec![90, 80, 70, 60]] {
            let t = pseudo_tensor(&dims, 800, 1);
            let mut engine = HiCoo::prepare(&t, 3, 3);
            let factors = rand_factors(&dims, 3, 2);
            for mode in 0..dims.len() {
                let got = engine.mttkrp(&factors, mode);
                linalg::assert_mat_approx_eq(&got, &t.mttkrp_reference(&factors, mode), 1e-9);
            }
        }
    }

    #[test]
    fn block_structure_accounts_for_every_nnz() {
        let t = pseudo_tensor(&[500, 400, 300], 2_000, 3);
        let engine = HiCoo::prepare(&t, 2, 2);
        let total: usize = engine.blocks.iter().map(|b| b.nnz()).sum();
        assert_eq!(total, t.nnz());
        assert!(engine.num_blocks() > 1);
        // Every offset fits the block width.
        for blk in &engine.blocks {
            for m in 0..3 {
                assert!(blk.offsets[m]
                    .iter()
                    .all(|&o| (o as u32) < (1 << BLOCK_BITS)));
                assert_eq!(blk.base[m] % (1 << BLOCK_BITS), 0);
            }
        }
    }

    #[test]
    fn lexi_order_reduces_block_count() {
        // Shuffle block structure, then check that Lexi-Order re-compacts
        // it: fewer blocks = denser blocks = the win HiCOO wants.
        let mut t = CooTensor::new(vec![1024, 1024, 64]);
        let mut x = 5u64;
        let mut coord = [0u32; 3];
        // Scattered samples of an underlying 8-block structure.
        for _ in 0..3000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let b = ((x >> 12) % 8) as u32;
            coord[0] = (b * 97 + ((x >> 22) % 32) as u32 * 13) % 1024;
            coord[1] = (b * 131 + ((x >> 32) % 32) as u32 * 17) % 1024;
            coord[2] = ((x >> 42) % 64) as u32;
            t.push(&coord, 1.0);
        }
        t.sort_dedup();
        let before = HiCoo::prepare(&t, 2, 1).num_blocks();
        let (reordered, _) = lexi_order(&t, 2);
        let after = HiCoo::prepare(&reordered, 2, 1).num_blocks();
        assert!(
            after < before,
            "Lexi-Order should compact blocks: {before} -> {after}"
        );
    }

    #[test]
    fn memory_is_below_plain_coo() {
        let t = pseudo_tensor(&[200, 200, 200], 5_000, 7);
        let engine = HiCoo::prepare(&t, 2, 1);
        // Plain COO: 3×4 bytes index + 8 value = 20 B/nnz.
        let coo_bytes = t.nnz() * (3 * 4 + 8);
        assert!(
            engine.memory_bytes() < coo_bytes * 2,
            "block structure should not blow up memory: {} vs {}",
            engine.memory_bytes(),
            coo_bytes
        );
    }

    #[test]
    fn cpd_runs_through_hicoo() {
        let t = pseudo_tensor(&[100, 90, 80], 1_000, 9);
        let mut engine = HiCoo::prepare(&t, 4, 2);
        let opts = stef::CpdOptions {
            max_iters: 3,
            tol: 0.0,
            seed: 1,
            ..stef::CpdOptions::new(4)
        };
        let result = stef::cpd_als(&mut engine, &opts).expect("cpd run");
        assert_eq!(result.iterations, 3);
        assert!(result.fits.iter().all(|f| f.is_finite()));
    }
}
