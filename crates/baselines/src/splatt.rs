//! SPLATT-style CSF MTTKRP (Smith et al., IPDPS 2015; paper baseline
//! `splatt-1` / `splatt-2` / `splatt-all`).
//!
//! SPLATT's defining choices, reproduced here:
//!
//! * **slice-based parallelism** — threads own contiguous root slices,
//!   greedily balanced on nnz (no mid-fiber splits, no replication);
//! * **no memoization** — every MTTKRP recomputes from scratch;
//! * **1 / 2 / d tensor copies**: with one CSF, non-root modes use the
//!   slower internal/leaf kernels; with `d` CSFs every mode is a cheap
//!   root-mode traversal at d× the memory; `splatt-2` keeps the default
//!   CSF plus one rooted at its leaf mode, covering the worst kernel.
//!
//! The traversal kernels themselves are shared with `stef-core`
//! (configured with an empty partial store), so the only variables that
//! differ from STeF are exactly the strategy choices above.

use linalg::Mat;
use sptensor::{build_csf, inverse_permutation, sort_modes_by_length, CooTensor, Csf};
use stef::kernels::{mode0_pass, modeu_pass, KernelCtx, ResolvedAccum};
use stef::{LoadBalance, MttkrpEngine, PartialStore, Schedule};

/// How many CSF representations the engine keeps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SplattVariant {
    /// One CSF in mode-length order.
    One,
    /// The default CSF plus one rooted at its leaf mode.
    Two,
    /// One CSF per mode, each rooted at that mode.
    All,
}

impl SplattVariant {
    fn label(self) -> &'static str {
        match self {
            SplattVariant::One => "splatt-1",
            SplattVariant::Two => "splatt-2",
            SplattVariant::All => "splatt-all",
        }
    }
}

/// One CSF representation with its schedule.
struct Rep {
    csf: Csf,
    sched: Schedule,
    partials: PartialStore,
}

impl Rep {
    fn build(coo: &CooTensor, order: &[usize], rank: usize, nthreads: usize) -> Rep {
        let csf = build_csf(coo, order);
        let sched = Schedule::build(&csf, nthreads, LoadBalance::SliceBased);
        let partials = PartialStore::empty(coo.ndim(), nthreads, rank);
        Rep {
            csf,
            sched,
            partials,
        }
    }

    fn mttkrp(&mut self, factors: &[Mat], level: usize, rank: usize) -> Mat {
        let order = self.csf.mode_order().to_vec();
        let level_factors: Vec<&Mat> = order.iter().map(|&m| &factors[m]).collect();
        let ctx = KernelCtx::new(&self.csf, &self.sched, level_factors, rank);
        if level == 0 {
            let mut out = Mat::zeros(self.csf.level_dims()[0], rank);
            mode0_pass(&ctx, &mut self.partials, &mut out);
            out
        } else {
            modeu_pass(
                &ctx,
                &mut self.partials,
                level,
                ResolvedAccum::Privatized,
                false,
            )
        }
    }
}

/// The SPLATT baseline engine.
pub struct Splatt {
    variant: SplattVariant,
    rank: usize,
    dims: Vec<usize>,
    norm_sq: f64,
    reps: Vec<Rep>,
    /// `route[m]` = (representation index, CSF level of mode `m` there).
    route: Vec<(usize, usize)>,
}

impl Splatt {
    /// Builds the engine; `nthreads = 0` means the rayon pool size.
    pub fn prepare(coo: &CooTensor, variant: SplattVariant, rank: usize, nthreads: usize) -> Self {
        let nthreads = if nthreads == 0 {
            rayon::current_num_threads()
        } else {
            nthreads
        };
        let d = coo.ndim();
        let base_order = sort_modes_by_length(coo.dims());
        let mut reps = Vec::new();
        let mut route = vec![(0usize, 0usize); d];
        match variant {
            SplattVariant::One => {
                let rep = Rep::build(coo, &base_order, rank, nthreads);
                let level_of = inverse_permutation(&base_order);
                for m in 0..d {
                    route[m] = (0, level_of[m]);
                }
                reps.push(rep);
            }
            SplattVariant::Two => {
                let rep0 = Rep::build(coo, &base_order, rank, nthreads);
                let leaf_mode = base_order[d - 1];
                let mut order2 = vec![leaf_mode];
                order2.extend(base_order[..d - 1].iter().copied());
                let rep1 = Rep::build(coo, &order2, rank, nthreads);
                let level_of = inverse_permutation(&base_order);
                for m in 0..d {
                    route[m] = if m == leaf_mode {
                        (1, 0)
                    } else {
                        (0, level_of[m])
                    };
                }
                reps.push(rep0);
                reps.push(rep1);
            }
            SplattVariant::All => {
                for m in 0..d {
                    let mut order = vec![m];
                    order.extend(base_order.iter().copied().filter(|&x| x != m));
                    reps.push(Rep::build(coo, &order, rank, nthreads));
                    route[m] = (reps.len() - 1, 0);
                }
            }
        }
        Splatt {
            variant,
            rank,
            dims: coo.dims().to_vec(),
            norm_sq: coo.norm_sq(),
            reps,
            route,
        }
    }

    /// Total bytes of all CSF copies (the memory cost of the variant).
    pub fn csf_bytes(&self) -> usize {
        self.reps.iter().map(|r| r.csf.memory_bytes()).sum()
    }

    /// The variant this engine was built as.
    pub fn variant(&self) -> SplattVariant {
        self.variant
    }
}

impl MttkrpEngine for Splatt {
    fn dims(&self) -> &[usize] {
        &self.dims
    }

    fn name(&self) -> String {
        self.variant.label().into()
    }

    fn sweep_order(&self) -> Vec<usize> {
        // No memoization: any order is valid; use natural order like the
        // original SPLATT.
        (0..self.dims.len()).collect()
    }

    fn norm_sq(&self) -> f64 {
        self.norm_sq
    }

    fn mttkrp(&mut self, factors: &[Mat], mode: usize) -> Mat {
        let (rep_idx, level) = self.route[mode];
        self.reps[rep_idx].mttkrp(factors, level, self.rank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_tensor(dims: &[usize], nnz: usize, seed: u64) -> CooTensor {
        let mut t = CooTensor::new(dims.to_vec());
        let mut x = seed | 1;
        let mut coord = vec![0u32; dims.len()];
        for _ in 0..nnz {
            for (c, &d) in coord.iter_mut().zip(dims) {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *c = ((x >> 33) % d as u64) as u32;
            }
            t.push(&coord, ((x >> 40) % 9) as f64 * 0.3 + 0.4);
        }
        t.sort_dedup();
        t
    }

    fn rand_factors(dims: &[usize], r: usize, seed: u64) -> Vec<Mat> {
        let mut x = seed | 1;
        dims.iter()
            .map(|&n| {
                Mat::from_fn(n, r, |_, _| {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((x >> 35) % 1000) as f64 / 500.0 - 1.0
                })
            })
            .collect()
    }

    #[test]
    fn all_variants_match_reference_3d_4d() {
        for dims in [vec![14usize, 9, 11], vec![7, 6, 9, 5]] {
            let t = pseudo_tensor(&dims, 600, 1);
            let factors = rand_factors(&dims, 4, 2);
            for variant in [SplattVariant::One, SplattVariant::Two, SplattVariant::All] {
                let mut engine = Splatt::prepare(&t, variant, 4, 3);
                for mode in 0..dims.len() {
                    let got = engine.mttkrp(&factors, mode);
                    let expect = t.mttkrp_reference(&factors, mode);
                    linalg::assert_mat_approx_eq(&got, &expect, 1e-9);
                }
            }
        }
    }

    #[test]
    fn variant_memory_ordering() {
        let t = pseudo_tensor(&[20, 15, 10], 800, 3);
        let one = Splatt::prepare(&t, SplattVariant::One, 4, 2);
        let two = Splatt::prepare(&t, SplattVariant::Two, 4, 2);
        let all = Splatt::prepare(&t, SplattVariant::All, 4, 2);
        assert!(one.csf_bytes() < two.csf_bytes());
        assert!(two.csf_bytes() < all.csf_bytes());
    }

    #[test]
    fn splatt_all_routes_every_mode_to_a_root() {
        let t = pseudo_tensor(&[10, 10, 10], 300, 4);
        let engine = Splatt::prepare(&t, SplattVariant::All, 2, 2);
        for m in 0..3 {
            assert_eq!(engine.route[m].1, 0, "mode {m} must be a root-mode pass");
        }
    }

    #[test]
    fn names_match_paper_labels() {
        let t = pseudo_tensor(&[6, 6, 6], 50, 5);
        assert_eq!(
            Splatt::prepare(&t, SplattVariant::One, 2, 1).name(),
            "splatt-1"
        );
        assert_eq!(
            Splatt::prepare(&t, SplattVariant::Two, 2, 1).name(),
            "splatt-2"
        );
        assert_eq!(
            Splatt::prepare(&t, SplattVariant::All, 2, 1).name(),
            "splatt-all"
        );
    }
}
