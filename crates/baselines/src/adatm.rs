//! AdaTM-style engine (Li et al., IPDPS 2017; paper baseline `AdaTM`).
//!
//! AdaTM pioneered model-driven memoization for sparse CPD, but with the
//! choices the STeF paper contrasts against:
//!
//! * the selection model counts *arithmetic operations*, not data
//!   movement, and keeps Θ(√d) partially contracted tensors;
//! * work is distributed by root slices (one slice range per thread);
//! * the mode order is the plain length heuristic — no last-two-mode
//!   switching.
//!
//! All three choices map directly onto `stef-core` options, so this
//! engine is a configuration wrapper: same kernels, AdaTM's strategy.
//! (The original's vCSF storage is a CSF forest variant; its traversal
//! costs match a CSF within the constants this comparison cares about —
//! recorded as a substitution in DESIGN.md.)

use linalg::Mat;
use sptensor::CooTensor;
use stef::{LoadBalance, MemoPolicy, ModeSwitchPolicy, MttkrpEngine, Stef, StefOptions};

/// The AdaTM-like baseline.
pub struct AdaTm {
    inner: Stef,
}

impl AdaTm {
    /// Builds the engine; `nthreads = 0` means the rayon pool size.
    pub fn prepare(coo: &CooTensor, rank: usize, nthreads: usize) -> Self {
        let mut opts = StefOptions::new(rank);
        opts.num_threads = nthreads;
        opts.load_balance = LoadBalance::SliceBased;
        opts.memo = MemoPolicy::OpCountModel;
        opts.mode_switch = ModeSwitchPolicy::Never;
        AdaTm {
            inner: Stef::prepare(coo, opts),
        }
    }

    /// The memoization flags the op-count model chose.
    pub fn save_flags(&self) -> Vec<bool> {
        self.inner.plan().save.clone()
    }

    /// Bytes of stored partials.
    pub fn partial_bytes(&self) -> usize {
        self.inner.partial_bytes()
    }
}

impl MttkrpEngine for AdaTm {
    fn dims(&self) -> &[usize] {
        self.inner.dims()
    }

    fn name(&self) -> String {
        "adatm".into()
    }

    fn sweep_order(&self) -> Vec<usize> {
        self.inner.sweep_order()
    }

    fn norm_sq(&self) -> f64 {
        self.inner.norm_sq()
    }

    fn mttkrp(&mut self, factors: &[Mat], mode: usize) -> Mat {
        self.inner.mttkrp(factors, mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_tensor(dims: &[usize], nnz: usize, seed: u64) -> CooTensor {
        let mut t = CooTensor::new(dims.to_vec());
        let mut x = seed | 1;
        let mut coord = vec![0u32; dims.len()];
        for _ in 0..nnz {
            for (c, &d) in coord.iter_mut().zip(dims) {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *c = ((x >> 33) % d as u64) as u32;
            }
            t.push(&coord, ((x >> 40) % 9) as f64 * 0.3 + 0.4);
        }
        t.sort_dedup();
        t
    }

    fn rand_factors(dims: &[usize], r: usize, seed: u64) -> Vec<Mat> {
        let mut x = seed | 1;
        dims.iter()
            .map(|&n| {
                Mat::from_fn(n, r, |_, _| {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((x >> 35) % 1000) as f64 / 500.0 - 1.0
                })
            })
            .collect()
    }

    #[test]
    fn matches_reference_in_sweep_order() {
        for dims in [vec![12usize, 9, 10], vec![6, 8, 7, 5], vec![4, 5, 6, 4, 5]] {
            let t = pseudo_tensor(&dims, 600, 1);
            let mut engine = AdaTm::prepare(&t, 3, 4);
            let factors = rand_factors(&dims, 3, 2);
            for mode in engine.sweep_order() {
                let got = engine.mttkrp(&factors, mode);
                linalg::assert_mat_approx_eq(&got, &t.mttkrp_reference(&factors, mode), 1e-9);
            }
        }
    }

    #[test]
    fn memoizes_by_op_count_even_when_dm_model_would_not() {
        // freebase-like: nearly-unique (i,j) pairs. The DM model declines
        // to memoize; AdaTM's op-count objective memoizes anyway — the
        // behavioural difference the paper's comparison hinges on.
        let mut t = CooTensor::new(vec![300, 300, 6]);
        let mut x = 7u64;
        let mut coord = [0u32; 3];
        for _ in 0..2000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            coord[0] = ((x >> 20) % 300) as u32;
            coord[1] = ((x >> 30) % 300) as u32;
            coord[2] = ((x >> 45) % 6) as u32;
            t.push(&coord, 1.0);
        }
        t.sort_dedup();
        let adatm = AdaTm::prepare(&t, 32, 2);
        assert!(
            adatm.save_flags().iter().any(|&s| s),
            "AdaTM should memoize"
        );
        assert!(adatm.partial_bytes() > 0);
    }

    #[test]
    fn name_is_adatm() {
        let t = pseudo_tensor(&[6, 6, 6], 50, 3);
        assert_eq!(AdaTm::prepare(&t, 2, 1).name(), "adatm");
    }
}
