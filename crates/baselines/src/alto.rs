//! ALTO-style linearized tensor engine (Helal et al., ICS 2021; paper
//! baseline `ALTO`).
//!
//! ALTO abandons tree formats entirely: each non-zero is one linearized
//! index formed by interleaving the bits of its mode coordinates
//! (round-robin, LSB up), and the non-zeros are kept sorted by that
//! index. The defining consequences, reproduced here:
//!
//! * a single representation serves every mode (no per-mode copies, no
//!   re-orientation between MTTKRPs);
//! * parallel work is split by equal non-zero ranges — inherently
//!   balanced, like STeF's scheduling but without a tree;
//! * every MTTKRP recomputes from scratch (no memoization), which is the
//!   FLOP overhead the paper calls out;
//! * bit-interleaving keeps nearby non-zeros nearby in *every* mode, the
//!   locality argument of the ALTO paper.
//!
//! Like the original, both a 64-bit and a 128-bit index variant exist;
//! the narrowest one that fits the tensor's concatenated index bits is
//! selected automatically (the paper reports whichever is faster — the
//! 64-bit one always is when it fits).
//!
//! Substitution note (DESIGN.md): the original resolves output conflicts
//! with a recursive interval-based scheme; we privatize per-thread
//! outputs, which preserves the load-balance behaviour this comparison
//! measures.

use linalg::Mat;
use rayon::prelude::*;
use sptensor::CooTensor;
use stef::MttkrpEngine;

/// A word type usable as a linearized index.
trait LinWord: Copy + Send + Sync {
    fn zero() -> Self;
    fn get_bit(self, p: u32) -> u64;
    fn or_bit(&mut self, p: u32, bit: u64);
    fn key(self) -> u128;
}

impl LinWord for u64 {
    fn zero() -> Self {
        0
    }
    #[inline]
    fn get_bit(self, p: u32) -> u64 {
        (self >> p) & 1
    }
    #[inline]
    fn or_bit(&mut self, p: u32, bit: u64) {
        *self |= bit << p;
    }
    fn key(self) -> u128 {
        self as u128
    }
}

impl LinWord for u128 {
    fn zero() -> Self {
        0
    }
    #[inline]
    fn get_bit(self, p: u32) -> u64 {
        ((self >> p) & 1) as u64
    }
    #[inline]
    fn or_bit(&mut self, p: u32, bit: u64) {
        *self |= (bit as u128) << p;
    }
    fn key(self) -> u128 {
        self
    }
}

/// The linearized payload at one index width.
struct AltoStore<T: LinWord> {
    /// Bit positions (in the linear index) of each mode's coordinate
    /// bits, LSB-first.
    positions: Vec<Vec<u32>>,
    /// Linearized indices, sorted ascending.
    lin: Vec<T>,
    vals: Vec<f64>,
}

impl<T: LinWord> AltoStore<T> {
    fn build(coo: &CooTensor, bits: &[u32]) -> Self {
        let d = coo.ndim();
        // Round-robin interleave from the LSB: at step k, every mode
        // that still has a k-th bit contributes it (the compacted
        // permutation of the ALTO paper).
        let mut positions: Vec<Vec<u32>> = vec![Vec::new(); d];
        let mut pos = 0u32;
        let max_bits = bits.iter().copied().max().unwrap_or(1);
        for b in 0..max_bits {
            for (m, mode_positions) in positions.iter_mut().enumerate() {
                if b < bits[m] {
                    mode_positions.push(pos);
                    pos += 1;
                }
            }
        }

        // Flat buffers end to end: encode every entry into one linear-
        // index array, argsort a u32 permutation over it, then gather.
        // Linearization is injective on coordinates, so equal linear
        // indices are exactly the duplicate entries `sort_dedup` would
        // merge — summing them during the gather deduplicates without
        // cloning the tensor or staging (index, value) tuple pairs.
        let nnz = coo.nnz();
        let mut encoded: Vec<T> = Vec::with_capacity(nnz);
        for e in 0..nnz {
            let mut lin = T::zero();
            for (m, mode_positions) in positions.iter().enumerate() {
                let c = coo.indices()[m][e] as u64;
                for (b, &p) in mode_positions.iter().enumerate() {
                    lin.or_bit(p, (c >> b) & 1);
                }
            }
            encoded.push(lin);
        }
        let mut order: Vec<u32> = (0..nnz as u32).collect();
        order.sort_unstable_by_key(|&e| encoded[e as usize].key());
        let mut lin: Vec<T> = Vec::with_capacity(nnz);
        let mut vals: Vec<f64> = Vec::with_capacity(nnz);
        let src = coo.values();
        for &eu in &order {
            let e = eu as usize;
            if lin.last().is_some_and(|l| l.key() == encoded[e].key()) {
                *vals.last_mut().expect("lin and vals grow together") += src[e];
            } else {
                lin.push(encoded[e]);
                vals.push(src[e]);
            }
        }
        AltoStore {
            positions,
            lin,
            vals,
        }
    }

    /// Extracts mode `m`'s coordinate from a linearized index.
    #[inline]
    fn decode(&self, lin: T, m: usize) -> usize {
        let mut c = 0u64;
        for (b, &p) in self.positions[m].iter().enumerate() {
            c |= lin.get_bit(p) << b;
        }
        c as usize
    }

    fn mttkrp(
        &self,
        factors: &[Mat],
        mode: usize,
        rank: usize,
        nthreads: usize,
        n_out: usize,
    ) -> Mat {
        let d = factors.len();
        let nnz = self.vals.len();
        let chunk = nnz.div_ceil(nthreads);
        let mut locals: Vec<Mat> = (0..nthreads)
            .into_par_iter()
            .map(|th| {
                let mut local = Mat::zeros(n_out, rank);
                let lo = (th * chunk).min(nnz);
                let hi = ((th + 1) * chunk).min(nnz);
                let mut scratch = vec![0.0; rank];
                for e in lo..hi {
                    let lin = self.lin[e];
                    let v = self.vals[e];
                    scratch.iter_mut().for_each(|s| *s = v);
                    for m in 0..d {
                        if m == mode {
                            continue;
                        }
                        let row = factors[m].row(self.decode(lin, m));
                        for (s, &f) in scratch.iter_mut().zip(row) {
                            *s *= f;
                        }
                    }
                    let out_row = local.row_mut(self.decode(lin, mode));
                    for (o, &s) in out_row.iter_mut().zip(&scratch) {
                        *o += s;
                    }
                }
                local
            })
            .collect();
        let mut out = locals.remove(0);
        for l in locals {
            out.add_assign(&l);
        }
        out
    }

    fn memory_bytes(&self) -> usize {
        self.lin.len() * std::mem::size_of::<T>() + self.vals.len() * 8
    }
}

enum Store {
    Narrow(AltoStore<u64>),
    Wide(AltoStore<u128>),
}

/// The ALTO-like baseline engine.
pub struct Alto {
    dims: Vec<usize>,
    rank: usize,
    nthreads: usize,
    norm_sq: f64,
    store: Store,
    nnz: usize,
}

impl Alto {
    /// Builds the linearized representation, auto-selecting the 64-bit
    /// or 128-bit index variant.
    ///
    /// # Panics
    /// Panics if the concatenated index bits exceed 128 or the tensor is
    /// empty.
    pub fn prepare(coo: &CooTensor, rank: usize, nthreads: usize) -> Self {
        assert!(coo.nnz() > 0, "empty tensors are not supported");
        let nthreads = if nthreads == 0 {
            rayon::current_num_threads()
        } else {
            nthreads
        };
        let bits: Vec<u32> = coo
            .dims()
            .iter()
            .map(|&n| usize::BITS - (n - 1).max(1).leading_zeros())
            .collect();
        let total: u32 = bits.iter().sum();
        assert!(
            total <= 128,
            "linearized index needs {total} bits; ALTO supports at most the 128-bit variant"
        );
        let store = if total <= 64 {
            Store::Narrow(AltoStore::<u64>::build(coo, &bits))
        } else {
            Store::Wide(AltoStore::<u128>::build(coo, &bits))
        };
        let nnz = match &store {
            Store::Narrow(s) => s.vals.len(),
            Store::Wide(s) => s.vals.len(),
        };
        Alto {
            dims: coo.dims().to_vec(),
            rank,
            nthreads,
            norm_sq: coo.norm_sq(),
            store,
            nnz,
        }
    }

    /// `true` if the 128-bit index variant is in use.
    pub fn is_wide(&self) -> bool {
        matches!(self.store, Store::Wide(_))
    }

    /// Bytes of the linearized representation.
    pub fn memory_bytes(&self) -> usize {
        match &self.store {
            Store::Narrow(s) => s.memory_bytes(),
            Store::Wide(s) => s.memory_bytes(),
        }
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    #[cfg(test)]
    fn decode_entry(&self, e: usize, m: usize) -> usize {
        match &self.store {
            Store::Narrow(s) => s.decode(s.lin[e], m),
            Store::Wide(s) => s.decode(s.lin[e], m),
        }
    }
}

impl MttkrpEngine for Alto {
    fn dims(&self) -> &[usize] {
        &self.dims
    }

    fn name(&self) -> String {
        "alto-baseline".into()
    }

    fn sweep_order(&self) -> Vec<usize> {
        (0..self.dims.len()).collect()
    }

    fn norm_sq(&self) -> f64 {
        self.norm_sq
    }

    fn mttkrp(&mut self, factors: &[Mat], mode: usize) -> Mat {
        assert_eq!(factors.len(), self.dims.len());
        let n_out = self.dims[mode];
        match &self.store {
            Store::Narrow(s) => s.mttkrp(factors, mode, self.rank, self.nthreads, n_out),
            Store::Wide(s) => s.mttkrp(factors, mode, self.rank, self.nthreads, n_out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_tensor(dims: &[usize], nnz: usize, seed: u64) -> CooTensor {
        let mut t = CooTensor::new(dims.to_vec());
        let mut x = seed | 1;
        let mut coord = vec![0u32; dims.len()];
        for _ in 0..nnz {
            for (c, &d) in coord.iter_mut().zip(dims) {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *c = ((x >> 33) % d as u64) as u32;
            }
            t.push(&coord, ((x >> 40) % 9) as f64 * 0.3 + 0.4);
        }
        t.sort_dedup();
        t
    }

    fn rand_factors(dims: &[usize], r: usize, seed: u64) -> Vec<Mat> {
        let mut x = seed | 1;
        dims.iter()
            .map(|&n| {
                Mat::from_fn(n, r, |_, _| {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((x >> 35) % 1000) as f64 / 500.0 - 1.0
                })
            })
            .collect()
    }

    #[test]
    fn encode_decode_round_trips() {
        let dims = vec![100usize, 7, 1000, 3];
        let t = pseudo_tensor(&dims, 500, 1);
        let alto = Alto::prepare(&t, 2, 2);
        assert!(!alto.is_wide());
        let mut dedup = t.clone();
        dedup.sort_dedup();
        for e in (0..alto.nnz()).step_by(17) {
            let coord: Vec<u32> = (0..dims.len())
                .map(|m| alto.decode_entry(e, m) as u32)
                .collect();
            let expect = dedup.get(&coord);
            assert_ne!(expect, 0.0, "decoded coord {coord:?} not in tensor");
        }
    }

    #[test]
    fn matches_reference_all_modes() {
        for dims in [vec![14usize, 9, 11], vec![7, 6, 9, 5], vec![4, 5, 6, 4, 5]] {
            let t = pseudo_tensor(&dims, 600, 2);
            let mut engine = Alto::prepare(&t, 4, 3);
            let factors = rand_factors(&dims, 4, 3);
            for mode in 0..dims.len() {
                let got = engine.mttkrp(&factors, mode);
                linalg::assert_mat_approx_eq(&got, &t.mttkrp_reference(&factors, mode), 1e-9);
            }
        }
    }

    #[test]
    fn wide_variant_kicks_in_and_matches_reference() {
        // 5 modes × 2^20 = 100 bits > 64 -> the 128-bit variant.
        let dims = vec![1 << 20, 1 << 20, 1 << 20, 1 << 20, 1 << 20];
        let t = pseudo_tensor(&dims, 300, 4);
        let mut engine = Alto::prepare(&t, 3, 2);
        assert!(engine.is_wide());
        let factors = rand_factors(&dims, 3, 5);
        for mode in 0..5 {
            let got = engine.mttkrp(&factors, mode);
            linalg::assert_mat_approx_eq(&got, &t.mttkrp_reference(&factors, mode), 1e-9);
        }
    }

    #[test]
    fn wide_costs_twice_the_index_memory() {
        let narrow = Alto::prepare(&pseudo_tensor(&[32, 32, 32], 400, 6), 2, 1);
        assert!(!narrow.is_wide());
        let wide = Alto::prepare(
            &pseudo_tensor(&[1 << 22, 1 << 22, 1 << 22, 1 << 22], 400, 6),
            2,
            1,
        );
        assert!(wide.is_wide());
        // Per-nnz: narrow 8+8 bytes, wide 16+8.
        let per_narrow = narrow.memory_bytes() as f64 / narrow.nnz() as f64;
        let per_wide = wide.memory_bytes() as f64 / wide.nnz() as f64;
        assert_eq!(per_narrow, 16.0);
        assert_eq!(per_wide, 24.0);
    }

    #[test]
    #[should_panic(expected = "128-bit variant")]
    fn rejects_index_space_beyond_128_bits() {
        // 5 modes × 2^30 = 150 bits.
        let mut t = CooTensor::new(vec![1 << 30; 5]);
        t.push(&[0, 0, 0, 0, 0], 1.0);
        let _ = Alto::prepare(&t, 2, 1);
    }

    #[test]
    fn single_thread_matches_many_threads() {
        let t = pseudo_tensor(&[20, 20, 20], 800, 5);
        let factors = rand_factors(t.dims(), 3, 6);
        let mut e1 = Alto::prepare(&t, 3, 1);
        let mut e8 = Alto::prepare(&t, 3, 8);
        for mode in 0..3 {
            linalg::assert_mat_approx_eq(
                &e1.mttkrp(&factors, mode),
                &e8.mttkrp(&factors, mode),
                1e-12,
            );
        }
    }

    #[test]
    fn duplicate_entries_merge_during_the_gather() {
        // prepare no longer clones + sort_dedups the tensor; duplicates
        // must still collapse (summed) via equal linearized indices.
        let mut t = CooTensor::new(vec![8, 8, 8]);
        t.push(&[1, 2, 3], 1.5);
        t.push(&[4, 5, 6], 2.0);
        t.push(&[1, 2, 3], 0.5);
        let mut engine = Alto::prepare(&t, 2, 1);
        assert_eq!(engine.nnz(), 2);
        let mut dedup = t.clone();
        dedup.sort_dedup();
        let factors = rand_factors(&[8, 8, 8], 2, 9);
        for mode in 0..3 {
            linalg::assert_mat_approx_eq(
                &engine.mttkrp(&factors, mode),
                &dedup.mttkrp_reference(&factors, mode),
                1e-12,
            );
        }
    }

    #[test]
    fn linear_indices_are_sorted_and_unique() {
        let t = pseudo_tensor(&[30, 30, 30], 1000, 4);
        let alto = Alto::prepare(&t, 2, 2);
        match &alto.store {
            Store::Narrow(s) => assert!(s.lin.windows(2).all(|w| w[0] < w[1])),
            Store::Wide(_) => panic!("should be narrow"),
        }
    }
}
