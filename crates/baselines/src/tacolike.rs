//! TACO-style engine (Senanayake et al., OOPSLA 2020; paper baseline
//! `TACO`).
//!
//! TACO is a compiler; what its generated CPD code amounts to, and what
//! the STeF paper observes about it, is:
//!
//! * per-mode CSF kernels very similar to `splatt-all` (each mode's
//!   MTTKRP is a root-mode traversal over a representation rooted at
//!   that mode);
//! * **auto-tuning over scheduling chunk sizes**: TACO "uses auto-tuning
//!   across various chunk sizes and selects the best, paying a small
//!   preprocessing overhead for faster run time" (§VI-B) — the reason it
//!   beats `splatt-all` despite being "very similar".
//!
//! We reproduce that: each mode keeps several candidate schedules with
//! different task granularities (more logical tasks than physical
//! threads = finer chunks that rayon's work stealing balances), times
//! each candidate once on the first calls, then locks in the fastest.

use linalg::Mat;
use sptensor::{build_csf, sort_modes_by_length, CooTensor, Csf};
use std::time::Instant;
use stef::kernels::{mode0_pass, KernelCtx};
use stef::{LoadBalance, MttkrpEngine, PartialStore, Schedule};

/// Task-count multipliers tried by the auto-tuner (×physical threads).
const CHUNK_CANDIDATES: [usize; 4] = [1, 2, 4, 8];

struct ModeRep {
    csf: Csf,
    /// One schedule (and matching empty partial store) per candidate.
    candidates: Vec<(Schedule, PartialStore)>,
    /// Index into `candidates` once tuning has finished.
    chosen: Option<usize>,
    /// Best time seen per candidate during tuning.
    timings: Vec<Option<f64>>,
}

/// The TACO-like baseline engine.
pub struct TacoLike {
    dims: Vec<usize>,
    rank: usize,
    norm_sq: f64,
    reps: Vec<ModeRep>,
    /// Cumulative seconds spent on tuning decisions (the "small
    /// preprocessing overhead" the paper mentions).
    tuning_seconds: f64,
}

impl TacoLike {
    /// Builds one representation per mode plus candidate schedules.
    pub fn prepare(coo: &CooTensor, rank: usize, nthreads: usize) -> Self {
        let nthreads = if nthreads == 0 {
            rayon::current_num_threads()
        } else {
            nthreads
        };
        let d = coo.ndim();
        let base_order = sort_modes_by_length(coo.dims());
        let reps = (0..d)
            .map(|m| {
                let mut order = vec![m];
                order.extend(base_order.iter().copied().filter(|&x| x != m));
                let csf = build_csf(coo, &order);
                let candidates: Vec<(Schedule, PartialStore)> = CHUNK_CANDIDATES
                    .iter()
                    .map(|&mult| {
                        let tasks = (nthreads * mult).max(1);
                        (
                            Schedule::build(&csf, tasks, LoadBalance::SliceBased),
                            PartialStore::empty(d, tasks, rank),
                        )
                    })
                    .collect();
                let n = candidates.len();
                ModeRep {
                    csf,
                    candidates,
                    chosen: None,
                    timings: vec![None; n],
                }
            })
            .collect();
        TacoLike {
            dims: coo.dims().to_vec(),
            rank,
            norm_sq: coo.norm_sq(),
            reps,
            tuning_seconds: 0.0,
        }
    }

    /// Seconds spent measuring candidates so far.
    pub fn tuning_seconds(&self) -> f64 {
        self.tuning_seconds
    }

    /// The chosen candidate index per mode (`None` = still tuning).
    pub fn chosen_chunks(&self) -> Vec<Option<usize>> {
        self.reps.iter().map(|r| r.chosen).collect()
    }

    fn run_candidate(rep: &mut ModeRep, cand: usize, factors: &[Mat], rank: usize) -> Mat {
        let order = rep.csf.mode_order().to_vec();
        let level_factors: Vec<&Mat> = order.iter().map(|&m| &factors[m]).collect();
        let (sched, partials) = &mut rep.candidates[cand];
        let ctx = KernelCtx::new(&rep.csf, sched, level_factors, rank);
        let mut out = Mat::zeros(rep.csf.level_dims()[0], rank);
        mode0_pass(&ctx, partials, &mut out);
        out
    }
}

impl MttkrpEngine for TacoLike {
    fn dims(&self) -> &[usize] {
        &self.dims
    }

    fn name(&self) -> String {
        "taco".into()
    }

    fn sweep_order(&self) -> Vec<usize> {
        (0..self.dims.len()).collect()
    }

    fn norm_sq(&self) -> f64 {
        self.norm_sq
    }

    fn mttkrp(&mut self, factors: &[Mat], mode: usize) -> Mat {
        let rank = self.rank;
        let rep = &mut self.reps[mode];
        if let Some(c) = rep.chosen {
            return Self::run_candidate(rep, c, factors, rank);
        }
        // Tuning phase: measure the next untimed candidate; once all are
        // timed, lock in the fastest. Results are identical regardless of
        // candidate (only the schedule differs), so tuning runs do double
        // duty as real MTTKRPs.
        let cand = rep
            .timings
            .iter()
            .position(|t| t.is_none())
            .expect("untimed candidate must exist while chosen is None");
        let t0 = Instant::now();
        let out = Self::run_candidate(rep, cand, factors, rank);
        let dt = t0.elapsed().as_secs_f64();
        rep.timings[cand] = Some(dt);
        self.tuning_seconds += dt;
        if rep.timings.iter().all(|t| t.is_some()) {
            let best = rep
                .timings
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.unwrap().partial_cmp(&b.1.unwrap()).unwrap())
                .map(|(i, _)| i)
                .unwrap();
            rep.chosen = Some(best);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_tensor(dims: &[usize], nnz: usize, seed: u64) -> CooTensor {
        let mut t = CooTensor::new(dims.to_vec());
        let mut x = seed | 1;
        let mut coord = vec![0u32; dims.len()];
        for _ in 0..nnz {
            for (c, &d) in coord.iter_mut().zip(dims) {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *c = ((x >> 33) % d as u64) as u32;
            }
            t.push(&coord, ((x >> 40) % 9) as f64 * 0.3 + 0.4);
        }
        t.sort_dedup();
        t
    }

    fn rand_factors(dims: &[usize], r: usize, seed: u64) -> Vec<Mat> {
        let mut x = seed | 1;
        dims.iter()
            .map(|&n| {
                Mat::from_fn(n, r, |_, _| {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((x >> 35) % 1000) as f64 / 500.0 - 1.0
                })
            })
            .collect()
    }

    #[test]
    fn matches_reference_during_and_after_tuning() {
        let dims = vec![12usize, 9, 10];
        let t = pseudo_tensor(&dims, 600, 1);
        let mut engine = TacoLike::prepare(&t, 3, 2);
        let factors = rand_factors(&dims, 3, 2);
        // More calls than candidates: covers tuning and steady state.
        for round in 0..(CHUNK_CANDIDATES.len() + 2) {
            for mode in 0..dims.len() {
                let got = engine.mttkrp(&factors, mode);
                linalg::assert_mat_approx_eq(&got, &t.mttkrp_reference(&factors, mode), 1e-9);
                let _ = round;
            }
        }
        assert!(engine.chosen_chunks().iter().all(|c| c.is_some()));
        assert!(engine.tuning_seconds() > 0.0);
    }

    #[test]
    fn tuning_finishes_after_exactly_candidate_count_calls() {
        let t = pseudo_tensor(&[10, 10, 10], 300, 3);
        let mut engine = TacoLike::prepare(&t, 2, 2);
        let factors = rand_factors(t.dims(), 2, 4);
        for i in 0..CHUNK_CANDIDATES.len() {
            assert!(engine.chosen_chunks()[0].is_none(), "call {i}");
            let _ = engine.mttkrp(&factors, 0);
        }
        assert!(engine.chosen_chunks()[0].is_some());
        assert!(engine.chosen_chunks()[1].is_none(), "mode 1 untouched");
    }
}
