//! Typed traversal API over CSF trees.
//!
//! The kernels in `stef-core` walk the raw `fids`/`ptr` arrays for
//! speed, but library users exploring a tensor want something safer:
//! a [`NodeRef`] hands out a node's index, its fiber id, its children
//! and its leaf range without any manual pointer arithmetic, and
//! [`Csf::slices`] / [`NodeRef::children`] iterate them in order.
//!
//! ```
//! use stef_sptensor::{build_csf, CooTensor};
//!
//! let mut t = CooTensor::new(vec![3, 4, 5]);
//! t.push(&[0, 1, 2], 1.0);
//! t.push(&[0, 3, 4], 2.0);
//! t.push(&[2, 0, 0], 3.0);
//! let csf = build_csf(&t, &[0, 1, 2]);
//!
//! // Total value per root slice via the typed API:
//! for slice in csf.slices() {
//!     let (lo, hi) = slice.leaf_range();
//!     let total: f64 = csf.vals()[lo..hi].iter().sum();
//!     println!("slice {} holds {} nnz summing to {total}", slice.fid(), hi - lo);
//! }
//! ```

use crate::csf::Csf;

/// A borrowed reference to one CSF node.
#[derive(Clone, Copy, Debug)]
pub struct NodeRef<'a> {
    csf: &'a Csf,
    level: usize,
    idx: usize,
}

impl<'a> NodeRef<'a> {
    /// The node's tree level (0 = root slices).
    #[inline]
    pub fn level(&self) -> usize {
        self.level
    }

    /// The node's position among its level's fibers.
    #[inline]
    pub fn index(&self) -> usize {
        self.idx
    }

    /// The tensor coordinate this node represents at its level
    /// (in the CSF's permuted mode order).
    #[inline]
    pub fn fid(&self) -> u32 {
        self.csf.fids(self.level)[self.idx]
    }

    /// `true` for leaf-level nodes (which carry values).
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.level == self.csf.ndim() - 1
    }

    /// The node's value, if it is a leaf.
    #[inline]
    pub fn value(&self) -> Option<f64> {
        self.is_leaf().then(|| self.csf.vals()[self.idx])
    }

    /// Iterates the node's children (empty for leaves).
    pub fn children(&self) -> NodeIter<'a> {
        if self.is_leaf() {
            NodeIter {
                csf: self.csf,
                level: self.level,
                cur: 0,
                end: 0,
            }
        } else {
            let (lo, hi) = (
                self.csf.ptr(self.level)[self.idx],
                self.csf.ptr(self.level)[self.idx + 1],
            );
            NodeIter {
                csf: self.csf,
                level: self.level + 1,
                cur: lo,
                end: hi,
            }
        }
    }

    /// Number of direct children.
    pub fn num_children(&self) -> usize {
        if self.is_leaf() {
            0
        } else {
            self.csf.ptr(self.level)[self.idx + 1] - self.csf.ptr(self.level)[self.idx]
        }
    }

    /// The contiguous range of non-zeros under this node's subtree.
    pub fn leaf_range(&self) -> (usize, usize) {
        self.csf.leaf_range(self.level, self.idx)
    }

    /// Number of non-zeros in the subtree.
    pub fn nnz(&self) -> usize {
        let (lo, hi) = self.leaf_range();
        hi - lo
    }
}

/// Iterator over a contiguous run of nodes at one level.
pub struct NodeIter<'a> {
    csf: &'a Csf,
    level: usize,
    cur: usize,
    end: usize,
}

impl<'a> Iterator for NodeIter<'a> {
    type Item = NodeRef<'a>;

    fn next(&mut self) -> Option<NodeRef<'a>> {
        if self.cur >= self.end {
            return None;
        }
        let node = NodeRef {
            csf: self.csf,
            level: self.level,
            idx: self.cur,
        };
        self.cur += 1;
        Some(node)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.end - self.cur;
        (n, Some(n))
    }
}

impl ExactSizeIterator for NodeIter<'_> {}

impl Csf {
    /// Iterates the root slices as typed nodes.
    pub fn slices(&self) -> NodeIter<'_> {
        NodeIter {
            csf: self,
            level: 0,
            cur: 0,
            end: self.nfibers(0),
        }
    }

    /// Typed reference to an arbitrary node.
    ///
    /// # Panics
    /// Panics if `level` or `idx` is out of range.
    pub fn node(&self, level: usize, idx: usize) -> NodeRef<'_> {
        assert!(level < self.ndim(), "level out of range");
        assert!(idx < self.nfibers(level), "node index out of range");
        NodeRef {
            csf: self,
            level,
            idx,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::build::build_csf;
    use crate::CooTensor;

    fn sample() -> crate::Csf {
        let mut t = CooTensor::new(vec![3, 2, 3]);
        for (c, v) in [
            ([0u32, 0, 0], 1.0),
            ([0, 0, 2], 2.0),
            ([0, 1, 1], 3.0),
            ([2, 0, 0], 4.0),
            ([2, 1, 1], 5.0),
        ] {
            t.push(&c, v);
        }
        build_csf(&t, &[0, 1, 2])
    }

    #[test]
    fn slices_iterate_in_order() {
        let csf = sample();
        let fids: Vec<u32> = csf.slices().map(|s| s.fid()).collect();
        assert_eq!(fids, vec![0, 2]);
        assert_eq!(csf.slices().len(), 2);
    }

    #[test]
    fn children_walk_matches_raw_structure() {
        let csf = sample();
        let mut total_leaves = 0usize;
        let mut total_value = 0.0;
        for slice in csf.slices() {
            for fiber in slice.children() {
                assert_eq!(fiber.level(), 1);
                for leaf in fiber.children() {
                    assert!(leaf.is_leaf());
                    total_leaves += 1;
                    total_value += leaf.value().unwrap();
                }
            }
        }
        assert_eq!(total_leaves, csf.nnz());
        let direct: f64 = csf.vals().iter().sum();
        assert!((total_value - direct).abs() < 1e-12);
    }

    #[test]
    fn leaf_range_and_nnz_agree() {
        let csf = sample();
        let s0 = csf.node(0, 0);
        assert_eq!(s0.leaf_range(), (0, 3));
        assert_eq!(s0.nnz(), 3);
        assert_eq!(s0.num_children(), 2);
        let s1 = csf.node(0, 1);
        assert_eq!(s1.nnz(), 2);
    }

    #[test]
    fn leaves_have_no_children_and_values() {
        let csf = sample();
        let leaf = csf.node(2, 4);
        assert!(leaf.is_leaf());
        assert_eq!(leaf.children().count(), 0);
        assert_eq!(leaf.num_children(), 0);
        assert_eq!(leaf.value(), Some(5.0));
        let inner = csf.node(1, 0);
        assert_eq!(inner.value(), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn node_bounds_are_checked() {
        let csf = sample();
        let _ = csf.node(0, 99);
    }
}
