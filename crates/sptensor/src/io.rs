//! FROSTT `.tns` text I/O.
//!
//! The FROSTT repository distributes tensors as whitespace-separated text:
//! one non-zero per line, `d` 1-based coordinates followed by the value.
//! Lines starting with `#` are comments. This loader lets the real
//! benchmark tensors be dropped into the harness in place of the
//! synthetic suite.

use crate::CooTensor;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors from `.tns` parsing.
#[derive(Debug)]
pub enum TnsError {
    /// I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number and a description.
    Parse { line: usize, msg: String },
    /// The file contained no non-zeros.
    Empty,
    /// A NaN or infinite value (Rust's float parser accepts `NaN`/`inf`
    /// spellings, but they would poison every downstream kernel).
    NonFinite { line: usize },
    /// The same coordinate appeared on two lines. Silently keeping both
    /// would double-count the entry in every MTTKRP.
    Duplicate { line: usize, first_line: usize },
}

impl std::fmt::Display for TnsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TnsError::Io(e) => write!(f, "I/O error: {e}"),
            TnsError::Parse { line, msg } => write!(f, "parse error on line {line}: {msg}"),
            TnsError::Empty => write!(f, "tensor file contains no non-zeros"),
            TnsError::NonFinite { line } => {
                write!(f, "non-finite value on line {line}")
            }
            TnsError::Duplicate { line, first_line } => {
                write!(
                    f,
                    "duplicate coordinate on line {line} (first seen on line {first_line})"
                )
            }
        }
    }
}

impl std::error::Error for TnsError {}

impl From<std::io::Error> for TnsError {
    fn from(e: std::io::Error) -> Self {
        TnsError::Io(e)
    }
}

/// Reads a `.tns` tensor from any reader. Mode lengths are inferred as
/// the maximum coordinate seen per mode (the FROSTT convention).
pub fn read_tns<R: Read>(reader: R) -> Result<CooTensor, TnsError> {
    let mut lines = BufReader::new(reader);
    let mut buf = String::new();
    let mut lineno = 0usize;

    let mut nmodes: Option<usize> = None;
    let mut coords: Vec<Vec<u32>> = Vec::new();
    let mut vals: Vec<f64> = Vec::new();
    let mut maxes: Vec<u32> = Vec::new();
    let mut seen: std::collections::HashMap<Vec<u32>, usize> = std::collections::HashMap::new();

    loop {
        buf.clear();
        if lines.read_line(&mut buf)? == 0 {
            break;
        }
        lineno += 1;
        let line = buf.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_whitespace();
        let toks: Vec<&str> = fields.by_ref().collect();
        if toks.len() < 3 {
            return Err(TnsError::Parse {
                line: lineno,
                msg: format!(
                    "expected at least 2 coordinates and a value, got {} fields",
                    toks.len()
                ),
            });
        }
        let d = toks.len() - 1;
        match nmodes {
            None => {
                nmodes = Some(d);
                coords = vec![Vec::new(); d];
                maxes = vec![0; d];
            }
            Some(existing) if existing != d => {
                return Err(TnsError::Parse {
                    line: lineno,
                    msg: format!("inconsistent arity: {d} coordinates after {existing}"),
                });
            }
            Some(_) => {}
        }
        for (m, tok) in toks[..d].iter().enumerate() {
            let c: u64 = tok.parse().map_err(|_| TnsError::Parse {
                line: lineno,
                msg: format!("bad coordinate '{tok}'"),
            })?;
            if c == 0 {
                return Err(TnsError::Parse {
                    line: lineno,
                    msg: "coordinates are 1-based; found 0".into(),
                });
            }
            // Reject out-of-range coordinates instead of `as`-wrapping:
            // a 1-based index above 2^32 would silently alias a small
            // coordinate and corrupt the tensor.
            let c0 = u32::try_from(c - 1).map_err(|_| TnsError::Parse {
                line: lineno,
                msg: format!("coordinate {c} exceeds the supported maximum of {}", u32::MAX),
            })?;
            coords[m].push(c0);
            if c0 > maxes[m] {
                maxes[m] = c0;
            }
        }
        let v: f64 = toks[d].parse().map_err(|_| TnsError::Parse {
            line: lineno,
            msg: format!("bad value '{}'", toks[d]),
        })?;
        if !v.is_finite() {
            return Err(TnsError::NonFinite { line: lineno });
        }
        let key: Vec<u32> = coords.iter().map(|c| *c.last().unwrap()).collect();
        if let Some(&first_line) = seen.get(&key) {
            return Err(TnsError::Duplicate {
                line: lineno,
                first_line,
            });
        }
        seen.insert(key, lineno);
        vals.push(v);
    }

    let d = nmodes.ok_or(TnsError::Empty)?;
    let dims: Vec<usize> = maxes.iter().map(|&m| m as usize + 1).collect();
    let mut t = CooTensor::new(dims);
    let mut coord = vec![0u32; d];
    for e in 0..vals.len() {
        for m in 0..d {
            coord[m] = coords[m][e];
        }
        t.push(&coord, vals[e]);
    }
    Ok(t)
}

/// Reads a `.tns` file from disk.
pub fn read_tns_file(path: impl AsRef<Path>) -> Result<CooTensor, TnsError> {
    read_tns(std::fs::File::open(path)?)
}

/// Writes a tensor in `.tns` format (1-based coordinates).
pub fn write_tns<W: Write>(t: &CooTensor, writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    let d = t.ndim();
    for e in 0..t.nnz() {
        for m in 0..d {
            write!(w, "{} ", t.indices()[m][e] + 1)?;
        }
        writeln!(w, "{}", t.values()[e])?;
    }
    w.flush()
}

/// Writes a `.tns` file to disk.
pub fn write_tns_file(t: &CooTensor, path: impl AsRef<Path>) -> std::io::Result<()> {
    write_tns(t, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_file() {
        let data = "# a comment\n1 1 1 1.5\n2 3 1 -2.0\n\n3 3 3 0.25\n";
        let t = read_tns(data.as_bytes()).unwrap();
        assert_eq!(t.ndim(), 3);
        assert_eq!(t.dims(), &[3, 3, 3]);
        assert_eq!(t.nnz(), 3);
        assert_eq!(t.get(&[1, 2, 0]), -2.0);
    }

    #[test]
    fn round_trips_through_text() {
        let mut t = CooTensor::new(vec![4, 5, 6, 7]);
        t.push(&[3, 4, 5, 6], 1.25);
        t.push(&[0, 0, 0, 0], -0.5);
        let mut buf = Vec::new();
        write_tns(&t, &mut buf).unwrap();
        let back = read_tns(buf.as_slice()).unwrap();
        assert_eq!(back.nnz(), 2);
        assert_eq!(back.get(&[3, 4, 5, 6]), 1.25);
        assert_eq!(back.get(&[0, 0, 0, 0]), -0.5);
        // Dims are inferred from max coordinates, so they shrink-wrap.
        assert_eq!(back.dims(), &[4, 5, 6, 7]);
    }

    #[test]
    fn rejects_zero_based() {
        let err = read_tns("0 1 2.0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TnsError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_inconsistent_arity() {
        let err = read_tns("1 1 1 2.0\n1 1 2.0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TnsError::Parse { line: 2, .. }));
    }

    #[test]
    fn rejects_garbage_value() {
        let err = read_tns("1 1 banana\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TnsError::Parse { .. }));
    }

    #[test]
    fn empty_file_is_an_error() {
        assert!(matches!(
            read_tns("# nothing\n".as_bytes()),
            Err(TnsError::Empty)
        ));
    }

    #[test]
    fn scientific_notation_values() {
        let t = read_tns("1 1 1e-3\n2 2 2.5E2\n".as_bytes()).unwrap();
        assert_eq!(t.get(&[0, 0]), 1e-3);
        assert_eq!(t.get(&[1, 1]), 250.0);
    }

    #[test]
    fn rejects_nan_and_inf_values() {
        // Rust's f64 parser happily accepts these spellings, so the
        // loader must check explicitly.
        for (bad, line) in [("1 1 NaN\n", 1), ("1 1 1.0\n2 2 inf\n", 2)] {
            match read_tns(bad.as_bytes()) {
                Err(TnsError::NonFinite { line: l }) => assert_eq!(l, line),
                other => panic!("expected NonFinite, got {other:?}"),
            }
        }
        assert!(matches!(
            read_tns("1 1 -infinity\n".as_bytes()),
            Err(TnsError::NonFinite { line: 1 })
        ));
    }

    #[test]
    fn rejects_duplicate_coordinates() {
        let data = "# dup below\n1 2 3 1.0\n2 2 2 4.0\n1 2 3 5.0\n";
        match read_tns(data.as_bytes()) {
            Err(TnsError::Duplicate { line, first_line }) => {
                assert_eq!(line, 4);
                assert_eq!(first_line, 2);
            }
            other => panic!("expected Duplicate, got {other:?}"),
        }
    }
}
