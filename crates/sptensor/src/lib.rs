//! # stef-sptensor — sparse tensor substrate
//!
//! Everything the STeF reproduction needs to *represent* sparse tensors,
//! independent of any particular MTTKRP algorithm:
//!
//! * [`coo::CooTensor`] — coordinate-format tensor, the interchange format
//!   all generators and loaders produce, with a naive reference MTTKRP
//!   that every optimized kernel is tested against;
//! * [`csf::Csf`] — the Compressed Sparse Fiber tree (paper §II-B), built
//!   from COO by [`build`] for an arbitrary mode order;
//! * [`stats`] — per-level fiber counts, slice-imbalance metrics and the
//!   mode-length ordering heuristic that drive the paper's data-movement
//!   model;
//! * [`swapcount`] — Algorithm 9: the cheap parallel pass that counts how
//!   many level-(d−2) fibers the CSF would have *if the last two modes
//!   were swapped*, without building that CSF;
//! * [`io`] — FROSTT `.tns` text I/O so real datasets can be dropped in.
//!
//! Index convention: mode indices are `u32` (every tensor in the paper's
//! suite fits), pointer arrays are `usize`, values are `f64`.

#![allow(clippy::needless_range_loop)] // index loops over parallel arrays are the clearest form in these kernels

pub mod build;
pub mod coo;
pub mod csf;
pub mod io;
pub mod iter;
pub mod linearize;
pub mod permute;
pub mod reorder;
pub mod stats;
pub mod swapcount;

pub use build::build_csf;
pub use coo::CooTensor;
pub use csf::Csf;
pub use io::TnsError;
pub use iter::{NodeIter, NodeRef};
pub use linearize::{index_bits_for, LinIndex, LinStore, Linearized, ModeMask};
pub use permute::{inverse_permutation, sort_modes_by_length};
pub use stats::TensorStats;
pub use swapcount::count_fibers_if_last_two_swapped;
