//! Algorithm 9: fiber counting for the swapped last-two-mode order.
//!
//! To decide whether the CSF's last two levels should be swapped (paper
//! §II-E), the data-movement model needs the fiber count profile of the
//! *swapped* order. Levels `0..d-2` are identical in both orders, the
//! leaf level is always `nnz`, so only `m_{d-2}` — the number of distinct
//! `(i_0, …, i_{d-3}, i_{d-1})` prefixes — has to be computed.
//!
//! The paper counts these by streaming non-zeros with a per-thread
//! `observed[l]` buffer that records the last `(i, j)` prefix seen for
//! leaf index `l` (Algorithm 9, lines 10–12). We exploit the CSF property
//! that each level-(d−3) node's subtree is a contiguous leaf range:
//! distinct `(prefix, leaf)` pairs = Σ over level-(d−3) nodes of the
//! number of distinct leaf indices inside that node's range. Each
//! parallel task keeps its own `observed` buffer storing the *node id*
//! as the marker, so buffers never need clearing between nodes — the
//! same trick the paper uses with `(i, j)` pairs. The tasks fan out
//! through `linalg::par`, so in an engine build they run on the shared
//! persistent worker pool; the per-chunk counts land in disjoint slots
//! and are summed afterwards (integer sum — order-independent).

use crate::csf::Csf;

/// Minimum leaf count before the parallel path is taken.
const PAR_THRESHOLD: usize = 1 << 14;

/// Number of nodes processed per parallel task; each task allocates one
/// `observed` buffer, so chunks are kept coarse.
const NODE_CHUNK: usize = 64;

/// Counts the fibers at level `d-2` the CSF would have if its last two
/// levels were swapped, without building that CSF (Algorithm 9).
///
/// For `d == 2` this is the number of distinct leaf (column) indices.
pub fn count_fibers_if_last_two_swapped(csf: &Csf) -> usize {
    let d = csf.ndim();
    let leaf_dim = csf.level_dims()[d - 1];
    if d == 2 {
        // Distinct column indices overall.
        let mut observed = vec![false; leaf_dim];
        let mut count = 0usize;
        for &l in csf.fids(1) {
            if !observed[l as usize] {
                observed[l as usize] = true;
                count += 1;
            }
        }
        return count;
    }

    // Nodes whose subtrees partition the leaves into independent ranges:
    // level d-3 (the grandparent of the leaves).
    let anchor = d - 3;
    let n_nodes = csf.nfibers(anchor);
    if csf.nnz() < PAR_THRESHOLD {
        let mut observed = vec![u64::MAX; leaf_dim];
        return count_range(csf, anchor, 0, n_nodes, &mut observed);
    }

    let nchunks = n_nodes.div_ceil(NODE_CHUNK);
    let mut counts = vec![0usize; nchunks];
    {
        let shared = linalg::par::SharedSlice::new(&mut counts);
        linalg::par::fanout(nchunks, &|ci| {
            let lo = ci * NODE_CHUNK;
            let hi = (lo + NODE_CHUNK).min(n_nodes);
            let mut observed = vec![u64::MAX; leaf_dim];
            // SAFETY: each task owns exactly its own count slot.
            let slot = unsafe { shared.range_mut(ci, ci + 1) };
            slot[0] = count_range(csf, anchor, lo, hi, &mut observed);
        });
    }
    counts.iter().sum()
}

/// Counts distinct `(node, leaf-fid)` pairs for nodes `[lo, hi)` at
/// `anchor` level, using `observed` as a node-id-stamped marker buffer.
fn count_range(csf: &Csf, anchor: usize, lo: usize, hi: usize, observed: &mut [u64]) -> usize {
    let mut count = 0usize;
    let leaf_fids = csf.fids(csf.ndim() - 1);
    for node in lo..hi {
        let (llo, lhi) = csf.leaf_range(anchor, node);
        let stamp = node as u64;
        for &l in &leaf_fids[llo..lhi] {
            let slot = &mut observed[l as usize];
            if *slot != stamp {
                *slot = stamp;
                count += 1;
            }
        }
    }
    count
}

/// Reference implementation: actually build the swapped-order CSF and
/// read off its fiber count. O(nnz log nnz); used to validate the fast
/// path in tests and available for callers that want certainty.
pub fn count_fibers_swapped_reference(coo: &crate::CooTensor, mode_order: &[usize]) -> usize {
    let swapped = crate::permute::swap_last_two(mode_order);
    let csf = crate::build::build_csf(coo, &swapped);
    csf.nfibers(csf.ndim() - 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_csf;
    use crate::CooTensor;

    fn pseudo_tensor(dims: &[usize], nnz: usize, seed: u64) -> CooTensor {
        let mut t = CooTensor::new(dims.to_vec());
        let mut x = seed | 1;
        let mut coord = vec![0u32; dims.len()];
        for _ in 0..nnz {
            for (c, &d) in coord.iter_mut().zip(dims) {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *c = ((x >> 33) % d as u64) as u32;
            }
            t.push(&coord, 1.0);
        }
        t.sort_dedup();
        t
    }

    #[test]
    fn matches_reference_3d() {
        let t = pseudo_tensor(&[8, 12, 6], 200, 3);
        let order = [0usize, 1, 2];
        let csf = build_csf(&t, &order);
        assert_eq!(
            count_fibers_if_last_two_swapped(&csf),
            count_fibers_swapped_reference(&t, &order)
        );
    }

    #[test]
    fn matches_reference_4d_and_5d() {
        for dims in [vec![5usize, 7, 9, 4], vec![3, 4, 5, 6, 7]] {
            let t = pseudo_tensor(&dims, 500, 11);
            let order: Vec<usize> = (0..dims.len()).collect();
            let csf = build_csf(&t, &order);
            assert_eq!(
                count_fibers_if_last_two_swapped(&csf),
                count_fibers_swapped_reference(&t, &order),
                "dims {dims:?}"
            );
        }
    }

    #[test]
    fn matches_reference_2d() {
        let t = pseudo_tensor(&[10, 17], 60, 5);
        let csf = build_csf(&t, &[0, 1]);
        assert_eq!(
            count_fibers_if_last_two_swapped(&csf),
            count_fibers_swapped_reference(&t, &[0, 1])
        );
    }

    #[test]
    fn parallel_path_matches_reference() {
        let t = pseudo_tensor(&[40, 50, 30], 40_000, 17);
        let csf = build_csf(&t, &[0, 1, 2]);
        assert!(csf.nnz() >= PAR_THRESHOLD, "need the parallel path");
        assert_eq!(
            count_fibers_if_last_two_swapped(&csf),
            count_fibers_swapped_reference(&t, &[0, 1, 2])
        );
    }

    #[test]
    fn dense_fiber_structure_hand_checked() {
        // T[i,j,k] nonzero for k in {0,1}, all (i,j): swapping last two
        // modes gives fibers (i,k): 2 slices * 2 ks = 4... with 3 js each.
        let mut t = CooTensor::new(vec![2, 3, 2]);
        for i in 0..2u32 {
            for j in 0..3u32 {
                for k in 0..2u32 {
                    t.push(&[i, j, k], 1.0);
                }
            }
        }
        let csf = build_csf(&t, &[0, 1, 2]);
        // Original order: m_1 = 6 (i,j) fibers. Swapped: m_1 = 4 (i,k).
        assert_eq!(csf.nfibers(1), 6);
        assert_eq!(count_fibers_if_last_two_swapped(&csf), 4);
    }

    #[test]
    fn swap_can_also_increase_fibers() {
        // Long last mode with singleton fibers: swapping hurts.
        let mut t = CooTensor::new(vec![2, 2, 8]);
        for i in 0..2u32 {
            for l in 0..8u32 {
                t.push(&[i, 0, l], 1.0);
            }
        }
        let csf = build_csf(&t, &[0, 1, 2]);
        assert_eq!(csf.nfibers(1), 2); // (0,0), (1,0)
        assert_eq!(count_fibers_if_last_two_swapped(&csf), 16); // every (i,l)
    }
}
