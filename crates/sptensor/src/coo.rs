//! Coordinate-format sparse tensors.
//!
//! COO is the interchange format: generators produce it, `.tns` files load
//! into it, and every compressed format (CSF, the ALTO-like linearized
//! format) is built from it. It also hosts the *reference* MTTKRP — a
//! direct transcription of the defining sum
//! `Ā(i,r) = Σ T(i,j,k,…) · B(j,r) · C(k,r) · …` — which is deliberately
//! naive: every optimized kernel in the workspace is property-tested
//! against it.

use linalg::Mat;

/// A sparse tensor in coordinate format (struct-of-arrays layout).
#[derive(Clone, Debug)]
pub struct CooTensor {
    dims: Vec<usize>,
    /// `inds[m][e]` is the mode-`m` coordinate of non-zero `e`.
    inds: Vec<Vec<u32>>,
    vals: Vec<f64>,
}

impl CooTensor {
    /// Creates an empty tensor with the given mode lengths.
    ///
    /// # Panics
    /// Panics if fewer than 2 modes, or any mode length is 0 or exceeds
    /// `u32::MAX`.
    pub fn new(dims: Vec<usize>) -> Self {
        assert!(dims.len() >= 2, "tensors need at least 2 modes");
        assert!(
            dims.iter().all(|&d| d > 0 && d <= u32::MAX as usize),
            "mode lengths must be in 1..=u32::MAX"
        );
        let nmodes = dims.len();
        CooTensor {
            dims,
            inds: vec![Vec::new(); nmodes],
            vals: Vec::new(),
        }
    }

    /// Appends a non-zero. Coordinates are 0-based.
    ///
    /// # Panics
    /// Panics if the coordinate arity or any coordinate is out of range.
    pub fn push(&mut self, coord: &[u32], val: f64) {
        assert_eq!(coord.len(), self.ndim(), "coordinate arity mismatch");
        for (m, (&c, &d)) in coord.iter().zip(&self.dims).enumerate() {
            assert!(
                (c as usize) < d,
                "coordinate {c} out of range for mode {m} (len {d})"
            );
        }
        for (store, &c) in self.inds.iter_mut().zip(coord) {
            store.push(c);
        }
        self.vals.push(val);
    }

    /// Number of modes (tensor order / dimensionality).
    #[inline]
    pub fn ndim(&self) -> usize {
        self.dims.len()
    }

    /// Mode lengths.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of stored non-zeros (duplicates, if any, count separately
    /// until [`Self::sort_dedup`] is called).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// The coordinate arrays, one `Vec` per mode.
    #[inline]
    pub fn indices(&self) -> &[Vec<u32>] {
        &self.inds
    }

    /// The value array.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.vals
    }

    /// Coordinate of non-zero `e` as an owned small vector.
    pub fn coord(&self, e: usize) -> Vec<u32> {
        self.inds.iter().map(|col| col[e]).collect()
    }

    /// Squared Frobenius norm `Σ v²` — needed by the CP fit computation.
    pub fn norm_sq(&self) -> f64 {
        self.vals.iter().map(|v| v * v).sum()
    }

    /// Density `nnz / Π dims` (may underflow to 0 for huge index spaces —
    /// informational only).
    pub fn density(&self) -> f64 {
        let space: f64 = self.dims.iter().map(|&d| d as f64).product();
        self.nnz() as f64 / space
    }

    /// Sorts non-zeros lexicographically by coordinate and merges
    /// duplicates by summing their values. Entries that merge to exactly
    /// 0.0 are kept (matching SPLATT, which treats explicit zeros as
    /// structural non-zeros).
    pub fn sort_dedup(&mut self) {
        let n = self.nnz();
        let mut order: Vec<u32> = (0..n as u32).collect();
        let inds = &self.inds;
        order.sort_unstable_by(|&a, &b| {
            let (a, b) = (a as usize, b as usize);
            for col in inds {
                match col[a].cmp(&col[b]) {
                    core::cmp::Ordering::Equal => continue,
                    other => return other,
                }
            }
            core::cmp::Ordering::Equal
        });
        let mut new_inds: Vec<Vec<u32>> = vec![Vec::with_capacity(n); self.ndim()];
        let mut new_vals: Vec<f64> = Vec::with_capacity(n);
        for &eu in &order {
            let e = eu as usize;
            let dup = !new_vals.is_empty()
                && self
                    .inds
                    .iter()
                    .zip(&new_inds)
                    .all(|(col, ncol)| col[e] == *ncol.last().unwrap());
            if dup {
                *new_vals.last_mut().unwrap() += self.vals[e];
            } else {
                for (col, ncol) in self.inds.iter().zip(new_inds.iter_mut()) {
                    ncol.push(col[e]);
                }
                new_vals.push(self.vals[e]);
            }
        }
        self.inds = new_inds;
        self.vals = new_vals;
    }

    /// Returns a new tensor with modes reordered so that new mode `m` is
    /// old mode `perm[m]`.
    pub fn permute_modes(&self, perm: &[usize]) -> CooTensor {
        assert_eq!(perm.len(), self.ndim());
        let dims = perm.iter().map(|&p| self.dims[p]).collect();
        let inds = perm.iter().map(|&p| self.inds[p].clone()).collect();
        CooTensor {
            dims,
            inds,
            vals: self.vals.clone(),
        }
    }

    /// Reference MTTKRP for mode `u` — the defining summation, one scratch
    /// row per non-zero. `factors[m]` must be `dims[m] × R` for every mode.
    ///
    /// This is the oracle the whole workspace is validated against; it is
    /// O(nnz · d · R) with no cleverness whatsoever.
    pub fn mttkrp_reference(&self, factors: &[Mat], mode: usize) -> Mat {
        assert_eq!(factors.len(), self.ndim(), "need one factor per mode");
        assert!(mode < self.ndim(), "mode out of range");
        for (m, f) in factors.iter().enumerate() {
            assert_eq!(f.rows(), self.dims[m], "factor {m} row count mismatch");
        }
        let r = factors[0].cols();
        assert!(factors.iter().all(|f| f.cols() == r));
        let mut out = Mat::zeros(self.dims[mode], r);
        let mut scratch = vec![0.0; r];
        for e in 0..self.nnz() {
            scratch.iter_mut().for_each(|s| *s = self.vals[e]);
            for m in 0..self.ndim() {
                if m == mode {
                    continue;
                }
                let row = factors[m].row(self.inds[m][e] as usize);
                for (s, &fv) in scratch.iter_mut().zip(row) {
                    *s *= fv;
                }
            }
            let orow = out.row_mut(self.inds[mode][e] as usize);
            for (o, &s) in orow.iter_mut().zip(&scratch) {
                *o += s;
            }
        }
        out
    }

    /// Inner product `⟨T, [[λ; A⁰, A¹, …]]⟩` between the tensor and a CP
    /// model — the cross term of the CP fit. O(nnz · d · R).
    pub fn inner_with_model(&self, lambda: &[f64], factors: &[Mat]) -> f64 {
        assert_eq!(factors.len(), self.ndim());
        let r = lambda.len();
        let mut total = 0.0;
        let mut scratch = vec![0.0; r];
        for e in 0..self.nnz() {
            scratch.copy_from_slice(lambda);
            for (m, f) in factors.iter().enumerate() {
                let row = f.row(self.inds[m][e] as usize);
                for (s, &fv) in scratch.iter_mut().zip(row) {
                    *s *= fv;
                }
            }
            total += self.vals[e] * scratch.iter().sum::<f64>();
        }
        total
    }

    /// Evaluates the dense value of the tensor at `coord` (slow; testing
    /// only). Duplicate coordinates must have been merged first.
    pub fn get(&self, coord: &[u32]) -> f64 {
        for e in 0..self.nnz() {
            if self.inds.iter().zip(coord).all(|(col, &c)| col[e] == c) {
                return self.vals[e];
            }
        }
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CooTensor {
        let mut t = CooTensor::new(vec![2, 3, 2]);
        t.push(&[0, 0, 0], 1.0);
        t.push(&[0, 2, 1], 2.0);
        t.push(&[1, 1, 0], 3.0);
        t.push(&[1, 2, 1], -4.0);
        t
    }

    #[test]
    fn push_and_query() {
        let t = small();
        assert_eq!(t.nnz(), 4);
        assert_eq!(t.ndim(), 3);
        assert_eq!(t.dims(), &[2, 3, 2]);
        assert_eq!(t.coord(1), vec![0, 2, 1]);
        assert_eq!(t.get(&[1, 1, 0]), 3.0);
        assert_eq!(t.get(&[0, 1, 0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_validates_coords() {
        let mut t = CooTensor::new(vec![2, 2]);
        t.push(&[0, 2], 1.0);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn push_validates_arity() {
        let mut t = CooTensor::new(vec![2, 2]);
        t.push(&[0], 1.0);
    }

    #[test]
    fn norm_sq_sums_squares() {
        let t = small();
        assert!((t.norm_sq() - (1.0 + 4.0 + 9.0 + 16.0)).abs() < 1e-12);
    }

    #[test]
    fn sort_dedup_sorts_and_merges() {
        let mut t = CooTensor::new(vec![2, 2]);
        t.push(&[1, 1], 5.0);
        t.push(&[0, 1], 1.0);
        t.push(&[1, 1], 2.5);
        t.push(&[0, 0], 3.0);
        t.sort_dedup();
        assert_eq!(t.nnz(), 3);
        assert_eq!(t.coord(0), vec![0, 0]);
        assert_eq!(t.coord(1), vec![0, 1]);
        assert_eq!(t.coord(2), vec![1, 1]);
        assert_eq!(t.values(), &[3.0, 1.0, 7.5]);
    }

    #[test]
    fn permute_modes_round_trip() {
        let t = small();
        let p = t.permute_modes(&[2, 0, 1]);
        assert_eq!(p.dims(), &[2, 2, 3]);
        // nnz 1 was (0,2,1) -> becomes (1,0,2)
        assert_eq!(p.coord(1), vec![1, 0, 2]);
        let back = p.permute_modes(&crate::permute::inverse_permutation(&[2, 0, 1]));
        assert_eq!(back.coord(1), t.coord(1));
    }

    #[test]
    fn mttkrp_reference_matches_hand_computation() {
        // 2x2x2 tensor with a single nnz: T[1,0,1] = 2.
        let mut t = CooTensor::new(vec![2, 2, 2]);
        t.push(&[1, 0, 1], 2.0);
        let a = Mat::from_fn(2, 2, |i, j| (i + j + 1) as f64); // unused for mode 0
        let b = Mat::from_fn(2, 2, |i, j| (2 * i + j + 1) as f64);
        let c = Mat::from_fn(2, 2, |i, j| (i * j + 3) as f64);
        let out = t.mttkrp_reference(&[a.clone(), b.clone(), c.clone()], 0);
        // out[1,r] = 2 * B[0,r] * C[1,r]; B[0,:] = [1,2], C[1,:] = [3,4].
        assert_eq!(out.row(0), &[0.0, 0.0]);
        assert_eq!(out.row(1), &[6.0, 16.0]);
        // Mode 1: out[0,r] = 2 * A[1,r] * C[1,r]; A[1,:] = [2,3], C[1,:] = [3,4].
        let out1 = t.mttkrp_reference(&[a.clone(), b.clone(), c.clone()], 1);
        assert_eq!(out1.row(0), &[12.0, 24.0]);
        // Mode 2: out[1,r] = 2 * A[1,r] * B[0,r].
        let out2 = t.mttkrp_reference(&[a, b, c], 2);
        assert_eq!(out2.row(1), &[4.0, 12.0]);
    }

    #[test]
    fn mttkrp_reference_accumulates_across_nnz() {
        let mut t = CooTensor::new(vec![2, 2]);
        t.push(&[0, 0], 1.0);
        t.push(&[0, 1], 2.0);
        let b = Mat::from_fn(2, 1, |i, _| (i + 1) as f64); // [1],[2]
        let a = Mat::from_fn(2, 1, |_, _| 1.0);
        let out = t.mttkrp_reference(&[a, b], 0);
        // Matrix case: out[0] = 1*B[0] + 2*B[1] = 1 + 4 = 5.
        assert_eq!(out.row(0), &[5.0]);
    }

    #[test]
    fn inner_with_model_matches_reference() {
        let t = small();
        let r = 2;
        let factors: Vec<Mat> = t
            .dims()
            .iter()
            .map(|&n| Mat::from_fn(n, r, |i, j| ((i * 3 + j * 5) % 7) as f64 * 0.3 - 0.5))
            .collect();
        let lambda = vec![1.5, 0.5];
        // Brute force via dense evaluation.
        let mut expect = 0.0;
        for e in 0..t.nnz() {
            let c = t.coord(e);
            for rr in 0..r {
                let mut p = lambda[rr];
                for (m, f) in factors.iter().enumerate() {
                    p *= f[(c[m] as usize, rr)];
                }
                expect += t.values()[e] * p;
            }
        }
        assert!((t.inner_with_model(&lambda, &factors) - expect).abs() < 1e-10);
    }

    #[test]
    fn density_small_tensor() {
        let t = small();
        assert!((t.density() - 4.0 / 12.0).abs() < 1e-12);
    }
}
