//! Lexi-Order-style mode reordering (Li, Uçar, Çatalyürek, Sun, Barker,
//! Vuduc — ICS 2019; discussed in the STeF paper's §V as complementary
//! to its contributions).
//!
//! Reordering renumbers the indices *within* each mode (a per-mode
//! bijection). Fiber counts — and therefore the data-movement model's
//! decisions — are invariant under renumbering; what changes is
//! **locality**: after Lexi-Order, rows of the factor matrices that are
//! accessed close together in the CSF traversal get nearby indices, so
//! factor-row reads hit warmer cache lines.
//!
//! The scheme implemented here is the practical core of Lexi-Order:
//! sweep the modes a few times; for each mode, sort the non-zeros
//! lexicographically by *all other* modes (in their current numbering)
//! and assign new ids to this mode's indices in order of first
//! appearance. Indices sharing fiber prefixes thus become contiguous.

use crate::coo::CooTensor;

/// The per-mode renumberings produced by [`lexi_order`].
#[derive(Clone, Debug)]
pub struct ModeRenumbering {
    /// `forward[m][old_id] = new_id`.
    pub forward: Vec<Vec<u32>>,
    /// `inverse[m][new_id] = old_id`.
    pub inverse: Vec<Vec<u32>>,
}

impl ModeRenumbering {
    /// The identity renumbering for the given mode lengths.
    pub fn identity(dims: &[usize]) -> Self {
        let forward: Vec<Vec<u32>> = dims.iter().map(|&n| (0..n as u32).collect()).collect();
        ModeRenumbering {
            inverse: forward.clone(),
            forward,
        }
    }

    /// Applies the renumbering to a tensor (coordinates only; values and
    /// entry order are preserved).
    pub fn apply(&self, t: &CooTensor) -> CooTensor {
        let mut out = CooTensor::new(t.dims().to_vec());
        let mut coord = vec![0u32; t.ndim()];
        for e in 0..t.nnz() {
            for (m, c) in coord.iter_mut().enumerate() {
                *c = self.forward[m][t.indices()[m][e] as usize];
            }
            out.push(&coord, t.values()[e]);
        }
        out
    }

    /// Reorders the *rows* of factor matrices computed on the renumbered
    /// tensor back into original index order: `out[old] = f[new]`.
    pub fn unapply_factor_rows(&self, mode: usize, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        assert_eq!(rows.len(), self.forward[mode].len());
        (0..rows.len())
            .map(|old| rows[self.forward[mode][old] as usize].clone())
            .collect()
    }

    fn validate(&self) {
        for (f, i) in self.forward.iter().zip(&self.inverse) {
            debug_assert_eq!(f.len(), i.len());
            for (old, &new) in f.iter().enumerate() {
                debug_assert_eq!(i[new as usize] as usize, old);
            }
        }
    }
}

/// Runs Lexi-Order-style renumbering for `sweeps` passes over all modes
/// and returns the renumbered tensor plus the applied renumbering.
///
/// One sweep per mode is usually enough; the ICS'19 paper uses a few.
pub fn lexi_order(t: &CooTensor, sweeps: usize) -> (CooTensor, ModeRenumbering) {
    let d = t.ndim();
    let mut current = t.clone();
    let mut total = ModeRenumbering::identity(t.dims());
    for _ in 0..sweeps.max(1) {
        for mode in 0..d {
            let perm = renumber_one_mode(&current, mode);
            // Compose into the running renumbering…
            for old in 0..t.dims()[mode] {
                let mid = total.forward[mode][old] as usize;
                total.forward[mode][old] = perm[mid];
            }
            // …and rebuild the inverse.
            for (old, &new) in total.forward[mode].iter().enumerate() {
                total.inverse[mode][new as usize] = old as u32;
            }
            // Apply to the working tensor.
            let single = single_mode_renumbering(t.dims(), mode, &perm);
            current = single.apply(&current);
        }
    }
    total.validate();
    (current, total)
}

fn single_mode_renumbering(dims: &[usize], mode: usize, perm: &[u32]) -> ModeRenumbering {
    let mut r = ModeRenumbering::identity(dims);
    r.forward[mode] = perm.to_vec();
    for (old, &new) in perm.iter().enumerate() {
        r.inverse[mode][new as usize] = old as u32;
    }
    r
}

/// New ids for `mode`: sort entries by the other modes then by `mode`,
/// and number this mode's indices by first appearance. Unused indices
/// keep stable ids after all used ones.
fn renumber_one_mode(t: &CooTensor, mode: usize) -> Vec<u32> {
    let n = t.dims()[mode];
    let d = t.ndim();
    let mut order: Vec<u32> = (0..t.nnz() as u32).collect();
    let inds = t.indices();
    let key_modes: Vec<usize> = (0..d).filter(|&m| m != mode).collect();
    order.sort_unstable_by(|&a, &b| {
        let (a, b) = (a as usize, b as usize);
        for &m in &key_modes {
            match inds[m][a].cmp(&inds[m][b]) {
                core::cmp::Ordering::Equal => continue,
                o => return o,
            }
        }
        inds[mode][a].cmp(&inds[mode][b])
    });
    let mut new_id = vec![u32::MAX; n];
    let mut next = 0u32;
    for &e in &order {
        let old = inds[mode][e as usize] as usize;
        if new_id[old] == u32::MAX {
            new_id[old] = next;
            next += 1;
        }
    }
    for slot in new_id.iter_mut() {
        if *slot == u32::MAX {
            *slot = next;
            next += 1;
        }
    }
    debug_assert_eq!(next as usize, n);
    new_id
}

/// Locality metric: the mean absolute difference between consecutive
/// index values per mode when the tensor is traversed in sorted order —
/// lower means factor rows are touched in tighter windows. Used to
/// verify that Lexi-Order actually improves layout.
pub fn mean_index_jump(t: &CooTensor) -> Vec<f64> {
    let mut sorted = t.clone();
    sorted.sort_dedup();
    let d = sorted.ndim();
    let mut out = vec![0.0; d];
    if sorted.nnz() < 2 {
        return out;
    }
    for (m, acc) in out.iter_mut().enumerate() {
        let col = &sorted.indices()[m];
        let mut sum = 0.0;
        for w in col.windows(2) {
            sum += (w[1] as i64 - w[0] as i64).unsigned_abs() as f64;
        }
        *acc = sum / (col.len() - 1) as f64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scattered_tensor(seed: u64) -> CooTensor {
        // Block structure hidden behind a random shuffle of mode-1 ids:
        // Lexi-Order should (mostly) undo the shuffle.
        let mut t = CooTensor::new(vec![16, 64, 16]);
        let mut shuffle: Vec<u32> = (0..64).collect();
        let mut x = seed | 1;
        for i in (1..64usize).rev() {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            shuffle.swap(i, ((x >> 33) % (i as u64 + 1)) as usize);
        }
        for b in 0..4u32 {
            for i in 0..4u32 {
                for j in 0..16u32 {
                    for k in 0..4u32 {
                        t.push(&[b * 4 + i, shuffle[(b * 16 + j) as usize], b * 4 + k], 1.0);
                    }
                }
            }
        }
        t.sort_dedup();
        t
    }

    #[test]
    fn renumbering_is_a_bijection() {
        let t = scattered_tensor(3);
        let (_, r) = lexi_order(&t, 2);
        for m in 0..3 {
            let mut seen = vec![false; t.dims()[m]];
            for &new in &r.forward[m] {
                assert!(!seen[new as usize], "mode {m} maps twice to {new}");
                seen[new as usize] = true;
            }
            assert!(seen.iter().all(|&s| s));
            // forward/inverse consistency
            for old in 0..t.dims()[m] {
                assert_eq!(r.inverse[m][r.forward[m][old] as usize] as usize, old);
            }
        }
    }

    #[test]
    fn reordered_tensor_has_same_values_up_to_renaming() {
        let t = scattered_tensor(5);
        let (reordered, r) = lexi_order(&t, 1);
        assert_eq!(reordered.nnz(), t.nnz());
        assert!((reordered.norm_sq() - t.norm_sq()).abs() < 1e-9);
        // Spot-check: entry e maps coordinate-wise through `forward`.
        for e in (0..t.nnz()).step_by(13) {
            let c = t.coord(e);
            let mapped: Vec<u32> = c
                .iter()
                .enumerate()
                .map(|(m, &v)| r.forward[m][v as usize])
                .collect();
            assert_eq!(reordered.get(&mapped), t.values()[e]);
        }
    }

    #[test]
    fn fiber_counts_are_invariant() {
        let t = scattered_tensor(7);
        let (reordered, _) = lexi_order(&t, 2);
        let order = [0usize, 1, 2];
        let a = crate::build::build_csf(&t, &order);
        let b = crate::build::build_csf(&reordered, &order);
        assert_eq!(a.fiber_counts(), b.fiber_counts());
    }

    #[test]
    fn locality_improves_on_shuffled_blocks() {
        let t = scattered_tensor(9);
        let before = mean_index_jump(&t);
        let (reordered, _) = lexi_order(&t, 2);
        let after = mean_index_jump(&reordered);
        // Mode 1 was shuffled; Lexi-Order should tighten it noticeably.
        assert!(
            after[1] < before[1] * 0.8,
            "mode-1 jump should shrink: {before:?} -> {after:?}"
        );
    }

    #[test]
    fn identity_on_already_ordered_tensor() {
        // A perfectly blocked tensor: reordering must not make locality
        // worse.
        let mut t = CooTensor::new(vec![8, 8, 8]);
        for i in 0..8u32 {
            for j in 0..2u32 {
                t.push(&[i, (i + j) % 8, i], 1.0);
            }
        }
        t.sort_dedup();
        let before = mean_index_jump(&t);
        let (reordered, _) = lexi_order(&t, 1);
        let after = mean_index_jump(&reordered);
        for m in 0..3 {
            assert!(
                after[m] <= before[m] * 1.5 + 1.0,
                "mode {m}: {before:?} -> {after:?}"
            );
        }
    }

    #[test]
    fn unapply_factor_rows_round_trips() {
        let t = scattered_tensor(11);
        let (_, r) = lexi_order(&t, 1);
        let mode = 1;
        let n = t.dims()[mode];
        // Factor rows computed in NEW numbering: row new = [new as f64].
        let rows_new: Vec<Vec<f64>> = (0..n).map(|new| vec![new as f64]).collect();
        let rows_old = r.unapply_factor_rows(mode, &rows_new);
        for old in 0..n {
            assert_eq!(rows_old[old][0], r.forward[mode][old] as f64);
        }
    }

    #[test]
    fn mean_index_jump_handles_tiny_tensors() {
        let mut t = CooTensor::new(vec![4, 4]);
        t.push(&[1, 2], 1.0);
        assert_eq!(mean_index_jump(&t), vec![0.0, 0.0]);
    }
}
