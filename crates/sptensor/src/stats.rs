//! Tensor statistics feeding the paper's models and tables.
//!
//! * Per-level fiber counts (`m_i`) are the inputs of the data-movement
//!   model (§IV-C).
//! * Average fiber lengths explain the §II-E observation that the longest
//!   mode does not always compress best (e.g. `delicious-4d`).
//! * Root-slice imbalance is the statistic behind the paper's motivating
//!   example (the `vast-2015` tensors have 2 root slices and a 1674%
//!   imbalance under slice-based work division).

use crate::csf::Csf;
use crate::CooTensor;

/// Summary statistics of a tensor under a specific CSF mode order.
#[derive(Clone, Debug, PartialEq)]
pub struct TensorStats {
    /// Original mode lengths.
    pub dims: Vec<usize>,
    /// Number of non-zeros (after duplicate merging).
    pub nnz: usize,
    /// CSF mode order these statistics were computed for.
    pub mode_order: Vec<usize>,
    /// Fiber counts `m_i` per level, root to leaf (`m_{d-1} = nnz`).
    pub fiber_counts: Vec<usize>,
    /// Average children per fiber at each level `l > 0`:
    /// `m_l / m_{l-1}`. Index 0 holds `m_0` itself (root slice count).
    pub avg_fanout: Vec<f64>,
    /// Number of root slices.
    pub root_slices: usize,
    /// `max(slice nnz) / mean(slice nnz)` — 1.0 means perfectly balanced.
    /// This is the load-imbalance a slice-scheduled algorithm suffers
    /// with one thread per slice.
    pub slice_imbalance: f64,
}

impl TensorStats {
    /// Computes statistics from a built CSF.
    pub fn from_csf(csf: &Csf, original_dims: &[usize]) -> Self {
        let d = csf.ndim();
        let fiber_counts = csf.fiber_counts();
        let mut avg_fanout = Vec::with_capacity(d);
        avg_fanout.push(fiber_counts[0] as f64);
        for l in 1..d {
            avg_fanout.push(fiber_counts[l] as f64 / fiber_counts[l - 1] as f64);
        }
        let per_slice = csf.nnz_per_root_slice();
        let max = per_slice.iter().copied().max().unwrap_or(0) as f64;
        let mean = if per_slice.is_empty() {
            0.0
        } else {
            csf.nnz() as f64 / per_slice.len() as f64
        };
        TensorStats {
            dims: original_dims.to_vec(),
            nnz: csf.nnz(),
            mode_order: csf.mode_order().to_vec(),
            fiber_counts,
            avg_fanout,
            root_slices: per_slice.len(),
            slice_imbalance: if mean > 0.0 { max / mean } else { 1.0 },
        }
    }

    /// Convenience: build the default-order CSF and return its stats.
    pub fn from_coo(coo: &CooTensor) -> Self {
        let csf = crate::build::build_csf_default_order(coo);
        Self::from_csf(&csf, coo.dims())
    }

    /// Human-readable dimension string, e.g. `"6Kx24x77x32"` in the style
    /// of the paper's Table I.
    pub fn dims_string(&self) -> String {
        self.dims
            .iter()
            .map(|&d| abbreviate(d))
            .collect::<Vec<_>>()
            .join("x")
    }

    /// Abbreviated nnz, e.g. `"5M"`.
    pub fn nnz_string(&self) -> String {
        abbreviate(self.nnz)
    }
}

/// Formats a count the way the paper's Table I does (5M, 533K, 183).
pub fn abbreviate(n: usize) -> String {
    if n >= 10_000_000 {
        format!("{}M", (n as f64 / 1e6).round() as usize)
    } else if n >= 1_000_000 {
        let m = n as f64 / 1e6;
        if (m - m.round()).abs() < 0.05 {
            format!("{}M", m.round() as usize)
        } else {
            format!("{m:.1}M")
        }
    } else if n >= 1_000 {
        format!("{}K", (n as f64 / 1e3).round() as usize)
    } else {
        format!("{n}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_csf;

    fn skewed() -> CooTensor {
        // 2 root slices: slice 0 has 6 nnz, slice 1 has 2 nnz.
        let mut t = CooTensor::new(vec![2, 4, 4]);
        for j in 0..3u32 {
            for k in 0..2u32 {
                t.push(&[0, j, k], 1.0);
            }
        }
        t.push(&[1, 0, 0], 1.0);
        t.push(&[1, 3, 3], 1.0);
        t
    }

    #[test]
    fn fiber_counts_and_fanout() {
        let t = skewed();
        let csf = build_csf(&t, &[0, 1, 2]);
        let s = TensorStats::from_csf(&csf, t.dims());
        assert_eq!(s.fiber_counts, vec![2, 5, 8]);
        assert_eq!(s.nnz, 8);
        assert!((s.avg_fanout[1] - 2.5).abs() < 1e-12);
        assert!((s.avg_fanout[2] - 1.6).abs() < 1e-12);
    }

    #[test]
    fn slice_imbalance_detects_skew() {
        let t = skewed();
        let csf = build_csf(&t, &[0, 1, 2]);
        let s = TensorStats::from_csf(&csf, t.dims());
        assert_eq!(s.root_slices, 2);
        // max 6, mean 4 -> 1.5
        assert!((s.slice_imbalance - 1.5).abs() < 1e-12);
    }

    #[test]
    fn perfectly_balanced_is_one() {
        let mut t = CooTensor::new(vec![2, 2, 2]);
        for i in 0..2u32 {
            t.push(&[i, 0, 0], 1.0);
            t.push(&[i, 1, 1], 1.0);
        }
        let csf = build_csf(&t, &[0, 1, 2]);
        let s = TensorStats::from_csf(&csf, t.dims());
        assert!((s.slice_imbalance - 1.0).abs() < 1e-12);
    }

    #[test]
    fn abbreviate_matches_paper_style() {
        assert_eq!(abbreviate(183), "183");
        assert_eq!(abbreviate(6_000), "6K");
        assert_eq!(abbreviate(5_000_000), "5M");
        assert_eq!(abbreviate(532_924), "533K");
        assert_eq!(abbreviate(17_262_471), "17M");
        assert_eq!(abbreviate(1_500_000), "1.5M");
    }

    #[test]
    fn dims_string_formats() {
        let t = skewed();
        let s = TensorStats::from_coo(&t);
        assert_eq!(s.dims_string(), "2x4x4");
        assert_eq!(s.nnz_string(), "8");
    }
}
