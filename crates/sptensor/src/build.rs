//! Building a CSF from a COO tensor.
//!
//! The construction is the standard sort-and-scan: non-zeros are sorted
//! lexicographically in the target mode order (a permutation array is
//! sorted, not the tensor itself), duplicates are merged by summation,
//! and one linear scan emits the fiber/pointer arrays level by level.
//! Sorting dominates and is delegated to rayon's parallel unstable sort
//! for large tensors.

use crate::coo::CooTensor;
use crate::csf::Csf;
use crate::permute::is_permutation;
use rayon::prelude::*;

/// nnz threshold above which the sort permutation is computed in parallel.
const PAR_SORT_THRESHOLD: usize = 1 << 16;

/// Builds a CSF for `coo` with the given `mode_order` (root-to-leaf;
/// `mode_order[level]` is the original mode stored at that level).
///
/// Duplicate coordinates are merged by summing values. The input tensor
/// is not modified.
///
/// # Panics
/// Panics if `mode_order` is not a permutation of the tensor's modes.
pub fn build_csf(coo: &CooTensor, mode_order: &[usize]) -> Csf {
    let d = coo.ndim();
    assert!(
        is_permutation(mode_order, d),
        "mode_order must be a permutation of 0..{d}"
    );
    let n = coo.nnz();
    // Column views in level order, so comparisons go root -> leaf.
    let cols: Vec<&[u32]> = mode_order
        .iter()
        .map(|&m| coo.indices()[m].as_slice())
        .collect();

    let mut order: Vec<u32> = (0..n as u32).collect();
    let cmp = |a: &u32, b: &u32| {
        let (a, b) = (*a as usize, *b as usize);
        for col in &cols {
            match col[a].cmp(&col[b]) {
                core::cmp::Ordering::Equal => continue,
                other => return other,
            }
        }
        core::cmp::Ordering::Equal
    };
    if n >= PAR_SORT_THRESHOLD {
        order.par_sort_unstable_by(cmp);
    } else {
        order.sort_unstable_by(cmp);
    }

    // Single scan: emit fibers wherever a prefix changes.
    let mut fids: Vec<Vec<u32>> = vec![Vec::new(); d];
    let mut ptr: Vec<Vec<usize>> = vec![Vec::new(); d - 1];
    let mut vals: Vec<f64> = Vec::with_capacity(n);
    let mut prev: Option<usize> = None;
    let coo_vals = coo.values();
    for &eu in &order {
        let e = eu as usize;
        // First level at which this entry differs from the previous one;
        // d means identical coordinates (duplicate).
        let diff = match prev {
            None => 0,
            Some(p) => {
                let mut l = 0;
                while l < d && cols[l][p] == cols[l][e] {
                    l += 1;
                }
                l
            }
        };
        if diff == d {
            *vals.last_mut().unwrap() += coo_vals[e];
        } else {
            for l in diff..d {
                if l < d - 1 {
                    ptr[l].push(fids[l + 1].len());
                }
                fids[l].push(cols[l][e]);
            }
            vals.push(coo_vals[e]);
        }
        prev = Some(e);
    }
    for l in 0..d - 1 {
        let sentinel = fids[l + 1].len();
        ptr[l].push(sentinel);
    }

    let level_dims: Vec<usize> = mode_order.iter().map(|&m| coo.dims()[m]).collect();
    Csf::from_parts(mode_order.to_vec(), level_dims, fids, ptr, vals)
}

/// Builds the CSF in the paper's default order: modes sorted by
/// increasing length (§II-B heuristic).
pub fn build_csf_default_order(coo: &CooTensor) -> Csf {
    build_csf(coo, &crate::permute::sort_modes_by_length(coo.dims()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_are_merged() {
        let mut t = CooTensor::new(vec![2, 2]);
        t.push(&[1, 1], 1.0);
        t.push(&[1, 1], 2.0);
        t.push(&[0, 0], 5.0);
        let csf = build_csf(&t, &[0, 1]);
        assert_eq!(csf.nnz(), 2);
        assert_eq!(csf.vals(), &[5.0, 3.0]);
    }

    #[test]
    fn default_order_sorts_by_length() {
        let mut t = CooTensor::new(vec![100, 2, 10]);
        t.push(&[5, 1, 3], 1.0);
        let csf = build_csf_default_order(&t);
        assert_eq!(csf.mode_order(), &[1, 2, 0]);
        assert_eq!(csf.level_dims(), &[2, 10, 100]);
    }

    #[test]
    fn empty_input_not_supported_but_single_nnz_is() {
        let mut t = CooTensor::new(vec![4, 4, 4, 4]);
        t.push(&[3, 2, 1, 0], 7.0);
        let csf = build_csf(&t, &[0, 1, 2, 3]);
        assert_eq!(csf.fiber_counts(), vec![1, 1, 1, 1]);
        assert_eq!(csf.vals(), &[7.0]);
        assert_eq!(csf.fids(0), &[3]);
        assert_eq!(csf.fids(3), &[0]);
    }

    #[test]
    fn parallel_sort_path_matches_serial() {
        // Enough nnz to cross PAR_SORT_THRESHOLD; deterministic pattern
        // with duplicates to exercise merging on the parallel path.
        let dims = vec![32, 32, 32];
        let mut t = CooTensor::new(dims.clone());
        let mut x = 1u64;
        for _ in 0..(1 << 16) + 100 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = ((x >> 10) % 32) as u32;
            let b = ((x >> 20) % 32) as u32;
            let c = ((x >> 30) % 32) as u32;
            t.push(&[a, b, c], 1.0);
        }
        let csf = build_csf(&t, &[0, 1, 2]);
        let mut dedup = t.clone();
        dedup.sort_dedup();
        assert_eq!(csf.nnz(), dedup.nnz());
        let total_from_csf: f64 = csf.vals().iter().sum();
        assert!((total_from_csf - t.nnz() as f64).abs() < 1e-9);
        csf.validate();
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn rejects_invalid_order() {
        let mut t = CooTensor::new(vec![2, 2]);
        t.push(&[0, 0], 1.0);
        let _ = build_csf(&t, &[0, 0]);
    }
}
