//! Bit-interleaved linearized tensor format (ALTO-style).
//!
//! Each non-zero's coordinate tuple is packed into a single integer by
//! interleaving the coordinate bits round-robin, least-significant bit
//! first, across the modes that still have bits left. Sorting non-zeros
//! by that linearized index yields an order with good locality in
//! *every* mode simultaneously — short modes exhaust their bits early,
//! so nearby linearized indices share high-order coordinate bits in all
//! modes. That is the property that lets a mode-agnostic flat kernel
//! compete with CSF on irregular and hyper-sparse tensors, where CSF's
//! per-fiber reuse collapses to one non-zero per fiber.
//!
//! Delinearization is mask extraction: mode `m`'s coordinate bits live
//! at a fixed (ascending) set of global bit positions, recorded both as
//! a position list (portable decode) and as a pair of 64-bit masks
//! (`pext`-ready fast path on x86). Tensors whose total coordinate bits
//! fit in 64 use a `u64` index array; up to 128 bits uses `u128`;
//! beyond that construction fails with the required bit count so the
//! caller can fall back to CSF.

use crate::coo::CooTensor;

/// Per-mode bit-extraction masks over the (lo, hi) halves of the
/// linearized index. `mask_lo` covers global bits `0..64`, `mask_hi`
/// bits `64..128` (shifted down by 64). A mode's coordinate is
/// `pext(lo, mask_lo) | pext(hi, mask_hi) << lo_bits` — positions are
/// assigned in ascending order, so parallel bit extraction recovers the
/// coordinate directly.
#[derive(Clone, Copy, Debug, Default)]
pub struct ModeMask {
    /// Extraction mask over bits 0..64 of the linearized index.
    pub mask_lo: u64,
    /// Extraction mask over bits 64..128 (as a shifted-down u64).
    pub mask_hi: u64,
    /// Number of this mode's bits that live in the low half
    /// (`mask_lo.count_ones()`).
    pub lo_bits: u32,
}

/// The linearized index array: `u64` when all coordinate bits fit in
/// 64, `u128` up to 128.
#[derive(Clone, Debug)]
pub enum LinStore {
    /// Total coordinate bits <= 64.
    Narrow(Vec<u64>),
    /// Total coordinate bits in 65..=128.
    Wide(Vec<u128>),
}

/// A linearized index word. Implemented for `u64` and `u128`; kernels
/// are generic over this so the narrow path never touches 128-bit
/// arithmetic.
pub trait LinIndex: Copy + Send + Sync {
    /// Bits 0..64 of the index.
    fn lo(self) -> u64;
    /// Bits 64..128 of the index (zero for `u64`).
    fn hi(self) -> u64;
    /// Portable decode: gather the bits at `positions` (ascending
    /// global bit numbers) into a coordinate.
    fn decode_mode(self, positions: &[u32]) -> u32;
}

impl LinIndex for u64 {
    #[inline(always)]
    fn lo(self) -> u64 {
        self
    }
    #[inline(always)]
    fn hi(self) -> u64 {
        0
    }
    #[inline(always)]
    fn decode_mode(self, positions: &[u32]) -> u32 {
        let mut c = 0u32;
        for (j, &p) in positions.iter().enumerate() {
            c |= (((self >> p) & 1) as u32) << j;
        }
        c
    }
}

impl LinIndex for u128 {
    #[inline(always)]
    fn lo(self) -> u64 {
        self as u64
    }
    #[inline(always)]
    fn hi(self) -> u64 {
        (self >> 64) as u64
    }
    #[inline(always)]
    fn decode_mode(self, positions: &[u32]) -> u32 {
        let mut c = 0u32;
        for (j, &p) in positions.iter().enumerate() {
            c |= (((self >> p) & 1) as u32) << j;
        }
        c
    }
}

/// A tensor in sorted linearized form: one packed index plus one value
/// per non-zero, in ascending linearized order.
#[derive(Clone, Debug)]
pub struct Linearized {
    dims: Vec<usize>,
    /// `positions[m]` = ascending global bit positions of mode `m`'s
    /// coordinate bits (bit `j` of the coordinate lives at global bit
    /// `positions[m][j]`).
    positions: Vec<Vec<u32>>,
    masks: Vec<ModeMask>,
    total_bits: u32,
    store: LinStore,
    vals: Vec<f64>,
}

/// Bits needed to represent coordinates `0..n` (at least 1).
#[inline]
fn mode_bits(n: usize) -> u32 {
    (usize::BITS - (n - 1).max(1).leading_zeros()).max(1)
}

/// Total interleaved index bits a tensor with these mode lengths needs —
/// the cheap eligibility probe (> 128 means [`Linearized::build`] would
/// fail) that engine selection runs before committing to a sort.
pub fn index_bits_for(dims: &[usize]) -> u32 {
    dims.iter().map(|&n| mode_bits(n)).sum()
}

impl Linearized {
    /// Builds the sorted linearized form of `t`. Duplicate coordinates,
    /// if present, stay adjacent after the sort and simply sum during
    /// MTTKRP. Fails with the required bit count when the interleaved
    /// index would exceed 128 bits.
    ///
    /// Construction works entirely in flat reusable buffers: one key
    /// per non-zero, a `u32` permutation argsorted by key, then a
    /// gather — no per-nonzero temporaries.
    pub fn build(t: &CooTensor) -> Result<Linearized, u32> {
        let d = t.ndim();
        let dims = t.dims().to_vec();
        let bits: Vec<u32> = dims.iter().map(|&n| mode_bits(n)).collect();
        let total_bits: u32 = bits.iter().sum();
        if total_bits > 128 {
            return Err(total_bits);
        }

        // Round-robin LSB-up position assignment: walk bit levels and
        // hand the next global bit to each mode that still has
        // coordinate bits left at that level.
        let mut positions: Vec<Vec<u32>> = bits.iter().map(|&b| Vec::with_capacity(b as usize)).collect();
        let mut next = 0u32;
        let max_level = bits.iter().copied().max().unwrap_or(0);
        for level in 0..max_level {
            for m in 0..d {
                if level < bits[m] {
                    positions[m].push(next);
                    next += 1;
                }
            }
        }
        debug_assert_eq!(next, total_bits);

        let masks: Vec<ModeMask> = positions
            .iter()
            .map(|ps| {
                let mut mask_lo = 0u64;
                let mut mask_hi = 0u64;
                for &p in ps {
                    if p < 64 {
                        mask_lo |= 1u64 << p;
                    } else {
                        mask_hi |= 1u64 << (p - 64);
                    }
                }
                ModeMask {
                    mask_lo,
                    mask_hi,
                    lo_bits: mask_lo.count_ones(),
                }
            })
            .collect();

        let nnz = t.nnz();
        let inds = t.indices();
        let src_vals = t.values();

        // Encode into u128 (cheap enough for a one-time build pass),
        // narrow at store time if everything fits in 64 bits.
        let mut keys: Vec<u128> = vec![0; nnz];
        for m in 0..d {
            let ps = &positions[m];
            let col = &inds[m];
            for (key, &c) in keys.iter_mut().zip(col) {
                let mut c = c as u64;
                for &p in ps {
                    *key |= ((c & 1) as u128) << p;
                    c >>= 1;
                }
            }
        }

        // Argsort + gather through flat buffers.
        let mut perm: Vec<u32> = (0..nnz as u32).collect();
        perm.sort_unstable_by_key(|&i| keys[i as usize]);
        let mut vals: Vec<f64> = Vec::with_capacity(nnz);
        vals.extend(perm.iter().map(|&i| src_vals[i as usize]));
        let store = if total_bits <= 64 {
            let mut lin: Vec<u64> = Vec::with_capacity(nnz);
            lin.extend(perm.iter().map(|&i| keys[i as usize] as u64));
            LinStore::Narrow(lin)
        } else {
            let mut lin: Vec<u128> = Vec::with_capacity(nnz);
            lin.extend(perm.iter().map(|&i| keys[i as usize]));
            LinStore::Wide(lin)
        };

        Ok(Linearized {
            dims,
            positions,
            masks,
            total_bits,
            store,
            vals,
        })
    }

    /// Mode lengths.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of modes.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.dims.len()
    }

    /// Number of stored non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Total interleaved coordinate bits.
    #[inline]
    pub fn total_bits(&self) -> u32 {
        self.total_bits
    }

    /// Index elements per non-zero in the paper's traffic-unit
    /// convention (1 for a `u64` store, 2 for `u128`).
    #[inline]
    pub fn index_elems(&self) -> usize {
        match self.store {
            LinStore::Narrow(_) => 1,
            LinStore::Wide(_) => 2,
        }
    }

    /// The index store.
    #[inline]
    pub fn store(&self) -> &LinStore {
        &self.store
    }

    /// The narrow (`u64`) index array, if this tensor fits in 64 bits.
    #[inline]
    pub fn narrow(&self) -> Option<&[u64]> {
        match &self.store {
            LinStore::Narrow(v) => Some(v),
            LinStore::Wide(_) => None,
        }
    }

    /// The wide (`u128`) index array, if this tensor needs 65..=128 bits.
    #[inline]
    pub fn wide(&self) -> Option<&[u128]> {
        match &self.store {
            LinStore::Wide(v) => Some(v),
            LinStore::Narrow(_) => None,
        }
    }

    /// Values in linearized order.
    #[inline]
    pub fn vals(&self) -> &[f64] {
        &self.vals
    }

    /// Per-mode extraction masks.
    #[inline]
    pub fn masks(&self) -> &[ModeMask] {
        &self.masks
    }

    /// Ascending global bit positions of mode `m`'s coordinate bits.
    #[inline]
    pub fn positions(&self, m: usize) -> &[u32] {
        &self.positions[m]
    }

    /// Heap footprint of the index + value arrays in bytes.
    pub fn memory_bytes(&self) -> usize {
        let idx = match &self.store {
            LinStore::Narrow(v) => v.len() * 8,
            LinStore::Wide(v) => v.len() * 16,
        };
        idx + self.vals.len() * 8
    }

    /// Decodes the mode-`m` coordinate of non-zero `e` (slow portable
    /// path, for tests and diagnostics).
    pub fn decode(&self, e: usize, m: usize) -> u32 {
        match &self.store {
            LinStore::Narrow(v) => v[e].decode_mode(&self.positions[m]),
            LinStore::Wide(v) => v[e].decode_mode(&self.positions[m]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(dims: &[usize], nnz: usize, seed: u64) -> CooTensor {
        let mut t = CooTensor::new(dims.to_vec());
        let mut x = seed | 1;
        let mut coord = vec![0u32; dims.len()];
        for _ in 0..nnz {
            for (c, &d) in coord.iter_mut().zip(dims) {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *c = ((x >> 33) % d as u64) as u32;
            }
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            t.push(&coord, ((x >> 40) % 9) as f64 * 0.3 + 0.4);
        }
        t.sort_dedup();
        t
    }

    #[test]
    fn round_trips_every_coordinate() {
        for dims in [vec![7usize, 50, 31], vec![3, 3, 3, 3], vec![1000, 2, 90000]] {
            let t = pseudo(&dims, 300, 42);
            let lin = Linearized::build(&t).unwrap();
            assert_eq!(lin.nnz(), t.nnz());
            // Decoded coordinate multiset must equal the source multiset:
            // check via sorted (coords, value) pairs.
            let mut got: Vec<(Vec<u32>, u64)> = (0..lin.nnz())
                .map(|e| {
                    (
                        (0..dims.len()).map(|m| lin.decode(e, m)).collect(),
                        lin.vals()[e].to_bits(),
                    )
                })
                .collect();
            let mut want: Vec<(Vec<u32>, u64)> = (0..t.nnz())
                .map(|e| {
                    (
                        (0..dims.len()).map(|m| t.indices()[m][e]).collect(),
                        t.values()[e].to_bits(),
                    )
                })
                .collect();
            got.sort();
            want.sort();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn indices_are_sorted_ascending() {
        let t = pseudo(&[40, 70, 60], 500, 7);
        let lin = Linearized::build(&t).unwrap();
        let v = lin.narrow().unwrap();
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn masks_partition_the_index_bits() {
        let t = pseudo(&[100, 9, 5000, 17], 200, 3);
        let lin = Linearized::build(&t).unwrap();
        let mut seen_lo = 0u64;
        let mut seen_hi = 0u64;
        let mut total = 0;
        for mk in lin.masks() {
            assert_eq!(seen_lo & mk.mask_lo, 0, "overlapping masks");
            assert_eq!(seen_hi & mk.mask_hi, 0, "overlapping masks");
            seen_lo |= mk.mask_lo;
            seen_hi |= mk.mask_hi;
            total += mk.mask_lo.count_ones() + mk.mask_hi.count_ones();
            assert_eq!(mk.lo_bits, mk.mask_lo.count_ones());
        }
        assert_eq!(total, lin.total_bits());
        // Contiguous from bit 0.
        assert_eq!(seen_lo, (1u64 << lin.total_bits()) - 1);
        assert_eq!(seen_hi, 0);
    }

    #[test]
    fn wide_store_kicks_in_past_64_bits() {
        // 3 modes x 30 bits = 90 bits total.
        let dims = vec![1usize << 30, 1 << 30, 1 << 30];
        let mut t = CooTensor::new(dims.clone());
        let mut x = 9u64;
        let mut coord = [0u32; 3];
        for _ in 0..200 {
            for c in coord.iter_mut() {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *c = ((x >> 33) % (1u64 << 30)) as u32;
            }
            t.push(&coord, 1.5);
        }
        t.sort_dedup();
        let lin = Linearized::build(&t).unwrap();
        assert_eq!(lin.total_bits(), 90);
        assert_eq!(lin.index_elems(), 2);
        let v = lin.wide().unwrap();
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
        for e in 0..lin.nnz() {
            for m in 0..3 {
                assert!((lin.decode(e, m) as usize) < dims[m]);
            }
        }
        // hi-half masks are populated.
        assert!(lin.masks().iter().any(|mk| mk.mask_hi != 0));
    }

    #[test]
    fn over_128_bits_is_an_error() {
        // 5 modes x 31 bits = 155 bits.
        let dims = vec![1usize << 31; 5];
        let mut t = CooTensor::new(dims);
        t.push(&[1, 2, 3, 4, 5], 1.0);
        assert!(matches!(Linearized::build(&t), Err(155)));
    }

    #[test]
    fn singleton_modes_are_fine() {
        let t = pseudo(&[1, 8, 1, 12], 40, 11);
        let lin = Linearized::build(&t).unwrap();
        for e in 0..lin.nnz() {
            assert_eq!(lin.decode(e, 0), 0);
            assert_eq!(lin.decode(e, 2), 0);
        }
    }

    #[test]
    fn memory_is_index_plus_values() {
        let t = pseudo(&[20, 20, 20], 100, 1);
        let lin = Linearized::build(&t).unwrap();
        assert_eq!(lin.memory_bytes(), lin.nnz() * 16);
    }
}
