//! Mode-order utilities.
//!
//! A CSF "mode order" is a permutation `perm` where `perm[level]` is the
//! original tensor mode stored at that tree level, root first. The paper's
//! base heuristic (§II-B) sorts modes by increasing length — shortest mode
//! at the root — and §II-E then considers swapping the last two levels.

/// Returns the permutation that sorts modes by increasing length, ties
/// broken by mode index (deterministic).
pub fn sort_modes_by_length(dims: &[usize]) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..dims.len()).collect();
    perm.sort_by_key(|&m| (dims[m], m));
    perm
}

/// Inverse of a permutation: `inv[perm[i]] = i`.
///
/// # Panics
/// Panics (in debug builds) if `perm` is not a permutation of `0..len`.
pub fn inverse_permutation(perm: &[usize]) -> Vec<usize> {
    let mut inv = vec![usize::MAX; perm.len()];
    for (i, &p) in perm.iter().enumerate() {
        debug_assert!(p < perm.len() && inv[p] == usize::MAX, "not a permutation");
        inv[p] = i;
    }
    inv
}

/// Returns `perm` with its last two entries swapped (paper §II-E's
/// alternative order). Identity for tensors with fewer than 2 modes.
pub fn swap_last_two(perm: &[usize]) -> Vec<usize> {
    let mut p = perm.to_vec();
    let n = p.len();
    if n >= 2 {
        p.swap(n - 1, n - 2);
    }
    p
}

/// Checks that `perm` is a valid permutation of `0..n`.
pub fn is_permutation(perm: &[usize], n: usize) -> bool {
    if perm.len() != n {
        return false;
    }
    let mut seen = vec![false; n];
    for &p in perm {
        if p >= n || seen[p] {
            return false;
        }
        seen[p] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_by_length_basic() {
        assert_eq!(sort_modes_by_length(&[100, 5, 20]), vec![1, 2, 0]);
    }

    #[test]
    fn sort_by_length_ties_are_stable_by_index() {
        assert_eq!(sort_modes_by_length(&[7, 7, 3]), vec![2, 0, 1]);
    }

    #[test]
    fn inverse_round_trip() {
        let p = vec![2, 0, 3, 1];
        let inv = inverse_permutation(&p);
        assert_eq!(inv, vec![1, 3, 0, 2]);
        assert_eq!(inverse_permutation(&inv), p);
    }

    #[test]
    fn swap_last_two_swaps() {
        assert_eq!(swap_last_two(&[0, 1, 2, 3]), vec![0, 1, 3, 2]);
    }

    #[test]
    fn is_permutation_detects_problems() {
        assert!(is_permutation(&[1, 0, 2], 3));
        assert!(!is_permutation(&[1, 1, 2], 3));
        assert!(!is_permutation(&[0, 1], 3));
        assert!(!is_permutation(&[0, 3, 1], 3));
    }
}
