//! Compressed Sparse Fiber trees (paper §II-B).
//!
//! A CSF stores a *d*-way tensor as a forest of depth *d*: level 0 holds
//! the root slice indices, each internal level holds fiber indices, and
//! the leaf level holds the last-mode indices aligned with the value
//! array. Sibling ranges are encoded by `ptr` arrays, so the subtree of
//! any node occupies a *contiguous* range at every deeper level — the
//! property both the nnz-balanced scheduler (Algorithm 3) and the
//! swapped-order fiber counter (Algorithm 9) rely on.

use crate::permute::is_permutation;

/// A sparse tensor in CSF form, for one fixed mode order.
#[derive(Clone, Debug)]
pub struct Csf {
    /// `mode_order[level]` = original tensor mode stored at this level.
    mode_order: Vec<usize>,
    /// Length of the mode at each level (i.e. `dims[mode_order[level]]`).
    level_dims: Vec<usize>,
    /// Fiber indices per level; `fids[d-1]` is aligned with `vals`.
    fids: Vec<Vec<u32>>,
    /// `ptr[l][i]..ptr[l][i+1]` is the child range of node `(l, i)` at
    /// level `l+1`; defined for `l ∈ 0..d-1`, with a trailing sentinel.
    ptr: Vec<Vec<usize>>,
    /// Non-zero values aligned with the leaf level.
    vals: Vec<f64>,
}

impl Csf {
    /// Assembles a CSF from raw parts, checking structural invariants.
    /// Most callers should use [`crate::build::build_csf`] instead.
    pub fn from_parts(
        mode_order: Vec<usize>,
        level_dims: Vec<usize>,
        fids: Vec<Vec<u32>>,
        ptr: Vec<Vec<usize>>,
        vals: Vec<f64>,
    ) -> Self {
        let d = mode_order.len();
        assert!(
            is_permutation(&mode_order, d),
            "mode_order not a permutation"
        );
        assert_eq!(level_dims.len(), d);
        assert_eq!(fids.len(), d);
        assert_eq!(ptr.len(), d.saturating_sub(1));
        assert_eq!(
            fids[d - 1].len(),
            vals.len(),
            "leaf level must align with values"
        );
        let csf = Csf {
            mode_order,
            level_dims,
            fids,
            ptr,
            vals,
        };
        csf.validate();
        csf
    }

    /// Structural invariant check (debug aid; O(total nodes)).
    ///
    /// # Panics
    /// Panics if any pointer array is non-monotonic or misaligned, or any
    /// fiber index is out of range, or siblings are not strictly sorted.
    pub fn validate(&self) {
        let d = self.ndim();
        for l in 0..d {
            let dim = self.level_dims[l];
            assert!(
                self.fids[l].iter().all(|&f| (f as usize) < dim),
                "level {l} fiber index out of range"
            );
        }
        for l in 0..d - 1 {
            let p = &self.ptr[l];
            assert_eq!(p.len(), self.fids[l].len() + 1, "ptr[{l}] length");
            assert_eq!(p[0], 0, "ptr[{l}] must start at 0");
            assert_eq!(
                *p.last().unwrap(),
                self.fids[l + 1].len(),
                "ptr[{l}] must cover level {}",
                l + 1
            );
            assert!(
                p.windows(2).all(|w| w[0] < w[1]),
                "ptr[{l}] must be strictly increasing (no empty fibers)"
            );
            // Siblings strictly increasing within each parent.
            for w in p.windows(2) {
                let sibs = &self.fids[l + 1][w[0]..w[1]];
                assert!(
                    sibs.windows(2).all(|s| s[0] < s[1]),
                    "level {} siblings must be strictly sorted",
                    l + 1
                );
            }
        }
        // Root fibers strictly increasing.
        assert!(
            self.fids[0].windows(2).all(|w| w[0] < w[1]),
            "root slices must be strictly sorted"
        );
    }

    /// Number of modes.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.mode_order.len()
    }

    /// Number of non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// The mode permutation, root to leaf.
    #[inline]
    pub fn mode_order(&self) -> &[usize] {
        &self.mode_order
    }

    /// Mode length at each level (permuted order).
    #[inline]
    pub fn level_dims(&self) -> &[usize] {
        &self.level_dims
    }

    /// Number of fibers (tree nodes) at `level` — the `m_i` of the
    /// paper's data-movement model.
    #[inline]
    pub fn nfibers(&self, level: usize) -> usize {
        self.fids[level].len()
    }

    /// Fiber counts for every level, root to leaf.
    pub fn fiber_counts(&self) -> Vec<usize> {
        (0..self.ndim()).map(|l| self.nfibers(l)).collect()
    }

    /// Fiber index array at `level`.
    #[inline]
    pub fn fids(&self, level: usize) -> &[u32] {
        &self.fids[level]
    }

    /// Child-pointer array for `level` (valid for `level < d-1`).
    #[inline]
    pub fn ptr(&self, level: usize) -> &[usize] {
        &self.ptr[level]
    }

    /// Values, aligned with the leaf level.
    #[inline]
    pub fn vals(&self) -> &[f64] {
        &self.vals
    }

    /// Bytes used by the index structure plus values (4-byte fids,
    /// 8-byte ptrs, 8-byte values) — the "Size of Tensor" column of the
    /// paper's Table II.
    pub fn memory_bytes(&self) -> usize {
        let fid_bytes: usize = self.fids.iter().map(|f| f.len() * 4).sum();
        let ptr_bytes: usize = self.ptr.iter().map(|p| p.len() * 8).sum();
        fid_bytes + ptr_bytes + self.vals.len() * 8
    }

    /// Leaf (non-zero) range covered by the subtree of node `idx` at
    /// `level`: walks the pointer arrays down, O(d).
    pub fn leaf_range(&self, level: usize, idx: usize) -> (usize, usize) {
        let (mut lo, mut hi) = (idx, idx + 1);
        for l in level..self.ndim() - 1 {
            lo = self.ptr[l][lo];
            hi = self.ptr[l][hi];
        }
        (lo, hi)
    }

    /// Number of non-zeros under each root slice — what slice-scheduled
    /// baselines (SPLATT, AdaTM) balance on.
    pub fn nnz_per_root_slice(&self) -> Vec<usize> {
        (0..self.nfibers(0))
            .map(|i| {
                let (lo, hi) = self.leaf_range(0, i);
                hi - lo
            })
            .collect()
    }

    /// Finds the parent position: the node index `i` at `level` such that
    /// `ptr[level][i] <= child_pos < ptr[level][i+1]` — the
    /// `find_parent_CSF` of Algorithm 3. Binary search, O(log m_level).
    ///
    /// `child_pos` may equal the total child count, in which case the
    /// (exclusive) node count at `level` is returned, keeping thread
    /// boundary arithmetic uniform.
    pub fn find_parent(&self, level: usize, child_pos: usize) -> usize {
        let p = &self.ptr[level];
        debug_assert!(child_pos <= *p.last().unwrap());
        if child_pos >= *p.last().unwrap() {
            return self.fids[level].len();
        }
        // partition_point returns the first i with p[i] > child_pos; the
        // parent is the one before it.
        p.partition_point(|&x| x <= child_pos) - 1
    }

    /// Calls `f(coords, val)` for every non-zero, with `coords` given in
    /// *level* (permuted) order. Sequential; used by tests, `to_coo` and
    /// format converters.
    pub fn for_each_leaf(&self, mut f: impl FnMut(&[u32], f64)) {
        let d = self.ndim();
        let mut coords = vec![0u32; d];
        // stack[l] = current node index at level l; iterate depth-first.
        self.walk_level(0, 0, self.fids[0].len(), &mut coords, &mut f);
    }

    fn walk_level(
        &self,
        level: usize,
        lo: usize,
        hi: usize,
        coords: &mut [u32],
        f: &mut impl FnMut(&[u32], f64),
    ) {
        let d = self.ndim();
        for i in lo..hi {
            coords[level] = self.fids[level][i];
            if level == d - 1 {
                f(coords, self.vals[i]);
            } else {
                let (clo, chi) = (self.ptr[level][i], self.ptr[level][i + 1]);
                self.walk_level(level + 1, clo, chi, coords, f);
            }
        }
    }

    /// Converts back to COO with coordinates in *original* mode order.
    pub fn to_coo(&self, original_dims: &[usize]) -> crate::CooTensor {
        assert_eq!(original_dims.len(), self.ndim());
        for (l, &m) in self.mode_order.iter().enumerate() {
            assert_eq!(
                original_dims[m], self.level_dims[l],
                "original_dims inconsistent with CSF level dims"
            );
        }
        let mut coo = crate::CooTensor::new(original_dims.to_vec());
        let d = self.ndim();
        let mut orig = vec![0u32; d];
        self.for_each_leaf(|coords, val| {
            for (l, &c) in coords.iter().enumerate() {
                orig[self.mode_order[l]] = c;
            }
            coo.push(&orig, val);
        });
        coo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_csf;
    use crate::CooTensor;

    /// 3-way tensor used across the CSF tests:
    /// nnz: (0,0,0)=1 (0,0,2)=2 (0,1,1)=3 (2,0,0)=4 (2,1,1)=5
    fn sample() -> CooTensor {
        let mut t = CooTensor::new(vec![3, 2, 3]);
        for (c, v) in [
            ([0u32, 0, 0], 1.0),
            ([0, 0, 2], 2.0),
            ([0, 1, 1], 3.0),
            ([2, 0, 0], 4.0),
            ([2, 1, 1], 5.0),
        ] {
            t.push(&c, v);
        }
        t
    }

    #[test]
    fn build_identity_order_structure() {
        let t = sample();
        let csf = build_csf(&t, &[0, 1, 2]);
        assert_eq!(csf.ndim(), 3);
        assert_eq!(csf.nnz(), 5);
        assert_eq!(csf.fids(0), &[0, 2]);
        assert_eq!(csf.nfibers(1), 4); // (0,0) (0,1) (2,0) (2,1)
        assert_eq!(csf.fids(1), &[0, 1, 0, 1]);
        assert_eq!(csf.ptr(0), &[0, 2, 4]);
        assert_eq!(csf.fids(2), &[0, 2, 1, 0, 1]);
        assert_eq!(csf.ptr(1), &[0, 2, 3, 4, 5]);
        assert_eq!(csf.vals(), &[1.0, 2.0, 3.0, 4.0, 5.0]);
        csf.validate();
    }

    #[test]
    fn fiber_counts_and_memory() {
        let t = sample();
        let csf = build_csf(&t, &[0, 1, 2]);
        assert_eq!(csf.fiber_counts(), vec![2, 4, 5]);
        // fids: (2+4+5)*4 = 44; ptr: (3+5)*8 = 64; vals: 5*8 = 40.
        assert_eq!(csf.memory_bytes(), 44 + 64 + 40);
    }

    #[test]
    fn leaf_range_walks_down() {
        let t = sample();
        let csf = build_csf(&t, &[0, 1, 2]);
        assert_eq!(csf.leaf_range(0, 0), (0, 3)); // slice 0 has 3 nnz
        assert_eq!(csf.leaf_range(0, 1), (3, 5));
        assert_eq!(csf.leaf_range(1, 1), (2, 3)); // fiber (0,1)
        assert_eq!(csf.leaf_range(2, 4), (4, 5)); // a leaf is itself
    }

    #[test]
    fn nnz_per_root_slice_counts() {
        let t = sample();
        let csf = build_csf(&t, &[0, 1, 2]);
        assert_eq!(csf.nnz_per_root_slice(), vec![3, 2]);
    }

    #[test]
    fn find_parent_matches_linear_scan() {
        let t = sample();
        let csf = build_csf(&t, &[0, 1, 2]);
        for level in 0..2 {
            let nchildren = csf.nfibers(level + 1);
            for pos in 0..=nchildren {
                let expect = if pos >= nchildren {
                    csf.nfibers(level)
                } else {
                    (0..csf.nfibers(level))
                        .find(|&i| csf.ptr(level)[i] <= pos && pos < csf.ptr(level)[i + 1])
                        .unwrap()
                };
                assert_eq!(
                    csf.find_parent(level, pos),
                    expect,
                    "level {level} pos {pos}"
                );
            }
        }
    }

    #[test]
    fn to_coo_round_trips_any_order() {
        let mut t = sample();
        t.sort_dedup();
        for order in [[0usize, 1, 2], [2, 1, 0], [1, 2, 0], [1, 0, 2]] {
            let csf = build_csf(&t, &order);
            let mut back = csf.to_coo(t.dims());
            back.sort_dedup();
            assert_eq!(back.nnz(), t.nnz(), "order {order:?}");
            for e in 0..t.nnz() {
                assert_eq!(back.coord(e), t.coord(e), "order {order:?}");
                assert_eq!(back.values()[e], t.values()[e], "order {order:?}");
            }
        }
    }

    #[test]
    fn for_each_leaf_visits_in_sorted_order() {
        let t = sample();
        let csf = build_csf(&t, &[0, 1, 2]);
        let mut seen = Vec::new();
        csf.for_each_leaf(|c, v| seen.push((c.to_vec(), v)));
        assert_eq!(seen.len(), 5);
        let coords: Vec<_> = seen.iter().map(|(c, _)| c.clone()).collect();
        let mut sorted = coords.clone();
        sorted.sort();
        assert_eq!(coords, sorted);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn validate_rejects_empty_fiber() {
        // ptr with a repeated value = an empty fiber.
        let _ = Csf::from_parts(
            vec![0, 1],
            vec![2, 2],
            vec![vec![0, 1], vec![0]],
            vec![vec![0, 0, 1]],
            vec![1.0],
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn validate_rejects_bad_fid() {
        let _ = Csf::from_parts(
            vec![0, 1],
            vec![2, 2],
            vec![vec![5], vec![0]],
            vec![vec![0, 1]],
            vec![1.0],
        );
    }
}
