//! Property-based tests for the sparse tensor substrate.

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use stef_sptensor::reorder::{lexi_order, mean_index_jump};
use stef_sptensor::{
    build_csf, count_fibers_if_last_two_swapped, inverse_permutation, sort_modes_by_length,
    CooTensor, TensorStats,
};

fn arb_tensor() -> impl Strategy<Value = CooTensor> {
    (2usize..=5)
        .prop_flat_map(|d| (pvec(2usize..=10, d..=d), pvec(any::<u64>(), 1..=150)))
        .prop_map(|(dims, seeds)| {
            let mut t = CooTensor::new(dims.clone());
            let mut coord = vec![0u32; dims.len()];
            for (k, &s) in seeds.iter().enumerate() {
                let mut x = s | 1;
                for (c, &dim) in coord.iter_mut().zip(&dims) {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    *c = ((x >> 33) % dim as u64) as u32;
                }
                t.push(&coord, (k % 13) as f64 + 0.5);
            }
            t.sort_dedup();
            t
        })
        .prop_filter("non-empty", |t| t.nnz() > 0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csf_preserves_value_sum_any_order(t in arb_tensor()) {
        let order = sort_modes_by_length(t.dims());
        let csf = build_csf(&t, &order);
        let sum_coo: f64 = t.values().iter().sum();
        let sum_csf: f64 = csf.vals().iter().sum();
        prop_assert!((sum_coo - sum_csf).abs() < 1e-9);
        prop_assert_eq!(csf.nnz(), t.nnz());
    }

    #[test]
    fn fiber_counts_are_monotone_down_the_tree(t in arb_tensor()) {
        let csf = build_csf(&t, &sort_modes_by_length(t.dims()));
        let counts = csf.fiber_counts();
        for w in counts.windows(2) {
            prop_assert!(w[0] <= w[1], "fiber counts must not shrink: {counts:?}");
        }
        prop_assert_eq!(*counts.last().unwrap(), t.nnz());
    }

    #[test]
    fn leaf_ranges_partition_the_leaves(t in arb_tensor()) {
        let csf = build_csf(&t, &sort_modes_by_length(t.dims()));
        for level in 0..csf.ndim() {
            let mut covered = 0usize;
            let mut prev_end = 0usize;
            for i in 0..csf.nfibers(level) {
                let (lo, hi) = csf.leaf_range(level, i);
                prop_assert_eq!(lo, prev_end, "gap before node {} at level {}", i, level);
                prop_assert!(hi > lo, "empty subtree");
                covered += hi - lo;
                prev_end = hi;
            }
            prop_assert_eq!(covered, csf.nnz());
        }
    }

    #[test]
    fn swapcount_bounded_by_structure(t in arb_tensor()) {
        let csf = build_csf(&t, &sort_modes_by_length(t.dims()));
        let d = csf.ndim();
        let swapped = count_fibers_if_last_two_swapped(&csf);
        // At least one fiber per level-(d-3) node (or 1 for d == 2),
        // at most nnz.
        prop_assert!(swapped <= csf.nnz());
        if d >= 3 {
            prop_assert!(swapped >= csf.nfibers(d - 3));
        } else {
            prop_assert!(swapped >= 1);
        }
    }

    #[test]
    fn permutation_inverse_composes_to_identity(t in arb_tensor(), seed in any::<u64>()) {
        let d = t.ndim();
        let mut perm: Vec<usize> = (0..d).collect();
        let mut x = seed | 1;
        for i in (1..d).rev() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            perm.swap(i, ((x >> 33) % (i as u64 + 1)) as usize);
        }
        let p = t.permute_modes(&perm);
        let back = p.permute_modes(&inverse_permutation(&perm));
        prop_assert_eq!(back.dims(), t.dims());
        for e in 0..t.nnz() {
            prop_assert_eq!(back.coord(e), t.coord(e));
        }
    }

    #[test]
    fn stats_are_consistent(t in arb_tensor()) {
        let stats = TensorStats::from_coo(&t);
        prop_assert_eq!(stats.nnz, t.nnz());
        prop_assert!(stats.root_slices >= 1);
        prop_assert!(stats.slice_imbalance >= 1.0 - 1e-12);
        prop_assert_eq!(stats.fiber_counts.len(), t.ndim());
    }

    #[test]
    fn lexi_order_preserves_structure_constants(t in arb_tensor()) {
        let (reordered, _) = lexi_order(&t, 1);
        prop_assert_eq!(reordered.nnz(), t.nnz());
        prop_assert!((reordered.norm_sq() - t.norm_sq()).abs() < 1e-9);
        let order = sort_modes_by_length(t.dims());
        let a = build_csf(&t, &order).fiber_counts();
        let b = build_csf(&reordered, &order).fiber_counts();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn tns_io_round_trips(t in arb_tensor()) {
        let mut buf = Vec::new();
        stef_sptensor::io::write_tns(&t, &mut buf).unwrap();
        let mut back = stef_sptensor::io::read_tns(buf.as_slice()).unwrap();
        back.sort_dedup();
        let mut orig = t.clone();
        orig.sort_dedup();
        prop_assert_eq!(back.nnz(), orig.nnz());
        for e in 0..orig.nnz() {
            prop_assert_eq!(back.coord(e), orig.coord(e));
            prop_assert!((back.values()[e] - orig.values()[e]).abs() < 1e-9);
        }
    }

    #[test]
    fn mean_index_jump_is_nonnegative_and_bounded(t in arb_tensor()) {
        for (m, j) in mean_index_jump(&t).into_iter().enumerate() {
            prop_assert!(j >= 0.0);
            prop_assert!(j <= t.dims()[m] as f64);
        }
    }
}
