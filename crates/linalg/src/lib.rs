//! # stef-linalg — dense small-matrix algebra for sparse CP decomposition
//!
//! CP-ALS spends almost all of its time in sparse MTTKRP kernels, but each
//! iteration also needs a handful of *dense* operations on small matrices
//! (paper Algorithm 2):
//!
//! * Gram matrices `Aᵀ A` of the `N × R` factor matrices,
//! * Hadamard (element-wise) products of the `R × R` Grams,
//! * the solve `Ā V⁻¹` that turns an MTTKRP result into the new factor,
//! * column normalization with the norms collected into `λ`,
//! * Khatri–Rao products for reference implementations and fit computation.
//!
//! This crate implements all of those from scratch on a single row-major
//! [`Mat`] type. Everything is `f64`; matrices in CP-ALS are tall-skinny
//! (`N × R` with `R ∈ {8..128}`) or tiny (`R × R`), so a cache-friendly
//! row-major layout with rayon-parallel row loops is all that is needed.
//!
//! The solve path ([`solve::solve_gram_system`]) mirrors what SPLATT and
//! AdaTM do in practice: Cholesky on the symmetric positive semi-definite
//! Hadamard-of-Grams matrix, with a ridge fallback and an LU fallback for
//! the rank-deficient case.

pub mod krp;
pub mod mat;
pub mod norms;
pub mod ops;
pub mod par;
pub mod simd;
pub mod solve;

pub use mat::Mat;
pub use norms::{column_norms, normalize_columns};
pub use ops::{gram, hadamard_inplace, matmul, transpose};
pub use solve::{
    cholesky_factor, solve_gram_system, try_solve_gram_system, try_solve_gram_system_ridged,
    SolveError, SolveMethod,
};

/// Relative tolerance used by the crate's own tests when comparing
/// floating-point matrices produced by different algorithms.
pub const TEST_REL_TOL: f64 = 1e-9;

/// Returns `true` if `a` and `b` agree to relative tolerance `tol`
/// (with an absolute floor of `tol` for near-zero entries).
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    diff <= tol || diff <= tol * a.abs().max(b.abs())
}

/// Asserts two matrices are element-wise approximately equal.
///
/// Panics with the offending coordinate on mismatch; used pervasively by
/// the cross-implementation correctness tests.
pub fn assert_mat_approx_eq(a: &Mat, b: &Mat, tol: f64) {
    assert_eq!(a.rows(), b.rows(), "row count mismatch");
    assert_eq!(a.cols(), b.cols(), "col count mismatch");
    for i in 0..a.rows() {
        for j in 0..a.cols() {
            let (x, y) = (a[(i, j)], b[(i, j)]);
            assert!(
                approx_eq(x, y, tol),
                "matrices differ at ({i},{j}): {x} vs {y} (tol {tol})"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_exact() {
        assert!(approx_eq(1.0, 1.0, 1e-12));
    }

    #[test]
    fn approx_eq_relative() {
        assert!(approx_eq(1e12, 1e12 * (1.0 + 1e-10), 1e-9));
        assert!(!approx_eq(1e12, 1e12 * (1.0 + 1e-6), 1e-9));
    }

    #[test]
    fn approx_eq_near_zero_uses_absolute_floor() {
        assert!(approx_eq(0.0, 1e-12, 1e-9));
        assert!(!approx_eq(0.0, 1e-3, 1e-9));
    }
}
