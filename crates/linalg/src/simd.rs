//! Runtime-dispatched explicit-SIMD row kernels.
//!
//! The MTTKRP inner loops spend their time in a handful of length-`R`
//! row primitives (`krp.rs`). Autovectorization only emits packed FMA
//! for them when the *compile-time* target enables it, so a stock
//! `cargo build --release` ships scalar code. This module provides
//! hand-written AVX2+FMA (`core::arch::x86_64`) and NEON
//! (`core::arch::aarch64`) implementations and selects one **once per
//! process**:
//!
//! * detection runs at most once (cached in a `OnceLock`) via
//!   `is_x86_feature_detected!` / the aarch64 baseline;
//! * the `STEF_SIMD={auto,scalar,avx2,neon}` environment variable
//!   overrides detection at first use;
//! * `apply(SimdPolicy::Force(..))` (reached from `StefOptions::simd`
//!   and the CLI `--simd` flag) overrides both, falling back to the
//!   detected path with a warning if the forced ISA is unavailable.
//!
//! The public `krp.rs` entry points read the cached selection with a
//! single relaxed atomic load and branch *outside* their lane loops, so
//! dispatch cost is one predictable branch per row, not per element.
//! Every implementation handles any `R` with rank-blocked main loops
//! plus scalar tails, and every variant keeps the per-element
//! *accumulation order* identical to the scalar reference — variants
//! differ only in whether multiply-adds round once (fused) or twice.

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// One concrete kernel implementation. `Scalar` is always available
/// and is bit-identical to the pre-SIMD autovectorized code.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
#[repr(u8)]
pub enum SimdPath {
    Scalar = 1,
    Avx2 = 2,
    Neon = 3,
}

impl SimdPath {
    pub const ALL: [SimdPath; 3] = [SimdPath::Scalar, SimdPath::Avx2, SimdPath::Neon];

    pub fn as_str(self) -> &'static str {
        match self {
            SimdPath::Scalar => "scalar",
            SimdPath::Avx2 => "avx2",
            SimdPath::Neon => "neon",
        }
    }

    /// Parses a concrete path name (`auto` is a [`SimdPolicy`], not a path).
    pub fn parse(name: &str) -> Option<SimdPath> {
        match name {
            "scalar" => Some(SimdPath::Scalar),
            "avx2" => Some(SimdPath::Avx2),
            "neon" => Some(SimdPath::Neon),
            _ => None,
        }
    }

    /// Whether this path can run on the current CPU. Cached; cheap
    /// enough for asserts on hot-ish paths.
    pub fn available(self) -> bool {
        match self {
            SimdPath::Scalar => true,
            SimdPath::Avx2 => avx2_available(),
            SimdPath::Neon => cfg!(target_arch = "aarch64"),
        }
    }

    fn from_u8(v: u8) -> Option<SimdPath> {
        match v {
            1 => Some(SimdPath::Scalar),
            2 => Some(SimdPath::Avx2),
            3 => Some(SimdPath::Neon),
            _ => None,
        }
    }
}

impl fmt::Display for SimdPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How an engine wants the kernel path chosen. `Auto` keeps whatever is
/// already selected (environment override or CPU detection at first
/// use); `Force` pins a specific path for A/B benchmarking.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SimdPolicy {
    #[default]
    Auto,
    Force(SimdPath),
}

impl SimdPolicy {
    /// Parses a `--simd` / `STEF_SIMD` value.
    pub fn parse(name: &str) -> Option<SimdPolicy> {
        if name == "auto" {
            return Some(SimdPolicy::Auto);
        }
        SimdPath::parse(name).map(SimdPolicy::Force)
    }
}

#[cfg(target_arch = "x86_64")]
fn avx2_available() -> bool {
    static CACHED: OnceLock<bool> = OnceLock::new();
    *CACHED.get_or_init(|| {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    })
}

#[cfg(not(target_arch = "x86_64"))]
fn avx2_available() -> bool {
    false
}

/// Best path the current CPU supports.
pub fn detect() -> SimdPath {
    if SimdPath::Avx2.available() {
        SimdPath::Avx2
    } else if SimdPath::Neon.available() {
        SimdPath::Neon
    } else {
        SimdPath::Scalar
    }
}

/// Initial selection: `STEF_SIMD` if set and usable, else detection.
/// Computed once; an unusable or unparsable value degrades with a
/// one-shot warning rather than failing (library code must keep
/// running on machines the env var was not written for).
fn default_path() -> SimdPath {
    static DEFAULT: OnceLock<SimdPath> = OnceLock::new();
    *DEFAULT.get_or_init(|| match std::env::var("STEF_SIMD") {
        Err(_) => detect(),
        Ok(v) => match SimdPolicy::parse(&v) {
            Some(SimdPolicy::Auto) => detect(),
            Some(SimdPolicy::Force(p)) if p.available() => p,
            Some(SimdPolicy::Force(p)) => {
                eprintln!(
                    "stef: STEF_SIMD={} not available on this CPU; using {}",
                    p,
                    detect()
                );
                detect()
            }
            None => {
                eprintln!(
                    "stef: unknown STEF_SIMD value '{v}' (auto|scalar|avx2|neon); using {}",
                    detect()
                );
                detect()
            }
        },
    })
}

/// The process-wide selection. 0 = not yet initialized.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

/// The kernel path the row primitives currently dispatch to.
#[inline]
pub fn active() -> SimdPath {
    match SimdPath::from_u8(ACTIVE.load(Ordering::Relaxed)) {
        Some(p) => p,
        None => {
            let p = default_path();
            ACTIVE.store(p as u8, Ordering::Relaxed);
            p
        }
    }
}

/// Applies an engine-level policy and returns the resulting selection.
///
/// `Force` of an unavailable path warns and selects the detected path
/// instead (callers that want a hard error — the CLI — validate
/// availability before building options). `Auto` leaves the current
/// selection untouched so preparing an engine with default options
/// never clobbers an earlier explicit choice.
pub fn apply(policy: SimdPolicy) -> SimdPath {
    match policy {
        SimdPolicy::Auto => active(),
        SimdPolicy::Force(p) => {
            let chosen = if p.available() {
                p
            } else {
                eprintln!("stef: simd path {p} not available on this CPU; using {}", detect());
                detect()
            };
            ACTIVE.store(chosen as u8, Ordering::Relaxed);
            chosen
        }
    }
}

/// Human-readable selection summary for `stef analyze` / bench output,
/// e.g. `"avx2 (detected avx2)"`.
pub fn describe() -> String {
    format!("{} (detected {})", active(), detect())
}

/// Best-effort read prefetch of the cache line holding `p`. A hint
/// only: no-op on targets without a stable prefetch intrinsic.
#[inline(always)]
pub fn prefetch_read(p: *const f64) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch is a hint; it never faults, for any address.
    unsafe {
        core::arch::x86_64::_mm_prefetch(p as *const i8, core::arch::x86_64::_MM_HINT_T0);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// Function-pointer table of one path's row primitives. Used by the
/// differential tests to pit every available variant against the
/// scalar reference inside a single process; the hot kernels do *not*
/// go through these pointers — they branch on [`active`] and call the
/// concrete functions so everything inlines.
pub struct RowOps {
    pub krp_row: fn(&mut [f64], &[f64], &[f64]),
    pub hadamard_row: fn(&mut [f64], &[f64], &[f64]),
    pub axpy_row: fn(&mut [f64], f64, &[f64]),
    pub krp_axpy: fn(&mut [f64], f64, &[f64], &[f64]),
    pub scale_row_into: fn(&mut [f64], f64, &[f64]),
    pub axpy_fiber: FiberFn,
    pub gather_fiber: FiberFn,
}

/// Shared signature of the fiber primitives:
/// `(acc, vals, fids, rows, stride)`.
pub type FiberFn = fn(&mut [f64], &[f64], &[u32], &[f64], usize);

/// The primitives of `path`, or `None` when the CPU cannot run it.
pub fn ops_for(path: SimdPath) -> Option<&'static RowOps> {
    if !path.available() {
        return None;
    }
    match path {
        SimdPath::Scalar => Some(&SCALAR_OPS),
        #[cfg(target_arch = "x86_64")]
        SimdPath::Avx2 => Some(&AVX2_OPS),
        #[cfg(target_arch = "aarch64")]
        SimdPath::Neon => Some(&NEON_OPS),
        #[allow(unreachable_patterns)]
        _ => None,
    }
}

static SCALAR_OPS: RowOps = RowOps {
    krp_row: scalar::krp_row,
    hadamard_row: scalar::hadamard_row,
    axpy_row: scalar::axpy_row,
    krp_axpy: scalar::krp_axpy,
    scale_row_into: scalar::scale_row_into,
    axpy_fiber: scalar::axpy_fiber,
    gather_fiber: scalar::gather_fiber,
};

#[cfg(target_arch = "x86_64")]
static AVX2_OPS: RowOps = RowOps {
    krp_row: avx2::krp_row,
    hadamard_row: avx2::hadamard_row,
    axpy_row: avx2::axpy_row,
    krp_axpy: avx2::krp_axpy,
    scale_row_into: avx2::scale_row_into,
    axpy_fiber: avx2::axpy_fiber,
    gather_fiber: avx2::gather_fiber,
};

#[cfg(target_arch = "aarch64")]
static NEON_OPS: RowOps = RowOps {
    krp_row: neon::krp_row,
    hadamard_row: neon::hadamard_row,
    axpy_row: neon::axpy_row,
    krp_axpy: neon::krp_axpy,
    scale_row_into: neon::scale_row_into,
    axpy_fiber: neon::axpy_fiber,
    gather_fiber: neon::gather_fiber,
};

// ---------------------------------------------------------------------
// Kernel-set tokens (per-pass monomorphization)
// ---------------------------------------------------------------------

/// One concrete kernel set, named by a zero-sized token type.
///
/// The hot traversal bodies in `stef::kernels` are generic over this
/// trait: each is monomorphized once per ISA and entered through a
/// matching `#[target_feature]` wrapper. That hoists the per-row
/// dispatch branch of the `krp.rs` entry points out of the per-nonzero
/// loops entirely, and — more importantly — lets the
/// `#[target_feature]` implementations inline into the traversal: a
/// `#[target_feature]` function can only inline into callers that
/// already guarantee the same features, so going through the safe
/// per-row wrappers would leave a function call inside every scatter
/// loop.
pub trait RowKernels: Copy {
    /// `out = x ⊙ y`.
    fn krp_row(self, out: &mut [f64], x: &[f64], y: &[f64]);
    /// `acc += x ⊙ y`.
    fn hadamard_row(self, acc: &mut [f64], x: &[f64], y: &[f64]);
    /// `acc += s · x`.
    fn axpy_row(self, acc: &mut [f64], s: f64, x: &[f64]);
    /// `acc += (s · x) ⊙ y`.
    fn krp_axpy(self, acc: &mut [f64], s: f64, x: &[f64], y: &[f64]);
    /// `out = s · x`.
    fn scale_row_into(self, out: &mut [f64], s: f64, x: &[f64]);
    /// Fiber gather: `acc += Σⱼ vals[j] · rows[fids[j]·stride..][..R]`.
    fn axpy_fiber(self, acc: &mut [f64], vals: &[f64], fids: &[u32], rows: &[f64], stride: usize);
    /// Overwriting fiber gather: `out = Σⱼ vals[j] · rows[…]`.
    /// Accumulation starts from +0.0, so it is bit-identical to
    /// zero-filling `out` and calling [`Self::axpy_fiber`] — minus the
    /// fill's store sweep and the accumulator's initial reload.
    fn gather_fiber(self, out: &mut [f64], vals: &[f64], fids: &[u32], rows: &[f64], stride: usize);
}

/// The scalar kernel set. Always available.
#[derive(Clone, Copy)]
pub struct ScalarK;

impl RowKernels for ScalarK {
    #[inline(always)]
    fn krp_row(self, out: &mut [f64], x: &[f64], y: &[f64]) {
        scalar::krp_row(out, x, y)
    }
    #[inline(always)]
    fn hadamard_row(self, acc: &mut [f64], x: &[f64], y: &[f64]) {
        scalar::hadamard_row(acc, x, y)
    }
    #[inline(always)]
    fn axpy_row(self, acc: &mut [f64], s: f64, x: &[f64]) {
        scalar::axpy_row(acc, s, x)
    }
    #[inline(always)]
    fn krp_axpy(self, acc: &mut [f64], s: f64, x: &[f64], y: &[f64]) {
        scalar::krp_axpy(acc, s, x, y)
    }
    #[inline(always)]
    fn scale_row_into(self, out: &mut [f64], s: f64, x: &[f64]) {
        scalar::scale_row_into(out, s, x)
    }
    #[inline(always)]
    fn axpy_fiber(self, acc: &mut [f64], vals: &[f64], fids: &[u32], rows: &[f64], stride: usize) {
        scalar::axpy_fiber(acc, vals, fids, rows, stride)
    }
    #[inline(always)]
    fn gather_fiber(self, out: &mut [f64], vals: &[f64], fids: &[u32], rows: &[f64], stride: usize) {
        scalar::gather_fiber(out, vals, fids, rows, stride)
    }
}

/// The AVX2+FMA kernel set. Constructing one is the availability
/// proof, so the trait methods enter the `#[target_feature]`
/// implementations directly — no per-call check, and full inlining
/// when the caller itself is an `avx2,fma` region.
#[cfg(target_arch = "x86_64")]
#[derive(Clone, Copy)]
pub struct Avx2K(());

#[cfg(target_arch = "x86_64")]
impl Avx2K {
    /// # Safety
    ///
    /// The CPU must support avx2 and fma. Dispatchers uphold this by
    /// construction: [`active`] and [`apply`] never select an
    /// unavailable path.
    #[inline(always)]
    pub unsafe fn new_unchecked() -> Self {
        debug_assert!(SimdPath::Avx2.available());
        Avx2K(())
    }
}

#[cfg(target_arch = "x86_64")]
impl RowKernels for Avx2K {
    #[inline(always)]
    fn krp_row(self, out: &mut [f64], x: &[f64], y: &[f64]) {
        // SAFETY: avx2+fma guaranteed by `new_unchecked`'s contract.
        unsafe { avx2::krp_row_impl(out, x, y) }
    }
    #[inline(always)]
    fn hadamard_row(self, acc: &mut [f64], x: &[f64], y: &[f64]) {
        // SAFETY: as above.
        unsafe { avx2::hadamard_row_impl(acc, x, y) }
    }
    #[inline(always)]
    fn axpy_row(self, acc: &mut [f64], s: f64, x: &[f64]) {
        // SAFETY: as above.
        unsafe { avx2::axpy_row_impl(acc, s, x) }
    }
    #[inline(always)]
    fn krp_axpy(self, acc: &mut [f64], s: f64, x: &[f64], y: &[f64]) {
        // SAFETY: as above.
        unsafe { avx2::krp_axpy_impl(acc, s, x, y) }
    }
    #[inline(always)]
    fn scale_row_into(self, out: &mut [f64], s: f64, x: &[f64]) {
        // SAFETY: as above.
        unsafe { avx2::scale_row_into_impl(out, s, x) }
    }
    #[inline(always)]
    fn axpy_fiber(self, acc: &mut [f64], vals: &[f64], fids: &[u32], rows: &[f64], stride: usize) {
        // SAFETY: as above.
        unsafe { avx2::axpy_fiber_impl(acc, vals, fids, rows, stride) }
    }
    #[inline(always)]
    fn gather_fiber(self, out: &mut [f64], vals: &[f64], fids: &[u32], rows: &[f64], stride: usize) {
        // SAFETY: as above.
        unsafe { avx2::gather_fiber_impl(out, vals, fids, rows, stride) }
    }
}

/// The NEON kernel set — the aarch64 baseline, so freely constructible.
#[cfg(target_arch = "aarch64")]
#[derive(Clone, Copy)]
pub struct NeonK;

#[cfg(target_arch = "aarch64")]
impl RowKernels for NeonK {
    #[inline(always)]
    fn krp_row(self, out: &mut [f64], x: &[f64], y: &[f64]) {
        neon::krp_row(out, x, y)
    }
    #[inline(always)]
    fn hadamard_row(self, acc: &mut [f64], x: &[f64], y: &[f64]) {
        neon::hadamard_row(acc, x, y)
    }
    #[inline(always)]
    fn axpy_row(self, acc: &mut [f64], s: f64, x: &[f64]) {
        neon::axpy_row(acc, s, x)
    }
    #[inline(always)]
    fn krp_axpy(self, acc: &mut [f64], s: f64, x: &[f64], y: &[f64]) {
        neon::krp_axpy(acc, s, x, y)
    }
    #[inline(always)]
    fn scale_row_into(self, out: &mut [f64], s: f64, x: &[f64]) {
        neon::scale_row_into(out, s, x)
    }
    #[inline(always)]
    fn axpy_fiber(self, acc: &mut [f64], vals: &[f64], fids: &[u32], rows: &[f64], stride: usize) {
        neon::axpy_fiber(acc, vals, fids, rows, stride)
    }
    #[inline(always)]
    fn gather_fiber(self, out: &mut [f64], vals: &[f64], fids: &[u32], rows: &[f64], stride: usize) {
        neon::gather_fiber(out, vals, fids, rows, stride)
    }
}

/// Scalar reference implementations — the exact pre-SIMD bodies from
/// `krp.rs`, kept bit-identical so `STEF_SIMD=scalar` reproduces the
/// historical results of a plain `cargo build --release`.
pub mod scalar {
    /// Rank-block width of the scalar row primitives: 8 f64 lanes give
    /// LLVM a fixed-trip inner loop it reliably turns into packed math
    /// when the compile-time target allows it.
    const LANES: usize = 8;

    /// Fused multiply-add `a·b + c` — a real `vfma` only when the
    /// *compile-time* target guarantees one. Without the `fma` feature,
    /// `f64::mul_add` lowers to a (slow, non-vectorizable) libm call,
    /// so we fall back to the plain two-rounding form, which also keeps
    /// results bit-identical with the pre-vectorization kernels. The
    /// runtime-dispatched AVX2/NEON paths in this module's siblings
    /// supersede this compile-time gate: they always fuse, and are
    /// selected per process instead of per build.
    #[inline(always)]
    pub(crate) fn fmadd(a: f64, b: f64, c: f64) -> f64 {
        #[cfg(target_feature = "fma")]
        {
            a.mul_add(b, c)
        }
        #[cfg(not(target_feature = "fma"))]
        {
            a * b + c
        }
    }

    /// `out = x ⊙ y`.
    #[inline]
    pub fn krp_row(out: &mut [f64], x: &[f64], y: &[f64]) {
        debug_assert_eq!(out.len(), x.len());
        debug_assert_eq!(out.len(), y.len());
        let head = out.len() - out.len() % LANES;
        let (oh, ot) = out.split_at_mut(head);
        let (xh, xt) = x.split_at(head);
        let (yh, yt) = y.split_at(head);
        for ((o, a), b) in oh
            .chunks_exact_mut(LANES)
            .zip(xh.chunks_exact(LANES))
            .zip(yh.chunks_exact(LANES))
        {
            for l in 0..LANES {
                o[l] = a[l] * b[l];
            }
        }
        for ((o, &a), &b) in ot.iter_mut().zip(xt).zip(yt) {
            *o = a * b;
        }
    }

    /// `acc += x ⊙ y`.
    #[inline]
    pub fn hadamard_row(acc: &mut [f64], x: &[f64], y: &[f64]) {
        debug_assert_eq!(acc.len(), x.len());
        debug_assert_eq!(acc.len(), y.len());
        let head = acc.len() - acc.len() % LANES;
        let (ah, at) = acc.split_at_mut(head);
        let (xh, xt) = x.split_at(head);
        let (yh, yt) = y.split_at(head);
        for ((a, b), c) in ah
            .chunks_exact_mut(LANES)
            .zip(xh.chunks_exact(LANES))
            .zip(yh.chunks_exact(LANES))
        {
            for l in 0..LANES {
                a[l] = fmadd(b[l], c[l], a[l]);
            }
        }
        for ((a, &b), &c) in at.iter_mut().zip(xt).zip(yt) {
            *a = fmadd(b, c, *a);
        }
    }

    /// `acc += s · x`.
    #[inline]
    pub fn axpy_row(acc: &mut [f64], s: f64, x: &[f64]) {
        debug_assert_eq!(acc.len(), x.len());
        let head = acc.len() - acc.len() % LANES;
        let (ah, at) = acc.split_at_mut(head);
        let (xh, xt) = x.split_at(head);
        for (a, b) in ah.chunks_exact_mut(LANES).zip(xh.chunks_exact(LANES)) {
            for l in 0..LANES {
                a[l] = fmadd(s, b[l], a[l]);
            }
        }
        for (a, &b) in at.iter_mut().zip(xt) {
            *a = fmadd(s, b, *a);
        }
    }

    /// `acc += (s · x) ⊙ y`, associated as `(s·xᵢ)·yᵢ` so the roundings
    /// match the unfused scale-then-hadamard sequence exactly.
    #[inline]
    pub fn krp_axpy(acc: &mut [f64], s: f64, x: &[f64], y: &[f64]) {
        debug_assert_eq!(acc.len(), x.len());
        debug_assert_eq!(acc.len(), y.len());
        let head = acc.len() - acc.len() % LANES;
        let (ah, at) = acc.split_at_mut(head);
        let (xh, xt) = x.split_at(head);
        let (yh, yt) = y.split_at(head);
        for ((a, b), c) in ah
            .chunks_exact_mut(LANES)
            .zip(xh.chunks_exact(LANES))
            .zip(yh.chunks_exact(LANES))
        {
            for l in 0..LANES {
                a[l] = fmadd(s * b[l], c[l], a[l]);
            }
        }
        for ((a, &b), &c) in at.iter_mut().zip(xt).zip(yt) {
            *a = fmadd(s * b, c, *a);
        }
    }

    /// `out = s · x`.
    #[inline]
    pub fn scale_row_into(out: &mut [f64], s: f64, x: &[f64]) {
        debug_assert_eq!(out.len(), x.len());
        let head = out.len() - out.len() % LANES;
        let (oh, ot) = out.split_at_mut(head);
        let (xh, xt) = x.split_at(head);
        for (o, b) in oh.chunks_exact_mut(LANES).zip(xh.chunks_exact(LANES)) {
            for l in 0..LANES {
                o[l] = s * b[l];
            }
        }
        for (o, &b) in ot.iter_mut().zip(xt) {
            *o = s * b;
        }
    }

    /// `acc += Σⱼ vals[j] · rows[fids[j]·stride ..][..R]` — one fiber's
    /// whole non-zero run gathered into a single accumulator row.
    /// Written as the literal per-nnz `axpy_row` sequence, so it is
    /// bit-identical to the loop it replaces in the kernels.
    #[inline]
    pub fn axpy_fiber(acc: &mut [f64], vals: &[f64], fids: &[u32], rows: &[f64], stride: usize) {
        debug_assert_eq!(vals.len(), fids.len());
        for (&v, &f) in vals.iter().zip(fids) {
            let o = f as usize * stride;
            axpy_row(acc, v, &rows[o..o + acc.len()]);
        }
    }

    /// `out = Σⱼ vals[j] · rows[fids[j]·stride ..][..R]` — the
    /// overwriting form of [`axpy_fiber`]. Literally the historical
    /// zero-then-accumulate sequence, so it stays the bitwise
    /// reference for the register-resident SIMD versions.
    #[inline]
    pub fn gather_fiber(out: &mut [f64], vals: &[f64], fids: &[u32], rows: &[f64], stride: usize) {
        out.fill(0.0);
        axpy_fiber(out, vals, fids, rows, stride)
    }
}

/// AVX2+FMA implementations. The safe wrappers assert availability —
/// the dispatcher guarantees it, the assert keeps direct (test) calls
/// sound — then enter `#[target_feature]` code. Main loops run 8 lanes
/// (two 256-bit registers) per iteration, then 4, then a scalar tail
/// whose `mul_add` still fuses (we are inside an `fma` region), so the
/// whole row rounds identically regardless of where the tail starts.
#[cfg(target_arch = "x86_64")]
pub mod avx2 {
    use super::SimdPath;
    use core::arch::x86_64::*;

    #[inline]
    fn check() {
        assert!(
            SimdPath::Avx2.available(),
            "avx2 kernels called on a CPU without avx2+fma"
        );
    }

    #[inline]
    pub fn krp_row(out: &mut [f64], x: &[f64], y: &[f64]) {
        check();
        // SAFETY: avx2+fma availability asserted above.
        unsafe { krp_row_impl(out, x, y) }
    }

    #[inline]
    pub fn hadamard_row(acc: &mut [f64], x: &[f64], y: &[f64]) {
        check();
        // SAFETY: as above.
        unsafe { hadamard_row_impl(acc, x, y) }
    }

    #[inline]
    pub fn axpy_row(acc: &mut [f64], s: f64, x: &[f64]) {
        check();
        // SAFETY: as above.
        unsafe { axpy_row_impl(acc, s, x) }
    }

    #[inline]
    pub fn krp_axpy(acc: &mut [f64], s: f64, x: &[f64], y: &[f64]) {
        check();
        // SAFETY: as above.
        unsafe { krp_axpy_impl(acc, s, x, y) }
    }

    #[inline]
    pub fn scale_row_into(out: &mut [f64], s: f64, x: &[f64]) {
        check();
        // SAFETY: as above.
        unsafe { scale_row_into_impl(out, s, x) }
    }

    #[inline]
    pub fn axpy_fiber(acc: &mut [f64], vals: &[f64], fids: &[u32], rows: &[f64], stride: usize) {
        check();
        // SAFETY: as above.
        unsafe { axpy_fiber_impl(acc, vals, fids, rows, stride) }
    }

    #[inline]
    pub fn gather_fiber(out: &mut [f64], vals: &[f64], fids: &[u32], rows: &[f64], stride: usize) {
        check();
        // SAFETY: as above.
        unsafe { gather_fiber_impl(out, vals, fids, rows, stride) }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn krp_row_impl(out: &mut [f64], x: &[f64], y: &[f64]) {
        debug_assert_eq!(out.len(), x.len());
        debug_assert_eq!(out.len(), y.len());
        let n = out.len();
        let (o, a, b) = (out.as_mut_ptr(), x.as_ptr(), y.as_ptr());
        let mut i = 0;
        while i + 8 <= n {
            let p0 = _mm256_mul_pd(_mm256_loadu_pd(a.add(i)), _mm256_loadu_pd(b.add(i)));
            let p1 = _mm256_mul_pd(_mm256_loadu_pd(a.add(i + 4)), _mm256_loadu_pd(b.add(i + 4)));
            _mm256_storeu_pd(o.add(i), p0);
            _mm256_storeu_pd(o.add(i + 4), p1);
            i += 8;
        }
        if i + 4 <= n {
            let p = _mm256_mul_pd(_mm256_loadu_pd(a.add(i)), _mm256_loadu_pd(b.add(i)));
            _mm256_storeu_pd(o.add(i), p);
            i += 4;
        }
        while i < n {
            *o.add(i) = *a.add(i) * *b.add(i);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn hadamard_row_impl(acc: &mut [f64], x: &[f64], y: &[f64]) {
        debug_assert_eq!(acc.len(), x.len());
        debug_assert_eq!(acc.len(), y.len());
        let n = acc.len();
        let (o, a, b) = (acc.as_mut_ptr(), x.as_ptr(), y.as_ptr());
        let mut i = 0;
        while i + 8 <= n {
            let r0 = _mm256_fmadd_pd(
                _mm256_loadu_pd(a.add(i)),
                _mm256_loadu_pd(b.add(i)),
                _mm256_loadu_pd(o.add(i)),
            );
            let r1 = _mm256_fmadd_pd(
                _mm256_loadu_pd(a.add(i + 4)),
                _mm256_loadu_pd(b.add(i + 4)),
                _mm256_loadu_pd(o.add(i + 4)),
            );
            _mm256_storeu_pd(o.add(i), r0);
            _mm256_storeu_pd(o.add(i + 4), r1);
            i += 8;
        }
        if i + 4 <= n {
            let r = _mm256_fmadd_pd(
                _mm256_loadu_pd(a.add(i)),
                _mm256_loadu_pd(b.add(i)),
                _mm256_loadu_pd(o.add(i)),
            );
            _mm256_storeu_pd(o.add(i), r);
            i += 4;
        }
        while i < n {
            *o.add(i) = (*a.add(i)).mul_add(*b.add(i), *o.add(i));
            i += 1;
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn axpy_row_impl(acc: &mut [f64], s: f64, x: &[f64]) {
        debug_assert_eq!(acc.len(), x.len());
        let n = acc.len();
        let (o, a) = (acc.as_mut_ptr(), x.as_ptr());
        let vs = _mm256_set1_pd(s);
        let mut i = 0;
        while i + 8 <= n {
            let r0 = _mm256_fmadd_pd(vs, _mm256_loadu_pd(a.add(i)), _mm256_loadu_pd(o.add(i)));
            let r1 = _mm256_fmadd_pd(
                vs,
                _mm256_loadu_pd(a.add(i + 4)),
                _mm256_loadu_pd(o.add(i + 4)),
            );
            _mm256_storeu_pd(o.add(i), r0);
            _mm256_storeu_pd(o.add(i + 4), r1);
            i += 8;
        }
        if i + 4 <= n {
            let r = _mm256_fmadd_pd(vs, _mm256_loadu_pd(a.add(i)), _mm256_loadu_pd(o.add(i)));
            _mm256_storeu_pd(o.add(i), r);
            i += 4;
        }
        while i < n {
            *o.add(i) = s.mul_add(*a.add(i), *o.add(i));
            i += 1;
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn krp_axpy_impl(acc: &mut [f64], s: f64, x: &[f64], y: &[f64]) {
        debug_assert_eq!(acc.len(), x.len());
        debug_assert_eq!(acc.len(), y.len());
        let n = acc.len();
        let (o, a, b) = (acc.as_mut_ptr(), x.as_ptr(), y.as_ptr());
        let vs = _mm256_set1_pd(s);
        // (s·x) rounds once whether or not the trailing add fuses, so
        // mul-then-fmadd matches the unfused scale/hadamard sequence.
        let mut i = 0;
        while i + 8 <= n {
            let sx0 = _mm256_mul_pd(vs, _mm256_loadu_pd(a.add(i)));
            let sx1 = _mm256_mul_pd(vs, _mm256_loadu_pd(a.add(i + 4)));
            let r0 = _mm256_fmadd_pd(sx0, _mm256_loadu_pd(b.add(i)), _mm256_loadu_pd(o.add(i)));
            let r1 = _mm256_fmadd_pd(
                sx1,
                _mm256_loadu_pd(b.add(i + 4)),
                _mm256_loadu_pd(o.add(i + 4)),
            );
            _mm256_storeu_pd(o.add(i), r0);
            _mm256_storeu_pd(o.add(i + 4), r1);
            i += 8;
        }
        if i + 4 <= n {
            let sx = _mm256_mul_pd(vs, _mm256_loadu_pd(a.add(i)));
            let r = _mm256_fmadd_pd(sx, _mm256_loadu_pd(b.add(i)), _mm256_loadu_pd(o.add(i)));
            _mm256_storeu_pd(o.add(i), r);
            i += 4;
        }
        while i < n {
            *o.add(i) = (s * *a.add(i)).mul_add(*b.add(i), *o.add(i));
            i += 1;
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn scale_row_into_impl(out: &mut [f64], s: f64, x: &[f64]) {
        debug_assert_eq!(out.len(), x.len());
        let n = out.len();
        let (o, a) = (out.as_mut_ptr(), x.as_ptr());
        let vs = _mm256_set1_pd(s);
        let mut i = 0;
        while i + 8 <= n {
            _mm256_storeu_pd(o.add(i), _mm256_mul_pd(vs, _mm256_loadu_pd(a.add(i))));
            _mm256_storeu_pd(o.add(i + 4), _mm256_mul_pd(vs, _mm256_loadu_pd(a.add(i + 4))));
            i += 8;
        }
        if i + 4 <= n {
            _mm256_storeu_pd(o.add(i), _mm256_mul_pd(vs, _mm256_loadu_pd(a.add(i))));
            i += 4;
        }
        while i < n {
            *o.add(i) = s * *a.add(i);
            i += 1;
        }
    }

    /// How many non-zeros ahead the fiber gather prefetches factor rows.
    const PREFETCH_AHEAD: usize = 4;

    /// Fused fiber gather: the accumulator block stays in registers
    /// across the whole non-zero run (the streaming root-mode emitter),
    /// instead of a load/fma/store round trip per non-zero. Rank is
    /// blocked 8-at-a-time; the first block's pass also prefetches
    /// upcoming factor rows, later blocks find them in L1. Per element,
    /// contributions still accumulate in non-zero order, so results are
    /// bit-identical to the per-nnz `axpy_row` sequence on this path.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn axpy_fiber_impl(
        acc: &mut [f64],
        vals: &[f64],
        fids: &[u32],
        rows: &[f64],
        stride: usize,
    ) {
        let r = acc.len();
        let n = vals.len();
        debug_assert_eq!(n, fids.len());
        debug_assert!(r <= stride || n == 0);
        let o = acc.as_mut_ptr();
        let base = rows.as_ptr();
        let mut k = 0;
        let mut first = true;
        while k + 8 <= r {
            let mut a0 = _mm256_loadu_pd(o.add(k));
            let mut a1 = _mm256_loadu_pd(o.add(k + 4));
            for j in 0..n {
                if first && j + PREFETCH_AHEAD < n {
                    let f = *fids.get_unchecked(j + PREFETCH_AHEAD) as usize;
                    debug_assert!(f * stride + r <= rows.len());
                    _mm_prefetch(base.add(f * stride) as *const i8, _MM_HINT_T0);
                }
                let f = *fids.get_unchecked(j) as usize;
                debug_assert!(f * stride + r <= rows.len());
                let row = base.add(f * stride + k);
                let vs = _mm256_set1_pd(*vals.get_unchecked(j));
                a0 = _mm256_fmadd_pd(vs, _mm256_loadu_pd(row), a0);
                a1 = _mm256_fmadd_pd(vs, _mm256_loadu_pd(row.add(4)), a1);
            }
            _mm256_storeu_pd(o.add(k), a0);
            _mm256_storeu_pd(o.add(k + 4), a1);
            k += 8;
            first = false;
        }
        if k + 4 <= r {
            let mut a0 = _mm256_loadu_pd(o.add(k));
            for j in 0..n {
                if first && j + PREFETCH_AHEAD < n {
                    let f = *fids.get_unchecked(j + PREFETCH_AHEAD) as usize;
                    _mm_prefetch(base.add(f * stride) as *const i8, _MM_HINT_T0);
                }
                let f = *fids.get_unchecked(j) as usize;
                debug_assert!(f * stride + r <= rows.len());
                let vs = _mm256_set1_pd(*vals.get_unchecked(j));
                a0 = _mm256_fmadd_pd(vs, _mm256_loadu_pd(base.add(f * stride + k)), a0);
            }
            _mm256_storeu_pd(o.add(k), a0);
            k += 4;
        }
        while k < r {
            let mut a = *o.add(k);
            for j in 0..n {
                let f = *fids.get_unchecked(j) as usize;
                a = (*vals.get_unchecked(j)).mul_add(*base.add(f * stride + k), a);
            }
            *o.add(k) = a;
            k += 1;
        }
    }

    /// Overwriting fiber gather: [`axpy_fiber_impl`] with the
    /// accumulator block starting from +0.0 registers instead of a
    /// zero-filled row that is immediately reloaded. The first fused
    /// multiply-add sees the same +0.0 addend, so results are
    /// bit-identical to `out.fill(0.0)` + `axpy_fiber`.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn gather_fiber_impl(
        out: &mut [f64],
        vals: &[f64],
        fids: &[u32],
        rows: &[f64],
        stride: usize,
    ) {
        let r = out.len();
        let n = vals.len();
        debug_assert_eq!(n, fids.len());
        debug_assert!(r <= stride || n == 0);
        let o = out.as_mut_ptr();
        let base = rows.as_ptr();
        let mut k = 0;
        let mut first = true;
        while k + 8 <= r {
            let mut a0 = _mm256_setzero_pd();
            let mut a1 = _mm256_setzero_pd();
            for j in 0..n {
                if first && j + PREFETCH_AHEAD < n {
                    let f = *fids.get_unchecked(j + PREFETCH_AHEAD) as usize;
                    debug_assert!(f * stride + r <= rows.len());
                    _mm_prefetch(base.add(f * stride) as *const i8, _MM_HINT_T0);
                }
                let f = *fids.get_unchecked(j) as usize;
                debug_assert!(f * stride + r <= rows.len());
                let row = base.add(f * stride + k);
                let vs = _mm256_set1_pd(*vals.get_unchecked(j));
                a0 = _mm256_fmadd_pd(vs, _mm256_loadu_pd(row), a0);
                a1 = _mm256_fmadd_pd(vs, _mm256_loadu_pd(row.add(4)), a1);
            }
            _mm256_storeu_pd(o.add(k), a0);
            _mm256_storeu_pd(o.add(k + 4), a1);
            k += 8;
            first = false;
        }
        if k + 4 <= r {
            let mut a0 = _mm256_setzero_pd();
            for j in 0..n {
                if first && j + PREFETCH_AHEAD < n {
                    let f = *fids.get_unchecked(j + PREFETCH_AHEAD) as usize;
                    _mm_prefetch(base.add(f * stride) as *const i8, _MM_HINT_T0);
                }
                let f = *fids.get_unchecked(j) as usize;
                debug_assert!(f * stride + r <= rows.len());
                let vs = _mm256_set1_pd(*vals.get_unchecked(j));
                a0 = _mm256_fmadd_pd(vs, _mm256_loadu_pd(base.add(f * stride + k)), a0);
            }
            _mm256_storeu_pd(o.add(k), a0);
            k += 4;
        }
        while k < r {
            let mut a = 0.0;
            for j in 0..n {
                let f = *fids.get_unchecked(j) as usize;
                a = (*vals.get_unchecked(j)).mul_add(*base.add(f * stride + k), a);
            }
            *o.add(k) = a;
            k += 1;
        }
    }
}

/// NEON implementations (aarch64 baseline, so always available there).
/// Main loops run 8 lanes (four 128-bit registers) per iteration, then
/// 2, then a scalar tail; aarch64 `mul_add` is a single `fmadd`, so the
/// tail fuses exactly like the vector body.
#[cfg(target_arch = "aarch64")]
#[allow(unused_unsafe)]
pub mod neon {
    use core::arch::aarch64::*;

    #[inline]
    pub fn krp_row(out: &mut [f64], x: &[f64], y: &[f64]) {
        debug_assert_eq!(out.len(), x.len());
        debug_assert_eq!(out.len(), y.len());
        let n = out.len();
        let (o, a, b) = (out.as_mut_ptr(), x.as_ptr(), y.as_ptr());
        let mut i = 0;
        // SAFETY: in-bounds loads/stores; NEON is the aarch64 baseline.
        unsafe {
            while i + 2 <= n {
                vst1q_f64(o.add(i), vmulq_f64(vld1q_f64(a.add(i)), vld1q_f64(b.add(i))));
                i += 2;
            }
            if i < n {
                *o.add(i) = *a.add(i) * *b.add(i);
            }
        }
    }

    #[inline]
    pub fn hadamard_row(acc: &mut [f64], x: &[f64], y: &[f64]) {
        debug_assert_eq!(acc.len(), x.len());
        debug_assert_eq!(acc.len(), y.len());
        let n = acc.len();
        let (o, a, b) = (acc.as_mut_ptr(), x.as_ptr(), y.as_ptr());
        let mut i = 0;
        // SAFETY: as above.
        unsafe {
            while i + 8 <= n {
                for q in 0..4 {
                    let p = i + 2 * q;
                    vst1q_f64(
                        o.add(p),
                        vfmaq_f64(vld1q_f64(o.add(p)), vld1q_f64(a.add(p)), vld1q_f64(b.add(p))),
                    );
                }
                i += 8;
            }
            while i + 2 <= n {
                vst1q_f64(
                    o.add(i),
                    vfmaq_f64(vld1q_f64(o.add(i)), vld1q_f64(a.add(i)), vld1q_f64(b.add(i))),
                );
                i += 2;
            }
            if i < n {
                *o.add(i) = (*a.add(i)).mul_add(*b.add(i), *o.add(i));
            }
        }
    }

    #[inline]
    pub fn axpy_row(acc: &mut [f64], s: f64, x: &[f64]) {
        debug_assert_eq!(acc.len(), x.len());
        let n = acc.len();
        let (o, a) = (acc.as_mut_ptr(), x.as_ptr());
        let mut i = 0;
        // SAFETY: as above.
        unsafe {
            let vs = vdupq_n_f64(s);
            while i + 8 <= n {
                for q in 0..4 {
                    let p = i + 2 * q;
                    vst1q_f64(o.add(p), vfmaq_f64(vld1q_f64(o.add(p)), vs, vld1q_f64(a.add(p))));
                }
                i += 8;
            }
            while i + 2 <= n {
                vst1q_f64(o.add(i), vfmaq_f64(vld1q_f64(o.add(i)), vs, vld1q_f64(a.add(i))));
                i += 2;
            }
            if i < n {
                *o.add(i) = s.mul_add(*a.add(i), *o.add(i));
            }
        }
    }

    #[inline]
    pub fn krp_axpy(acc: &mut [f64], s: f64, x: &[f64], y: &[f64]) {
        debug_assert_eq!(acc.len(), x.len());
        debug_assert_eq!(acc.len(), y.len());
        let n = acc.len();
        let (o, a, b) = (acc.as_mut_ptr(), x.as_ptr(), y.as_ptr());
        let mut i = 0;
        // SAFETY: as above. (s·x) rounds once either way, so
        // mul-then-fma matches the unfused sequence.
        unsafe {
            let vs = vdupq_n_f64(s);
            while i + 2 <= n {
                let sx = vmulq_f64(vs, vld1q_f64(a.add(i)));
                vst1q_f64(o.add(i), vfmaq_f64(vld1q_f64(o.add(i)), sx, vld1q_f64(b.add(i))));
                i += 2;
            }
            if i < n {
                *o.add(i) = (s * *a.add(i)).mul_add(*b.add(i), *o.add(i));
            }
        }
    }

    #[inline]
    pub fn scale_row_into(out: &mut [f64], s: f64, x: &[f64]) {
        debug_assert_eq!(out.len(), x.len());
        let n = out.len();
        let (o, a) = (out.as_mut_ptr(), x.as_ptr());
        let mut i = 0;
        // SAFETY: as above.
        unsafe {
            let vs = vdupq_n_f64(s);
            while i + 2 <= n {
                vst1q_f64(o.add(i), vmulq_f64(vs, vld1q_f64(a.add(i))));
                i += 2;
            }
            if i < n {
                *o.add(i) = s * *a.add(i);
            }
        }
    }

    /// Fiber gather with register-resident accumulators, rank blocked
    /// 8-at-a-time (four q-registers). Same per-element accumulation
    /// order as the per-nnz sequence.
    #[inline]
    pub fn axpy_fiber(acc: &mut [f64], vals: &[f64], fids: &[u32], rows: &[f64], stride: usize) {
        let r = acc.len();
        let n = vals.len();
        debug_assert_eq!(n, fids.len());
        let o = acc.as_mut_ptr();
        let base = rows.as_ptr();
        let mut k = 0;
        // SAFETY: every fid row is in bounds per the caller's CSF
        // invariants (debug-checked); NEON is the aarch64 baseline.
        unsafe {
            while k + 8 <= r {
                let mut a0 = vld1q_f64(o.add(k));
                let mut a1 = vld1q_f64(o.add(k + 2));
                let mut a2 = vld1q_f64(o.add(k + 4));
                let mut a3 = vld1q_f64(o.add(k + 6));
                for j in 0..n {
                    let f = *fids.get_unchecked(j) as usize;
                    debug_assert!(f * stride + r <= rows.len());
                    let row = base.add(f * stride + k);
                    let vs = vdupq_n_f64(*vals.get_unchecked(j));
                    a0 = vfmaq_f64(a0, vs, vld1q_f64(row));
                    a1 = vfmaq_f64(a1, vs, vld1q_f64(row.add(2)));
                    a2 = vfmaq_f64(a2, vs, vld1q_f64(row.add(4)));
                    a3 = vfmaq_f64(a3, vs, vld1q_f64(row.add(6)));
                }
                vst1q_f64(o.add(k), a0);
                vst1q_f64(o.add(k + 2), a1);
                vst1q_f64(o.add(k + 4), a2);
                vst1q_f64(o.add(k + 6), a3);
                k += 8;
            }
            while k + 2 <= r {
                let mut a0 = vld1q_f64(o.add(k));
                for j in 0..n {
                    let f = *fids.get_unchecked(j) as usize;
                    let vs = vdupq_n_f64(*vals.get_unchecked(j));
                    a0 = vfmaq_f64(a0, vs, vld1q_f64(base.add(f * stride + k)));
                }
                vst1q_f64(o.add(k), a0);
                k += 2;
            }
            if k < r {
                let mut a = *o.add(k);
                for j in 0..n {
                    let f = *fids.get_unchecked(j) as usize;
                    a = (*vals.get_unchecked(j)).mul_add(*base.add(f * stride + k), a);
                }
                *o.add(k) = a;
            }
        }
    }

    /// Overwriting fiber gather. Accumulation starts from +0.0, so it
    /// is bit-identical to zero-filling `out` then calling
    /// [`axpy_fiber`]; composing the two keeps that equivalence by
    /// construction (the vector bodies already hold the accumulators
    /// in registers across the run).
    #[inline]
    pub fn gather_fiber(out: &mut [f64], vals: &[f64], fids: &[u32], rows: &[f64], stride: usize) {
        out.fill(0.0);
        axpy_fiber(out, vals, fids, rows, stride)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ragged_inputs(n: usize, salt: u64) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let f = |i: usize, m: u64| {
            let x = (i as u64 + 1)
                .wrapping_mul(salt | 1)
                .wrapping_mul(m)
                .wrapping_mul(6364136223846793005);
            ((x >> 40) % 2000) as f64 / 500.0 - 2.0
        };
        let acc: Vec<f64> = (0..n).map(|i| f(i, 3)).collect();
        let x: Vec<f64> = (0..n).map(|i| f(i, 5)).collect();
        let y: Vec<f64> = (0..n).map(|i| f(i, 7)).collect();
        (acc, x, y)
    }

    fn close(a: &[f64], b: &[f64], what: &str) {
        for (i, (&p, &q)) in a.iter().zip(b).enumerate() {
            assert!(
                crate::approx_eq(p, q, 1e-12),
                "{what}[{i}]: {p} vs {q}"
            );
        }
    }

    #[test]
    fn parse_and_display_round_trip() {
        for p in SimdPath::ALL {
            assert_eq!(SimdPath::parse(p.as_str()), Some(p));
        }
        assert_eq!(SimdPolicy::parse("auto"), Some(SimdPolicy::Auto));
        assert_eq!(
            SimdPolicy::parse("avx2"),
            Some(SimdPolicy::Force(SimdPath::Avx2))
        );
        assert_eq!(SimdPolicy::parse("sse9"), None);
    }

    #[test]
    fn active_path_is_available() {
        let p = active();
        assert!(p.available(), "active path {p} must be runnable");
        assert!(describe().contains(p.as_str()));
    }

    #[test]
    fn unavailable_paths_have_no_ops() {
        for p in SimdPath::ALL {
            assert_eq!(ops_for(p).is_some(), p.available(), "{p}");
        }
    }

    #[test]
    fn every_available_variant_matches_scalar_on_ragged_lengths() {
        let stride = 33; // deliberately unaligned row stride
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 24, 31, 32, 33] {
            let (acc0, x, y) = ragged_inputs(n, 11);
            // A small factor-matrix block for the fiber gather.
            let rows: Vec<f64> = (0..8 * stride)
                .map(|i| ((i * 37 + 11) % 97) as f64 / 48.5 - 1.0)
                .collect();
            let fids: Vec<u32> = (0..6).map(|j| (j * 5 % 8) as u32).collect();
            let vals: Vec<f64> = (0..6).map(|j| 0.25 * j as f64 - 0.7).collect();
            let sc = ops_for(SimdPath::Scalar).unwrap();
            for p in SimdPath::ALL.into_iter().filter(|p| p.available()) {
                let ops = ops_for(p).unwrap();
                let (mut a_ref, mut a_got) = (acc0.clone(), acc0.clone());
                (sc.hadamard_row)(&mut a_ref, &x, &y);
                (ops.hadamard_row)(&mut a_got, &x, &y);
                close(&a_got, &a_ref, &format!("{p} hadamard n={n}"));

                let (mut a_ref, mut a_got) = (acc0.clone(), acc0.clone());
                (sc.axpy_row)(&mut a_ref, 1.75, &x);
                (ops.axpy_row)(&mut a_got, 1.75, &x);
                close(&a_got, &a_ref, &format!("{p} axpy n={n}"));

                let (mut a_ref, mut a_got) = (acc0.clone(), acc0.clone());
                (sc.krp_axpy)(&mut a_ref, -0.6, &x, &y);
                (ops.krp_axpy)(&mut a_got, -0.6, &x, &y);
                close(&a_got, &a_ref, &format!("{p} krp_axpy n={n}"));

                // Mul-only primitives round identically on every path:
                // exact equality, not tolerance.
                let (mut o_ref, mut o_got) = (vec![0.0; n], vec![1.0; n]);
                (sc.krp_row)(&mut o_ref, &x, &y);
                (ops.krp_row)(&mut o_got, &x, &y);
                assert_eq!(o_ref, o_got, "{p} krp_row n={n}");

                let (mut o_ref, mut o_got) = (vec![0.0; n], vec![1.0; n]);
                (sc.scale_row_into)(&mut o_ref, 0.3, &x);
                (ops.scale_row_into)(&mut o_got, 0.3, &x);
                assert_eq!(o_ref, o_got, "{p} scale n={n}");

                if n <= stride {
                    let (mut a_ref, mut a_got) = (acc0.clone(), acc0.clone());
                    (sc.axpy_fiber)(&mut a_ref, &vals, &fids, &rows, stride);
                    (ops.axpy_fiber)(&mut a_got, &vals, &fids, &rows, stride);
                    close(&a_got, &a_ref, &format!("{p} axpy_fiber r={n}"));
                }
            }
        }
    }

    #[test]
    fn fiber_gather_handles_empty_run() {
        let mut acc = vec![1.0, 2.0, 3.0];
        for p in SimdPath::ALL.into_iter().filter(|p| p.available()) {
            (ops_for(p).unwrap().axpy_fiber)(&mut acc, &[], &[], &[0.0; 4], 4);
            assert_eq!(acc, [1.0, 2.0, 3.0], "{p}");
        }
    }
}
