//! Khatri–Rao products.
//!
//! The KRP `A ⊙ B` of `I×R` and `J×R` matrices is the `(I·J)×R` matrix of
//! row-wise outer products (paper §II-A). The *explicit* KRP is only ever
//! materialized by reference implementations and tests — the whole point
//! of STeF is to never form it — but the row-wise helpers here
//! ([`krp_row`], [`hadamard_row`]) are exactly the `k_i` vector updates
//! the MTTKRP kernels perform in their inner loops (paper Algorithm 5,
//! line 7).

use crate::Mat;

/// Explicit Khatri–Rao product `A ⊙ B` → `(I·J) × R`.
///
/// Row `i·J + j` equals the Hadamard product of `A`'s row `i` with `B`'s
/// row `j`. Only for small inputs (tests, reference MTTKRP); panics if the
/// output would exceed `2^31` elements as a guard against accidental use
/// on real workloads.
pub fn khatri_rao(a: &Mat, b: &Mat) -> Mat {
    assert_eq!(a.cols(), b.cols(), "KRP operands need equal rank");
    let r = a.cols();
    let out_rows = a.rows().checked_mul(b.rows()).expect("KRP size overflow");
    assert!(
        out_rows.saturating_mul(r) < (1 << 31),
        "explicit KRP of this size is surely a mistake"
    );
    let mut out = Mat::zeros(out_rows, r);
    for i in 0..a.rows() {
        let arow = a.row(i);
        for j in 0..b.rows() {
            let brow = b.row(j);
            let orow = out.row_mut(i * b.rows() + j);
            for ((o, &x), &y) in orow.iter_mut().zip(arow).zip(brow) {
                *o = x * y;
            }
        }
    }
    out
}

/// Chained KRP `M₀ ⊙ M₁ ⊙ … ⊙ Mₖ` (left-associated, matching the paper's
/// `K⁽ⁱ⁾ = K⁽ⁱ⁻¹⁾ ⊙ A⁽ⁱ⁾` recurrence).
pub fn khatri_rao_chain(mats: &[&Mat]) -> Mat {
    assert!(!mats.is_empty(), "KRP chain needs at least one matrix");
    let mut acc = mats[0].clone();
    for m in &mats[1..] {
        acc = khatri_rao(&acc, m);
    }
    acc
}

// The row primitives below are thin dispatchers over the explicit-SIMD
// implementations in [`crate::simd`]: one relaxed load of the cached
// path selection and a predictable branch per *row*, hoisted out of all
// lane loops. The scalar bodies (and the compile-time-gated `fmadd`
// they use, now superseded by the runtime-dispatch layer) live in
// `simd::scalar`; the AVX2+FMA and NEON variants are selected at
// runtime regardless of what the build target enables.

use crate::simd::{self, SimdPath};

macro_rules! dispatch {
    ($name:ident ( $($arg:expr),* )) => {
        match simd::active() {
            #[cfg(target_arch = "x86_64")]
            SimdPath::Avx2 => simd::avx2::$name($($arg),*),
            #[cfg(target_arch = "aarch64")]
            SimdPath::Neon => simd::neon::$name($($arg),*),
            _ => simd::scalar::$name($($arg),*),
        }
    };
}

/// `out = x ⊙ y` for single rows — the `k_i ← k_{i-1} ⊙ A⁽ⁱ⁾[idx,:]` step.
#[inline]
pub fn krp_row(out: &mut [f64], x: &[f64], y: &[f64]) {
    dispatch!(krp_row(out, x, y))
}

/// `acc += x ⊙ y` for single rows — the `Ā[idx,:] += k ⊙ t` update
/// (paper Algorithm 5, line 18).
#[inline]
pub fn hadamard_row(acc: &mut [f64], x: &[f64], y: &[f64]) {
    dispatch!(hadamard_row(acc, x, y))
}

/// `acc += s · x` — the leaf-level `t += T[..] · A⁽ᵈ⁻¹⁾[l,:]` update
/// (paper Algorithm 5, line 16) and the leaf-mode scatter (line 14).
#[inline]
pub fn axpy_row(acc: &mut [f64], s: f64, x: &[f64]) {
    dispatch!(axpy_row(acc, s, x))
}

/// `acc += (s · x) ⊙ y`, fused — a single-leaf fiber's contribution
/// `t = s·x` followed immediately by `acc += t ⊙ y`, without
/// materializing `t`. The product is associated as `(s·xᵢ)·yᵢ` so the
/// roundings match the unfused two-step sequence exactly.
#[inline]
pub fn krp_axpy(acc: &mut [f64], s: f64, x: &[f64], y: &[f64]) {
    dispatch!(krp_axpy(acc, s, x, y))
}

/// `out = s · x` — scales a row into a scratch buffer (the atomic
/// emitters build their update row with this before the CAS loop).
#[inline]
pub fn scale_row_into(out: &mut [f64], s: f64, x: &[f64]) {
    dispatch!(scale_row_into(out, s, x))
}

/// `acc += Σⱼ vals[j] · rows[fids[j]·stride ..][..R]` — a whole fiber's
/// non-zero run gathered into one accumulator row (paper Algorithm 5,
/// line 16, hoisted over the run). The SIMD variants keep the
/// accumulator block in registers across the run and prefetch upcoming
/// factor rows; per element the accumulation order is the per-nnz
/// `axpy_row` order, so each path is bit-identical to the loop it
/// replaces.
#[inline]
pub fn axpy_fiber(acc: &mut [f64], vals: &[f64], fids: &[u32], rows: &[f64], stride: usize) {
    debug_assert_eq!(vals.len(), fids.len());
    dispatch!(axpy_fiber(acc, vals, fids, rows, stride))
}

/// `out = x` then `out ⊙= y`, fused; convenience for kernels that own a
/// scratch row.
#[inline]
pub fn mul_rows_into(out: &mut [f64], x: &[f64], y: &[f64]) {
    krp_row(out, x, y);
}

/// Dot product of two rows.
#[inline]
pub fn dot_row(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(&a, &b)| a * b).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn krp_shape_and_values() {
        let a = Mat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Mat::from_vec(3, 2, vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0]);
        let k = khatri_rao(&a, &b);
        assert_eq!(k.rows(), 6);
        assert_eq!(k.cols(), 2);
        // Row (i=1, j=2) -> index 1*3+2 = 5 = [3*3, 4*3].
        assert_eq!(k.row(5), &[9.0, 12.0]);
        // Row (i=0, j=0) -> [1,2].
        assert_eq!(k.row(0), &[1.0, 2.0]);
    }

    #[test]
    fn krp_chain_associates_left() {
        let a = Mat::from_vec(2, 1, vec![2.0, 3.0]);
        let b = Mat::from_vec(2, 1, vec![5.0, 7.0]);
        let c = Mat::from_vec(2, 1, vec![11.0, 13.0]);
        let k = khatri_rao_chain(&[&a, &b, &c]);
        assert_eq!(k.rows(), 8);
        // Entry (i=1, j=0, k=1) -> ((1*2)+0)*2 + 1 = 5: 3*5*13 = 195.
        assert_eq!(k.row(5), &[195.0]);
    }

    #[test]
    #[should_panic(expected = "equal rank")]
    fn krp_rejects_rank_mismatch() {
        let a = Mat::zeros(2, 2);
        let b = Mat::zeros(2, 3);
        let _ = khatri_rao(&a, &b);
    }

    #[test]
    fn row_helpers_match_definitions() {
        let x = [1.0, 2.0, 3.0];
        let y = [4.0, 5.0, 6.0];
        let mut out = [0.0; 3];
        krp_row(&mut out, &x, &y);
        assert_eq!(out, [4.0, 10.0, 18.0]);

        let mut acc = [1.0, 1.0, 1.0];
        hadamard_row(&mut acc, &x, &y);
        assert_eq!(acc, [5.0, 11.0, 19.0]);

        let mut acc2 = [0.5, 0.5, 0.5];
        axpy_row(&mut acc2, 2.0, &x);
        assert_eq!(acc2, [2.5, 4.5, 6.5]);

        assert_eq!(dot_row(&x, &y), 32.0);

        let mut acc3 = [1.0, 1.0, 1.0];
        krp_axpy(&mut acc3, 2.0, &x, &y);
        // acc += (2·x) ⊙ y = [8, 20, 36] on top of ones.
        assert_eq!(acc3, [9.0, 21.0, 37.0]);

        let mut out2 = [0.0; 3];
        scale_row_into(&mut out2, -0.5, &x);
        assert_eq!(out2, [-0.5, -1.0, -1.5]);
    }

    #[test]
    fn blocked_paths_match_scalar_tail_for_long_rows() {
        // Rows longer than one block exercise the LANES-blocked loop and
        // the remainder together; results must equal a naive loop.
        for n in [1usize, 7, 8, 9, 16, 19, 32] {
            let x: Vec<f64> = (0..n).map(|i| 0.25 * i as f64 - 1.0).collect();
            let y: Vec<f64> = (0..n).map(|i| 1.0 - 0.125 * i as f64).collect();
            let mut acc = vec![0.5; n];
            hadamard_row(&mut acc, &x, &y);
            for i in 0..n {
                assert_eq!(acc[i], 0.5 + x[i] * y[i], "hadamard n={n} i={i}");
            }
            let mut acc = vec![0.5; n];
            axpy_row(&mut acc, 3.0, &x);
            for i in 0..n {
                assert_eq!(acc[i], 0.5 + 3.0 * x[i], "axpy n={n} i={i}");
            }
            let mut acc = vec![0.5; n];
            krp_axpy(&mut acc, 3.0, &x, &y);
            for i in 0..n {
                assert_eq!(acc[i], 0.5 + (3.0 * x[i]) * y[i], "krp_axpy n={n} i={i}");
            }
            let mut out = vec![0.0; n];
            krp_row(&mut out, &x, &y);
            for i in 0..n {
                assert_eq!(out[i], x[i] * y[i], "krp n={n} i={i}");
            }
        }
    }

    #[test]
    fn krp_against_kron_structure() {
        // KRP columns are Kronecker products of the corresponding columns.
        let a = Mat::from_fn(3, 2, |i, j| (i + j + 1) as f64);
        let b = Mat::from_fn(2, 2, |i, j| (2 * i + j + 1) as f64);
        let k = khatri_rao(&a, &b);
        for r in 0..2 {
            for i in 0..3 {
                for j in 0..2 {
                    assert_eq!(k[(i * 2 + j, r)], a[(i, r)] * b[(j, r)]);
                }
            }
        }
    }
}
