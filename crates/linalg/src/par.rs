//! Pluggable parallel fan-out for the dense-algebra hot spots.
//!
//! `gram` and `matmul` (and `sptensor`'s swap-count pass) want the same
//! execution primitive as the sparse kernels: "run `f(i)` once for each
//! task `0..tasks`, then join". The persistent worker-pool runtime that
//! provides this lives in `stef-core`, which *depends on* this crate —
//! so the pool cannot be named here. Instead this module holds a plain
//! function-pointer hook: `stef-core`'s runtime installs a bridge at
//! first use ([`install_fanout`]), routing every dense fan-out through
//! the shared pool; until then (or in builds that never touch
//! `stef-core`) a scoped-thread fallback with the same semantics runs.
//!
//! The hook is deliberately a `fn`, not a boxed closure: installing it
//! is a single atomic store, reading it is a single atomic load, and
//! dispatching through it allocates nothing.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The fan-out primitive: run `f(i)` exactly once for every
/// `i in 0..tasks`, returning only after all tasks completed.
pub type FanoutFn = fn(usize, &(dyn Fn(usize) + Sync));

static HOOK: AtomicUsize = AtomicUsize::new(0);

/// Installs the process-wide fan-out implementation. Later installs
/// overwrite earlier ones; concurrent readers see either hook, both of
/// which satisfy the fan-out contract.
pub fn install_fanout(hook: FanoutFn) {
    HOOK.store(hook as usize, Ordering::Release);
}

/// Available hardware parallelism, probed once. Chunking decisions in
/// `gram`/`matmul` use this — never the executor's worker count — so
/// the *decomposition* of the work (and therefore every floating-point
/// summation order) is identical no matter which hook runs it.
pub fn workers() -> usize {
    static HW: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *HW.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Runs `f(i)` for every task `0..tasks` on the installed hook, or on
/// scoped threads (static contiguous blocks) when no hook is installed.
pub fn fanout(tasks: usize, f: &(dyn Fn(usize) + Sync)) {
    if tasks == 0 {
        return;
    }
    let h = HOOK.load(Ordering::Acquire);
    if h != 0 {
        // SAFETY: the address was stored from a real `FanoutFn` by
        // `install_fanout`; fn pointers round-trip through `usize` on
        // every supported target.
        let hook: FanoutFn = unsafe { std::mem::transmute::<usize, FanoutFn>(h) };
        hook(tasks, f);
        return;
    }
    let w = workers().clamp(1, tasks);
    if w == 1 {
        for i in 0..tasks {
            f(i);
        }
        return;
    }
    std::thread::scope(|scope| {
        for j in 1..w {
            let lo = j * tasks / w;
            let hi = (j + 1) * tasks / w;
            scope.spawn(move || {
                for i in lo..hi {
                    f(i);
                }
            });
        }
        for i in 0..tasks / w {
            f(i);
        }
    });
}

/// A flat buffer whose disjoint index ranges may be written concurrently
/// by multiple fan-out tasks. Mirrors `stef-core`'s `sync::SharedSlice`
/// (which sits above this crate and cannot be used here): Rust's `&mut`
/// aliasing rules cannot express "each task owns a dynamic disjoint
/// range", so the range accessors are `unsafe` with a documented
/// single-writer contract at every call site.
pub struct SharedSlice<'a, T> {
    data: &'a [UnsafeCell<T>],
}

// SAFETY: the caller owns the buffer for the duration of the parallel
// region, all access goes through the unsafe range accessors whose
// contract requires disjointness, and the fan-out's join provides the
// happens-before edge for subsequent sequential reads.
unsafe impl<T: Send> Sync for SharedSlice<'_, T> {}
unsafe impl<T: Send> Send for SharedSlice<'_, T> {}

impl<'a, T> SharedSlice<'a, T> {
    /// Wraps a mutable buffer.
    pub fn new(buf: &'a mut [T]) -> Self {
        // SAFETY: `UnsafeCell<T>` has the same layout as `T`, and we hold
        // the unique `&mut` to the buffer.
        let data = unsafe {
            std::slice::from_raw_parts(buf.as_ptr() as *const UnsafeCell<T>, buf.len())
        };
        SharedSlice { data }
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns a mutable view of elements `lo..hi`.
    ///
    /// # Safety
    /// No other task may access any element of `lo..hi` (mutably or
    /// otherwise) while the returned slice is alive.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn range_mut(&self, lo: usize, hi: usize) -> &mut [T] {
        debug_assert!(lo <= hi && hi <= self.data.len());
        // SAFETY: in-bounds by the assert; exclusivity is the caller's
        // contract.
        unsafe { std::slice::from_raw_parts_mut(self.data[lo].get(), hi - lo) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fallback_fanout_covers_each_task_once() {
        for tasks in [0usize, 1, 2, 3, 7, 33] {
            let hits: Vec<AtomicUsize> = (0..tasks).map(|_| AtomicUsize::new(0)).collect();
            fanout(tasks, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "task {i} of {tasks}");
            }
        }
    }

    #[test]
    fn shared_slice_disjoint_ranges() {
        let mut buf = vec![0usize; 30];
        {
            let shared = SharedSlice::new(&mut buf);
            assert_eq!(shared.len(), 30);
            assert!(!shared.is_empty());
            fanout(3, &|i| {
                // SAFETY: each task owns a disjoint 10-element range.
                let part = unsafe { shared.range_mut(i * 10, (i + 1) * 10) };
                for (k, x) in part.iter_mut().enumerate() {
                    *x = i * 100 + k;
                }
            });
        }
        assert_eq!(buf[0], 0);
        assert_eq!(buf[10], 100);
        assert_eq!(buf[29], 209);
    }
}
