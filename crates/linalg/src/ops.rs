//! Matrix products used by CP-ALS.
//!
//! The interesting one is [`gram`]: CP-ALS forms `V` as the Hadamard
//! product of the Gram matrices `A⁽ⁱ⁾ᵀ A⁽ⁱ⁾` of every factor except the
//! one being updated (paper Algorithm 2, lines 2/5/8/11). Grams of
//! tall-skinny matrices are computed as a parallel sum of rank-1 row
//! outer products, which touches each factor row exactly once. The
//! parallel loops fan out through [`crate::par`], so in a full engine
//! build they run on the same persistent worker pool as the sparse
//! kernels instead of spawning scoped threads per call.

use crate::{par, Mat};

/// Minimum number of rows before [`gram`] and [`matmul`] bother spawning
/// parallel work; tiny matrices are faster sequentially.
const PAR_THRESHOLD: usize = 2048;

/// Computes the Gram matrix `Aᵀ A` (`cols × cols`).
///
/// For the tall-skinny factors of CP-ALS this is the dominant dense cost;
/// it is parallelized over row blocks (accumulating only the upper
/// triangle per row) with a final reduction and symmetrization.
pub fn gram(a: &Mat) -> Mat {
    let r = a.cols();
    if a.rows() < PAR_THRESHOLD {
        let mut g = gram_serial(a);
        symmetrize(&mut g);
        return g;
    }
    // Chunking depends only on the hardware worker count — never on the
    // executor actually running the fan-out — so the summation order
    // (and therefore every bit of the result) is identical whether the
    // blocks run on the pool, on scoped threads, or inline.
    let chunk = (a.rows() / par::workers().max(1)).max(256);
    let nchunks = a.rows().div_ceil(chunk);
    let data = a.as_slice();
    let mut partials = vec![0.0; nchunks * r * r];
    {
        let shared = par::SharedSlice::new(&mut partials);
        par::fanout(nchunks, &|ci| {
            // SAFETY: each task owns exactly its own r×r partial block.
            let acc = unsafe { shared.range_mut(ci * r * r, (ci + 1) * r * r) };
            let lo = ci * chunk * r;
            let hi = ((ci + 1) * chunk * r).min(data.len());
            for row in data[lo..hi].chunks_exact(r) {
                accumulate_outer(acc, row, r);
            }
        });
    }
    // Parallel element-wise reduction of the per-block partials. Each
    // output element sums its partials in block order, so the result is
    // bit-identical to the serial reduction regardless of how the blocks
    // are distributed across workers.
    let mut out = vec![0.0; r * r];
    let red_chunk = (r * r / par::workers().max(1)).max(64);
    let nred = (r * r).div_ceil(red_chunk);
    {
        let shared = par::SharedSlice::new(&mut out);
        par::fanout(nred, &|ci| {
            let base = ci * red_chunk;
            let end = (base + red_chunk).min(r * r);
            // SAFETY: each task owns a disjoint output element range.
            let dst = unsafe { shared.range_mut(base, end) };
            for p in partials.chunks_exact(r * r) {
                for (o, &v) in dst.iter_mut().zip(&p[base..end]) {
                    *o += v;
                }
            }
        });
    }
    let mut g = Mat::from_vec(r, r, out);
    symmetrize(&mut g);
    g
}

fn gram_serial(a: &Mat) -> Mat {
    let r = a.cols();
    let mut acc = vec![0.0; r * r];
    for row in a.as_slice().chunks_exact(r.max(1)) {
        accumulate_outer(&mut acc, row, r);
    }
    Mat::from_vec(r, r, acc)
}

/// `acc += row ⊗ row`, upper triangle only; mirrored once at the end of
/// `gram` rather than per row.
#[inline]
fn accumulate_outer(acc: &mut [f64], row: &[f64], r: usize) {
    for i in 0..r {
        let ri = row[i];
        let dst = &mut acc[i * r..(i + 1) * r];
        for (d, &rj) in dst.iter_mut().zip(row).skip(i) {
            *d += ri * rj;
        }
    }
}

/// Copies the upper triangle onto the lower triangle in-place.
fn symmetrize(m: &mut Mat) {
    let n = m.rows();
    for i in 0..n {
        for j in 0..i {
            m[(i, j)] = m[(j, i)];
        }
    }
}

/// Hadamard (element-wise) product `a *= b`.
///
/// # Panics
/// Panics on shape mismatch.
pub fn hadamard_inplace(a: &mut Mat, b: &Mat) {
    assert_eq!(a.rows(), b.rows());
    assert_eq!(a.cols(), b.cols());
    for (x, y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x *= y;
    }
}

/// Plain dense matrix product `A · B`.
///
/// Used only on small operands (`R × R` solves, reference code, fit
/// computation); an i-k-j loop ordering keeps the inner loop streaming.
pub fn matmul(a: &Mat, b: &Mat) -> Mat {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Mat::zeros(m, n);
    if m >= PAR_THRESHOLD {
        // Row *blocks* rather than single rows: far fewer parallel tasks
        // and each worker streams over a contiguous output range. Every
        // output element is computed by exactly one task with the same
        // per-element summation order as the serial loop, so the result
        // is bit-identical for any executor.
        let block = (m / par::workers().max(1)).max(256);
        let nblocks = m.div_ceil(block);
        let shared = par::SharedSlice::new(out.as_mut_slice());
        par::fanout(nblocks, &|ci| {
            let row0 = ci * block;
            let row1 = (row0 + block).min(m);
            // SAFETY: each task owns a disjoint block of output rows.
            let oblock = unsafe { shared.range_mut(row0 * n, row1 * n) };
            for (local, orow) in oblock.chunks_exact_mut(n).enumerate() {
                let i = row0 + local;
                for p in 0..k {
                    let aip = a[(i, p)];
                    if aip != 0.0 {
                        for (o, &bv) in orow.iter_mut().zip(b.row(p)) {
                            *o += aip * bv;
                        }
                    }
                }
            }
        });
    } else {
        for i in 0..m {
            for p in 0..k {
                let aip = a[(i, p)];
                if aip != 0.0 {
                    let brow = b.row(p);
                    let orow = out.row_mut(i);
                    for (o, &bv) in orow.iter_mut().zip(brow) {
                        *o += aip * bv;
                    }
                }
            }
        }
    }
    out
}

/// Matrix transpose.
pub fn transpose(a: &Mat) -> Mat {
    let mut out = Mat::zeros(a.cols(), a.rows());
    for i in 0..a.rows() {
        for j in 0..a.cols() {
            out[(j, i)] = a[(i, j)];
        }
    }
    out
}

/// Alias for [`gram`]; kept because some call sites read better with the
/// explicit "full" name next to triangular intermediates.
pub fn gram_full(a: &Mat) -> Mat {
    gram(a)
}

/// Sum over all elements of the Hadamard product `Σ_ij a_ij · b_ij`,
/// i.e. the Frobenius inner product. Used in the CP fit computation.
pub fn frob_inner(a: &Mat, b: &Mat) -> f64 {
    assert_eq!(a.rows(), b.rows());
    assert_eq!(a.cols(), b.cols());
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| x * y)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_mat_approx_eq;

    fn naive_gram(a: &Mat) -> Mat {
        matmul(&transpose(a), a)
    }

    #[test]
    fn gram_small_matches_naive() {
        let a = Mat::from_fn(5, 3, |i, j| (i as f64 + 1.0) * 0.5 + j as f64);
        assert_mat_approx_eq(&gram_full(&a), &naive_gram(&a), 1e-12);
    }

    #[test]
    fn gram_large_matches_naive() {
        // Cross the parallel threshold to exercise the rayon path.
        let a = Mat::from_fn(4096, 4, |i, j| ((i * 7 + j * 13) % 17) as f64 * 0.25 - 1.0);
        assert_mat_approx_eq(&gram_full(&a), &naive_gram(&a), 1e-9);
    }

    #[test]
    fn gram_is_symmetric() {
        let a = Mat::from_fn(10, 4, |i, j| ((i + 2 * j) % 5) as f64);
        let g = gram_full(&a);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(g[(i, j)], g[(j, i)]);
            }
        }
    }

    #[test]
    fn hadamard_inplace_multiplies() {
        let mut a = Mat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Mat::from_vec(2, 2, vec![2.0, 0.5, 1.0, 0.25]);
        hadamard_inplace(&mut a, &b);
        assert_eq!(a.as_slice(), &[2.0, 1.0, 3.0, 1.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Mat::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        let prod = matmul(&a, &Mat::identity(3));
        assert_mat_approx_eq(&prod, &a, 1e-15);
    }

    #[test]
    fn matmul_known_product() {
        let a = Mat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Mat::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular_shapes() {
        let a = Mat::from_fn(2, 3, |i, j| (i + j) as f64);
        let b = Mat::from_fn(3, 4, |i, j| (i * j) as f64);
        let c = matmul(&a, &b);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 4);
        // Spot check c[1][2] = Σ_p a[1][p] * b[p][2] = 1*0 + 2*2 + 3*4 = 16.
        assert_eq!(c[(1, 2)], 16.0);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Mat::from_fn(3, 5, |i, j| (i * 5 + j) as f64);
        assert_mat_approx_eq(&transpose(&transpose(&a)), &a, 0.0);
    }

    #[test]
    fn frob_inner_matches_trace_formula() {
        let a = Mat::from_fn(4, 3, |i, j| (i + j) as f64);
        let b = Mat::from_fn(4, 3, |i, j| (i * j + 1) as f64);
        // <A,B>_F = trace(AᵀB)
        let tr = {
            let p = matmul(&transpose(&a), &b);
            (0..3).map(|i| p[(i, i)]).sum::<f64>()
        };
        assert!((frob_inner(&a, &b) - tr).abs() < 1e-12);
    }
}
