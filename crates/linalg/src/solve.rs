//! Solving the CP-ALS normal equations.
//!
//! Each mode update is `A⁽ᵘ⁾ ← Ā⁽ᵘ⁾ V⁻¹` where `V` is the Hadamard
//! product of the other factors' Gram matrices (paper Algorithm 2). `V` is
//! symmetric positive semi-definite and tiny (`R × R`), so we:
//!
//! 1. attempt a Cholesky factorization `V = L Lᵀ`,
//! 2. on failure, retry with a small ridge `V + εI` (standard CP-ALS
//!    practice — SPLATT does the same), and
//! 3. as a last resort fall back to partially pivoted LU, which handles
//!    the exactly rank-deficient case.
//!
//! Solving is then `R` triangular substitutions applied row-by-row to the
//! (possibly huge) right-hand-side matrix, parallelized over its rows.

use crate::Mat;
use rayon::prelude::*;

/// Which factorization ended up being used by [`solve_gram_system`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveMethod {
    /// Plain Cholesky succeeded.
    Cholesky,
    /// Cholesky needed a ridge `V + εI`.
    RidgedCholesky,
    /// LU with partial pivoting was used (rank-deficient `V`).
    Lu,
}

/// Why a normal-equations solve could not produce a usable solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveError {
    /// The Gram system `V` contains NaN or infinite entries.
    NonFiniteSystem,
    /// The right-hand side `B` contains NaN or infinite entries.
    NonFiniteRhs,
    /// Every factorization in the ladder failed (`V` is numerically
    /// singular even after ridging).
    Singular,
    /// A factorization succeeded but the solution came out non-finite.
    NonFiniteSolution,
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::NonFiniteSystem => write!(f, "gram system contains non-finite entries"),
            SolveError::NonFiniteRhs => write!(f, "right-hand side contains non-finite entries"),
            SolveError::Singular => write!(f, "gram system is singular beyond ridge repair"),
            SolveError::NonFiniteSolution => write!(f, "solve produced non-finite values"),
        }
    }
}

impl std::error::Error for SolveError {}

fn all_finite(xs: &[f64]) -> bool {
    xs.iter().all(|x| x.is_finite())
}

/// Computes the lower-triangular Cholesky factor `L` with `V = L Lᵀ`.
///
/// Returns `None` if `v` is not (numerically) positive definite.
pub fn cholesky_factor(v: &Mat) -> Option<Mat> {
    assert_eq!(v.rows(), v.cols(), "cholesky needs a square matrix");
    let n = v.rows();
    let mut l = Mat::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = v[(i, j)];
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum <= 0.0 || !sum.is_finite() {
                    return None;
                }
                l[(i, j)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    Some(l)
}

/// Solves `x Lᵀ = b` then implicitly `y L = x` — i.e. applies `(L Lᵀ)⁻¹`
/// from the right to a single row `b`, in place.
#[inline]
fn solve_row_cholesky(l: &Mat, row: &mut [f64]) {
    let n = l.rows();
    // Row-vector solve: we want row ← row · V⁻¹ = row · (L Lᵀ)⁻¹.
    // Let z solve z · Lᵀ = row  (forward substitution over columns of Lᵀ,
    // i.e. rows of L), then row ← z · L⁻¹ (back substitution).
    // z_j = (row_j - Σ_{k<j} z_k L[j][k]) / L[j][j]
    for j in 0..n {
        let mut s = row[j];
        for k in 0..j {
            s -= row[k] * l[(j, k)];
        }
        row[j] = s / l[(j, j)];
    }
    // y_j = (z_j - Σ_{k>j} y_k L[k][j]) / L[j][j]
    for j in (0..n).rev() {
        let mut s = row[j];
        for k in j + 1..n {
            s -= row[k] * l[(k, j)];
        }
        row[j] = s / l[(j, j)];
    }
}

/// LU decomposition with partial pivoting. Returns `(lu, perm)` where the
/// unit-lower and upper factors are packed into `lu` and `perm` records
/// row swaps. Returns `None` for a singular matrix.
fn lu_factor(v: &Mat) -> Option<(Mat, Vec<usize>)> {
    let n = v.rows();
    let mut lu = v.clone();
    let mut perm: Vec<usize> = (0..n).collect();
    for col in 0..n {
        // Pivot search.
        let mut piv = col;
        let mut max = lu[(col, col)].abs();
        for r in col + 1..n {
            let a = lu[(r, col)].abs();
            if a > max {
                max = a;
                piv = r;
            }
        }
        // The explicit NaN check matters: a NaN pivot would otherwise
        // sail through (NaN comparisons are all false) and poison the
        // whole factorization.
        if max.is_nan() || max < 1e-300 {
            return None;
        }
        if piv != col {
            perm.swap(col, piv);
            for j in 0..n {
                let tmp = lu[(col, j)];
                lu[(col, j)] = lu[(piv, j)];
                lu[(piv, j)] = tmp;
            }
        }
        let d = lu[(col, col)];
        for r in col + 1..n {
            let f = lu[(r, col)] / d;
            lu[(r, col)] = f;
            for j in col + 1..n {
                let sub = f * lu[(col, j)];
                lu[(r, j)] -= sub;
            }
        }
    }
    Some((lu, perm))
}

/// Inverts `v` via LU; used as the rank-deficient fallback. The tiny ridge
/// added first makes this robust even when `v` is exactly singular.
/// Ridging is bounded: returns `None` if the matrix still will not factor
/// (only possible for non-finite input, where growing the diagonal can
/// never help — the previous unbounded retry loop spun forever on NaN).
fn lu_inverse(v: &Mat) -> Option<Mat> {
    let n = v.rows();
    let mut ridged = v.clone();
    let scale = (0..n).map(|i| v[(i, i)].abs()).fold(0.0_f64, f64::max);
    let eps = (scale * 1e-12).max(1e-300);
    let mut attempts = 0;
    let (lu, perm) = loop {
        if let Some(ok) = lu_factor(&ridged) {
            break ok;
        }
        attempts += 1;
        if attempts > 8 {
            return None;
        }
        for i in 0..n {
            ridged[(i, i)] += eps.max(1e-8 * scale.max(1.0));
        }
    };
    let mut inv = Mat::zeros(n, n);
    let mut col = vec![0.0; n];
    for e in 0..n {
        // Solve LU x = P e_e.
        for (i, c) in col.iter_mut().enumerate() {
            *c = if perm[i] == e { 1.0 } else { 0.0 };
        }
        for i in 0..n {
            for k in 0..i {
                col[i] -= lu[(i, k)] * col[k];
            }
        }
        for i in (0..n).rev() {
            for k in i + 1..n {
                col[i] -= lu[(i, k)] * col[k];
            }
            col[i] /= lu[(i, i)];
        }
        for i in 0..n {
            inv[(i, e)] = col[i];
        }
    }
    Some(inv)
}

/// Solves `X V = B` for `X` (i.e. `X = B · V⁻¹`) where `V` is the
/// symmetric positive semi-definite `R × R` Hadamard-of-Grams matrix and
/// `B` is the `N × R` MTTKRP result. `B` is overwritten with the solution.
///
/// Returns the factorization that was actually used, which the CPD driver
/// surfaces in its per-iteration diagnostics.
///
/// Never fails: inputs that [`try_solve_gram_system`] would reject leave
/// `b` unchanged and report [`SolveMethod::Lu`]. Callers that need to
/// distinguish failure (the fault-tolerant CPD driver does) should use
/// the `try_` variants instead.
pub fn solve_gram_system(v: &Mat, b: &mut Mat) -> SolveMethod {
    try_solve_gram_system_ridged(v, b, 0.0).unwrap_or(SolveMethod::Lu)
}

/// Fallible version of [`solve_gram_system`]: validates that both the
/// system and the right-hand side are finite, runs the
/// Cholesky → ridged-Cholesky → LU ladder, and verifies the solution is
/// finite. On error `b` is left in an unspecified (but allocated) state;
/// callers retry from a fresh copy of the right-hand side.
pub fn try_solve_gram_system(v: &Mat, b: &mut Mat) -> Result<SolveMethod, SolveError> {
    try_solve_gram_system_ridged(v, b, 0.0)
}

/// Like [`try_solve_gram_system`] but adds `extra_ridge` to the diagonal
/// of `V` before solving — the escalating-ridge retry used by the CPD
/// driver's numerical-failure recovery.
pub fn try_solve_gram_system_ridged(
    v: &Mat,
    b: &mut Mat,
    extra_ridge: f64,
) -> Result<SolveMethod, SolveError> {
    assert_eq!(v.rows(), v.cols());
    assert_eq!(b.cols(), v.rows(), "rhs width must match system size");
    if !all_finite(v.as_slice()) {
        return Err(SolveError::NonFiniteSystem);
    }
    if !all_finite(b.as_slice()) {
        return Err(SolveError::NonFiniteRhs);
    }
    let n = v.rows();
    let owned;
    let v = if extra_ridge > 0.0 {
        let mut r = v.clone();
        for i in 0..n {
            r[(i, i)] += extra_ridge;
        }
        owned = r;
        &owned
    } else {
        v
    };
    if let Some(l) = cholesky_factor(v) {
        apply_cholesky(&l, b);
        return finish_solve(SolveMethod::Cholesky, b);
    }
    // Ridge: scale-aware epsilon on the diagonal.
    let scale = (0..n).map(|i| v[(i, i)].abs()).fold(0.0_f64, f64::max);
    let mut ridged = v.clone();
    for i in 0..n {
        ridged[(i, i)] += (scale * 1e-10).max(1e-12);
    }
    if let Some(l) = cholesky_factor(&ridged) {
        apply_cholesky(&l, b);
        return finish_solve(SolveMethod::RidgedCholesky, b);
    }
    let inv = lu_inverse(v).ok_or(SolveError::Singular)?;
    let solved = crate::ops::matmul(b, &inv);
    *b = solved;
    finish_solve(SolveMethod::Lu, b)
}

fn finish_solve(method: SolveMethod, b: &Mat) -> Result<SolveMethod, SolveError> {
    if all_finite(b.as_slice()) {
        Ok(method)
    } else {
        Err(SolveError::NonFiniteSolution)
    }
}

fn apply_cholesky(l: &Mat, b: &mut Mat) {
    let r = b.cols();
    if b.rows() >= 1024 {
        b.as_mut_slice()
            .par_chunks_mut(r)
            .for_each(|row| solve_row_cholesky(l, row));
    } else {
        for row in b.as_mut_slice().chunks_exact_mut(r.max(1)) {
            solve_row_cholesky(l, row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{gram_full, matmul};
    use crate::{assert_mat_approx_eq, Mat};

    fn spd(n: usize, seed: u64) -> Mat {
        // Build an SPD matrix as GᵀG + I from a deterministic pseudo-random G.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 500.0 - 1.0
        };
        let g = Mat::from_fn(n + 2, n, |_, _| next());
        let mut v = gram_full(&g);
        for i in 0..n {
            v[(i, i)] += 1.0;
        }
        v
    }

    #[test]
    fn cholesky_reconstructs() {
        let v = spd(5, 42);
        let l = cholesky_factor(&v).expect("SPD must factor");
        let rebuilt = matmul(&l, &crate::ops::transpose(&l));
        assert_mat_approx_eq(&rebuilt, &v, 1e-9);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let v = Mat::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]); // eigenvalues 3, -1
        assert!(cholesky_factor(&v).is_none());
    }

    #[test]
    fn solve_recovers_known_solution() {
        let v = spd(4, 7);
        let x_true = Mat::from_fn(6, 4, |i, j| (i as f64 - j as f64) * 0.5);
        let mut b = matmul(&x_true, &v);
        let method = solve_gram_system(&v, &mut b);
        assert_eq!(method, SolveMethod::Cholesky);
        assert_mat_approx_eq(&b, &x_true, 1e-8);
    }

    #[test]
    fn solve_identity_is_noop() {
        let v = Mat::identity(3);
        let mut b = Mat::from_fn(5, 3, |i, j| (i * 3 + j) as f64);
        let orig = b.clone();
        solve_gram_system(&v, &mut b);
        assert_mat_approx_eq(&b, &orig, 1e-12);
    }

    #[test]
    fn solve_singular_falls_back() {
        // Rank-1 V: Cholesky fails, ridge may fail, LU path must not panic
        // and must produce a finite result.
        let v = Mat::from_vec(2, 2, vec![1.0, 1.0, 1.0, 1.0]);
        let mut b = Mat::from_fn(3, 2, |i, j| (i + j) as f64);
        let method = solve_gram_system(&v, &mut b);
        assert_ne!(method, SolveMethod::Cholesky);
        assert!(b.as_slice().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn solve_large_rhs_parallel_path() {
        let v = spd(3, 99);
        let x_true = Mat::from_fn(5000, 3, |i, j| ((i + j) % 13) as f64 * 0.1);
        let mut b = matmul(&x_true, &v);
        solve_gram_system(&v, &mut b);
        assert_mat_approx_eq(&b, &x_true, 1e-7);
    }

    #[test]
    fn lu_inverse_matches_identity() {
        let v = spd(4, 3);
        let inv = lu_inverse(&v).expect("SPD inverts");
        let prod = matmul(&v, &inv);
        assert_mat_approx_eq(&prod, &Mat::identity(4), 1e-8);
    }

    #[test]
    fn lu_inverse_handles_permutation() {
        // A matrix requiring pivoting (zero on the leading diagonal).
        let v = Mat::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let inv = lu_inverse(&v).expect("permutation inverts");
        let prod = matmul(&v, &inv);
        assert_mat_approx_eq(&prod, &Mat::identity(2), 1e-10);
    }

    #[test]
    fn lu_inverse_refuses_nan_instead_of_spinning() {
        // Regression: the retry loop used to be unbounded, so a NaN
        // matrix (which no ridge can repair) hung forever.
        let v = Mat::from_vec(2, 2, vec![f64::NAN, 0.0, 0.0, 1.0]);
        assert!(lu_inverse(&v).is_none());
    }

    #[test]
    fn try_solve_rejects_non_finite_system() {
        let v = Mat::from_vec(2, 2, vec![1.0, 0.0, 0.0, f64::INFINITY]);
        let mut b = Mat::from_fn(3, 2, |i, j| (i + j) as f64);
        assert_eq!(
            try_solve_gram_system(&v, &mut b),
            Err(SolveError::NonFiniteSystem)
        );
    }

    #[test]
    fn try_solve_rejects_non_finite_rhs() {
        let v = spd(2, 1);
        let mut b = Mat::from_fn(3, 2, |i, j| if i == 1 && j == 0 { f64::NAN } else { 1.0 });
        assert_eq!(
            try_solve_gram_system(&v, &mut b),
            Err(SolveError::NonFiniteRhs)
        );
    }

    #[test]
    fn try_solve_matches_infallible_path_on_good_input() {
        let v = spd(4, 7);
        let x_true = Mat::from_fn(6, 4, |i, j| (i as f64 - j as f64) * 0.5);
        let mut b = matmul(&x_true, &v);
        let method = try_solve_gram_system(&v, &mut b).expect("well-posed");
        assert_eq!(method, SolveMethod::Cholesky);
        assert_mat_approx_eq(&b, &x_true, 1e-8);
    }

    #[test]
    fn ridged_solve_handles_singular_system() {
        // Exactly rank-1: the plain ladder may fall to LU; a caller-supplied
        // ridge makes the system definite and the solve clean.
        let v = Mat::from_vec(2, 2, vec![1.0, 1.0, 1.0, 1.0]);
        let mut b = Mat::from_fn(3, 2, |i, j| (i + j) as f64);
        let method = try_solve_gram_system_ridged(&v, &mut b, 1e-6).expect("ridge repairs");
        assert_ne!(method, SolveMethod::Lu);
        assert!(b.as_slice().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn solve_gram_system_never_panics_on_nan() {
        let v = Mat::from_vec(2, 2, vec![f64::NAN, 0.0, 0.0, 1.0]);
        let mut b = Mat::from_fn(3, 2, |_, _| 1.0);
        // Legacy entry point stays total: reports Lu, leaves b allocated.
        assert_eq!(solve_gram_system(&v, &mut b), SolveMethod::Lu);
    }
}
