//! Column normalization for CP-ALS.
//!
//! After each mode update the new factor's columns are normalized and the
//! norms accumulated into the weight vector `λ` (paper Algorithm 2,
//! lines 4/7/10/13). On the first ALS iteration the 2-norm is used; later
//! iterations conventionally use the max-norm clamped at 1 so that factor
//! magnitudes cannot drift — we expose both and let the driver choose,
//! matching SPLATT's behaviour.

use crate::Mat;

/// Which norm [`normalize_columns`] applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnNorm {
    /// Euclidean norm — used on the first ALS sweep.
    Two,
    /// `max(1, max_i |a_ij|)` — used on subsequent sweeps to avoid
    /// shrinking columns that are already small.
    MaxClamped,
}

/// Returns the 2-norm of each column of `a`.
pub fn column_norms(a: &Mat) -> Vec<f64> {
    let r = a.cols();
    let mut sums = vec![0.0; r];
    for row in a.as_slice().chunks_exact(r.max(1)) {
        for (s, &v) in sums.iter_mut().zip(row) {
            *s += v * v;
        }
    }
    for s in &mut sums {
        *s = s.sqrt();
    }
    sums
}

/// Returns the max-abs of each column of `a`.
pub fn column_max_abs(a: &Mat) -> Vec<f64> {
    let r = a.cols();
    let mut maxs = vec![0.0_f64; r];
    for row in a.as_slice().chunks_exact(r.max(1)) {
        for (m, &v) in maxs.iter_mut().zip(row) {
            *m = m.max(v.abs());
        }
    }
    maxs
}

/// Normalizes the columns of `a` in place and writes each column's norm
/// into `lambda`. Zero columns are left untouched with `λ = 1` so the
/// model `Σ λ_r a_r ⊗ b_r ⊗ …` stays well-defined.
///
/// # Panics
/// Panics if `lambda.len() != a.cols()`.
pub fn normalize_columns(a: &mut Mat, lambda: &mut [f64], norm: ColumnNorm) {
    assert_eq!(lambda.len(), a.cols(), "lambda length must equal rank");
    let norms = match norm {
        ColumnNorm::Two => column_norms(a),
        ColumnNorm::MaxClamped => column_max_abs(a).into_iter().map(|m| m.max(1.0)).collect(),
    };
    let r = a.cols();
    for (dst, &n) in lambda.iter_mut().zip(&norms) {
        *dst = if n > 0.0 { n } else { 1.0 };
    }
    for row in a.as_mut_slice().chunks_exact_mut(r.max(1)) {
        for (v, &n) in row.iter_mut().zip(&norms) {
            if n > 0.0 {
                *v /= n;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_norms_basic() {
        let a = Mat::from_vec(2, 2, vec![3.0, 1.0, 4.0, 1.0]);
        let n = column_norms(&a);
        assert!((n[0] - 5.0).abs() < 1e-12);
        assert!((n[1] - 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn normalize_two_makes_unit_columns() {
        let mut a = Mat::from_vec(2, 2, vec![3.0, 2.0, 4.0, 0.0]);
        let mut lambda = vec![0.0; 2];
        normalize_columns(&mut a, &mut lambda, ColumnNorm::Two);
        assert!((lambda[0] - 5.0).abs() < 1e-12);
        let n = column_norms(&a);
        assert!((n[0] - 1.0).abs() < 1e-12);
        assert!((n[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_zero_column_is_safe() {
        let mut a = Mat::from_vec(2, 2, vec![1.0, 0.0, 1.0, 0.0]);
        let mut lambda = vec![0.0; 2];
        normalize_columns(&mut a, &mut lambda, ColumnNorm::Two);
        assert_eq!(lambda[1], 1.0);
        assert_eq!(a[(0, 1)], 0.0);
        assert!(a.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn max_clamped_never_scales_up() {
        let mut a = Mat::from_vec(2, 2, vec![0.5, 3.0, 0.25, -6.0]);
        let mut lambda = vec![0.0; 2];
        normalize_columns(&mut a, &mut lambda, ColumnNorm::MaxClamped);
        // Column 0 max-abs 0.5 < 1 -> clamped to 1 -> untouched.
        assert_eq!(lambda[0], 1.0);
        assert_eq!(a[(0, 0)], 0.5);
        // Column 1 max-abs 6 -> scaled down.
        assert_eq!(lambda[1], 6.0);
        assert_eq!(a[(1, 1)], -1.0);
    }

    #[test]
    #[should_panic(expected = "lambda length")]
    fn normalize_checks_lambda_len() {
        let mut a = Mat::zeros(2, 3);
        let mut lambda = vec![0.0; 2];
        normalize_columns(&mut a, &mut lambda, ColumnNorm::Two);
    }

    #[test]
    fn reconstruction_is_preserved() {
        // λ_r * normalized column == original column.
        let orig = Mat::from_fn(4, 3, |i, j| (i * 3 + j) as f64 - 4.0);
        let mut a = orig.clone();
        let mut lambda = vec![0.0; 3];
        normalize_columns(&mut a, &mut lambda, ColumnNorm::Two);
        for i in 0..4 {
            for j in 0..3 {
                assert!((a[(i, j)] * lambda[j] - orig[(i, j)]).abs() < 1e-12);
            }
        }
    }
}
