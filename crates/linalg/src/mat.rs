//! Row-major dense matrix.
//!
//! [`Mat`] is deliberately minimal: CP-ALS only needs tall-skinny factor
//! matrices (`N × R`) and tiny square matrices (`R × R`). Rows are
//! contiguous so a row maps exactly onto the `R`-length register-blocked
//! vectors the MTTKRP kernels work with, and `row`/`row_mut` hand out
//! plain slices that the kernels can iterate without bounds checks in the
//! hot loop.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major `rows × cols` matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {rows}x{cols}",
            data.len()
        );
        Mat { rows, cols, data }
    }

    /// Creates a matrix by evaluating `f(i, j)` at every coordinate.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Mat { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `i` as a slice of length `cols`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The full backing storage in row-major order.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the full backing storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning its backing storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Sets every element to `v`.
    pub fn fill(&mut self, v: f64) {
        self.data.fill(v);
    }

    /// Frobenius norm `sqrt(Σ a_ij²)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Squared Frobenius norm.
    pub fn frobenius_norm_sq(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>()
    }

    /// `self += other`, element-wise.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Mat) {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self *= s`, element-wise.
    pub fn scale(&mut self, s: f64) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Maximum absolute element, 0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// Iterates over `(row_index, row_slice)` pairs.
    pub fn rows_iter(&self) -> impl Iterator<Item = (usize, &[f64])> {
        self.data.chunks_exact(self.cols.max(1)).enumerate()
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(8);
        for i in 0..show {
            write!(f, "  [")?;
            let cshow = self.cols.min(8);
            for j in 0..cshow {
                write!(f, "{:>10.4}", self[(i, j)])?;
                if j + 1 < cshow {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_right_shape_and_content() {
        let m = Mat::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_is_identity() {
        let m = Mat::identity(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(m[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_fn_layout_is_row_major() {
        let m = Mat::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_checks_length() {
        let _ = Mat::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn index_round_trip() {
        let mut m = Mat::zeros(2, 2);
        m[(1, 0)] = 5.0;
        assert_eq!(m[(1, 0)], 5.0);
        assert_eq!(m.row(1)[0], 5.0);
    }

    #[test]
    fn frobenius_norm_matches_manual() {
        let m = Mat::from_vec(2, 2, vec![3.0, 0.0, 0.0, 4.0]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        assert!((m.frobenius_norm_sq() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn add_assign_and_scale() {
        let mut a = Mat::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Mat::from_vec(1, 3, vec![10.0, 20.0, 30.0]);
        a.add_assign(&b);
        a.scale(0.5);
        assert_eq!(a.as_slice(), &[5.5, 11.0, 16.5]);
    }

    #[test]
    fn fill_zero_keeps_shape() {
        let mut m = Mat::from_vec(2, 2, vec![1.0; 4]);
        m.fill_zero();
        assert_eq!(m.rows(), 2);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn max_abs_finds_extreme() {
        let m = Mat::from_vec(1, 3, vec![1.0, -7.0, 3.0]);
        assert_eq!(m.max_abs(), 7.0);
    }

    #[test]
    fn rows_iter_yields_all_rows() {
        let m = Mat::from_fn(3, 2, |i, j| (i * 2 + j) as f64);
        let collected: Vec<_> = m.rows_iter().map(|(i, r)| (i, r.to_vec())).collect();
        assert_eq!(collected.len(), 3);
        assert_eq!(collected[2].1, vec![4.0, 5.0]);
    }
}
