//! Property-based tests for the dense algebra substrate.

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use stef_linalg::krp::{dot_row, khatri_rao, khatri_rao_chain};
use stef_linalg::norms::{column_norms, normalize_columns, ColumnNorm};
use stef_linalg::ops::{frob_inner, gram_full, matmul, transpose};
use stef_linalg::solve::{cholesky_factor, solve_gram_system};
use stef_linalg::{approx_eq, assert_mat_approx_eq, Mat};

fn arb_mat(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Mat> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
        pvec(-10.0f64..10.0, r * c).prop_map(move |data| Mat::from_vec(r, c, data))
    })
}

/// A pair of matrices with compatible inner dimensions.
fn arb_mul_pair() -> impl Strategy<Value = (Mat, Mat)> {
    (1usize..=6, 1usize..=6, 1usize..=6).prop_flat_map(|(m, k, n)| {
        (
            pvec(-5.0f64..5.0, m * k).prop_map(move |d| Mat::from_vec(m, k, d)),
            pvec(-5.0f64..5.0, k * n).prop_map(move |d| Mat::from_vec(k, n, d)),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gram_equals_at_a(a in arb_mat(20, 6)) {
        let g = gram_full(&a);
        let brute = matmul(&transpose(&a), &a);
        assert_mat_approx_eq(&g, &brute, 1e-9);
    }

    #[test]
    fn gram_is_positive_semidefinite(a in arb_mat(15, 5)) {
        // xᵀGx = ‖Ax‖² ≥ 0 for a few deterministic x vectors.
        let g = gram_full(&a);
        let n = g.rows();
        for probe in 0..3u64 {
            let x: Vec<f64> = (0..n).map(|i| ((i as u64 + probe * 7) % 5) as f64 - 2.0).collect();
            let mut quad = 0.0;
            for i in 0..n {
                for j in 0..n {
                    quad += x[i] * g[(i, j)] * x[j];
                }
            }
            prop_assert!(quad >= -1e-9, "xᵀGx = {quad}");
        }
    }

    #[test]
    fn matmul_is_associative((a, b) in arb_mul_pair(), cols in 1usize..=4) {
        let k = b.cols();
        let c = Mat::from_fn(k, cols, |i, j| ((i * 3 + j * 5) % 7) as f64 - 3.0);
        let left = matmul(&matmul(&a, &b), &c);
        let right = matmul(&a, &matmul(&b, &c));
        assert_mat_approx_eq(&left, &right, 1e-8);
    }

    #[test]
    fn transpose_is_involutive(a in arb_mat(10, 10)) {
        assert_mat_approx_eq(&transpose(&transpose(&a)), &a, 0.0);
    }

    #[test]
    fn frob_inner_is_symmetric(a in arb_mat(8, 8)) {
        let b = Mat::from_fn(a.rows(), a.cols(), |i, j| (i + 2 * j) as f64 * 0.5 - 1.0);
        prop_assert!(approx_eq(frob_inner(&a, &b), frob_inner(&b, &a), 1e-12));
    }

    #[test]
    fn cholesky_solve_recovers_solution(g in arb_mat(12, 4), rows in 1usize..=8) {
        // Build a definite system V = GᵀG + I.
        let mut v = gram_full(&g);
        let n = v.rows();
        for i in 0..n {
            v[(i, i)] += 1.0;
        }
        let x_true = Mat::from_fn(rows, n, |i, j| ((i * 5 + j * 3) % 11) as f64 * 0.25 - 1.0);
        let mut b = matmul(&x_true, &v);
        solve_gram_system(&v, &mut b);
        assert_mat_approx_eq(&b, &x_true, 1e-6);
    }

    #[test]
    fn cholesky_factor_is_lower_triangular(g in arb_mat(10, 4)) {
        let mut v = gram_full(&g);
        for i in 0..v.rows() {
            v[(i, i)] += 1.0;
        }
        let l = cholesky_factor(&v).expect("definite");
        for i in 0..l.rows() {
            for j in i + 1..l.cols() {
                prop_assert_eq!(l[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn khatri_rao_column_structure(a in arb_mat(5, 3)) {
        let b = Mat::from_fn(4, a.cols(), |i, j| (i * 2 + j) as f64 * 0.5);
        let k = khatri_rao(&a, &b);
        prop_assert_eq!(k.rows(), a.rows() * 4);
        for r in 0..a.cols() {
            for i in 0..a.rows() {
                for j in 0..4 {
                    prop_assert!(approx_eq(
                        k[(i * 4 + j, r)],
                        a[(i, r)] * b[(j, r)],
                        1e-12
                    ));
                }
            }
        }
    }

    #[test]
    fn krp_chain_rank_one_matches_outer_product(u in pvec(-3.0f64..3.0, 2..5), v in pvec(-3.0f64..3.0, 2..5)) {
        let a = Mat::from_vec(u.len(), 1, u.clone());
        let b = Mat::from_vec(v.len(), 1, v.clone());
        let k = khatri_rao_chain(&[&a, &b]);
        for (i, &x) in u.iter().enumerate() {
            for (j, &y) in v.iter().enumerate() {
                prop_assert!(approx_eq(k[(i * v.len() + j, 0)], x * y, 1e-12));
            }
        }
    }

    #[test]
    fn normalization_preserves_reconstruction(a in arb_mat(10, 4)) {
        let orig = a.clone();
        let mut m = a;
        let mut lambda = vec![0.0; m.cols()];
        normalize_columns(&mut m, &mut lambda, ColumnNorm::Two);
        for i in 0..m.rows() {
            for j in 0..m.cols() {
                prop_assert!(approx_eq(m[(i, j)] * lambda[j], orig[(i, j)], 1e-9));
            }
        }
        // Normalized non-zero columns are unit length.
        for (j, n) in column_norms(&m).iter().enumerate() {
            if lambda[j] > 1.0e-300 && column_norms(&orig)[j] > 0.0 {
                prop_assert!(approx_eq(*n, 1.0, 1e-9), "column {j} norm {n}");
            }
        }
    }

    #[test]
    fn dot_row_matches_manual(u in pvec(-5.0f64..5.0, 1..8)) {
        let v: Vec<f64> = u.iter().map(|x| x * 2.0 + 1.0).collect();
        let manual: f64 = u.iter().zip(&v).map(|(a, b)| a * b).sum();
        prop_assert!(approx_eq(dot_row(&u, &v), manual, 1e-12));
    }
}
