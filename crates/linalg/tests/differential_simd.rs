//! Differential property tests for the explicit-SIMD row primitives.
//!
//! Every runtime-dispatchable variant (AVX2+FMA on x86-64, NEON on
//! aarch64) is pitted against the scalar reference through the
//! [`stef_linalg::simd::ops_for`] function-pointer tables — the same
//! inputs, including ragged ranks (R 0..=33, so every 8/4-lane block
//! boundary and scalar tail), deliberately unaligned slices and empty
//! non-zero runs:
//!
//! * the multiply-only primitives (`krp_row`, `scale_row_into`) must be
//!   **bit-identical** — one rounding per element on every path;
//! * the accumulating primitives (`hadamard_row`, `axpy_row`,
//!   `krp_axpy`, `axpy_fiber`, `gather_fiber`) may fuse their
//!   multiply-adds, so they get the documented 1e-12 relative bound;
//! * `gather_fiber` must additionally match `fill(0.0)` + `axpy_fiber`
//!   of the *same* path bit for bit — that equivalence is what lets the
//!   kernels skip the zero-fill round trip.

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use stef_linalg::simd::{ops_for, RowOps, SimdPath};

/// All non-scalar paths this CPU can run, with their op tables.
fn variants() -> Vec<(&'static str, &'static RowOps)> {
    SimdPath::ALL
        .iter()
        .filter(|&&p| p != SimdPath::Scalar)
        .filter_map(|&p| ops_for(p).map(|ops| (p.as_str(), ops)))
        .collect()
}

fn scalar_ops() -> &'static RowOps {
    ops_for(SimdPath::Scalar).expect("scalar is always available")
}

fn assert_close(tag: &str, what: &str, got: &[f64], want: &[f64]) {
    assert_eq!(got.len(), want.len());
    for (i, (&g, &w)) in got.iter().zip(want).enumerate() {
        let tol = 1e-12 * w.abs().max(1.0);
        assert!(
            (g - w).abs() <= tol,
            "{tag} {what}[{i}]: {g} vs scalar {w}"
        );
    }
}

fn assert_bitwise(tag: &str, what: &str, got: &[f64], want: &[f64]) {
    for (i, (&g, &w)) in got.iter().zip(want).enumerate() {
        assert!(
            g.to_bits() == w.to_bits(),
            "{tag} {what}[{i}]: {g} not bit-identical to {w}"
        );
    }
}

/// An `r`-element window starting `off` elements into a backing buffer,
/// so the SIMD bodies see unaligned pointers for `off % 4 != 0`.
fn window(buf: &[f64], off: usize, r: usize) -> Vec<f64> {
    buf[off..off + r].to_vec()
}

const MAX_R: usize = 33;
const PAD: usize = 4;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mul_only_primitives_are_bit_identical_to_scalar(
        r in 0usize..=MAX_R,
        off in 0usize..PAD,
        x in pvec(-4.0f64..4.0, MAX_R + PAD),
        y in pvec(-4.0f64..4.0, MAX_R + PAD),
        s in -4.0f64..4.0,
    ) {
        let (xs, ys) = (window(&x, off, r), window(&y, off, r));
        for (tag, ops) in variants() {
            let mut got = vec![f64::NAN; r];
            let mut want = vec![f64::NAN; r];
            (ops.krp_row)(&mut got, &xs, &ys);
            (scalar_ops().krp_row)(&mut want, &xs, &ys);
            assert_bitwise(tag, "krp_row", &got, &want);

            (ops.scale_row_into)(&mut got, s, &xs);
            (scalar_ops().scale_row_into)(&mut want, s, &xs);
            assert_bitwise(tag, "scale_row_into", &got, &want);
        }
    }

    #[test]
    fn accumulating_primitives_match_scalar_to_1e12(
        r in 0usize..=MAX_R,
        off in 0usize..PAD,
        acc0 in pvec(-4.0f64..4.0, MAX_R + PAD),
        x in pvec(-4.0f64..4.0, MAX_R + PAD),
        y in pvec(-4.0f64..4.0, MAX_R + PAD),
        s in -4.0f64..4.0,
    ) {
        let (a0, xs, ys) = (window(&acc0, off, r), window(&x, off, r), window(&y, off, r));
        for (tag, ops) in variants() {
            let mut got = a0.clone();
            let mut want = a0.clone();
            (ops.hadamard_row)(&mut got, &xs, &ys);
            (scalar_ops().hadamard_row)(&mut want, &xs, &ys);
            assert_close(tag, "hadamard_row", &got, &want);

            let mut got = a0.clone();
            let mut want = a0.clone();
            (ops.axpy_row)(&mut got, s, &xs);
            (scalar_ops().axpy_row)(&mut want, s, &xs);
            assert_close(tag, "axpy_row", &got, &want);

            let mut got = a0.clone();
            let mut want = a0.clone();
            (ops.krp_axpy)(&mut got, s, &xs, &ys);
            (scalar_ops().krp_axpy)(&mut want, s, &xs, &ys);
            assert_close(tag, "krp_axpy", &got, &want);
        }
    }

    #[test]
    fn fiber_gathers_match_scalar_across_ragged_runs(
        r in 0usize..=MAX_R,
        pad in 0usize..PAD,
        nrows in 1usize..=9,
        nnz in 0usize..=10,           // includes the empty run
        acc0 in pvec(-4.0f64..4.0, MAX_R),
        vals in pvec(-4.0f64..4.0, 10),
        fid_seed in any::<u64>(),
        rowdata in pvec(-4.0f64..4.0, (MAX_R + PAD) * 9),
    ) {
        let stride = r + pad;
        let rows = &rowdata[..nrows * stride];
        let mut x = fid_seed | 1;
        let fids: Vec<u32> = (0..nnz)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((x >> 33) % nrows as u64) as u32
            })
            .collect();
        let vals = &vals[..nnz];
        let a0 = &acc0[..r];
        for (tag, ops) in variants() {
            let mut got = a0.to_vec();
            let mut want = a0.to_vec();
            (ops.axpy_fiber)(&mut got, vals, &fids, rows, stride);
            (scalar_ops().axpy_fiber)(&mut want, vals, &fids, rows, stride);
            assert_close(tag, "axpy_fiber", &got, &want);

            let mut got = vec![f64::NAN; r];
            let mut want = vec![f64::NAN; r];
            (ops.gather_fiber)(&mut got, vals, &fids, rows, stride);
            (scalar_ops().gather_fiber)(&mut want, vals, &fids, rows, stride);
            assert_close(tag, "gather_fiber", &got, &want);

            // The overwrite gather is exactly fill-then-accumulate of
            // the same path, bit for bit.
            let mut composed = vec![0.0f64; r];
            (ops.axpy_fiber)(&mut composed, vals, &fids, rows, stride);
            assert_bitwise(tag, "gather_fiber-vs-fill+axpy", &got, &composed);
        }
    }
}

/// The tables themselves must be consistent: the scalar row of
/// `ops_for` is the reference implementation, and every available
/// non-scalar path reports availability truthfully.
#[test]
fn ops_tables_match_availability() {
    assert!(ops_for(SimdPath::Scalar).is_some());
    for p in SimdPath::ALL {
        assert_eq!(ops_for(p).is_some(), p.available(), "{}", p.as_str());
    }
}
