//! # stef-workloads — seeded sparse-tensor workload generators
//!
//! The paper evaluates on 16 FROSTT/HaTen2 tensors with up to 144 M
//! non-zeros on 128 GB machines. Those inputs are not redistributable
//! inside this repository and are far larger than a development host
//! needs, so this crate generates *synthetic analogues*: same mode-count,
//! same mode-length ratios, same qualitative sparsity structure (per-mode
//! skew, root-slice starvation, fiber-length inversions), scaled down to
//! at most a few million non-zeros.
//!
//! What the experiments actually depend on is preserved:
//!
//! * fiber-count profiles per level (what the data-movement model reads),
//! * the number of root slices and their imbalance (what distinguishes
//!   slice scheduling from nnz scheduling, e.g. the `vast-2015` tensors
//!   keep their 2-slice root mode),
//! * which of the last two modes compresses better (what Algorithm 9
//!   decides, e.g. the `delicious-4d` analogue keeps "the longest mode
//!   has the shortest fibers").
//!
//! Real FROSTT `.tns` files can be substituted at any time via
//! `sptensor::io::read_tns_file`.
//!
//! All generators take an explicit seed and are deterministic across
//! runs and thread counts.

pub mod gen;
pub mod lowrank;
pub mod powerlaw;
pub mod suite;

pub use gen::{clustered_tensor, power_law_tensor, split_root_tensor, uniform_tensor};
pub use lowrank::planted_lowrank_tensor;
pub use powerlaw::PowerLaw;
pub use suite::{paper_suite, suite_tensor, SuiteScale, SuiteSpec};
