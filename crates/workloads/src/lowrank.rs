//! Planted low-rank tensors.
//!
//! CPD correctness tests need tensors that *actually are* low-rank — not
//! just sparse samples of a low-rank object (treating unobserved entries
//! as zeros destroys low-rankness). The construction here guarantees
//! exact rank ≤ `rank`: every component `r` gets a compactly supported
//! factor column per mode (a positive bump inside a window, exactly zero
//! outside), and the tensor enumerates **all** cells of each component's
//! support box with the full CP model value. Outside the boxes the model
//! is exactly zero, so the sparse tensor *is* the dense CP model, and an
//! ALS solver with enough rank can drive the fit to ~1.

use linalg::Mat;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sptensor::CooTensor;

/// A planted low-rank tensor plus its ground-truth factors.
pub struct PlantedTensor {
    /// The sparse tensor (exact CP values on the union of support boxes).
    pub tensor: CooTensor,
    /// Ground-truth factor matrices, one per mode (`dims[m] × rank`).
    pub factors: Vec<Mat>,
    /// Ground-truth component weights.
    pub lambda: Vec<f64>,
}

/// Generates an exactly rank-≤`rank` sparse tensor with roughly
/// `target_nnz` non-zeros, with optional additive noise of amplitude
/// `noise` (noise > 0 makes the tensor only approximately low-rank).
///
/// # Panics
/// Panics if `rank == 0`, `target_nnz == 0`, or fewer than 2 modes.
pub fn planted_lowrank_tensor(
    dims: &[usize],
    target_nnz: usize,
    rank: usize,
    noise: f64,
    seed: u64,
) -> PlantedTensor {
    assert!(rank >= 1);
    assert!(target_nnz > 0);
    assert!(dims.len() >= 2);
    let d = dims.len();
    let mut rng = StdRng::seed_from_u64(seed);

    // Box side per mode: the per-component box volume should be about
    // target_nnz / rank, capped by each mode length.
    let per_comp = (target_nnz as f64 / rank as f64).max(1.0);
    let side = per_comp.powf(1.0 / d as f64).round().max(2.0);
    let sides: Vec<usize> = dims.iter().map(|&n| (side as usize).min(n)).collect();

    // Window starts per (mode, component); windows never wrap.
    let mut starts = vec![vec![0usize; rank]; d];
    for (m, &n) in dims.iter().enumerate() {
        for slot in starts[m].iter_mut() {
            let max_start = n - sides[m];
            *slot = if max_start == 0 {
                0
            } else {
                (rng.gen::<u64>() % (max_start as u64 + 1)) as usize
            };
        }
    }

    // Factors: a raised-cosine bump inside the window, zero outside —
    // strictly positive on the window interior so components are
    // genuinely rank-1 on their boxes.
    let mut factors = Vec::with_capacity(d);
    for (m, &n) in dims.iter().enumerate() {
        let s = sides[m] as f64;
        let col_starts = starts[m].clone();
        let f = Mat::from_fn(n, rank, |i, r| {
            let a = col_starts[r];
            if i < a || i >= a + sides[m] {
                0.0
            } else {
                let x = (i - a) as f64 / s; // in [0, 1)
                0.2 + (std::f64::consts::PI * x).sin()
            }
        });
        factors.push(f);
    }
    let lambda: Vec<f64> = (0..rank).map(|r| 1.0 + r as f64 * 0.25).collect();

    // Enumerate every cell of every component's box; duplicates across
    // overlapping boxes are collapsed (values identical: both are the
    // full model value at that cell).
    let model_value = |coord: &[u32]| -> f64 {
        let mut v = 0.0;
        for r in 0..rank {
            let mut p = lambda[r];
            for (m, f) in factors.iter().enumerate() {
                p *= f[(coord[m] as usize, r)];
                if p == 0.0 {
                    break;
                }
            }
            v += p;
        }
        v
    };

    let mut t = CooTensor::new(dims.to_vec());
    let mut coord = vec![0u32; d];
    let mut seen = std::collections::HashSet::new();
    for anchor_of_mode in 0..rank {
        let r = anchor_of_mode;
        let volume: usize = sides.iter().product();
        for flat in 0..volume {
            let mut rem = flat;
            for m in 0..d {
                coord[m] = (starts[m][r] + rem % sides[m]) as u32;
                rem /= sides[m];
            }
            if !seen.insert(coord.clone()) {
                continue;
            }
            let mut v = model_value(&coord);
            if noise > 0.0 {
                v += noise * (rng.gen::<f64>() * 2.0 - 1.0);
            }
            t.push(&coord, v);
        }
    }
    t.sort_dedup();
    PlantedTensor {
        tensor: t,
        factors,
        lambda,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_roughly_requested_nnz() {
        let p = planted_lowrank_tensor(&[30, 40, 50], 2_000, 3, 0.0, 1);
        assert_eq!(p.tensor.dims(), &[30, 40, 50]);
        let nnz = p.tensor.nnz();
        assert!(
            (500..=8_000).contains(&nnz),
            "nnz {nnz} far from the 2000 target"
        );
        assert_eq!(p.factors.len(), 3);
        assert_eq!(p.factors[1].rows(), 40);
        assert_eq!(p.factors[1].cols(), 3);
        assert_eq!(p.lambda.len(), 3);
    }

    #[test]
    fn noiseless_values_match_model_exactly() {
        let p = planted_lowrank_tensor(&[20, 20, 20], 500, 2, 0.0, 2);
        for e in (0..p.tensor.nnz()).step_by(13) {
            let c = p.tensor.coord(e);
            let mut expect = 0.0;
            for r in 0..2 {
                let mut prod = p.lambda[r];
                for (m, f) in p.factors.iter().enumerate() {
                    prod *= f[(c[m] as usize, r)];
                }
                expect += prod;
            }
            assert!((p.tensor.values()[e] - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn tensor_is_exactly_the_dense_model() {
        // Every cell NOT stored must have model value zero — the property
        // that makes the sparse tensor exactly low-rank.
        let dims = [8usize, 9, 7];
        let p = planted_lowrank_tensor(&dims, 150, 2, 0.0, 3);
        let mut stored = std::collections::HashSet::new();
        for e in 0..p.tensor.nnz() {
            stored.insert(p.tensor.coord(e));
        }
        for i in 0..dims[0] as u32 {
            for j in 0..dims[1] as u32 {
                for k in 0..dims[2] as u32 {
                    let c = vec![i, j, k];
                    if stored.contains(&c) {
                        continue;
                    }
                    let mut v = 0.0;
                    for r in 0..2 {
                        let mut prod = p.lambda[r];
                        for (m, f) in p.factors.iter().enumerate() {
                            prod *= f[(c[m] as usize, r)];
                        }
                        v += prod;
                    }
                    assert!(v.abs() < 1e-12, "unstored cell {c:?} has model value {v}");
                }
            }
        }
    }

    #[test]
    fn factors_are_compactly_supported() {
        let p = planted_lowrank_tensor(&[50, 50, 50], 1_000, 3, 0.0, 4);
        for f in &p.factors {
            for r in 0..3 {
                let nonzero = (0..f.rows()).filter(|&i| f[(i, r)] != 0.0).count();
                assert!(nonzero > 0);
                assert!(
                    nonzero < f.rows(),
                    "column {r} should have zeros outside its window"
                );
            }
        }
    }

    #[test]
    fn no_duplicate_coordinates() {
        let p = planted_lowrank_tensor(&[15, 15, 15], 800, 2, 0.1, 5);
        let mut coords: Vec<Vec<u32>> = (0..p.tensor.nnz()).map(|e| p.tensor.coord(e)).collect();
        coords.sort();
        let before = coords.len();
        coords.dedup();
        assert_eq!(coords.len(), before);
    }

    #[test]
    fn deterministic() {
        let a = planted_lowrank_tensor(&[25, 25, 25], 600, 2, 0.05, 9);
        let b = planted_lowrank_tensor(&[25, 25, 25], 600, 2, 0.05, 9);
        assert_eq!(a.tensor.nnz(), b.tensor.nnz());
        assert_eq!(a.tensor.values(), b.tensor.values());
    }

    #[test]
    fn noise_perturbs_values() {
        let clean = planted_lowrank_tensor(&[20, 20, 20], 400, 2, 0.0, 4);
        let noisy = planted_lowrank_tensor(&[20, 20, 20], 400, 2, 0.5, 4);
        assert_eq!(clean.tensor.nnz(), noisy.tensor.nnz());
        assert_ne!(clean.tensor.values(), noisy.tensor.values());
    }
}
