//! Discretized power-law index sampler.
//!
//! Real sparse tensors have heavily skewed per-mode index frequencies —
//! a handful of users/words/IPs account for most non-zeros. We model this
//! with a discretized Pareto: a continuous variable with density
//! `∝ x^(−a)` on `[1, N+1)`, sampled by inverse CDF and floored to an
//! integer in `[0, N)`. Exponent `a = 0` degenerates to the uniform
//! distribution; larger `a` concentrates mass on low indices (which is
//! harmless for structure, since tensor index identity is arbitrary).
//!
//! This is not an exact Zipf pmf, but the workloads only need a
//! *controllable heavy tail*, and inverse-CDF sampling is branch-free,
//! table-free and exactly reproducible.

use rand::Rng;

/// Inverse-CDF sampler for a discretized power law over `0..n`.
#[derive(Clone, Debug)]
pub struct PowerLaw {
    n: usize,
    exponent: f64,
    /// `(N+1)^(1-a)` precomputed (or `ln(N+1)` when `a == 1`).
    edge: f64,
}

impl PowerLaw {
    /// Creates a sampler over `0..n` with skew exponent `a ≥ 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `a < 0` or `a` is not finite.
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0, "domain must be non-empty");
        assert!(
            exponent >= 0.0 && exponent.is_finite(),
            "exponent must be finite and >= 0"
        );
        let edge = if (exponent - 1.0).abs() < 1e-12 {
            ((n + 1) as f64).ln()
        } else {
            ((n + 1) as f64).powf(1.0 - exponent)
        };
        PowerLaw { n, exponent, edge }
    }

    /// Domain size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Skew exponent.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Draws one index in `[0, n)`.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let u: f64 = rng.gen::<f64>();
        let x = if (self.exponent - 1.0).abs() < 1e-12 {
            (u * self.edge).exp()
        } else {
            let p = 1.0 - self.exponent;
            // Interpolate between 1^p = 1 and (N+1)^p, then invert.
            ((1.0 - u) + u * self.edge).powf(1.0 / p)
        };
        // x ∈ [1, N+1); floor-1 gives [0, N); clamp guards the open edge.
        ((x as usize).saturating_sub(1)).min(self.n - 1) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn histogram(n: usize, a: f64, draws: usize, seed: u64) -> Vec<usize> {
        let pl = PowerLaw::new(n, a);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut h = vec![0usize; n];
        for _ in 0..draws {
            h[pl.sample(&mut rng) as usize] += 1;
        }
        h
    }

    #[test]
    fn samples_stay_in_range() {
        let pl = PowerLaw::new(7, 2.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!((pl.sample(&mut rng) as usize) < 7);
        }
    }

    #[test]
    fn zero_exponent_is_roughly_uniform() {
        let h = histogram(10, 0.0, 100_000, 2);
        let expect = 10_000.0;
        for (i, &c) in h.iter().enumerate() {
            assert!(
                (c as f64 - expect).abs() < expect * 0.1,
                "bucket {i} count {c} too far from uniform"
            );
        }
    }

    #[test]
    fn skew_concentrates_mass_on_low_indices() {
        let h = histogram(1000, 1.5, 100_000, 3);
        let head: usize = h[..10].iter().sum();
        let tail: usize = h[500..].iter().sum();
        assert!(
            head > 50 * tail.max(1),
            "head {head} should dwarf tail {tail}"
        );
    }

    #[test]
    fn higher_exponent_means_more_skew() {
        let mild: usize = histogram(1000, 0.5, 50_000, 4)[..10].iter().sum();
        let steep: usize = histogram(1000, 2.0, 50_000, 4)[..10].iter().sum();
        assert!(steep > 2 * mild);
    }

    #[test]
    fn exponent_one_special_case_works() {
        let h = histogram(100, 1.0, 50_000, 5);
        assert!(h[0] > h[50], "log-uniform should still be decreasing");
        assert_eq!(h.iter().sum::<usize>(), 50_000);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = histogram(64, 1.2, 1_000, 42);
        let b = histogram(64, 1.2, 1_000, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn single_element_domain() {
        let pl = PowerLaw::new(1, 3.0);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..100 {
            assert_eq!(pl.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_domain() {
        let _ = PowerLaw::new(0, 1.0);
    }
}
