//! Core synthetic tensor generators.
//!
//! Every generator draws *candidate* coordinates until the requested
//! number of **distinct** non-zeros is reached (duplicates are merged by
//! `sort_dedup`, so the returned tensor has exactly `min(nnz, reachable)`
//! entries unless the index space is too small). Values are uniform in
//! `[0.5, 1.5)` so that MTTKRP results are well-conditioned and no
//! cancellation hides kernel bugs.

use crate::powerlaw::PowerLaw;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sptensor::CooTensor;

/// Maximum oversampling rounds before giving up on reaching the target
/// distinct count (prevents livelock when a skewed distribution keeps
/// hitting the same cells).
const MAX_ROUNDS: usize = 12;

fn draw_value<R: Rng>(rng: &mut R) -> f64 {
    0.5 + rng.gen::<f64>()
}

/// Generates a tensor with independently power-law-distributed
/// coordinates; `skews[m]` is the exponent for mode `m` (0 = uniform).
///
/// # Panics
/// Panics if `skews.len() != dims.len()` or `nnz == 0`.
pub fn power_law_tensor(dims: &[usize], nnz: usize, skews: &[f64], seed: u64) -> CooTensor {
    assert_eq!(dims.len(), skews.len(), "one skew per mode");
    assert!(nnz > 0, "nnz must be positive");
    let samplers: Vec<PowerLaw> = dims
        .iter()
        .zip(skews)
        .map(|(&d, &a)| PowerLaw::new(d, a))
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = CooTensor::new(dims.to_vec());
    let mut coord = vec![0u32; dims.len()];
    let mut rounds = 0;
    while t.nnz() < nnz && rounds < MAX_ROUNDS {
        let need = nnz - t.nnz();
        // Oversample a little to compensate for collisions.
        let batch = need + need / 4 + 16;
        for _ in 0..batch {
            for (c, s) in coord.iter_mut().zip(&samplers) {
                *c = s.sample(&mut rng);
            }
            t.push(&coord, draw_value(&mut rng));
        }
        t.sort_dedup();
        truncate_to(&mut t, nnz);
        rounds += 1;
    }
    t
}

/// Uniform-coordinate tensor — `power_law_tensor` with all skews 0.
pub fn uniform_tensor(dims: &[usize], nnz: usize, seed: u64) -> CooTensor {
    power_law_tensor(dims, nnz, &vec![0.0; dims.len()], seed)
}

/// Generates a tensor whose mode-0 has very few slices with a
/// deliberately unbalanced non-zero split — the `vast-2015` pattern that
/// starves slice-based schedulers. `hot_fraction` of the non-zeros land
/// in slice 0; the rest spread over the remaining slices; other modes
/// follow `skews`.
pub fn split_root_tensor(
    dims: &[usize],
    nnz: usize,
    hot_fraction: f64,
    skews: &[f64],
    seed: u64,
) -> CooTensor {
    assert!(dims[0] >= 2, "need at least two root slices");
    assert!((0.0..=1.0).contains(&hot_fraction));
    assert_eq!(dims.len(), skews.len());
    let samplers: Vec<PowerLaw> = dims
        .iter()
        .zip(skews)
        .map(|(&d, &a)| PowerLaw::new(d, a))
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = CooTensor::new(dims.to_vec());
    let mut coord = vec![0u32; dims.len()];
    let mut rounds = 0;
    while t.nnz() < nnz && rounds < MAX_ROUNDS {
        let need = nnz - t.nnz();
        let batch = need + need / 4 + 16;
        for _ in 0..batch {
            coord[0] = if rng.gen::<f64>() < hot_fraction {
                0
            } else {
                1 + (rng.gen::<u64>() % (dims[0] as u64 - 1)) as u32
            };
            for m in 1..dims.len() {
                coord[m] = samplers[m].sample(&mut rng);
            }
            t.push(&coord, draw_value(&mut rng));
        }
        t.sort_dedup();
        truncate_to(&mut t, nnz);
        rounds += 1;
    }
    t
}

/// Generates a tensor of dense-ish clusters: `n_clusters` random centers,
/// each non-zero picks a center and offsets every coordinate by a
/// geometric-ish spread. Produces long fibers and high index reuse —
/// the `nell-2` / `nips` regime where memoization pays off.
pub fn clustered_tensor(
    dims: &[usize],
    nnz: usize,
    n_clusters: usize,
    spread: usize,
    seed: u64,
) -> CooTensor {
    assert!(n_clusters > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Vec<u32>> = (0..n_clusters)
        .map(|_| {
            dims.iter()
                .map(|&d| (rng.gen::<u64>() % d as u64) as u32)
                .collect()
        })
        .collect();
    let mut t = CooTensor::new(dims.to_vec());
    let mut coord = vec![0u32; dims.len()];
    let mut rounds = 0;
    while t.nnz() < nnz && rounds < MAX_ROUNDS {
        let need = nnz - t.nnz();
        let batch = need + need / 4 + 16;
        for _ in 0..batch {
            let c = &centers[(rng.gen::<u64>() % n_clusters as u64) as usize];
            for (m, (&d, &base)) in dims.iter().zip(c).enumerate() {
                let off = (rng.gen::<u64>() % (2 * spread as u64 + 1)) as i64 - spread as i64;
                let v = (base as i64 + off).rem_euclid(d as i64);
                coord[m] = v as u32;
            }
            t.push(&coord, draw_value(&mut rng));
        }
        t.sort_dedup();
        truncate_to(&mut t, nnz);
        rounds += 1;
    }
    t
}

/// Keeps exactly `nnz` non-zeros by sampling evenly across the sorted
/// entry list (keeping a lexicographic *prefix* would systematically drop
/// the tail of the root mode and distort the distribution). Deterministic.
fn truncate_to(t: &mut CooTensor, nnz: usize) {
    let total = t.nnz();
    if total <= nnz {
        return;
    }
    let dims = t.dims().to_vec();
    let mut out = CooTensor::new(dims);
    for i in 0..nnz {
        // Evenly spaced indices: floor(i * total / nnz) is strictly
        // increasing because total > nnz.
        let e = i * total / nnz;
        out.push(&t.coord(e), t.values()[e]);
    }
    *t = out;
}

#[cfg(test)]
mod tests {
    use super::*;
    use sptensor::{build_csf, TensorStats};

    #[test]
    fn uniform_hits_target_nnz() {
        let t = uniform_tensor(&[50, 60, 70], 5_000, 1);
        assert_eq!(t.nnz(), 5_000);
        assert_eq!(t.dims(), &[50, 60, 70]);
    }

    #[test]
    fn generators_are_deterministic() {
        let a = power_law_tensor(&[40, 40, 40], 2_000, &[1.0, 0.5, 0.0], 7);
        let b = power_law_tensor(&[40, 40, 40], 2_000, &[1.0, 0.5, 0.0], 7);
        assert_eq!(a.nnz(), b.nnz());
        for e in (0..a.nnz()).step_by(97) {
            assert_eq!(a.coord(e), b.coord(e));
            assert_eq!(a.values()[e], b.values()[e]);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = uniform_tensor(&[30, 30, 30], 1_000, 1);
        let b = uniform_tensor(&[30, 30, 30], 1_000, 2);
        let same = (0..a.nnz().min(b.nnz())).all(|e| a.coord(e) == b.coord(e));
        assert!(!same);
    }

    #[test]
    fn small_index_space_saturates_gracefully() {
        // Only 8 cells available but 100 requested.
        let t = uniform_tensor(&[2, 2, 2], 100, 3);
        assert!(t.nnz() <= 8);
        assert!(
            t.nnz() >= 6,
            "should nearly fill the space, got {}",
            t.nnz()
        );
    }

    #[test]
    fn split_root_concentrates_mass() {
        let t = split_root_tensor(&[2, 100, 100], 4_000, 0.9, &[0.0, 0.0, 0.0], 5);
        let slice0 = (0..t.nnz()).filter(|&e| t.indices()[0][e] == 0).count();
        let frac = slice0 as f64 / t.nnz() as f64;
        assert!(frac > 0.8, "hot slice fraction {frac}");
        let csf = build_csf(&t, &[0, 1, 2]);
        let s = TensorStats::from_csf(&csf, t.dims());
        assert_eq!(s.root_slices, 2);
        assert!(s.slice_imbalance > 1.5);
    }

    #[test]
    fn clustered_has_longer_fibers_than_uniform() {
        let dims = [200usize, 200, 200];
        let nnz = 8_000;
        let uni = uniform_tensor(&dims, nnz, 11);
        let clu = clustered_tensor(&dims, nnz, 6, 8, 11);
        let fib = |t: &CooTensor| {
            let csf = build_csf(t, &[0, 1, 2]);
            csf.nfibers(1)
        };
        // Fewer level-1 fibers = more non-zeros per fiber = longer fibers.
        assert!(
            fib(&clu) < fib(&uni),
            "clustered {} should have fewer fibers than uniform {}",
            fib(&clu),
            fib(&uni)
        );
    }

    #[test]
    fn skew_shrinks_distinct_indices() {
        let flat = power_law_tensor(&[1000, 50, 50], 3_000, &[0.0, 0.0, 0.0], 9);
        let skew = power_law_tensor(&[1000, 50, 50], 3_000, &[2.0, 0.0, 0.0], 9);
        let distinct = |t: &CooTensor| {
            let mut ids: Vec<u32> = t.indices()[0].clone();
            ids.sort_unstable();
            ids.dedup();
            ids.len()
        };
        assert!(distinct(&skew) < distinct(&flat) / 2);
    }

    #[test]
    fn values_are_positive_and_finite() {
        // Duplicate draws merge by summation, so values can exceed the
        // per-draw range [0.5, 1.5) but must stay positive and finite.
        let t = uniform_tensor(&[20, 20], 300, 13);
        assert!(t.values().iter().all(|&v| v > 0.0 && v.is_finite()));
    }
}
