//! Scaled synthetic analogues of the paper's tensor suite (Table I).
//!
//! Each entry mirrors one of the 16 FROSTT/HaTen2 tensors: same mode
//! count, proportionally scaled mode lengths, and a generator chosen to
//! reproduce the property that makes that tensor interesting in the
//! paper's evaluation:
//!
//! * `vast-2015-mc1-*` keep a length-2 mode that becomes the CSF root
//!   under the mode-length heuristic, with a hot/cold non-zero split —
//!   the slice-scheduling worst case of §II-D;
//! * `freebase_*` keep nearly-unique `(i, j)` pairs so that memoizing
//!   `P^(1)` is as large as the tensor itself and the model declines to
//!   memoize (Table II shows 0.00 for these);
//! * `delicious-4d` keeps "the longest mode has the *shortest* average
//!   fibers", the motivating example for last-two-mode switching (§II-E);
//! * `nell-2` / `nips` / `uber` are dense-ish with long fibers, the
//!   regime where memoization and kernel choice dominate.
//!
//! Generation is seeded per tensor, so the suite is identical across
//! machines and runs.

use crate::gen::{clustered_tensor, power_law_tensor, split_root_tensor};
use sptensor::{inverse_permutation, CooTensor};

/// How to synthesize a suite tensor.
#[derive(Clone, Debug)]
pub enum GenKind {
    /// Independent per-mode power-law skews.
    PowerLaw {
        /// Skew exponent per mode (0 = uniform).
        skews: Vec<f64>,
    },
    /// One mode has few, unevenly loaded slices.
    SplitRoot {
        /// Which original mode carries the hot/cold split.
        hot_mode: usize,
        /// Fraction of non-zeros in the hot slice.
        hot: f64,
        /// Skews for the remaining modes (entry `hot_mode` ignored).
        skews: Vec<f64>,
    },
    /// Clustered blocks (long fibers, heavy index reuse).
    Clustered {
        /// Number of cluster centers.
        clusters: usize,
        /// Coordinate spread around each center.
        spread: usize,
    },
}

/// A named suite entry.
#[derive(Clone, Debug)]
pub struct SuiteSpec {
    /// Paper tensor this entry is the analogue of.
    pub name: &'static str,
    /// Scaled mode lengths.
    pub dims: Vec<usize>,
    /// Non-zero count at [`SuiteScale::Small`].
    pub base_nnz: usize,
    /// Generator recipe.
    pub kind: GenKind,
    /// Generation seed (fixed per entry).
    pub seed: u64,
}

/// Global size knob for the suite.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SuiteScale {
    /// ~1/20 of Small — for unit/integration tests.
    Tiny,
    /// Default benchmarking scale (a few hundred thousand nnz each).
    Small,
    /// 4× Small, for longer benchmark runs.
    Full,
}

impl SuiteScale {
    fn apply(self, nnz: usize) -> usize {
        match self {
            SuiteScale::Tiny => (nnz / 20).max(500),
            SuiteScale::Small => nnz,
            SuiteScale::Full => nnz * 4,
        }
    }
}

impl SuiteSpec {
    /// Generates the tensor at the given scale.
    pub fn generate(&self, scale: SuiteScale) -> CooTensor {
        let nnz = scale.apply(self.base_nnz);
        match &self.kind {
            GenKind::PowerLaw { skews } => power_law_tensor(&self.dims, nnz, skews, self.seed),
            GenKind::Clustered { clusters, spread } => {
                clustered_tensor(&self.dims, nnz, *clusters, *spread, self.seed)
            }
            GenKind::SplitRoot {
                hot_mode,
                hot,
                skews,
            } => {
                // The split generator makes mode 0 hot; permute the hot
                // mode to the front, generate, permute back.
                let d = self.dims.len();
                let mut perm = vec![*hot_mode];
                perm.extend((0..d).filter(|m| m != hot_mode));
                let gdims: Vec<usize> = perm.iter().map(|&m| self.dims[m]).collect();
                let gskews: Vec<f64> = perm.iter().map(|&m| skews[m]).collect();
                let t = split_root_tensor(&gdims, nnz, *hot, &gskews, self.seed);
                t.permute_modes(&inverse_permutation(&perm))
            }
        }
    }
}

/// The 16-entry suite mirroring the paper's Table I, scaled down.
pub fn paper_suite() -> Vec<SuiteSpec> {
    vec![
        SuiteSpec {
            name: "chicago-crime-comm",
            dims: vec![6000, 24, 77, 32],
            base_nnz: 120_000,
            kind: GenKind::PowerLaw {
                skews: vec![0.8, 0.2, 0.5, 0.3],
            },
            seed: 101,
        },
        SuiteSpec {
            name: "chicago-crime-geo",
            dims: vec![6000, 24, 380, 395, 32],
            base_nnz: 120_000,
            kind: GenKind::PowerLaw {
                skews: vec![0.8, 0.2, 0.6, 0.6, 0.3],
            },
            seed: 102,
        },
        SuiteSpec {
            name: "delicious-3d",
            dims: vec![4160, 132_000, 15_600],
            base_nnz: 400_000,
            kind: GenKind::PowerLaw {
                skews: vec![1.2, 2.0, 0.0],
            },
            seed: 103,
        },
        SuiteSpec {
            // Longest mode (1) heavily skewed: excluding it leaves a
            // high-entropy prefix, so its fibers are the *shortest* —
            // the §II-E mode-switch motivator (real delicious-4d has
            // average fiber 1.5 on the 17M mode vs 3 on the 2M mode).
            name: "delicious-4d",
            dims: vec![4160, 132_000, 15_600, 16],
            base_nnz: 400_000,
            kind: GenKind::PowerLaw {
                skews: vec![1.2, 2.0, 0.0, 0.4],
            },
            seed: 104,
        },
        SuiteSpec {
            name: "enron",
            dims: vec![750, 750, 30_000, 128],
            base_nnz: 300_000,
            kind: GenKind::PowerLaw {
                skews: vec![1.0, 1.0, 0.7, 0.5],
            },
            seed: 105,
        },
        SuiteSpec {
            name: "flickr-3d",
            dims: vec![2500, 219_000, 15_600],
            base_nnz: 350_000,
            kind: GenKind::PowerLaw {
                skews: vec![1.2, 0.0, 0.6],
            },
            seed: 106,
        },
        SuiteSpec {
            name: "flickr-4d",
            dims: vec![2500, 219_000, 15_600, 92],
            base_nnz: 350_000,
            kind: GenKind::PowerLaw {
                skews: vec![1.2, 0.0, 0.6, 0.4],
            },
            seed: 107,
        },
        SuiteSpec {
            // Nearly-unique (i, j) pairs: memoization buys nothing.
            name: "freebase_music",
            dims: vec![90_000, 90_000, 166],
            base_nnz: 350_000,
            kind: GenKind::PowerLaw {
                skews: vec![0.4, 0.4, 0.5],
            },
            seed: 108,
        },
        SuiteSpec {
            name: "freebase_sampled",
            dims: vec![150_000, 150_000, 533],
            base_nnz: 350_000,
            kind: GenKind::PowerLaw {
                skews: vec![0.4, 0.4, 0.5],
            },
            seed: 109,
        },
        SuiteSpec {
            name: "lbnl-network",
            dims: vec![500, 1000, 500, 1000, 54_000],
            base_nnz: 150_000,
            kind: GenKind::PowerLaw {
                skews: vec![0.9, 0.9, 0.9, 0.9, 0.4],
            },
            seed: 110,
        },
        SuiteSpec {
            name: "nell-1",
            dims: vec![23_000, 16_000, 195_000],
            base_nnz: 400_000,
            kind: GenKind::PowerLaw {
                skews: vec![0.9, 0.9, 0.3],
            },
            seed: 111,
        },
        SuiteSpec {
            // Long fibers / heavy reuse — the slow-leaf-MTTV case where
            // STeF2's second CSF pays off.
            name: "nell-2",
            dims: vec![6000, 4500, 14_500],
            base_nnz: 400_000,
            kind: GenKind::Clustered {
                clusters: 48,
                spread: 70,
            },
            seed: 112,
        },
        SuiteSpec {
            name: "nips",
            dims: vec![2000, 3000, 14_000, 17],
            base_nnz: 200_000,
            kind: GenKind::PowerLaw {
                skews: vec![0.7, 0.7, 0.7, 0.2],
            },
            seed: 113,
        },
        SuiteSpec {
            // Small dense modes: saving the biggest partial hurts (§IV-A).
            name: "uber",
            dims: vec![183, 24, 1000, 2000],
            base_nnz: 250_000,
            kind: GenKind::PowerLaw {
                skews: vec![0.5, 0.2, 0.7, 0.7],
            },
            seed: 114,
        },
        SuiteSpec {
            // Length-2 mode becomes the CSF root: 2 slices, skewed.
            name: "vast-2015-mc1-3d",
            dims: vec![82_000, 5500, 2],
            base_nnz: 400_000,
            kind: GenKind::SplitRoot {
                hot_mode: 2,
                hot: 0.85,
                skews: vec![0.5, 0.5, 0.0],
            },
            seed: 115,
        },
        SuiteSpec {
            name: "vast-2015-mc1-5d",
            dims: vec![82_000, 5500, 2, 100, 89],
            base_nnz: 400_000,
            kind: GenKind::SplitRoot {
                hot_mode: 2,
                hot: 0.85,
                skews: vec![0.5, 0.5, 0.0, 0.3, 0.3],
            },
            seed: 116,
        },
    ]
}

/// Generates one suite tensor by name, or `None` for an unknown name.
pub fn suite_tensor(name: &str, scale: SuiteScale) -> Option<CooTensor> {
    paper_suite()
        .into_iter()
        .find(|s| s.name == name)
        .map(|s| s.generate(scale))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sptensor::{build_csf, sort_modes_by_length, TensorStats};

    #[test]
    fn suite_has_all_sixteen_entries() {
        let suite = paper_suite();
        assert_eq!(suite.len(), 16);
        let mut names: Vec<_> = suite.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 16, "names must be unique");
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(suite_tensor("not-a-tensor", SuiteScale::Tiny).is_none());
    }

    #[test]
    fn tiny_scale_generates_quickly_and_correctly() {
        let t = suite_tensor("uber", SuiteScale::Tiny).unwrap();
        assert_eq!(t.dims(), &[183, 24, 1000, 2000]);
        assert!(t.nnz() >= 500);
    }

    #[test]
    fn vast_analogue_keeps_two_root_slices() {
        let t = suite_tensor("vast-2015-mc1-3d", SuiteScale::Tiny).unwrap();
        let order = sort_modes_by_length(t.dims());
        assert_eq!(order[0], 2, "length-2 mode should sort to the root");
        let csf = build_csf(&t, &order);
        let stats = TensorStats::from_csf(&csf, t.dims());
        assert_eq!(stats.root_slices, 2);
        assert!(
            stats.slice_imbalance > 1.3,
            "imbalance {} should reflect the hot/cold split",
            stats.slice_imbalance
        );
    }

    #[test]
    fn freebase_analogue_has_nearly_unique_pairs() {
        let t = suite_tensor("freebase_music", SuiteScale::Tiny).unwrap();
        let order = sort_modes_by_length(t.dims());
        let csf = build_csf(&t, &order);
        let d = csf.ndim();
        // Fibers at the level above the leaves ≈ nnz means memoizing the
        // largest partial is as big as the tensor itself.
        let ratio = csf.nfibers(d - 2) as f64 / csf.nnz() as f64;
        assert!(ratio > 0.7, "pair uniqueness ratio {ratio}");
    }

    #[test]
    fn delicious_4d_longest_mode_has_short_fibers() {
        let t = suite_tensor("delicious-4d", SuiteScale::Tiny).unwrap();
        // Average fiber length along a mode = nnz / (# distinct prefixes
        // excluding that mode). Compare the two longest modes by putting
        // each at the leaf of a CSF and reading the leaf fanout.
        let fiber_len = |leaf_mode: usize| {
            let mut order: Vec<usize> = (0..t.ndim()).filter(|&m| m != leaf_mode).collect();
            order.push(leaf_mode);
            let csf = build_csf(&t, &order);
            csf.nnz() as f64 / csf.nfibers(t.ndim() - 2) as f64
        };
        let longest = 1; // 132K mode
        let second = 2; // 15.6K mode
        assert!(
            fiber_len(longest) < fiber_len(second),
            "longest mode fibers ({:.2}) should be shorter than second-longest ({:.2})",
            fiber_len(longest),
            fiber_len(second)
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = suite_tensor("nips", SuiteScale::Tiny).unwrap();
        let b = suite_tensor("nips", SuiteScale::Tiny).unwrap();
        assert_eq!(a.nnz(), b.nnz());
        assert_eq!(a.values(), b.values());
    }

    #[test]
    fn scales_are_ordered() {
        let spec = &paper_suite()[13]; // uber
        let tiny = spec.generate(SuiteScale::Tiny);
        let small = spec.generate(SuiteScale::Small);
        assert!(tiny.nnz() < small.nnz());
    }
}
