//! Edge-case batteries for the MTTKRP kernels and the engine: extreme
//! shapes, degenerate schedules, deep tensors, and configuration
//! cross-products that the unit tests don't sweep.

use linalg::{assert_mat_approx_eq, Mat};
use sptensor::CooTensor;
use stef_core::kernels::ResolvedAccum;
use stef_core::{
    AccumStrategy, LoadBalance, MemoPolicy, ModeSwitchPolicy, MttkrpEngine, Stef, StefOptions,
};

fn factors_for(dims: &[usize], r: usize, seed: u64) -> Vec<Mat> {
    let mut x = seed | 1;
    dims.iter()
        .map(|&n| {
            Mat::from_fn(n, r, |_, _| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((x >> 35) % 1000) as f64 / 500.0 - 1.0
            })
        })
        .collect()
}

fn check_all_modes(t: &CooTensor, opts: StefOptions, seed: u64) {
    let rank = opts.rank;
    let mut engine = Stef::prepare(t, opts);
    let factors = factors_for(t.dims(), rank, seed);
    for mode in engine.sweep_order() {
        let got = engine.mttkrp(&factors, mode);
        let expect = t.mttkrp_reference(&factors, mode);
        assert_mat_approx_eq(&got, &expect, 1e-9);
    }
}

#[test]
fn single_nonzero_tensor() {
    let mut t = CooTensor::new(vec![5, 6, 7, 8]);
    t.push(&[4, 5, 6, 7], 3.5);
    check_all_modes(&t, StefOptions::new(3), 1);
}

#[test]
fn single_root_slice() {
    // Everything under one slice: thread ranges all split a single node.
    let mut t = CooTensor::new(vec![50, 10, 10]);
    for j in 0..10u32 {
        for k in 0..10u32 {
            t.push(&[3, j, k], (j + k) as f64 + 0.5);
        }
    }
    // Force the 50-length mode to the root by disabling reordering and
    // permuting so the long mode sorts first anyway.
    let mut opts = StefOptions::new(4);
    opts.num_threads = 8;
    opts.memo = MemoPolicy::SaveAll;
    check_all_modes(&t, opts, 2);
}

#[test]
fn one_long_fiber() {
    // A single (i, j) fiber holding every non-zero: the leaf level is
    // one contiguous run split across all threads.
    let mut t = CooTensor::new(vec![4, 4, 512]);
    for l in 0..512u32 {
        t.push(&[2, 1, l], 1.0 + (l % 7) as f64 * 0.25);
    }
    let mut opts = StefOptions::new(5);
    opts.num_threads = 7;
    opts.memo = MemoPolicy::SaveAll;
    check_all_modes(&t, opts, 3);
}

#[test]
fn fully_dense_small_tensor() {
    let mut t = CooTensor::new(vec![6, 5, 4]);
    for i in 0..6u32 {
        for j in 0..5u32 {
            for k in 0..4u32 {
                t.push(&[i, j, k], (i * 20 + j * 4 + k) as f64 * 0.1 + 0.1);
            }
        }
    }
    for memo in [MemoPolicy::SaveAll, MemoPolicy::SaveNone] {
        let mut opts = StefOptions::new(4);
        opts.num_threads = 5;
        opts.memo = memo;
        check_all_modes(&t, opts, 4);
    }
}

#[test]
fn six_and_seven_mode_tensors() {
    for d in [6usize, 7] {
        let dims: Vec<usize> = (0..d).map(|m| 3 + m).collect();
        let mut t = CooTensor::new(dims.clone());
        let mut x = 11u64;
        let mut coord = vec![0u32; d];
        for _ in 0..400 {
            for (c, &dim) in coord.iter_mut().zip(&dims) {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *c = ((x >> 33) % dim as u64) as u32;
            }
            t.push(&coord, ((x >> 40) % 5) as f64 + 0.5);
        }
        t.sort_dedup();
        let mut opts = StefOptions::new(2);
        opts.num_threads = 4;
        check_all_modes(&t, opts, 5);
    }
}

#[test]
fn rank_one_and_large_rank() {
    let mut t = CooTensor::new(vec![12, 9, 7]);
    let mut x = 13u64;
    let mut coord = [0u32; 3];
    for _ in 0..250 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        coord[0] = ((x >> 20) % 12) as u32;
        coord[1] = ((x >> 30) % 9) as u32;
        coord[2] = ((x >> 40) % 7) as u32;
        t.push(&coord, 1.0);
    }
    t.sort_dedup();
    for rank in [1usize, 96] {
        let mut opts = StefOptions::new(rank);
        opts.num_threads = 3;
        opts.memo = MemoPolicy::SaveAll;
        check_all_modes(&t, opts, 6);
    }
}

#[test]
fn atomic_equals_privatized_for_every_memo_policy() {
    let mut t = CooTensor::new(vec![10, 14, 12, 6]);
    let mut x = 17u64;
    let mut coord = [0u32; 4];
    for _ in 0..700 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        coord[0] = ((x >> 18) % 10) as u32;
        coord[1] = ((x >> 28) % 14) as u32;
        coord[2] = ((x >> 38) % 12) as u32;
        coord[3] = ((x >> 48) % 6) as u32;
        t.push(&coord, ((x >> 54) % 4) as f64 + 0.5);
    }
    t.sort_dedup();
    let factors = factors_for(t.dims(), 3, 7);
    for memo in [
        MemoPolicy::SaveAll,
        MemoPolicy::SaveNone,
        MemoPolicy::DataMovementModel,
    ] {
        let mut results = Vec::new();
        for accum in [AccumStrategy::Privatized, AccumStrategy::Atomic] {
            let mut opts = StefOptions::new(3);
            opts.num_threads = 6;
            opts.memo = memo.clone();
            opts.accum = accum;
            let mut engine = Stef::prepare(&t, opts);
            let outs: Vec<Mat> = engine
                .sweep_order()
                .into_iter()
                .map(|m| engine.mttkrp(&factors, m))
                .collect();
            results.push(outs);
        }
        for (a, b) in results[0].iter().zip(&results[1]) {
            assert_mat_approx_eq(a, b, 1e-9);
        }
    }
}

#[test]
fn slice_schedule_with_memoization() {
    // The AdaTM combination: slice scheduling must still produce correct
    // partial stores (boundary machinery degenerates, not breaks).
    let mut t = CooTensor::new(vec![7, 30, 25]);
    let mut x = 19u64;
    let mut coord = [0u32; 3];
    for _ in 0..900 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        coord[0] = ((x >> 20) % 7) as u32;
        coord[1] = ((x >> 30) % 30) as u32;
        coord[2] = ((x >> 40) % 25) as u32;
        t.push(&coord, ((x >> 50) % 6) as f64 * 0.5 + 0.25);
    }
    t.sort_dedup();
    let mut opts = StefOptions::new(4);
    opts.num_threads = 5;
    opts.load_balance = LoadBalance::SliceBased;
    opts.memo = MemoPolicy::SaveAll;
    check_all_modes(&t, opts, 8);
}

#[test]
fn mode_switch_always_with_memoization() {
    let mut t = CooTensor::new(vec![9, 11, 13, 5]);
    let mut x = 23u64;
    let mut coord = [0u32; 4];
    for _ in 0..600 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        coord[0] = ((x >> 18) % 9) as u32;
        coord[1] = ((x >> 28) % 11) as u32;
        coord[2] = ((x >> 38) % 13) as u32;
        coord[3] = ((x >> 48) % 5) as u32;
        t.push(&coord, 0.5 + ((x >> 54) % 3) as f64);
    }
    t.sort_dedup();
    let mut opts = StefOptions::new(3);
    opts.num_threads = 4;
    opts.mode_switch = ModeSwitchPolicy::Always;
    opts.memo = MemoPolicy::SaveAll;
    check_all_modes(&t, opts, 9);
}

#[test]
fn negative_values_are_fine() {
    let mut t = CooTensor::new(vec![8, 8, 8]);
    let mut x = 29u64;
    let mut coord = [0u32; 3];
    for _ in 0..300 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        coord[0] = ((x >> 20) % 8) as u32;
        coord[1] = ((x >> 30) % 8) as u32;
        coord[2] = ((x >> 40) % 8) as u32;
        t.push(&coord, ((x >> 50) % 9) as f64 - 4.0);
    }
    t.sort_dedup();
    let mut opts = StefOptions::new(3);
    opts.memo = MemoPolicy::SaveAll;
    check_all_modes(&t, opts, 10);
}

#[test]
fn resolved_accum_is_exercised_by_auto_cap() {
    // Tiny privatize cap forces the atomic path through Auto.
    let mut t = CooTensor::new(vec![8, 2000, 9]);
    let mut x = 31u64;
    let mut coord = [0u32; 3];
    for _ in 0..500 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        coord[0] = ((x >> 20) % 8) as u32;
        coord[1] = ((x >> 30) % 2000) as u32;
        coord[2] = ((x >> 42) % 9) as u32;
        t.push(&coord, 1.0);
    }
    t.sort_dedup();
    let mut opts = StefOptions::new(8);
    opts.num_threads = 8;
    opts.privatize_cap_bytes = 1; // force Atomic under Auto
    check_all_modes(&t, opts.clone(), 11);
    // Sanity: the enum really resolves to Atomic with this cap.
    assert_eq!(
        format!("{:?}", ResolvedAccum::Atomic),
        "Atomic",
        "marker so the import is used"
    );
}
