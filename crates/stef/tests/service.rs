//! Service soak: concurrent HTTP clients submitting refits (some
//! fault-injected) and querying factors while the daemon runs, then a
//! graceful drain. Exercises the full robustness surface in-process:
//! retry ladder under injected transients, terminal failures degrading
//! (not removing) served models, the read path staying available
//! through concurrent refits, and a clean drain report at the end.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use stef_core::{
    outcome_hook, CancelToken, EngineFactory, Fault, FaultyEngine, MttkrpEngine, ReferenceEngine,
    ServeConfig, Server, SnapshotStore, StefError, Supervisor, SupervisorConfig, TensorLoader,
};
use workloads::power_law_tensor;

/// Seed that triggers a one-shot transient fault on the job's first
/// attempt (the retry ladder must absorb it). NOT the JobSpec default
/// (42) — the injection must only hit the job that asks for it.
const TRANSIENT_SEED: u64 = 4242;
/// Seed whose engine refuses to build with a non-retryable error on
/// every attempt — a terminal failure no retry can outrun. (An
/// injected NaN would NOT do here: the driver's recovery subsystem
/// heals non-finite outputs and the job completes.)
const POISON_SEED: u64 = 666;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("stef-service-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn loader() -> TensorLoader {
    Arc::new(|spec: &str| {
        // "pl:<d0>x<d1>x<d2>:<nnz>:<seed>"
        let parts: Vec<&str> = spec.split(':').collect();
        if parts.len() != 4 || parts[0] != "pl" {
            return Err(StefError::Input(format!("bad test spec '{spec}'")));
        }
        let dims: Vec<usize> = parts[1]
            .split('x')
            .map(|t| t.parse().map_err(|_| StefError::Input("bad dim".into())))
            .collect::<Result<_, _>>()?;
        let nnz = parts[2]
            .parse()
            .map_err(|_| StefError::Input("bad nnz".into()))?;
        let seed = parts[3]
            .parse()
            .map_err(|_| StefError::Input("bad seed".into()))?;
        let skews = vec![0.5; dims.len()];
        Ok(power_law_tensor(&dims, nnz, &skews, seed))
    })
}

/// Engine factory keyed on the job's *seed* (stable under any client
/// interleaving, unlike job ids): `TRANSIENT_SEED` injects a retryable
/// panic on attempt 1, `POISON_SEED` fails engine construction with a
/// non-retryable error.
fn faulty_factory() -> EngineFactory {
    Arc::new(|spec, tensor, token, at| {
        if spec.seed == POISON_SEED {
            return Err(StefError::Input("injected poison: engine refuses to build".into()));
        }
        let engine =
            Box::new(ReferenceEngine::new(tensor.clone())) as Box<dyn MttkrpEngine>;
        if spec.seed == TRANSIENT_SEED && at.attempt == 1 {
            return Ok(Box::new(
                FaultyEngine::new(engine, vec![Fault::TransientErrorOnce { at: 1 }])
                    .with_cancel(token.clone()),
            ));
        }
        Ok(engine)
    })
}

fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> Result<String, String> {
    let mut s = TcpStream::connect(addr).map_err(|e| e.to_string())?;
    s.set_read_timeout(Some(Duration::from_secs(10))).ok();
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: soak\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    s.write_all(req.as_bytes()).map_err(|e| e.to_string())?;
    let mut response = String::new();
    s.read_to_string(&mut response).map_err(|e| e.to_string())?;
    let status = response
        .split_whitespace()
        .nth(1)
        .ok_or_else(|| format!("no status line in {response:?}"))?;
    let payload = response.split("\r\n\r\n").nth(1).unwrap_or_default();
    Ok(format!("{status} {payload}"))
}

/// Polls `/jobs/<id>` until its status matches `want` ("done" /
/// "failed"), panicking on the opposite terminal state.
fn await_status(addr: SocketAddr, id: u64, want: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let r = http(addr, "GET", &format!("/jobs/{id}"), "").expect("poll");
        if r.contains(&format!("\"status\":\"{want}\"")) {
            return r;
        }
        for terminal in ["done", "failed", "shed"] {
            assert!(
                terminal == want || !r.contains(&format!("\"status\":\"{terminal}\"")),
                "job {id}: wanted {want}, got {r}"
            );
        }
        assert!(Instant::now() < deadline, "job {id} never reached {want}: {r}");
        std::thread::sleep(Duration::from_millis(15));
    }
}

fn submit(addr: SocketAddr, line: &str) -> u64 {
    let r = http(addr, "POST", "/jobs", line).expect("submit");
    assert!(r.starts_with("200"), "submit '{line}' -> {r}");
    r.split("\"id\":")
        .nth(1)
        .and_then(|t| t.split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|t| t.parse().ok())
        .expect("job id in response")
}

#[test]
fn concurrent_clients_with_fault_injection_soak() {
    let dir = tmp_dir("soak");
    let store = Arc::new(SnapshotStore::new());
    let mut scfg = SupervisorConfig::new(dir.join("soak.journal"), dir.join("ckpts"));
    scfg.max_concurrent = 2;
    scfg.max_retries = 2;
    scfg.backoff_base = Duration::from_millis(1);
    scfg.backoff_cap = Duration::from_millis(4);
    scfg.on_outcome = Some(outcome_hook(Arc::clone(&store)));
    let sup = Arc::new(Supervisor::new(scfg, loader(), faulty_factory()).unwrap());
    let stop = CancelToken::new();
    let mut cfg = ServeConfig::new("127.0.0.1:0");
    cfg.handler_threads = 4;
    cfg.drain_grace = Duration::from_secs(5);
    let server = Server::bind(cfg, sup, Arc::clone(&store), stop.clone()).unwrap();
    let addr = server.local_addr();

    let soaking = AtomicBool::new(true);
    let probe_errors = AtomicU64::new(0);
    let report = std::thread::scope(|s| {
        let runner = s.spawn(|| server.run());

        // Background prober: the service must answer metadata queries
        // at every moment of the soak, refits or not.
        let prober = s.spawn(|| {
            let mut probes = 0u64;
            while soaking.load(Ordering::Relaxed) {
                for path in ["/healthz", "/models"] {
                    match http(addr, "GET", path, "") {
                        Ok(r) if r.starts_with("200") => {}
                        _ => {
                            probe_errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    probes += 1;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            probes
        });

        // Client 0: clean refit, then a poisoned one — the model must
        // degrade to a stale (but still answering) snapshot.
        let degraded = s.spawn(move || {
            let id = submit(addr, "pl:14x12x10:400:3 rank=3 iters=4 tol=0 seed=1 model=m0");
            await_status(addr, id, "done");
            let meta = http(addr, "GET", "/models/m0", "").unwrap();
            assert!(meta.contains("\"stale\":false"), "{meta}");

            let id = submit(
                addr,
                &format!("pl:14x12x10:400:5 rank=3 iters=4 tol=0 seed={POISON_SEED} model=m0"),
            );
            await_status(addr, id, "failed");
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                let meta = http(addr, "GET", "/models/m0", "").unwrap();
                if meta.contains("\"stale\":true") {
                    assert!(meta.contains("\"generation\":1"), "{meta}");
                    assert!(meta.contains("refit failed"), "{meta}");
                    break;
                }
                assert!(Instant::now() < deadline, "m0 never went stale: {meta}");
                std::thread::sleep(Duration::from_millis(10));
            }
            // Degraded serving: last good factors still answer.
            let row = http(addr, "GET", "/models/m0/factor/0/2", "").unwrap();
            assert!(row.starts_with("200"), "{row}");
            assert!(row.contains("\"stale\":true"), "{row}");
        });

        // Client 1: transient fault on attempt 1; the retry ladder
        // must finish the job (attempts 2) and publish a fresh model.
        let retried = s.spawn(move || {
            let id = submit(
                addr,
                &format!("pl:14x12x10:400:6 rank=3 iters=4 tol=0 seed={TRANSIENT_SEED} model=m1"),
            );
            let r = await_status(addr, id, "done");
            assert!(r.contains("\"attempts\":2"), "{r}");
            let meta = http(addr, "GET", "/models/m1", "").unwrap();
            assert!(meta.contains("\"stale\":false"), "{meta}");
        });

        // Clients 2..4: clean job streams onto their own models, with
        // reads interleaved between submissions.
        let clean: Vec<_> = (2..4)
            .map(|c| {
                s.spawn(move || {
                    for round in 0..3u64 {
                        let id = submit(
                            addr,
                            &format!(
                                "pl:14x12x10:400:{} rank=3 iters=4 tol=0 seed=1 model=m{c}",
                                100 + c as u64 * 10 + round
                            ),
                        );
                        await_status(addr, id, "done");
                        let meta = http(addr, "GET", &format!("/models/m{c}"), "").unwrap();
                        assert!(
                            meta.contains(&format!("\"generation\":{}", round + 1)),
                            "{meta}"
                        );
                        let top = http(
                            addr,
                            "POST",
                            &format!("/models/m{c}/topk"),
                            "mode=0 target=2 k=3 rows=0,5",
                        )
                        .unwrap();
                        assert!(top.starts_with("200"), "{top}");
                    }
                })
            })
            .collect();

        // Join every client BEFORE asserting: a client panic must not
        // strand the runner/prober threads (that would hang the whole
        // harness with the failure message captured inside it).
        let mut clients = vec![("degraded", degraded), ("retried", retried)];
        clients.extend(clean.into_iter().map(|h| ("clean", h)));
        let mut failures: Vec<String> = Vec::new();
        for (name, h) in clients {
            if let Err(p) = h.join() {
                let msg = p
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "non-string panic payload".into());
                failures.push(format!("{name}: {msg}"));
            }
        }
        soaking.store(false, Ordering::Relaxed);
        let probes = prober.join().unwrap();
        // Scrape /metrics while still serving (every job is terminal —
        // the clients joined above): the registry must agree with the
        // drain report the runner is about to produce.
        let metrics = http(addr, "GET", "/metrics", "").expect("scrape");
        assert!(metrics.starts_with("200"), "{metrics}");
        stop.cancel();
        let report = runner.join().unwrap();
        assert!(failures.is_empty(), "client failures: {failures:#?}");
        assert!(probes > 0, "prober never ran");
        (report, metrics)
    });
    let (report, metrics) = report;

    assert_eq!(
        probe_errors.load(Ordering::Relaxed),
        0,
        "metadata queries failed during the soak"
    );
    // 1 clean + 1 transient-retried + 2 clients × 3 rounds = 8 done,
    // 1 poisoned terminal failure.
    assert_eq!(report.done(), 8, "{:?}", report.outcomes);
    assert_eq!(report.failed(), 1, "{:?}", report.outcomes);
    assert_eq!(store.installs(), 8);

    // The mid-soak scrape's counters must match the drain report —
    // the registry and the journal are two views of the same events.
    if stef_core::metrics::COMPILED {
        let text = metrics.strip_prefix("200 ").unwrap_or(&metrics);
        let samples = stef_core::parse_prometheus_text(text).expect("valid exposition");
        let total = |name: &str, want: &[(&str, &str)]| -> f64 {
            samples
                .iter()
                .filter(|s| s.name == name && want.iter().all(|(k, v)| s.label(k) == Some(v)))
                .map(|s| s.value)
                .sum()
        };
        assert_eq!(
            total("stef_jobs_completed_total", &[("outcome", "done")]) as usize,
            report.done(),
            "{text}"
        );
        assert_eq!(
            total("stef_jobs_completed_total", &[("outcome", "failed")]) as usize,
            report.failed(),
            "{text}"
        );
        assert_eq!(total("stef_jobs_shed_total", &[]) as usize, report.shed(), "{text}");
        // The transient-fault job retried at least once.
        assert!(total("stef_job_retries_total", &[]) >= 1.0, "{text}");
        assert_eq!(total("stef_snapshot_generations", &[]) as u64, store.installs());
        assert!(total("stef_http_requests_total", &[]) > 0.0, "{text}");
        assert!(total("stef_mttkrp_seconds_count", &[]) > 0.0, "{text}");
        // Drift gauges: present for every audited (engine, mode), and
        // finite — the continuous §IV-C audit must never go NaN/inf.
        for s in samples.iter().filter(|s| s.name == "stef_model_drift_rel_err") {
            assert!(s.value.is_finite(), "drift gauge not finite: {:?}", s.labels);
        }
    }

    // Every published model still answers after the drain returned.
    let names = store.models();
    let counts: HashMap<&str, bool> = names
        .iter()
        .map(|n| (n.as_str(), store.get(n).is_some()))
        .collect();
    assert_eq!(counts.len(), 4, "{names:?}");
    assert!(counts.values().all(|&present| present));
    std::fs::remove_dir_all(&dir).ok();
}
