//! User-facing configuration of the STeF engine.
//!
//! The defaults reproduce the paper's STeF: nnz-balanced scheduling,
//! model-chosen memoization, model-chosen last-two-mode switching. Every
//! knob exists because the paper's ablation study (Fig. 6) turns exactly
//! that optimization off — plus the [`Runtime`] knob, which selects the
//! execution substrate (persistent pool vs scoped spawn) for A/B
//! benchmarking of the runtime layer itself.

pub use crate::runtime::Runtime;
pub use linalg::simd::{SimdPath, SimdPolicy};

/// How non-zeros are distributed across logical threads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadBalance {
    /// The paper's fine-grained scheme (Algorithm 3): equal leaf counts
    /// per thread, boundary fibers replicated.
    NnzBalanced,
    /// Prior work's scheme: contiguous root slices per thread, balanced
    /// greedily on per-slice nnz. Used by the Fig. 6 "work distribution
    /// off" ablation and by the SPLATT/AdaTM baselines.
    SliceBased,
}

/// Which partially contracted tensors `P^(i)` to save during the mode-0
/// MTTKRP.
#[derive(Clone, Debug, PartialEq)]
pub enum MemoPolicy {
    /// Minimize the data-movement model of §IV-C (the paper's choice).
    DataMovementModel,
    /// Memoize every level `1..d-2` (Fig. 6 ablation "save all").
    SaveAll,
    /// Memoize nothing (Fig. 6 ablation "save none").
    SaveNone,
    /// Minimize an arithmetic-operation-count model, ignoring data
    /// movement — the AdaTM-style objective.
    OpCountModel,
    /// Explicit per-level choice; index `i` controls `P^(i)`. Entries
    /// outside `1..d-2` are ignored.
    Fixed(Vec<bool>),
}

/// Whether to consider swapping the CSF's last two levels (§II-E).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModeSwitchPolicy {
    /// Run Algorithm 9 and let the data-movement model decide.
    ModelChosen,
    /// Keep the mode-length order (baselines; part of Fig. 6 ablation).
    Never,
    /// Always swap.
    Always,
    /// Deliberately take the opposite of the model's choice — the Fig. 6
    /// "switch mode order off" ablation.
    OppositeOfModel,
}

/// How scatter conflicts on the output of non-root modes are resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccumStrategy {
    /// Let the cost model (`model::choose_accum`) price privatization
    /// against atomics per level; privatization is additionally subject
    /// to the [`StefOptions::privatize_cap_bytes`] memory cap.
    Auto,
    /// One output copy per logical thread, reduced after the join
    /// (paper Algorithm 4, lines 13–14).
    Privatized,
    /// A single shared output updated with atomic adds.
    Atomic,
}

/// Which MTTKRP engine backs the decomposition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum EngineChoice {
    /// The memoized CSF engine ([`crate::Stef`]). The default — it is
    /// the paper's configuration and the right answer for tensors with
    /// fiber reuse.
    #[default]
    Csf,
    /// The adaptive linearized engine ([`crate::AltoEngine`]):
    /// bit-interleaved indices, no fiber structure, privatized or
    /// atomic scatter. Wins on irregular hypersparse tensors whose
    /// fibers barely collapse.
    Alto,
    /// Prepare the CSF plan, price both engines with the §IV-C
    /// data-movement model, and keep the cheaper one
    /// (`engine::build_engine`).
    Auto,
}

impl EngineChoice {
    /// Parses `csf` / `alto` / `auto` (case-insensitive).
    pub fn parse(s: &str) -> Option<EngineChoice> {
        match s.to_ascii_lowercase().as_str() {
            "csf" => Some(EngineChoice::Csf),
            "alto" => Some(EngineChoice::Alto),
            "auto" => Some(EngineChoice::Auto),
            _ => None,
        }
    }

    /// The canonical flag spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            EngineChoice::Csf => "csf",
            EngineChoice::Alto => "alto",
            EngineChoice::Auto => "auto",
        }
    }
}

/// Which MTTKRP kernel implementation the engine runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum KernelPath {
    /// The allocation-free, monomorphized, iterative kernels with
    /// rank-blocked row primitives (`kernels`). The default.
    #[default]
    Vectorized,
    /// The original recursive, closure-based kernels kept verbatim in
    /// `kernels_legacy` — the A/B baseline for the perf trajectory.
    Legacy,
}

/// Full engine configuration.
#[derive(Clone, Debug)]
pub struct StefOptions {
    /// Decomposition rank `R`.
    pub rank: usize,
    /// Logical thread count; 0 means "resolve a default": the
    /// `STEF_NUM_THREADS` env var if set, else `RAYON_NUM_THREADS`
    /// (kept from the rayon-backed substrate so existing caps still
    /// apply), else all hardware threads.
    pub num_threads: usize,
    /// Cache size parameter of the data-movement model, in bytes
    /// (paper §IV-C `cachesize`). Defaults to 16 MiB, a typical L3 share.
    pub cache_bytes: usize,
    /// Work distribution scheme.
    pub load_balance: LoadBalance,
    /// Memoization policy.
    pub memo: MemoPolicy,
    /// Last-two-mode switching policy.
    pub mode_switch: ModeSwitchPolicy,
    /// Output conflict strategy for non-root modes.
    pub accum: AccumStrategy,
    /// Memory cap (bytes) for privatized outputs under
    /// [`AccumStrategy::Auto`].
    pub privatize_cap_bytes: usize,
    /// Kernel implementation to run.
    pub kernel_path: KernelPath,
    /// Execution substrate for the parallel fan-outs: the persistent
    /// worker pool (default) or per-call scoped spawning (the A/B
    /// baseline).
    pub runtime: Runtime,
    /// Memory budget (bytes) for the engine's own arenas — memoized
    /// partials `P^(i)`, workspace scratch, privatized outputs. 0 means
    /// unlimited. When a configuration does not fit, the engine
    /// *degrades* (drops memoized tensors largest-first, then falls
    /// back from privatized to atomic accumulation), recording
    /// [`crate::DegradationEvent`]s; only a budget too small for even
    /// the minimal plan yields `StefError::BudgetExceeded`.
    pub memory_budget: usize,
    /// Cooperative cancellation token, installed on the engine's
    /// executor at preparation so every chunk claim observes it.
    pub cancel: Option<crate::runtime::CancelToken>,
    /// SIMD kernel-path policy, applied process-wide when the engine is
    /// prepared. [`SimdPolicy::Auto`] (the default) keeps the current
    /// selection — the `STEF_SIMD` env override or CPU detection at
    /// first use; [`SimdPolicy::Force`] pins a specific ISA for A/B
    /// benchmarking (an unavailable ISA degrades to the detected path
    /// with a warning).
    pub simd: linalg::simd::SimdPolicy,
    /// Engine selection: memoized CSF, linearized ALTO-style, or
    /// model-priced auto pick (only consulted by
    /// [`crate::engine::build_engine`]; constructing [`crate::Stef`] or
    /// [`crate::AltoEngine`] directly ignores it).
    pub engine: EngineChoice,
    /// NUMA worker-placement policy, defaulting to the `STEF_NUMA` env
    /// override (else `auto`). Under `auto` the pool pins each worker
    /// to its node's CPUs when more than one node is detected;
    /// single-node machines are never touched.
    pub numa: crate::numa::NumaPolicy,
}

/// Best-effort detection of the per-core cache the data-movement model
/// should assume: the L2 size from sysfs on Linux, else 16 MiB. (The
/// last-level cache is shared and often enormous relative to one
/// thread's working set; L2 is the per-core reuse window the §IV-C
/// `cachesize` parameter models best.)
pub fn detect_cache_bytes() -> usize {
    const FALLBACK: usize = 16 << 20;
    let path = "/sys/devices/system/cpu/cpu0/cache/index2/size";
    let Ok(text) = std::fs::read_to_string(path) else {
        return FALLBACK;
    };
    let text = text.trim();
    let (num, mult) = if let Some(k) = text.strip_suffix('K') {
        (k, 1024)
    } else if let Some(m) = text.strip_suffix('M') {
        (m, 1024 * 1024)
    } else {
        (text, 1)
    };
    num.parse::<usize>()
        .map(|n| n * mult)
        .unwrap_or(FALLBACK)
        .max(64 << 10)
}

impl StefOptions {
    /// The paper's STeF configuration at the given rank.
    pub fn new(rank: usize) -> Self {
        StefOptions {
            rank,
            num_threads: 0,
            cache_bytes: detect_cache_bytes(),
            load_balance: LoadBalance::NnzBalanced,
            memo: MemoPolicy::DataMovementModel,
            mode_switch: ModeSwitchPolicy::ModelChosen,
            accum: AccumStrategy::Auto,
            privatize_cap_bytes: 512 << 20,
            kernel_path: KernelPath::Vectorized,
            runtime: Runtime::default(),
            memory_budget: 0,
            cancel: None,
            simd: linalg::simd::SimdPolicy::Auto,
            engine: EngineChoice::default(),
            numa: crate::numa::NumaPolicy::from_env(),
        }
    }

    /// Resolved logical thread count: `num_threads`, or — when 0 — the
    /// `STEF_NUM_THREADS`/`RAYON_NUM_THREADS` env override, falling
    /// back to all hardware workers (`runtime::default_threads`).
    pub fn threads(&self) -> usize {
        if self.num_threads == 0 {
            crate::runtime::default_threads()
        } else {
            self.num_threads
        }
    }

    /// Resolved OS worker count for the engine's executor: honors
    /// `num_threads` (capped at hardware parallelism) instead of the
    /// process-global probe the old `sync::physical_workers` used.
    pub fn workers(&self) -> usize {
        crate::runtime::resolve_workers(self.num_threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_configuration() {
        let o = StefOptions::new(32);
        assert_eq!(o.rank, 32);
        assert_eq!(o.load_balance, LoadBalance::NnzBalanced);
        assert_eq!(o.memo, MemoPolicy::DataMovementModel);
        assert_eq!(o.mode_switch, ModeSwitchPolicy::ModelChosen);
    }

    #[test]
    fn engine_choice_parses_all_spellings() {
        for e in [EngineChoice::Csf, EngineChoice::Alto, EngineChoice::Auto] {
            assert_eq!(EngineChoice::parse(e.as_str()), Some(e));
            assert_eq!(EngineChoice::parse(&e.as_str().to_uppercase()), Some(e));
        }
        assert_eq!(EngineChoice::parse("taco"), None);
        assert_eq!(StefOptions::new(4).engine, EngineChoice::Csf);
    }

    #[test]
    fn detect_cache_is_sane() {
        let c = detect_cache_bytes();
        assert!(c >= 64 << 10, "cache {c} too small");
        assert!(c <= 1 << 32, "cache {c} absurd");
    }

    #[test]
    fn zero_threads_resolves_to_default() {
        let o = StefOptions::new(8);
        assert_eq!(o.threads(), crate::runtime::default_threads());
        let mut o2 = o.clone();
        o2.num_threads = 3;
        assert_eq!(o2.threads(), 3);
    }

    #[test]
    fn workers_honor_num_threads() {
        let hw = crate::runtime::hardware_workers();
        let o = StefOptions::new(8);
        assert_eq!(o.workers(), crate::runtime::resolve_workers(0));
        let mut o2 = o.clone();
        o2.num_threads = 1;
        assert_eq!(o2.workers(), 1, "explicit --threads 1 must mean 1 worker");
        o2.num_threads = 2;
        assert_eq!(o2.workers(), 2.min(hw));
    }
}
