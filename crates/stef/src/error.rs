//! The typed error hierarchy for STeF.
//!
//! Every fallible path in the crate — tensor ingestion, engine
//! preparation, the ALS loop, checkpointing — reports a [`StefError`]
//! instead of panicking, so callers (the CLI, long-running services, the
//! fault-injection harness) can distinguish bad input from numerical
//! failure from I/O trouble and react accordingly.

use crate::checkpoint::CheckpointError;
use linalg::solve::SolveError;
use sptensor::TnsError;

/// Anything that can go wrong inside stef-core.
#[derive(Debug)]
pub enum StefError {
    /// Invalid input to engine preparation or the ALS driver (zero rank,
    /// empty tensor, mismatched shapes, ...).
    Input(String),
    /// Tensor file ingestion failed.
    Tns(TnsError),
    /// A normal-equations solve failed beyond every recovery attempt.
    Solve {
        /// 1-based ALS iteration.
        iteration: usize,
        /// Mode being updated.
        mode: usize,
        source: SolveError,
    },
    /// Non-finite values survived the recovery ladder.
    NonFinite {
        /// 1-based ALS iteration (0 = before the first iteration).
        iteration: usize,
        /// Mode being updated, if mode-specific.
        mode: Option<usize>,
        /// What was non-finite ("MTTKRP output", "gram system", "fit", ...).
        what: &'static str,
    },
    /// The fit fell for `drops` consecutive iterations and recovery was
    /// disabled or already spent.
    Diverged {
        /// 1-based ALS iteration at which the run gave up.
        iteration: usize,
        /// Consecutive fit drops observed.
        drops: usize,
        /// The last fit value.
        last_fit: f64,
    },
    /// Checkpoint save or load failed.
    Checkpoint(CheckpointError),
    /// A worker thread panicked during a pool-dispatched fan-out. The
    /// pool isolated the panic (the join barrier resolved, the worker
    /// was healed) and the run was abandoned with this typed error; the
    /// same engine can run again on the healed pool.
    WorkerPanic {
        /// 1-based ALS iteration (0 = outside the iteration loop).
        iteration: usize,
        /// Mode being updated, if mode-specific.
        mode: Option<usize>,
        /// The recorded panic payload.
        message: String,
    },
    /// The run was cancelled cooperatively — Ctrl-C, an explicit
    /// [`crate::CancelToken::cancel`], or an expired `--timeout`
    /// deadline.
    Cancelled {
        /// 1-based ALS iteration at which cancellation was observed.
        iteration: usize,
        /// Whether an armed deadline (rather than an explicit cancel)
        /// triggered it.
        deadline: bool,
        /// Iteration of the checkpoint written on the way out, if any —
        /// the run is resumable from there.
        checkpoint_iteration: Option<usize>,
    },
    /// Even the minimal execution plan (no memoization, atomic
    /// accumulation) does not fit in `StefOptions::memory_budget`.
    BudgetExceeded {
        /// Bytes the minimal plan requires.
        required: usize,
        /// The configured budget.
        budget: usize,
    },
    /// A checkpoint or journal file declares a format this build cannot
    /// read (future version or foreign endianness). Unlike
    /// [`StefError::Checkpoint`]-wrapped corruption, the file is
    /// presumed intact — a newer build wrote it.
    CheckpointVersion {
        /// Version the file declares.
        found: u32,
        /// Newest version this build reads.
        supported: u32,
        /// Human-readable specifics (e.g. the offending endianness tag).
        detail: String,
    },
    /// The supervisor refused to admit a job: its predicted resource
    /// price does not fit the configured envelope alongside the jobs
    /// already outstanding. Shedding at admission keeps admitted jobs
    /// inside their envelope instead of letting everything thrash.
    Overloaded {
        /// Which envelope was exhausted ("memory" or "traffic").
        resource: &'static str,
        /// Predicted price of the rejected job, in the resource's units.
        required: f64,
        /// Aggregate price of the jobs already admitted and unfinished.
        outstanding: f64,
        /// The configured envelope.
        envelope: f64,
    },
    /// One or more jobs in a supervised batch ended in a terminal
    /// failure. The batch itself completed — every job has a journaled
    /// outcome — but the run as a whole cannot report success.
    BatchFailed {
        /// Jobs whose final journaled state is failed.
        failed: usize,
        /// Jobs in the batch.
        total: usize,
    },
}

impl std::fmt::Display for StefError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StefError::Input(msg) => write!(f, "invalid input: {msg}"),
            StefError::Tns(e) => write!(f, "tensor ingestion failed: {e}"),
            StefError::Solve {
                iteration,
                mode,
                source,
            } => write!(
                f,
                "normal-equations solve failed at iteration {iteration}, mode {mode}: {source}"
            ),
            StefError::NonFinite {
                iteration,
                mode: Some(mode),
                what,
            } => write!(
                f,
                "non-finite {what} at iteration {iteration}, mode {mode} (recovery exhausted)"
            ),
            StefError::NonFinite {
                iteration,
                mode: None,
                what,
            } => write!(
                f,
                "non-finite {what} at iteration {iteration} (recovery exhausted)"
            ),
            StefError::Diverged {
                iteration,
                drops,
                last_fit,
            } => write!(
                f,
                "fit diverged: dropped {drops} consecutive iterations \
                 (iteration {iteration}, last fit {last_fit:.6})"
            ),
            StefError::Checkpoint(e) => write!(f, "{e}"),
            StefError::WorkerPanic {
                iteration,
                mode: Some(mode),
                message,
            } => write!(
                f,
                "worker panic at iteration {iteration}, mode {mode} (pool healed): {message}"
            ),
            StefError::WorkerPanic {
                iteration,
                mode: None,
                message,
            } => write!(f, "worker panic at iteration {iteration} (pool healed): {message}"),
            StefError::Cancelled {
                iteration,
                deadline,
                checkpoint_iteration,
            } => {
                let why = if *deadline { "deadline expired" } else { "cancelled" };
                match checkpoint_iteration {
                    Some(cp) => write!(
                        f,
                        "{why} at iteration {iteration}; checkpoint written at iteration {cp} (resumable)"
                    ),
                    None => write!(f, "{why} at iteration {iteration}; no checkpoint written"),
                }
            }
            StefError::BudgetExceeded { required, budget } => write!(
                f,
                "memory budget exceeded: minimal plan needs {required} bytes, budget is {budget} bytes"
            ),
            StefError::CheckpointVersion {
                found,
                supported,
                detail,
            } => write!(
                f,
                "unreadable format version: file declares v{found}, this build reads up to v{supported} ({detail})"
            ),
            StefError::Overloaded {
                resource,
                required,
                outstanding,
                envelope,
            } => write!(
                f,
                "overloaded: job needs {required:.3e} {resource} units but {outstanding:.3e} of the \
                 {envelope:.3e} envelope is already committed (job shed, resubmit when load drains)"
            ),
            StefError::BatchFailed { failed, total } => {
                write!(f, "batch finished with {failed} of {total} jobs failed")
            }
        }
    }
}

impl std::error::Error for StefError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StefError::Tns(e) => Some(e),
            StefError::Solve { source, .. } => Some(source),
            StefError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TnsError> for StefError {
    fn from(e: TnsError) -> Self {
        StefError::Tns(e)
    }
}

impl From<CheckpointError> for StefError {
    fn from(e: CheckpointError) -> Self {
        match e {
            CheckpointError::Version {
                found,
                supported,
                detail,
            } => StefError::CheckpointVersion {
                found,
                supported,
                detail,
            },
            other => StefError::Checkpoint(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn displays_are_informative() {
        let e = StefError::Solve {
            iteration: 3,
            mode: 1,
            source: SolveError::Singular,
        };
        let s = e.to_string();
        assert!(s.contains("iteration 3") && s.contains("mode 1"), "{s}");
        assert!(e.source().is_some());

        let e = StefError::NonFinite {
            iteration: 2,
            mode: None,
            what: "fit",
        };
        assert!(e.to_string().contains("non-finite fit"));

        let e = StefError::Diverged {
            iteration: 9,
            drops: 3,
            last_fit: 0.5,
        };
        assert!(e.to_string().contains("3 consecutive"));
    }

    #[test]
    fn conversions_preserve_sources() {
        let tns = TnsError::NonFinite { line: 4 };
        let e: StefError = tns.into();
        assert!(matches!(e, StefError::Tns(TnsError::NonFinite { line: 4 })));
        assert!(e.source().is_some());

        let ck = CheckpointError::Corrupt {
            reason: "checksum".into(),
        };
        let e: StefError = ck.into();
        assert!(e.to_string().contains("corrupt checkpoint"));
    }

    #[test]
    fn version_errors_convert_to_their_own_variant() {
        let ck = CheckpointError::Version {
            found: 9,
            supported: 1,
            detail: "written by a newer build".into(),
        };
        let e: StefError = ck.into();
        match e {
            StefError::CheckpointVersion { found, supported, .. } => {
                assert_eq!((found, supported), (9, 1));
            }
            other => panic!("expected CheckpointVersion, got {other:?}"),
        }
    }

    #[test]
    fn overload_and_batch_displays_are_informative() {
        let e = StefError::Overloaded {
            resource: "memory",
            required: 2.0e9,
            outstanding: 7.5e9,
            envelope: 8.0e9,
        };
        let s = e.to_string();
        assert!(s.contains("overloaded") && s.contains("memory"), "{s}");

        let e = StefError::BatchFailed { failed: 2, total: 8 };
        assert!(e.to_string().contains("2 of 8"));
    }
}
