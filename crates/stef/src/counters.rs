//! Instrumented traffic counting: validate the §IV model against an
//! actual traversal.
//!
//! [`count_sweep`] walks the CSF exactly the way the kernels do — the
//! mode-0 saving pass plus every mode-`u` consumer — but instead of
//! doing arithmetic it *tallies* the element reads and writes the
//! traversal performs, using the same unit conventions as
//! [`crate::model::LevelProfile::raw_traffic`]: 2 index elements per
//! visited node, `R` factor elements per visited node, `R` per partial
//! row stored or loaded, reads and writes kept strictly separate.
//!
//! With the cache clamp disabled (`cache_elems = 0` makes every access a
//! miss) and a tensor whose root level is fully populated
//! (`m_0 = n_0`), the analytic [`crate::model::LevelProfile::raw_traffic`]
//! must equal this count **exactly** — the test below asserts it. That
//! pins the model implementation to the traversal it claims to describe,
//! which is the strongest check available short of hardware counters.

use crate::model::RawTraffic;
use sptensor::Csf;

pub use crate::runtime::{RuntimeCounters, WorkerCounters};

/// Per-mode and total counted traffic.
#[derive(Clone, Debug)]
pub struct CountedTraffic {
    /// Total element reads across the sweep.
    pub reads: f64,
    /// Total element writes across the sweep.
    pub writes: f64,
    /// Per-level `(reads, writes)` for each mode's MTTKRP, in level
    /// order (index 0 = the root/mode-0 pass).
    pub per_mode: Vec<(f64, f64)>,
}

impl CountedTraffic {
    /// Collapses into the model's [`RawTraffic`] shape.
    pub fn as_raw(&self) -> RawTraffic {
        RawTraffic {
            reads: self.reads,
            writes: self.writes,
        }
    }
}

/// Traffic of the mode-0 (root) saving pass alone: full traversal
/// storing the `save`-flagged partials. Returns `(reads, writes)` in
/// elements.
pub fn count_mode0(csf: &Csf, save: &[bool], rank: usize) -> (f64, f64) {
    let d = csf.ndim();
    let r = rank as f64;
    let mut reads = 0.0;
    let mut writes = 0.0;
    for l in 0..d {
        let m = csf.nfibers(l) as f64;
        reads += 2.0 * m; // index structure
        reads += m * r; // factor rows
        if save.get(l).copied().unwrap_or(false) {
            writes += m * r; // stored partial rows
        }
    }
    // Output rows (the paper charges the full matrix height n_0).
    writes += (csf.level_dims()[0] * rank) as f64;
    (reads, writes)
}

/// Traffic of one mode-`u` consumer pass (`1 <= u < d` in level
/// order). `saved_at` is the level whose memoized partial the pass
/// consumed — `None` means a full from-scratch traversal — so callers
/// can count the path *actually executed*, not just the planned one.
/// Returns `(reads, writes)` in elements.
pub fn count_modeu(csf: &Csf, u: usize, saved_at: Option<usize>, rank: usize) -> (f64, f64) {
    let d = csf.ndim();
    let r = rank as f64;
    let mut reads = 0.0;
    match saved_at {
        Some(k) => {
            // Traverse levels 0..=k; KRP factors above u, recompute
            // factors between u and k, partial rows at k.
            for l in 0..=k {
                reads += 2.0 * csf.nfibers(l) as f64;
            }
            for l in 0..u {
                reads += csf.nfibers(l) as f64 * r;
            }
            for l in u + 1..=k {
                reads += csf.nfibers(l) as f64 * r;
            }
            reads += csf.nfibers(k) as f64 * r;
        }
        None => {
            for l in 0..d {
                let m = csf.nfibers(l) as f64;
                reads += 2.0 * m + m * r;
            }
        }
    }
    let writes = csf.nfibers(u) as f64 * r;
    (reads, writes)
}

/// Traffic of one mode-`u` linearized (ALTO-style) MTTKRP pass: per
/// non-zero the kernel reads the packed index (`idx_elems` elements),
/// the value, and one row from each of the `d-1` input factors, and
/// updates one output row. Same raw (cache-oblivious) convention as
/// [`count_modeu`]; with the clamp disabled
/// (`cache_elems = 0`) this must equal
/// [`crate::model::AltoProfile::mode_traffic`] exactly — the test below
/// pins it. Returns `(reads, writes)` in elements.
pub fn count_alto_mode(nnz: usize, ndim: usize, idx_elems: usize, rank: usize) -> (f64, f64) {
    let n = nnz as f64;
    let r = rank as f64;
    let reads = n * (idx_elems as f64 + 1.0) + (ndim - 1) as f64 * n * r;
    let writes = n * r;
    (reads, writes)
}

/// Counts the traffic of one full MTTKRP sweep (mode 0 storing the
/// `save`-flagged partials, then every mode `1..d` consuming them) with
/// the paper's unit conventions. `rank` is `R`.
pub fn count_sweep(csf: &Csf, save: &[bool], rank: usize) -> CountedTraffic {
    let d = csf.ndim();
    assert_eq!(save.len(), d);
    let mut per_mode: Vec<(f64, f64)> = Vec::with_capacity(d);
    per_mode.push(count_mode0(csf, save, rank));
    for u in 1..d {
        let k = (u..=d.saturating_sub(2)).find(|&k| save[k]);
        per_mode.push(count_modeu(csf, u, k, rank));
    }

    CountedTraffic {
        reads: per_mode.iter().map(|&(rd, _)| rd).sum(),
        writes: per_mode.iter().map(|&(_, wr)| wr).sum(),
        per_mode,
    }
}

/// Counts traffic by *actually walking the tree* node by node, rather
/// than multiplying fiber counts — the slow cross-check that makes sure
/// `count_sweep`'s per-level arithmetic matches a real traversal.
pub fn count_sweep_by_traversal(csf: &Csf, save: &[bool], rank: usize) -> CountedTraffic {
    let d = csf.ndim();
    let r = rank as f64;
    let mut per_mode: Vec<(f64, f64)> = Vec::with_capacity(d);

    /// Visit every node of levels `0..=max_level` once.
    fn visit(csf: &Csf, max_level: usize, on_node: &mut dyn FnMut(usize)) {
        for l in 0..=max_level {
            for _node in 0..csf.nfibers(l) {
                on_node(l);
            }
        }
    }

    // mode 0
    {
        let mut reads = 0.0;
        let mut writes = 0.0;
        visit(csf, d - 1, &mut |l| {
            reads += 2.0 + r;
            if save[l] {
                writes += r;
            }
        });
        writes += (csf.level_dims()[0] * rank) as f64;
        per_mode.push((reads, writes));
    }
    for u in 1..d {
        let mut reads = 0.0;
        let k = (u..=d.saturating_sub(2)).find(|&k| save[k]);
        let deepest = k.unwrap_or(d - 1);
        visit(csf, deepest, &mut |l| {
            reads += 2.0;
            let factor_read = match k {
                // Saved path: factors above u, recompute factors
                // strictly between u and k, partial at k.
                Some(k) => l < u || (l > u && l < k) || l == k,
                None => true,
            };
            if factor_read {
                reads += r;
            }
            if k == Some(l) && l > u {
                // Level k contributes both its factor (recompute
                // chain, unless k == u) and the stored partial.
                reads += r;
            }
        });
        // k == u: at level u we read ONLY the partial (counted above as
        // the `l == k` factor_read); nothing to adjust.
        let writes = csf.nfibers(u) as f64 * r;
        per_mode.push((reads, writes));
    }
    CountedTraffic {
        reads: per_mode.iter().map(|&(rd, _)| rd).sum(),
        writes: per_mode.iter().map(|&(_, wr)| wr).sum(),
        per_mode,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LevelProfile;
    use sptensor::{build_csf, CooTensor};

    /// Tensor with a fully-populated root level (`m_0 == n_0`), so the
    /// model's `n_0·R` output charge matches the traversal.
    fn full_root_tensor(seed: u64) -> CooTensor {
        let dims = [6usize, 15, 20];
        let mut t = CooTensor::new(dims.to_vec());
        let mut x = seed | 1;
        let mut coord = [0u32; 3];
        for i in 0..6u32 {
            // Ensure every slice has at least one nnz.
            t.push(&[i, 0, 0], 1.0);
        }
        for _ in 0..400 {
            for (c, &d) in coord.iter_mut().zip(&dims) {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *c = ((x >> 33) % d as u64) as u32;
            }
            t.push(&coord, 1.0);
        }
        t.sort_dedup();
        t
    }

    #[test]
    fn counted_equals_model_raw_traffic() {
        let t = full_root_tensor(1);
        let csf = build_csf(&t, &[0, 1, 2]);
        assert_eq!(csf.nfibers(0), t.dims()[0], "root must be full");
        let rank = 8;
        let profile = LevelProfile {
            dims: csf.level_dims().to_vec(),
            fibers: csf.fiber_counts(),
            rank,
            cache_elems: 0, // disable the clamp: every access a miss
        };
        for save in [
            vec![false, false, false],
            vec![false, true, false],
        ] {
            let model = profile.raw_traffic(&save);
            let counted = count_sweep(&csf, &save, rank);
            assert!(
                (model.reads - counted.reads).abs() < 1e-9,
                "reads: model {} vs counted {} (save {save:?})",
                model.reads,
                counted.reads
            );
            assert!(
                (model.writes - counted.writes).abs() < 1e-9,
                "writes: model {} vs counted {} (save {save:?})",
                model.writes,
                counted.writes
            );
        }
    }

    #[test]
    fn counted_equals_model_4d_all_subsets() {
        let dims = [5usize, 8, 9, 7];
        let mut t = CooTensor::new(dims.to_vec());
        let mut x = 3u64;
        let mut coord = [0u32; 4];
        for i in 0..5u32 {
            t.push(&[i, 0, 0, 0], 1.0);
        }
        for _ in 0..600 {
            for (c, &d) in coord.iter_mut().zip(&dims) {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *c = ((x >> 33) % d as u64) as u32;
            }
            t.push(&coord, 1.0);
        }
        t.sort_dedup();
        let csf = build_csf(&t, &[0, 1, 2, 3]);
        assert_eq!(csf.nfibers(0), 5);
        let rank = 4;
        let profile = LevelProfile {
            dims: csf.level_dims().to_vec(),
            fibers: csf.fiber_counts(),
            rank,
            cache_elems: 0,
        };
        for mask in 0..4u32 {
            let save = vec![false, mask & 1 != 0, mask & 2 != 0, false];
            let model = profile.raw_traffic(&save);
            let counted = count_sweep(&csf, &save, rank);
            assert!((model.reads - counted.reads).abs() < 1e-9, "save {save:?}");
            assert!((model.writes - counted.writes).abs() < 1e-9, "save {save:?}");
        }
    }

    #[test]
    fn accum_model_emit_term_matches_counted_update_stream() {
        // The privatized accumulation cost is (2T+1)·n·R bookkeeping plus
        // the m·R emit stream. That emit stream is exactly the per-mode
        // write traffic the instrumented traversal counts, which pins the
        // cost model's `m` to the updates the kernels actually perform.
        let t = full_root_tensor(7);
        let csf = build_csf(&t, &[0, 1, 2]);
        let rank = 8;
        let profile = LevelProfile {
            dims: csf.level_dims().to_vec(),
            fibers: csf.fiber_counts(),
            rank,
            cache_elems: 0,
        };
        let counted = count_sweep(&csf, &[false; 3], rank);
        for nthreads in [1usize, 4] {
            for u in 1..3 {
                let c = crate::model::accum_costs(&profile, u, nthreads);
                let bookkeeping =
                    (2 * nthreads + 1) as f64 * (csf.level_dims()[u] * rank) as f64;
                let emit = c.privatized - bookkeeping;
                assert!(
                    (emit - counted.per_mode[u].1).abs() < 1e-9,
                    "level {u}, T={nthreads}: emit {emit} vs counted {}",
                    counted.per_mode[u].1
                );
            }
        }
    }

    #[test]
    fn per_node_traversal_matches_per_level_arithmetic() {
        let t = full_root_tensor(5);
        let csf = build_csf(&t, &[0, 1, 2]);
        let rank = 3;
        for save in [
            vec![false, false, false],
            vec![false, true, false],
        ] {
            let fast = count_sweep(&csf, &save, rank);
            let slow = count_sweep_by_traversal(&csf, &save, rank);
            assert!((fast.reads - slow.reads).abs() < 1e-9, "save {save:?}: {} vs {}", fast.reads, slow.reads);
            assert!((fast.writes - slow.writes).abs() < 1e-9, "save {save:?}");
            for (a, b) in fast.per_mode.iter().zip(&slow.per_mode) {
                assert!((a.0 - b.0).abs() < 1e-9 && (a.1 - b.1).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn alto_count_equals_model_with_clamp_disabled() {
        let p = crate::model::AltoProfile {
            dims: vec![40, 70, 60, 25],
            nnz: 5000,
            rank: 8,
            cache_elems: 0,
            idx_elems: 1,
        };
        for u in 0..4 {
            let model = p.mode_traffic(u);
            let (reads, writes) = count_alto_mode(5000, 4, 1, 8);
            assert!((model.reads - reads).abs() < 1e-9, "mode {u}");
            assert!((model.writes - writes).abs() < 1e-9, "mode {u}");
        }
        // Wide store: one extra index element per non-zero.
        let wide = crate::model::AltoProfile { idx_elems: 2, ..p };
        let (reads, _) = count_alto_mode(5000, 4, 2, 8);
        assert!((wide.mode_traffic(0).reads - reads).abs() < 1e-9);
    }

    #[test]
    fn memoizing_reduces_reads_on_high_fanout() {
        // Long fibers: memoized consumer skips the big leaf level.
        let mut t = CooTensor::new(vec![4, 6, 200]);
        for i in 0..4u32 {
            for j in 0..6u32 {
                for l in 0..150u32 {
                    t.push(&[i, j, l], 1.0);
                }
            }
        }
        let csf = build_csf(&t, &[0, 1, 2]);
        let none = count_sweep(&csf, &[false, false, false], 16);
        let saved = count_sweep(&csf, &[false, true, false], 16);
        assert!(saved.reads < none.reads);
        assert!(saved.writes > none.writes);
        // Mode 1 specifically collapses from a full traversal to the
        // tiny saved path.
        assert!(saved.per_mode[1].0 < none.per_mode[1].0 / 10.0);
    }
}
