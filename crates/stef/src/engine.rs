//! The STeF engine: model-driven preparation plus per-mode MTTKRP
//! dispatch, and the [`MttkrpEngine`] trait every algorithm in this
//! workspace (STeF, STeF2, all baselines, the COO reference) implements
//! so that the CPD driver and the benchmark harness treat them uniformly.

use crate::kernels::{mode0_with, modeu_with, KernelCtx, ResolvedAccum};
use crate::kernels_legacy;
use crate::model::{
    best_memo_set, choose_plan, fit_memory_budget, op_count_memo_set, prefer_privatized,
    DegradationEvent, LevelProfile, MemoPlan,
};
use crate::options::{AccumStrategy, KernelPath, MemoPolicy, ModeSwitchPolicy, StefOptions};
use crate::partials::PartialStore;
use crate::runtime::{Executor, RuntimeCounters};
use crate::schedule::Schedule;
use crate::telemetry::ModeStats;
use crate::workspace::Workspace;
use linalg::Mat;
use sptensor::{build_csf, inverse_permutation, sort_modes_by_length, CooTensor, Csf};

/// Anything that can compute MTTKRPs for every mode of a fixed tensor.
///
/// `mode` is always an *original* tensor mode index; implementations map
/// it to whatever internal layout they use. `factors` are likewise in
/// original mode order.
pub trait MttkrpEngine {
    /// Original mode lengths.
    fn dims(&self) -> &[usize];

    /// Human-readable algorithm name (used by the bench harness).
    fn name(&self) -> String;

    /// The order in which a CPD sweep must update the modes for this
    /// engine's memoization (if any) to be valid. Engines without
    /// memoization may return any order.
    fn sweep_order(&self) -> Vec<usize>;

    /// Squared Frobenius norm of the tensor (needed by the CPD fit).
    fn norm_sq(&self) -> f64;

    /// Computes `Ā⁽ᵐᵒᵈᵉ⁾` = MTTKRP of the tensor with all factors except
    /// `factors[mode]`.
    fn mttkrp(&mut self, factors: &[Mat], mode: usize) -> Mat;

    /// Asks the engine to permanently stop using memoized state and
    /// recompute every MTTKRP from scratch — the CPD driver's last-resort
    /// recovery when memoized partials may be corrupt. Returns `true` if
    /// the engine actually changed behavior (so the driver knows a retry
    /// is worthwhile); the default for engines without memoization is
    /// `false`.
    fn degrade_to_unmemoized(&mut self) -> bool {
        false
    }

    /// Plan relaxations the engine applied to fit
    /// `StefOptions::memory_budget` — empty for engines without budget
    /// governance. The CPD driver copies these onto `CpdResult`.
    fn degradations(&self) -> Vec<DegradationEvent> {
        Vec::new()
    }

    /// Telemetry: measured traffic of the engine's most recent MTTKRP
    /// for `mode`, in the `counters.rs` element conventions and
    /// reflecting the path *actually executed* (memoized short-circuit
    /// vs. full traversal). `None` for uninstrumented engines
    /// (baselines, the reference).
    fn last_mode_stats(&self, _mode: usize) -> Option<ModeStats> {
        None
    }

    /// Telemetry: model-predicted `(reads, writes)` in elements for
    /// `mode` under the engine's prepared plan (§IV-C). `None` for
    /// unmodeled engines.
    fn predicted_mode_traffic(&self, _mode: usize) -> Option<(f64, f64)> {
        None
    }

    /// Telemetry: workspace arena growths since preparation (0 is the
    /// steady-state allocation-free guarantee). Engines without a
    /// tracked workspace report 0.
    fn telemetry_alloc_events(&self) -> u64 {
        0
    }

    /// Telemetry: runtime-pool counters for load-balance reporting.
    /// `None` for engines that do not own an executor.
    fn telemetry_runtime_counters(&self) -> Option<RuntimeCounters> {
        None
    }

    /// Telemetry: NUMA nodes the engine's executor spreads workers
    /// over (1 = no placement, serial, or no executor).
    fn numa_nodes(&self) -> usize {
        1
    }
}

/// Boxed engines are engines too, so adapters generic over a sized
/// `E: MttkrpEngine` (e.g. [`crate::fault::FaultyEngine`]) can wrap the
/// `Box<dyn MttkrpEngine>` an engine registry hands out.
impl<E: MttkrpEngine + ?Sized> MttkrpEngine for Box<E> {
    fn dims(&self) -> &[usize] {
        (**self).dims()
    }
    fn name(&self) -> String {
        (**self).name()
    }
    fn sweep_order(&self) -> Vec<usize> {
        (**self).sweep_order()
    }
    fn norm_sq(&self) -> f64 {
        (**self).norm_sq()
    }
    fn mttkrp(&mut self, factors: &[Mat], mode: usize) -> Mat {
        (**self).mttkrp(factors, mode)
    }
    fn degrade_to_unmemoized(&mut self) -> bool {
        (**self).degrade_to_unmemoized()
    }
    fn degradations(&self) -> Vec<DegradationEvent> {
        (**self).degradations()
    }
    fn last_mode_stats(&self, mode: usize) -> Option<ModeStats> {
        (**self).last_mode_stats(mode)
    }
    fn predicted_mode_traffic(&self, mode: usize) -> Option<(f64, f64)> {
        (**self).predicted_mode_traffic(mode)
    }
    fn telemetry_alloc_events(&self) -> u64 {
        (**self).telemetry_alloc_events()
    }
    fn telemetry_runtime_counters(&self) -> Option<RuntimeCounters> {
        (**self).telemetry_runtime_counters()
    }
    fn numa_nodes(&self) -> usize {
        (**self).numa_nodes()
    }
}

/// Builds the engine `opts.engine` selects.
///
/// `Csf` and `Alto` construct that engine directly. `Auto` prepares the
/// CSF engine first (its plan carries the §IV-C predicted traffic for
/// the model-chosen order + memoization), prices the linearized layout
/// with [`crate::model::AltoProfile`], and keeps whichever the model
/// says moves less data. Tensors whose interleaved index would exceed
/// 128 bits are never eligible for the linearized engine — `Auto`
/// silently keeps CSF for them.
pub fn build_engine(
    coo: &CooTensor,
    opts: StefOptions,
) -> Result<Box<dyn MttkrpEngine + Send>, crate::StefError> {
    use crate::options::EngineChoice;
    match opts.engine {
        EngineChoice::Csf => Ok(Box::new(Stef::try_prepare(coo, opts)?)),
        EngineChoice::Alto => Ok(Box::new(crate::alto::AltoEngine::try_prepare(coo, opts)?)),
        EngineChoice::Auto => {
            let choice = |picked: &'static str| {
                crate::metrics::counter(
                    "stef_engine_choice_total",
                    "Engines picked by --engine auto's Sec. IV-C traffic bid",
                    &[("engine", picked)],
                )
                .inc();
            };
            let stef = Stef::try_prepare(coo, opts.clone())?;
            let bits = sptensor::index_bits_for(coo.dims());
            if bits > 128 {
                choice("csf");
                return Ok(Box::new(stef));
            }
            let alto_profile = crate::model::AltoProfile {
                dims: coo.dims().to_vec(),
                nnz: coo.nnz(),
                rank: opts.rank,
                cache_elems: opts.cache_bytes / std::mem::size_of::<f64>(),
                idx_elems: if bits <= 64 { 1 } else { 2 },
            };
            if alto_profile.total_traffic() < stef.plan().predicted {
                choice("alto");
                Ok(Box::new(crate::alto::AltoEngine::try_prepare(coo, opts)?))
            } else {
                choice("csf");
                Ok(Box::new(stef))
            }
        }
    }
}

/// The paper's STeF: one CSF in a model-chosen order, model-chosen
/// memoization, nnz-balanced scheduling.
pub struct Stef {
    csf: Csf,
    sched: Schedule,
    partials: PartialStore,
    plan: MemoPlan,
    opts: StefOptions,
    dims: Vec<usize>,
    /// `level_of_mode[m]` = CSF level holding original mode `m`.
    level_of_mode: Vec<usize>,
    norm_sq: f64,
    /// Set by a mode-0 (root level) call; consumed by deeper levels.
    /// Guards against reading partials that predate a factor update.
    partials_fresh: bool,
    /// Set by [`MttkrpEngine::degrade_to_unmemoized`]: saved partials are
    /// never read again (recovery from suspected corruption).
    memo_disabled: bool,
    /// Conflict strategy per CSF level, resolved once at preparation
    /// (index 0 is unused — the root pass owns its rows).
    accum_by_level: Vec<ResolvedAccum>,
    /// Kernel scratch, sized at preparation and reused by every pass.
    ws: Workspace,
    /// Execution substrate, built once at preparation: a persistent
    /// worker pool sized from `StefOptions::num_threads` (workers are
    /// created here and parked between dispatches), or the scoped-spawn
    /// fallback when `StefOptions::runtime` asks for it.
    exec: Executor,
    /// Plan relaxations applied at preparation to fit
    /// `StefOptions::memory_budget` (empty when unconstrained).
    degradations: Vec<DegradationEvent>,
    /// Telemetry: measured stats of the most recent MTTKRP, indexed by
    /// *original* mode. Fixed-size, filled analytically per call —
    /// never on the kernel hot path.
    last_stats: Vec<Option<ModeStats>>,
    /// Telemetry: model-predicted `(reads, writes)` per CSF level for
    /// the prepared plan, from `LevelProfile::traffic_by_level`.
    predicted_by_level: Vec<(f64, f64)>,
}

impl Stef {
    /// Builds the engine: runs Algorithm 9 + the data-movement model to
    /// pick the order and memoization set, builds the CSF in that order,
    /// the schedule, and the partial store.
    ///
    /// # Panics
    /// Panics on invalid input (zero rank, empty tensor). Callers that
    /// must not panic — the CLI, services — use [`Stef::try_prepare`].
    pub fn prepare(coo: &CooTensor, opts: StefOptions) -> Self {
        match Self::try_prepare(coo, opts) {
            Ok(engine) => engine,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Stef::prepare`]: rejects invalid input with a typed
    /// [`crate::error::StefError`] instead of panicking.
    pub fn try_prepare(coo: &CooTensor, opts: StefOptions) -> Result<Self, crate::StefError> {
        use crate::error::StefError;
        if opts.rank < 1 {
            return Err(StefError::Input("rank must be positive".into()));
        }
        if coo.nnz() == 0 {
            return Err(StefError::Input("empty tensors are not supported".into()));
        }
        if coo.ndim() < 2 {
            return Err(StefError::Input(format!(
                "need at least 2 modes, got {}",
                coo.ndim()
            )));
        }
        if !crate::recover::slice_is_finite(coo.values()) {
            return Err(StefError::Input(
                "tensor contains non-finite values".into(),
            ));
        }
        // Select the SIMD kernel path for the process. `Auto` keeps any
        // earlier explicit selection; `Force` pins one for A/B runs.
        linalg::simd::apply(opts.simd);
        let d = coo.ndim();
        let nthreads = opts.threads();
        let base_order = sort_modes_by_length(coo.dims());
        let base_csf = build_csf(coo, &base_order);

        // --- order decision (§II-E + §IV-B) ---
        let base_profile = LevelProfile::from_csf(&base_csf, opts.rank, opts.cache_bytes);
        let (swap, model_plan) = match opts.mode_switch {
            ModeSwitchPolicy::Never => {
                let (save, predicted) = best_memo_set(&base_profile);
                (
                    false,
                    MemoPlan {
                        swap_last_two: false,
                        save,
                        predicted,
                        predicted_other_order: f64::NAN,
                    },
                )
            }
            ModeSwitchPolicy::Always => {
                let swapped =
                    LevelProfile::swapped_from_csf(&base_csf, opts.rank, opts.cache_bytes);
                let (save, predicted) = best_memo_set(&swapped);
                (
                    true,
                    MemoPlan {
                        swap_last_two: true,
                        save,
                        predicted,
                        predicted_other_order: f64::NAN,
                    },
                )
            }
            ModeSwitchPolicy::ModelChosen | ModeSwitchPolicy::OppositeOfModel => {
                let swapped =
                    LevelProfile::swapped_from_csf(&base_csf, opts.rank, opts.cache_bytes);
                let plan = choose_plan(&base_profile, &swapped);
                let mut swap = plan.swap_last_two;
                if opts.mode_switch == ModeSwitchPolicy::OppositeOfModel {
                    swap = !swap;
                }
                if swap == plan.swap_last_two {
                    (swap, plan)
                } else {
                    // Re-derive the save set for the order we actually use.
                    let profile = if swap { &swapped } else { &base_profile };
                    let (save, predicted) = best_memo_set(profile);
                    (
                        swap,
                        MemoPlan {
                            swap_last_two: swap,
                            save,
                            predicted,
                            predicted_other_order: plan.predicted,
                        },
                    )
                }
            }
        };

        // Rebuild in the swapped order if chosen.
        let (csf, profile) = if swap {
            let mut order = base_order.clone();
            let n = order.len();
            order.swap(n - 1, n - 2);
            let csf = build_csf(coo, &order);
            let profile = LevelProfile::from_csf(&csf, opts.rank, opts.cache_bytes);
            (csf, profile)
        } else {
            (base_csf, base_profile)
        };

        // --- memoization decision (§IV-A) ---
        let save = match &opts.memo {
            MemoPolicy::DataMovementModel => model_plan.save.clone(),
            MemoPolicy::SaveAll => {
                let mut s = vec![false; d];
                if d >= 3 {
                    for l in 1..=d - 2 {
                        s[l] = true;
                    }
                }
                s
            }
            MemoPolicy::SaveNone => vec![false; d],
            MemoPolicy::OpCountModel => op_count_memo_set(&profile),
            MemoPolicy::Fixed(flags) => {
                let mut s = vec![false; d];
                if d >= 3 {
                    for l in 1..=d - 2 {
                        s[l] = flags.get(l).copied().unwrap_or(false);
                    }
                }
                s
            }
        };

        // --- accumulation decision (one per consumer level) ---
        let mut accum_by_level: Vec<ResolvedAccum> = (0..d)
            .map(|level| {
                if level == 0 {
                    // Root rows are thread-owned; no strategy applies.
                    return ResolvedAccum::Privatized;
                }
                match opts.accum {
                    AccumStrategy::Privatized => ResolvedAccum::Privatized,
                    AccumStrategy::Atomic => ResolvedAccum::Atomic,
                    AccumStrategy::Auto => {
                        let bytes = nthreads
                            * csf.level_dims()[level]
                            * opts.rank
                            * std::mem::size_of::<f64>();
                        if bytes > opts.privatize_cap_bytes {
                            // Hard memory cap regardless of the model.
                            ResolvedAccum::Atomic
                        } else if prefer_privatized(&profile, level, nthreads) {
                            ResolvedAccum::Privatized
                        } else {
                            ResolvedAccum::Atomic
                        }
                    }
                }
            })
            .collect();
        for accum in accum_by_level.iter().skip(1) {
            let strategy = match accum {
                ResolvedAccum::Privatized => "privatized",
                ResolvedAccum::Atomic => "atomic",
            };
            crate::metrics::counter(
                "stef_accum_resolved_total",
                "Accumulation strategies resolved per consumer level at engine build",
                &[("strategy", strategy)],
            )
            .inc();
        }

        // --- memory-budget fit (degrade, don't die) ---
        let fixed = Workspace::fixed_bytes(d, opts.rank, nthreads);
        let privatized: Vec<bool> = accum_by_level
            .iter()
            .enumerate()
            .map(|(l, &a)| l > 0 && a == ResolvedAccum::Privatized)
            .collect();
        let fit = fit_memory_budget(
            &profile,
            save,
            privatized,
            nthreads,
            fixed,
            opts.memory_budget,
        )
        .map_err(|required| StefError::BudgetExceeded {
            required,
            budget: opts.memory_budget,
        })?;
        let save = fit.save;
        for (l, a) in accum_by_level.iter_mut().enumerate().skip(1) {
            if !fit.privatized[l] && *a == ResolvedAccum::Privatized {
                *a = ResolvedAccum::Atomic;
            }
        }
        let degradations = fit.events;

        let plan = MemoPlan {
            swap_last_two: swap,
            save: save.clone(),
            predicted: profile.total_traffic(&save),
            predicted_other_order: model_plan.predicted_other_order,
        };
        let predicted_by_level = profile.traffic_by_level(&save);

        let sched = Schedule::build(&csf, nthreads, opts.load_balance);
        let partials = if save.iter().any(|&s| s) {
            PartialStore::try_allocate(&csf, &save, nthreads, opts.rank).map_err(|required| {
                StefError::BudgetExceeded {
                    required,
                    budget: opts.memory_budget,
                }
            })?
        } else {
            PartialStore::empty(d, nthreads, opts.rank)
        };
        let level_of_mode = inverse_permutation(csf.mode_order());
        let max_priv_rows = (1..d)
            .filter(|&l| accum_by_level[l] == ResolvedAccum::Privatized)
            .map(|l| csf.level_dims()[l])
            .max()
            .unwrap_or(0);
        let ws = Workspace::try_new(d, opts.rank, nthreads, max_priv_rows).map_err(|required| {
            StefError::BudgetExceeded {
                required,
                budget: opts.memory_budget,
            }
        })?;
        let exec = Executor::with_numa(opts.runtime, opts.workers(), opts.numa);
        if opts.cancel.is_some() {
            exec.set_cancel(opts.cancel.clone());
        }

        Ok(Stef {
            sched,
            partials,
            plan,
            opts,
            dims: coo.dims().to_vec(),
            level_of_mode,
            norm_sq: coo.norm_sq(),
            partials_fresh: false,
            memo_disabled: false,
            accum_by_level,
            ws,
            exec,
            csf,
            degradations,
            last_stats: vec![None; d],
            predicted_by_level,
        })
    }

    /// The chosen configuration (order swap + save flags + predictions).
    pub fn plan(&self) -> &MemoPlan {
        &self.plan
    }

    /// The engine's CSF (in the chosen order).
    pub fn csf(&self) -> &Csf {
        &self.csf
    }

    /// The schedule in use.
    pub fn schedule(&self) -> &Schedule {
        &self.sched
    }

    /// Bytes held by memoized partial results (Table II).
    pub fn partial_bytes(&self) -> usize {
        self.partials.bytes()
    }

    /// Bytes of CSF structure + factor matrices at this rank (Table II's
    /// denominator).
    pub fn csf_and_factor_bytes(&self) -> usize {
        let factor_bytes: usize = self
            .dims
            .iter()
            .map(|&n| n * self.opts.rank * std::mem::size_of::<f64>())
            .sum();
        self.csf.memory_bytes() + factor_bytes
    }

    /// Engine options.
    pub fn options(&self) -> &StefOptions {
        &self.opts
    }

    /// The conflict strategy preparation resolved for a CSF level (index
    /// 0 reports `Privatized` but the root pass uses neither strategy).
    pub fn resolved_accum(&self, level: usize) -> ResolvedAccum {
        self.accum_by_level[level]
    }

    /// Workspace arena growths since preparation — 0 is the kernels'
    /// no-steady-state-allocation guarantee.
    pub fn workspace_alloc_events(&self) -> u64 {
        self.ws.alloc_events()
    }

    /// Bytes held by the kernel workspace.
    pub fn workspace_bytes(&self) -> usize {
        self.ws.bytes()
    }

    /// The engine's execution substrate (per-engine, honoring
    /// `StefOptions::num_threads` and `StefOptions::runtime`).
    pub fn executor(&self) -> &Executor {
        &self.exec
    }

    /// Pool counters (dispatches, per-worker busy/steal/park) for the
    /// engine's executor; all-zero under the scoped fallback.
    pub fn runtime_counters(&self) -> RuntimeCounters {
        self.exec.counters()
    }

    /// MTTKRP for a CSF *level* with factors given in level order.
    /// Exposed for STeF2 and the benches; most callers want
    /// [`MttkrpEngine::mttkrp`].
    pub fn mttkrp_level(&mut self, level_factors: Vec<&Mat>, level: usize) -> Mat {
        let ctx = KernelCtx::new(&self.csf, &self.sched, level_factors, self.opts.rank);
        if level == 0 {
            let mut out = Mat::zeros(self.csf.level_dims()[0], self.opts.rank);
            match self.opts.kernel_path {
                KernelPath::Vectorized => {
                    let views = self.partials.shared_views();
                    mode0_with(&ctx, &views, &self.exec, &mut self.ws, &mut out);
                }
                KernelPath::Legacy => {
                    kernels_legacy::mode0_pass(&ctx, &mut self.partials, &mut out);
                }
            }
            self.partials_fresh = true;
            if crate::telemetry::COMPILED {
                self.record_mode_stats(0, None);
            }
            return out;
        }
        let accum = self.accum_by_level[level];
        let use_saved = self.partials_fresh && !self.memo_disabled;
        // The same first-saved-level lookup the kernels perform, so the
        // telemetry count reflects the path this call actually takes.
        let saved_at = if crate::telemetry::COMPILED && use_saved {
            let d = self.csf.ndim();
            (level..=d.saturating_sub(2)).find(|&k| self.partials.is_saved(k))
        } else {
            None
        };
        let out = match self.opts.kernel_path {
            KernelPath::Vectorized => {
                let mut out = Mat::zeros(self.csf.level_dims()[level], self.opts.rank);
                let views = self.partials.shared_views();
                modeu_with(
                    &ctx,
                    &views,
                    use_saved,
                    level,
                    accum,
                    &self.exec,
                    &mut self.ws,
                    &mut out,
                );
                out
            }
            KernelPath::Legacy => {
                kernels_legacy::modeu_pass(&ctx, &mut self.partials, level, accum, use_saved)
            }
        };
        if crate::telemetry::COMPILED {
            self.record_mode_stats(level, saved_at);
        }
        out
    }

    /// Telemetry: tallies the traffic of the pass just executed for the
    /// mode at `level`, using the `counters.rs` counting rules
    /// parameterized by the actually-taken path (`saved_at` = level
    /// whose memoized partial was consumed; `None` = full traversal).
    /// O(d) float math per MTTKRP — never on the kernel hot path.
    fn record_mode_stats(&mut self, level: usize, saved_at: Option<usize>) {
        let d = self.csf.ndim();
        let rank = self.opts.rank;
        let (reads, writes) = if level == 0 {
            crate::counters::count_mode0(&self.csf, self.partials.save_flags(), rank)
        } else {
            crate::counters::count_modeu(&self.csf, level, saved_at, rank)
        };
        let deepest = if level == 0 {
            d - 1
        } else {
            saved_at.unwrap_or(d - 1)
        };
        let fibers: u64 = (0..=deepest).map(|l| self.csf.nfibers(l) as u64).sum();
        let nnz = if deepest == d - 1 {
            self.csf.nnz() as u64
        } else {
            0
        };
        // 2 flops (one fused multiply-add) per non-structure element
        // read; structure reads are 2 per visited fiber.
        let structure_reads = 2.0 * fibers as f64;
        let mode = self.csf.mode_order()[level];
        self.last_stats[mode] = Some(ModeStats {
            level,
            nnz,
            fibers,
            flops: 2.0 * (reads - structure_reads).max(0.0),
            reads,
            writes,
        });
    }

    /// Marks memoized partials stale (e.g. after factors changed without
    /// a mode-0 pass). The next non-root MTTKRPs recompute from scratch.
    pub fn invalidate_partials(&mut self) {
        self.partials_fresh = false;
    }

    /// Whether memoization has been disabled by
    /// [`MttkrpEngine::degrade_to_unmemoized`].
    pub fn memo_disabled(&self) -> bool {
        self.memo_disabled
    }

    /// **Fault-injection support** (tests only, but kept available in
    /// release builds so the harness exercises real code): overwrites
    /// every memoized partial with `value` while *leaving the freshness
    /// flag set*, simulating silent in-memory corruption of `P^(i)` that
    /// the kernels will consume on the next memoized read.
    pub fn corrupt_partials_for_test(&mut self, value: f64) {
        self.partials.poison_for_test(value);
    }
}

impl MttkrpEngine for Stef {
    fn dims(&self) -> &[usize] {
        &self.dims
    }

    fn name(&self) -> String {
        "stef".into()
    }

    fn sweep_order(&self) -> Vec<usize> {
        self.csf.mode_order().to_vec()
    }

    fn norm_sq(&self) -> f64 {
        self.norm_sq
    }

    fn mttkrp(&mut self, factors: &[Mat], mode: usize) -> Mat {
        assert_eq!(factors.len(), self.dims.len());
        let level = self.level_of_mode[mode];
        let order = self.csf.mode_order().to_vec();
        let level_factors: Vec<&Mat> = order.iter().map(|&m| &factors[m]).collect();
        let out = self.mttkrp_level(level_factors, level);
        // Updating any factor below the deepest saved level invalidates
        // the memoized partials; the CPD sweep (root -> leaf) never
        // trips this, but out-of-order callers must fall back.
        let deepest_saved = (0..order.len()).rev().find(|&l| self.partials.is_saved(l));
        if let Some(k) = deepest_saved {
            if level > k {
                self.partials_fresh = false;
            }
        }
        out
    }

    fn degrade_to_unmemoized(&mut self) -> bool {
        let was_memoizing = !self.memo_disabled && self.partials.save_flags().iter().any(|&s| s);
        self.memo_disabled = true;
        self.partials_fresh = false;
        was_memoizing
    }

    fn degradations(&self) -> Vec<DegradationEvent> {
        self.degradations.clone()
    }

    fn last_mode_stats(&self, mode: usize) -> Option<ModeStats> {
        self.last_stats.get(mode).cloned().flatten()
    }

    fn predicted_mode_traffic(&self, mode: usize) -> Option<(f64, f64)> {
        self.level_of_mode
            .get(mode)
            .and_then(|&l| self.predicted_by_level.get(l))
            .copied()
    }

    fn telemetry_alloc_events(&self) -> u64 {
        self.ws.alloc_events()
    }

    fn telemetry_runtime_counters(&self) -> Option<RuntimeCounters> {
        Some(self.exec.counters())
    }

    fn numa_nodes(&self) -> usize {
        self.exec.numa_nodes()
    }
}

/// Reference engine: the naive COO MTTKRP. O(nnz·d·R) per call with no
/// parallelism or memoization — the oracle for tests and tiny examples.
pub struct ReferenceEngine {
    coo: CooTensor,
    norm_sq: f64,
}

impl ReferenceEngine {
    /// Wraps a COO tensor.
    pub fn new(coo: CooTensor) -> Self {
        let norm_sq = coo.norm_sq();
        ReferenceEngine { coo, norm_sq }
    }
}

impl MttkrpEngine for ReferenceEngine {
    fn dims(&self) -> &[usize] {
        self.coo.dims()
    }

    fn name(&self) -> String {
        "reference".into()
    }

    fn sweep_order(&self) -> Vec<usize> {
        (0..self.coo.ndim()).collect()
    }

    fn norm_sq(&self) -> f64 {
        self.norm_sq
    }

    fn mttkrp(&mut self, factors: &[Mat], mode: usize) -> Mat {
        self.coo.mttkrp_reference(factors, mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::LoadBalance;
    use linalg::assert_mat_approx_eq;

    fn pseudo_tensor(dims: &[usize], nnz: usize, seed: u64) -> CooTensor {
        let mut t = CooTensor::new(dims.to_vec());
        let mut x = seed | 1;
        let mut coord = vec![0u32; dims.len()];
        for _ in 0..nnz {
            for (c, &d) in coord.iter_mut().zip(dims) {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *c = ((x >> 33) % d as u64) as u32;
            }
            t.push(&coord, ((x >> 40) % 9) as f64 * 0.3 + 0.4);
        }
        t.sort_dedup();
        t
    }

    fn rand_factors(dims: &[usize], r: usize, seed: u64) -> Vec<Mat> {
        let mut x = seed | 1;
        dims.iter()
            .map(|&n| {
                Mat::from_fn(n, r, |_, _| {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((x >> 35) % 1000) as f64 / 500.0 - 1.0
                })
            })
            .collect()
    }

    fn check_engine_against_reference(mut engine: Stef, t: &CooTensor, rank: usize, seed: u64) {
        let factors = rand_factors(t.dims(), rank, seed);
        // Sweep in the engine's required order, exactly like CPD does.
        for mode in engine.sweep_order() {
            let got = engine.mttkrp(&factors, mode);
            let expect = t.mttkrp_reference(&factors, mode);
            assert_mat_approx_eq(&got, &expect, 1e-9);
        }
    }

    #[test]
    fn default_options_match_reference_3d() {
        let t = pseudo_tensor(&[30, 14, 9], 600, 1);
        let engine = Stef::prepare(&t, StefOptions::new(5));
        check_engine_against_reference(engine, &t, 5, 2);
    }

    #[test]
    fn default_options_match_reference_4d_5d() {
        for dims in [vec![9usize, 6, 12, 7], vec![5, 6, 7, 4, 6]] {
            let t = pseudo_tensor(&dims, 700, 3);
            let engine = Stef::prepare(&t, StefOptions::new(4));
            check_engine_against_reference(engine, &t, 4, 4);
        }
    }

    #[test]
    fn all_policies_match_reference() {
        let t = pseudo_tensor(&[12, 10, 8, 6], 500, 5);
        let policies = [
            MemoPolicy::DataMovementModel,
            MemoPolicy::SaveAll,
            MemoPolicy::SaveNone,
            MemoPolicy::OpCountModel,
            MemoPolicy::Fixed(vec![false, true, false, false]),
        ];
        for memo in policies {
            let mut opts = StefOptions::new(3);
            opts.memo = memo.clone();
            let engine = Stef::prepare(&t, opts);
            check_engine_against_reference(engine, &t, 3, 6);
        }
    }

    #[test]
    fn all_switch_policies_match_reference() {
        let t = pseudo_tensor(&[12, 10, 8], 500, 7);
        for sw in [
            ModeSwitchPolicy::ModelChosen,
            ModeSwitchPolicy::Never,
            ModeSwitchPolicy::Always,
            ModeSwitchPolicy::OppositeOfModel,
        ] {
            let mut opts = StefOptions::new(3);
            opts.mode_switch = sw;
            let engine = Stef::prepare(&t, opts);
            check_engine_against_reference(engine, &t, 3, 8);
        }
    }

    #[test]
    fn slice_based_ablation_matches_reference() {
        let t = pseudo_tensor(&[12, 10, 8], 500, 9);
        let mut opts = StefOptions::new(3);
        opts.load_balance = LoadBalance::SliceBased;
        let engine = Stef::prepare(&t, opts);
        check_engine_against_reference(engine, &t, 3, 10);
    }

    #[test]
    fn opposite_switch_inverts_model_choice() {
        let t = pseudo_tensor(&[20, 15, 10], 800, 11);
        let model = Stef::prepare(&t, StefOptions::new(4));
        let mut opts = StefOptions::new(4);
        opts.mode_switch = ModeSwitchPolicy::OppositeOfModel;
        let opposite = Stef::prepare(&t, opts);
        assert_ne!(model.plan().swap_last_two, opposite.plan().swap_last_two);
    }

    #[test]
    fn sweep_order_has_root_first() {
        let t = pseudo_tensor(&[40, 5, 12], 300, 12);
        let engine = Stef::prepare(&t, StefOptions::new(2));
        let sweep = engine.sweep_order();
        // Root level must be the shortest mode (or its swap partner).
        assert_eq!(sweep.len(), 3);
        assert_eq!(sweep[0], engine.csf().mode_order()[0]);
    }

    #[test]
    fn out_of_order_calls_fall_back_correctly() {
        // Call a deep mode, then update factors, then call it again
        // WITHOUT a fresh mode-0 pass: results must still match the
        // reference because freshness tracking disables stale reads.
        let t = pseudo_tensor(&[10, 9, 8], 400, 13);
        let mut opts = StefOptions::new(3);
        opts.memo = MemoPolicy::SaveAll;
        let mut engine = Stef::prepare(&t, opts);
        let f1 = rand_factors(t.dims(), 3, 21);
        let sweep = engine.sweep_order();
        let _ = engine.mttkrp(&f1, sweep[0]);
        let _ = engine.mttkrp(&f1, sweep[1]);
        // New factors, straight to a non-root mode.
        let f2 = rand_factors(t.dims(), 3, 22);
        engine.invalidate_partials();
        let got = engine.mttkrp(&f2, sweep[1]);
        assert_mat_approx_eq(&got, &t.mttkrp_reference(&f2, sweep[1]), 1e-9);
    }

    #[test]
    fn reference_engine_is_consistent() {
        let t = pseudo_tensor(&[6, 7, 8], 100, 14);
        let mut engine = ReferenceEngine::new(t.clone());
        let factors = rand_factors(t.dims(), 2, 23);
        let got = engine.mttkrp(&factors, 1);
        assert_mat_approx_eq(&got, &t.mttkrp_reference(&factors, 1), 0.0);
        assert!((engine.norm_sq() - t.norm_sq()).abs() < 1e-12);
    }

    #[test]
    fn legacy_kernel_path_matches_reference() {
        let t = pseudo_tensor(&[14, 11, 9], 500, 16);
        let mut opts = StefOptions::new(4);
        opts.kernel_path = KernelPath::Legacy;
        let engine = Stef::prepare(&t, opts);
        check_engine_against_reference(engine, &t, 4, 17);
    }

    #[test]
    fn kernel_paths_agree_closely() {
        let t = pseudo_tensor(&[14, 11, 9, 7], 700, 18);
        let factors = rand_factors(t.dims(), 5, 19);
        let mut vec_opts = StefOptions::new(5);
        vec_opts.memo = MemoPolicy::SaveAll;
        let mut leg_opts = vec_opts.clone();
        leg_opts.kernel_path = KernelPath::Legacy;
        let mut a = Stef::prepare(&t, vec_opts);
        let mut b = Stef::prepare(&t, leg_opts);
        for mode in a.sweep_order() {
            let ga = a.mttkrp(&factors, mode);
            let gb = b.mttkrp(&factors, mode);
            // Bit-identical when nothing fuses (scalar dispatch, no FMA
            // codegen); approximately equal when multiply-adds fuse.
            let fused = cfg!(target_feature = "fma")
                || linalg::simd::active() != linalg::simd::SimdPath::Scalar;
            let tol = if fused { 1e-12 } else { 0.0 };
            assert_mat_approx_eq(&ga, &gb, tol);
        }
    }

    #[test]
    fn forced_accum_strategies_are_respected() {
        let t = pseudo_tensor(&[10, 9, 8], 400, 20);
        for (strategy, expect) in [
            (AccumStrategy::Privatized, ResolvedAccum::Privatized),
            (AccumStrategy::Atomic, ResolvedAccum::Atomic),
        ] {
            let mut opts = StefOptions::new(3);
            opts.accum = strategy;
            let engine = Stef::prepare(&t, opts);
            for level in 1..3 {
                assert_eq!(engine.resolved_accum(level), expect);
            }
            check_engine_against_reference(engine, &t, 3, 21);
        }
    }

    #[test]
    fn auto_accum_follows_model_and_cap() {
        let t = pseudo_tensor(&[10, 9, 8], 400, 22);
        // Generous cap: Auto should agree with the model's preference.
        let mut opts = StefOptions::new(3);
        opts.num_threads = 4;
        let engine = Stef::prepare(&t, opts.clone());
        let profile = LevelProfile::from_csf(engine.csf(), 3, opts.cache_bytes);
        for level in 1..3 {
            let expect = if prefer_privatized(&profile, level, 4) {
                ResolvedAccum::Privatized
            } else {
                ResolvedAccum::Atomic
            };
            assert_eq!(engine.resolved_accum(level), expect, "level {level}");
        }
        // A 1-byte cap forces atomics no matter what the model says.
        opts.privatize_cap_bytes = 1;
        let capped = Stef::prepare(&t, opts);
        for level in 1..3 {
            assert_eq!(capped.resolved_accum(level), ResolvedAccum::Atomic);
        }
    }

    #[test]
    fn engine_sweeps_never_grow_the_workspace() {
        let t = pseudo_tensor(&[16, 12, 10, 8], 900, 23);
        let mut engine = Stef::prepare(&t, StefOptions::new(6));
        let factors = rand_factors(t.dims(), 6, 24);
        for _ in 0..3 {
            for mode in engine.sweep_order() {
                let _ = engine.mttkrp(&factors, mode);
            }
        }
        assert_eq!(engine.workspace_alloc_events(), 0);
        assert!(engine.workspace_bytes() > 0);
    }

    #[test]
    fn telemetry_stats_match_sweep_counters() {
        if !crate::telemetry::COMPILED {
            return;
        }
        let t = pseudo_tensor(&[12, 10, 8], 500, 30);
        let mut opts = StefOptions::new(4);
        opts.memo = MemoPolicy::SaveAll;
        let mut engine = Stef::prepare(&t, opts);
        let factors = rand_factors(t.dims(), 4, 31);
        for mode in engine.sweep_order() {
            let _ = engine.mttkrp(&factors, mode);
        }
        // A fresh CPD-style sweep takes exactly the paths count_sweep
        // models, so the per-mode measurements must agree to the element.
        let expected = crate::counters::count_sweep(engine.csf(), &engine.plan().save, 4);
        let order = engine.csf().mode_order().to_vec();
        for (level, &mode) in order.iter().enumerate() {
            let stats = engine.last_mode_stats(mode).expect("stef is instrumented");
            assert_eq!(stats.level, level);
            assert!(
                (stats.reads - expected.per_mode[level].0).abs() < 1e-9,
                "mode {mode}: reads {} vs counted {}",
                stats.reads,
                expected.per_mode[level].0
            );
            assert!((stats.writes - expected.per_mode[level].1).abs() < 1e-9);
            assert!(stats.fibers > 0);
            let (pr, pw) = engine.predicted_mode_traffic(mode).expect("modeled");
            assert!(pr.is_finite() && pw.is_finite() && pr > 0.0 && pw > 0.0);
        }
        assert!(engine.telemetry_runtime_counters().is_some());
    }

    #[test]
    fn build_engine_honors_explicit_choices() {
        let t = pseudo_tensor(&[12, 10, 8], 400, 50);
        let mut opts = StefOptions::new(3);
        opts.engine = crate::options::EngineChoice::Csf;
        assert_eq!(build_engine(&t, opts.clone()).unwrap().name(), "stef");
        opts.engine = crate::options::EngineChoice::Alto;
        let mut engine = build_engine(&t, opts).unwrap();
        assert_eq!(engine.name(), "alto");
        let factors = rand_factors(t.dims(), 3, 51);
        for mode in engine.sweep_order() {
            let got = engine.mttkrp(&factors, mode);
            assert_mat_approx_eq(&got, &t.mttkrp_reference(&factors, mode), 1e-9);
        }
    }

    #[test]
    fn auto_picks_alto_on_irregular_hypersparse() {
        // Huge mode lengths, few nonzeros: fibers barely collapse, so
        // the CSF pays its structure walk for nothing while the
        // linearized stream reads 2 words per nnz. A small cache makes
        // factor traffic demand-bound for both, isolating the
        // structure-overhead difference the model prices.
        let t = pseudo_tensor(&[1 << 17, 1 << 17, 1 << 17], 3000, 52);
        let mut opts = StefOptions::new(8);
        opts.engine = crate::options::EngineChoice::Auto;
        opts.cache_bytes = (1 << 16) * 8;
        let mut engine = build_engine(&t, opts).unwrap();
        assert_eq!(engine.name(), "alto", "model should pick the linearized engine");
        let factors = rand_factors(t.dims(), 8, 53);
        let got = engine.mttkrp(&factors, 0);
        assert_mat_approx_eq(&got, &t.mttkrp_reference(&factors, 0), 1e-9);
    }

    #[test]
    fn auto_picks_csf_on_dense_regular() {
        // Strong fiber collapse — a small pool of (i, j) pairs, each with
        // many k entries — is exactly where memoized CSF traffic drops
        // far below the per-nonzero linearized stream: the CSF reads one
        // factor row per *fiber* while ALTO reads one per *nonzero*.
        let mut t = CooTensor::new(vec![64, 64, 512]);
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut rng = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >> 33
        };
        for _ in 0..500 {
            let i = (rng() % 64) as u32;
            let j = (rng() % 64) as u32;
            for _ in 0..64 {
                let k = (rng() % 512) as u32;
                t.push(&[i, j, k], (rng() % 9) as f64 * 0.3 + 0.4);
            }
        }
        t.sort_dedup();
        let mut opts = StefOptions::new(8);
        opts.engine = crate::options::EngineChoice::Auto;
        opts.cache_bytes = (1 << 13) * 8;
        let engine = build_engine(&t, opts).unwrap();
        assert_eq!(engine.name(), "stef", "model should keep the CSF engine");
    }

    #[test]
    fn auto_falls_back_to_csf_past_128_index_bits() {
        // 9 × 15-bit modes = 135 bits: the linearized layout cannot
        // represent this tensor, so auto must keep CSF no matter what
        // the model would have said.
        let mut t = CooTensor::new(vec![1 << 15; 9]);
        t.push(&[0, 5, 9, 2, 1, 6, 8, 3, 4], 1.0);
        t.push(&[(1 << 15) - 1, 4, 3, 2, 1, 0, 0, 1, 2], 2.0);
        t.push(&[7, (1 << 15) - 1, 0, 0, 3, 5, 2, 9, 9], 3.0);
        t.sort_dedup();
        let mut opts = StefOptions::new(2);
        opts.engine = crate::options::EngineChoice::Auto;
        assert_eq!(build_engine(&t, opts).unwrap().name(), "stef");
    }

    #[test]
    fn plan_reports_partial_bytes() {
        let t = pseudo_tensor(&[10, 10, 10], 500, 15);
        let mut opts = StefOptions::new(4);
        opts.memo = MemoPolicy::SaveAll;
        let engine = Stef::prepare(&t, opts);
        assert!(engine.partial_bytes() > 0);
        assert!(engine.csf_and_factor_bytes() > 0);
        let mut opts2 = StefOptions::new(4);
        opts2.memo = MemoPolicy::SaveNone;
        let engine2 = Stef::prepare(&t, opts2);
        assert_eq!(engine2.partial_bytes(), 0);
    }
}
