//! Always-on ring-buffer **flight recorder**.
//!
//! A fixed set of statically-allocated per-thread rings records coarse
//! events (job lifecycle, ALS iterations, mode sweeps, HTTP requests,
//! pool panics, drain steps). Recording is a few relaxed atomic stores
//! into a pre-sized slot — no allocation, no lock, no syscall — so it
//! can stay on in production and inside the zero-alloc kernel suites.
//!
//! The buffer only pays off when something goes wrong: [`dump`] writes
//! the merged, time-ordered tail to a file. It is invoked
//!
//! - from a panic hook ([`install_panic_hook`]) at `panic!` time —
//!   *before* any `catch_unwind`, so even a panic the worker pool heals
//!   leaves a postmortem behind;
//! - on `SIGUSR1`: the async-signal-safe handler just calls
//!   [`request_dump`] (one relaxed store); the serve accept loop and
//!   the CLI cancel watchdog poll [`take_dump_request`];
//! - on `StefError` CLI exits, so a failed run keeps its last moments.
//!
//! Events are dropped, never blocked on: a ring overwrites its oldest
//! slot, and a torn read during a concurrent dump yields at worst one
//! garbled line. With `--no-default-features` the module compiles to
//! no-ops and the statics are dead-code-eliminated.

#![allow(dead_code)]

use std::path::PathBuf;

/// Coarse event kinds. Discriminants are stable (they appear in dumps).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum FlightEvent {
    /// a = job id, b = attempt
    JobStart = 1,
    /// a = job id, b = attempts used
    JobDone = 2,
    /// a = job id, b = attempts used
    JobFailed = 3,
    /// a = job id, b = next attempt
    JobRetry = 4,
    /// a = job id
    JobShed = 5,
    /// a = job id, b = attempts used
    JobInterrupted = 6,
    /// a = iteration, b = fit (f64 bits)
    IterDone = 7,
    /// a = mode, b = nanoseconds
    ModeSweep = 8,
    /// a = HTTP status, b = nanoseconds
    Http = 9,
    /// a = worker index (`u64::MAX` when stamped by the panic hook,
    /// which runs before the pool has identified the worker)
    WorkerPanic = 10,
    /// a = drain step (0 = begin, 1 = grace elapsed, 2 = joined)
    Drain = 11,
    /// a = job id, b = snapshot generation
    SnapshotInstall = 12,
    /// a = signal number
    Signal = 13,
}

impl FlightEvent {
    fn name(self) -> &'static str {
        match self {
            FlightEvent::JobStart => "job_start",
            FlightEvent::JobDone => "job_done",
            FlightEvent::JobFailed => "job_failed",
            FlightEvent::JobRetry => "job_retry",
            FlightEvent::JobShed => "job_shed",
            FlightEvent::JobInterrupted => "job_interrupted",
            FlightEvent::IterDone => "iter_done",
            FlightEvent::ModeSweep => "mode_sweep",
            FlightEvent::Http => "http",
            FlightEvent::WorkerPanic => "worker_panic",
            FlightEvent::Drain => "drain",
            FlightEvent::SnapshotInstall => "snapshot_install",
            FlightEvent::Signal => "signal",
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            1 => FlightEvent::JobStart,
            2 => FlightEvent::JobDone,
            3 => FlightEvent::JobFailed,
            4 => FlightEvent::JobRetry,
            5 => FlightEvent::JobShed,
            6 => FlightEvent::JobInterrupted,
            7 => FlightEvent::IterDone,
            8 => FlightEvent::ModeSweep,
            9 => FlightEvent::Http,
            10 => FlightEvent::WorkerPanic,
            11 => FlightEvent::Drain,
            12 => FlightEvent::SnapshotInstall,
            13 => FlightEvent::Signal,
            _ => return None,
        })
    }
}

#[cfg(feature = "telemetry")]
mod imp {
    use super::{FlightEvent, PathBuf};
    use std::cell::Cell;
    use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::Relaxed};
    use std::sync::Once;

    /// Threads hash onto [`RINGS`] rings of [`SLOTS`] slots each; a
    /// slot is four u64 words (timestamp, kind|thread, a, b). Total
    /// footprint: 16 × 256 × 32 B = 128 KiB of static BSS.
    const RINGS: usize = 16;
    const SLOTS: usize = 256;

    struct Slot {
        ns: AtomicU64,
        kind_tid: AtomicU64,
        a: AtomicU64,
        b: AtomicU64,
    }

    struct Ring {
        head: AtomicUsize,
        slots: [Slot; SLOTS],
    }

    #[allow(clippy::declare_interior_mutable_const)]
    const SLOT_INIT: Slot = Slot {
        ns: AtomicU64::new(0),
        kind_tid: AtomicU64::new(0),
        a: AtomicU64::new(0),
        b: AtomicU64::new(0),
    };
    #[allow(clippy::declare_interior_mutable_const)]
    const RING_INIT: Ring = Ring { head: AtomicUsize::new(0), slots: [SLOT_INIT; SLOTS] };

    static BUFFER: [Ring; RINGS] = [RING_INIT; RINGS];
    static NEXT_TID: AtomicUsize = AtomicUsize::new(0);
    static EVENTS: AtomicU64 = AtomicU64::new(0);

    thread_local! {
        static TID: Cell<usize> = const { Cell::new(usize::MAX) };
    }

    #[inline]
    fn tid() -> usize {
        TID.with(|t| {
            let v = t.get();
            if v != usize::MAX {
                v
            } else {
                let v = NEXT_TID.fetch_add(1, Relaxed);
                t.set(v);
                v
            }
        })
    }

    /// Record one event: four relaxed stores into this thread's ring.
    #[inline]
    pub fn record(kind: FlightEvent, a: u64, b: u64) {
        let tid = tid();
        let ring = &BUFFER[tid % RINGS];
        let idx = ring.head.fetch_add(1, Relaxed) % SLOTS;
        let slot = &ring.slots[idx];
        slot.kind_tid.store(((kind as u64) << 32) | (tid as u64 & 0xffff_ffff), Relaxed);
        slot.a.store(a, Relaxed);
        slot.b.store(b, Relaxed);
        // Timestamp last and non-zero: a zero timestamp marks an empty
        // (or mid-write) slot, which the dump skips.
        slot.ns.store(crate::runtime::now_ns(), Relaxed);
        EVENTS.fetch_add(1, Relaxed);
    }

    /// Number of events recorded since process start (monotonic; the
    /// buffer itself holds at most the last `RINGS × SLOTS`).
    pub fn events_recorded() -> u64 {
        EVENTS.load(Relaxed)
    }

    /// Render the merged, time-ordered buffer contents. Allocates —
    /// dump path only.
    pub fn dump_string(reason: &str) -> String {
        let mut rows: Vec<(u64, u64, u64, u64)> = Vec::with_capacity(RINGS * SLOTS);
        for ring in &BUFFER {
            for slot in &ring.slots {
                let ns = slot.ns.load(Relaxed);
                if ns == 0 {
                    continue;
                }
                rows.push((ns, slot.kind_tid.load(Relaxed), slot.a.load(Relaxed), slot.b.load(Relaxed)));
            }
        }
        rows.sort_unstable();
        let mut out = String::with_capacity(64 + rows.len() * 64);
        out.push_str(&format!(
            "# stef flight recorder dump: reason={reason} pid={} events_recorded={} retained={}\n\
             # columns: elapsed_s thread kind a b\n",
            std::process::id(),
            events_recorded(),
            rows.len(),
        ));
        for (ns, kind_tid, a, b) in rows {
            let tid = kind_tid & 0xffff_ffff;
            let kind = FlightEvent::from_u8((kind_tid >> 32) as u8);
            let secs = ns as f64 * 1e-9;
            match kind {
                Some(k @ FlightEvent::IterDone) => {
                    out.push_str(&format!(
                        "{secs:.6} t{tid} {} iter={a} fit={:.6}\n",
                        k.name(),
                        f64::from_bits(b)
                    ));
                }
                Some(k @ (FlightEvent::ModeSweep | FlightEvent::Http)) => {
                    out.push_str(&format!(
                        "{secs:.6} t{tid} {} a={a} dt={:.6}s\n",
                        k.name(),
                        b as f64 * 1e-9
                    ));
                }
                Some(k @ FlightEvent::WorkerPanic) if a == u64::MAX => {
                    out.push_str(&format!("{secs:.6} t{tid} {} at-hook\n", k.name()));
                }
                Some(k) => {
                    out.push_str(&format!("{secs:.6} t{tid} {} a={a} b={b}\n", k.name()));
                }
                None => {
                    out.push_str(&format!("{secs:.6} t{tid} ?kind a={a} b={b}\n"));
                }
            }
        }
        out
    }

    /// Write a dump to `$STEF_FLIGHT_DIR` (default: the OS temp dir)
    /// and return the path. Returns `None` when nothing was ever
    /// recorded (no file litter for trivial CLI errors) or the write
    /// fails — the dump path must never panic.
    pub fn dump(reason: &str) -> Option<PathBuf> {
        if events_recorded() == 0 {
            return None;
        }
        let dir = std::env::var_os("STEF_FLIGHT_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(std::env::temp_dir);
        let path = dir.join(format!("stef-flight-{}-{reason}.log", std::process::id()));
        std::fs::write(&path, dump_string(reason)).ok()?;
        Some(path)
    }

    static DUMP_REQ: AtomicBool = AtomicBool::new(false);

    /// Async-signal-safe: one relaxed store. Called from the SIGUSR1
    /// handler; serviced by whichever poll loop sees it first.
    pub fn request_dump() {
        DUMP_REQ.store(true, Relaxed);
    }

    /// Consume a pending dump request (at most one poller wins).
    pub fn take_dump_request() -> bool {
        DUMP_REQ.swap(false, Relaxed)
    }

    static HOOK: Once = Once::new();

    /// Chain a panic hook that dumps the flight buffer before the
    /// previous hook runs. Idempotent. The hook fires at `panic!` time,
    /// so panics later healed by the worker pool's `catch_unwind`
    /// still leave a dump behind.
    pub fn install_panic_hook() {
        HOOK.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                // Stamp the panic itself: the pool's own WorkerPanic
                // record only lands after catch_unwind heals the
                // unwind — too late for this dump, which must show the
                // event being diagnosed as its last line.
                record(FlightEvent::WorkerPanic, u64::MAX, 0);
                if let Some(path) = dump("panic") {
                    eprintln!("stef: flight recorder dump: {}", path.display());
                }
                prev(info);
            }));
        });
    }
}

#[cfg(not(feature = "telemetry"))]
mod imp {
    use super::{FlightEvent, PathBuf};

    #[inline]
    pub fn record(_kind: FlightEvent, _a: u64, _b: u64) {}

    pub fn events_recorded() -> u64 {
        0
    }

    pub fn dump_string(_reason: &str) -> String {
        String::new()
    }

    pub fn dump(_reason: &str) -> Option<PathBuf> {
        None
    }

    pub fn request_dump() {}

    pub fn take_dump_request() -> bool {
        false
    }

    pub fn install_panic_hook() {}
}

pub use imp::{
    dump, dump_string, events_recorded, install_panic_hook, record, request_dump,
    take_dump_request,
};

#[cfg(all(test, feature = "telemetry"))]
mod tests {
    use super::*;

    #[test]
    fn ring_retains_recent_events_and_dumps() {
        for i in 0..600u64 {
            record(FlightEvent::IterDone, i, (i as f64).to_bits());
        }
        record(FlightEvent::JobDone, 7, 2);
        let text = dump_string("test");
        assert!(text.starts_with("# stef flight recorder dump"));
        assert!(text.contains("job_done a=7 b=2"));
        // The ring holds only a bounded tail: early iterations from
        // this thread were overwritten.
        assert!(!text.contains("iter=0 "));
        assert!(text.contains("iter=599"));
    }

    #[test]
    fn dump_request_is_one_shot() {
        assert!(!take_dump_request());
        request_dump();
        assert!(take_dump_request());
        assert!(!take_dump_request());
    }
}
