//! Work distribution across logical threads (paper §II-D, Algorithm 3).
//!
//! The nnz-balanced schedule gives every thread an equal, contiguous
//! range of *leaves* (non-zeros) and derives, per CSF level, the range of
//! tree nodes whose subtrees intersect that leaf range. Because sibling
//! subtrees are contiguous at every level, each thread's node range is an
//! interval, and two adjacent threads can overlap in **at most one node
//! per level** — the boundary fiber. Those boundary fibers are the only
//! write-conflict sites, and the kernels handle them by replicating rows
//! (partial results) or by atomic adds (the root-mode output).
//!
//! The slice-based schedule reproduces prior work (SPLATT, AdaTM): a
//! greedy contiguous partition of root slices by nnz. It is expressed in
//! the same `(start, stop)` form so the kernels are oblivious to which
//! scheme is active; its boundaries never split a node, so replication
//! and atomics degenerate to no-ops.

use crate::options::LoadBalance;
use sptensor::Csf;

/// Per-thread, per-level node ranges driving every kernel.
#[derive(Clone, Debug)]
pub struct Schedule {
    nthreads: usize,
    d: usize,
    kind: LoadBalance,
    /// `start[th][l]`: first node at level `l` whose subtree intersects
    /// thread `th`'s leaf range. Row `nthreads` is a sentinel holding the
    /// node counts.
    start: Vec<Vec<usize>>,
    /// `stop[th][l]`: one past the last intersecting node (exclusive).
    /// `stop == start` for threads with an empty leaf range.
    stop: Vec<Vec<usize>>,
}

impl Schedule {
    /// Builds the paper's nnz-balanced schedule (Algorithm 3).
    pub fn nnz_balanced(csf: &Csf, nthreads: usize) -> Self {
        assert!(nthreads >= 1);
        let d = csf.ndim();
        let nnz = csf.nnz();
        let mut start = vec![vec![0usize; d]; nthreads + 1];
        let mut stop = vec![vec![0usize; d]; nthreads];
        for (th, row) in start.iter_mut().enumerate() {
            // Leaf starts: th * nnz / T (Algorithm 3, line 2).
            row[d - 1] = th * nnz / nthreads;
        }
        // Walk parents upward (Algorithm 3, lines 3-5).
        for th in 0..=nthreads {
            for l in (0..d - 1).rev() {
                let child_pos = start[th][l + 1];
                start[th][l] = csf.find_parent(l, child_pos);
            }
        }
        // stop[th] = inclusive parent chain of the last owned leaf, +1.
        for th in 0..nthreads {
            let leaf_lo = start[th][d - 1];
            let leaf_hi = start[th + 1][d - 1];
            if leaf_lo >= leaf_hi {
                stop[th].clone_from(&start[th]);
                continue;
            }
            let mut pos = leaf_hi - 1; // last owned leaf
            stop[th][d - 1] = leaf_hi;
            for l in (0..d - 1).rev() {
                pos = csf.find_parent(l, pos);
                stop[th][l] = pos + 1;
            }
        }
        Schedule {
            nthreads,
            d,
            kind: LoadBalance::NnzBalanced,
            start,
            stop,
        }
    }

    /// Builds the prior-work slice schedule: contiguous root slices,
    /// greedily balanced on per-slice nnz.
    pub fn slice_based(csf: &Csf, nthreads: usize) -> Self {
        assert!(nthreads >= 1);
        let d = csf.ndim();
        let nnz = csf.nnz();
        let nslices = csf.nfibers(0);
        // Greedy boundaries: slice s goes to the first thread th with
        // prefix_nnz(s) >= th * nnz / T.
        let mut boundaries = vec![0usize; nthreads + 1];
        let mut prefix = 0usize;
        let mut th = 1usize;
        for s in 0..nslices {
            let (lo, hi) = csf.leaf_range(0, s);
            prefix += hi - lo;
            while th < nthreads && prefix >= th * nnz / nthreads {
                boundaries[th] = s + 1;
                th += 1;
            }
        }
        for b in boundaries.iter_mut().skip(th) {
            *b = nslices;
        }
        boundaries[nthreads] = nslices;
        // Monotonicity is guaranteed by the construction.
        let mut start = vec![vec![0usize; d]; nthreads + 1];
        let mut stop = vec![vec![0usize; d]; nthreads];
        for t in 0..=nthreads {
            let s = boundaries[t];
            start[t][0] = s;
            // Descend the left edge: the first descendant at each level.
            for l in 0..d - 1 {
                let node = start[t][l];
                start[t][l + 1] = if node >= csf.nfibers(l) {
                    csf.nfibers(l + 1)
                } else {
                    csf.ptr(l)[node]
                };
            }
        }
        for t in 0..nthreads {
            // Clean boundaries: stop is simply the next thread's start.
            stop[t].clone_from(&start[t + 1]);
        }
        Schedule {
            nthreads,
            d,
            kind: LoadBalance::SliceBased,
            start,
            stop,
        }
    }

    /// Builds the schedule selected by `kind`.
    pub fn build(csf: &Csf, nthreads: usize, kind: LoadBalance) -> Self {
        match kind {
            LoadBalance::NnzBalanced => Self::nnz_balanced(csf, nthreads),
            LoadBalance::SliceBased => Self::slice_based(csf, nthreads),
        }
    }

    /// Logical thread count.
    #[inline]
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// Which scheme built this schedule.
    #[inline]
    pub fn kind(&self) -> LoadBalance {
        self.kind
    }

    /// Thread `th`'s node range at the root level.
    #[inline]
    pub fn root_range(&self, th: usize) -> (usize, usize) {
        (self.start[th][0], self.stop[th][0])
    }

    /// Clamps a parent's child range `[lo, hi)` at `level` to the nodes
    /// thread `th` owns — the `MAX`/`MIN` of Algorithm 5, lines 1–2.
    #[inline]
    pub fn clamp(&self, th: usize, level: usize, lo: usize, hi: usize) -> (usize, usize) {
        let s = self.start[th][level].max(lo);
        let e = self.stop[th][level].min(hi);
        (s, e.max(s))
    }

    /// First leaf owned by `th`.
    #[inline]
    pub fn leaf_start(&self, th: usize) -> usize {
        self.start[th][self.d - 1]
    }

    /// `true` if node `idx` at `level` sits on one of thread `th`'s range
    /// boundaries and may therefore be shared with a neighbouring thread.
    /// Conservative: boundary nodes are flagged even when the split is
    /// clean (the resulting extra atomic adds are a few per kernel call).
    #[inline]
    pub fn is_boundary(&self, th: usize, level: usize, idx: usize) -> bool {
        let s = self.start[th][level];
        let e = self.stop[th][level];
        idx == s || (e > 0 && idx == e - 1)
    }

    /// Total nodes touched by `th` at `level` (boundary nodes included).
    pub fn nodes_at(&self, th: usize, level: usize) -> usize {
        self.stop[th][level].saturating_sub(self.start[th][level])
    }

    /// Tree nodes (all levels) each thread traverses — the static work
    /// model behind the paper's Fig. 2 ("maximum number of nodes
    /// traversed by a thread").
    pub fn work_per_thread(&self) -> Vec<usize> {
        (0..self.nthreads)
            .map(|th| (0..self.d).map(|l| self.nodes_at(th, l)).sum())
            .collect()
    }

    /// Simulated parallel speedup on `nthreads` ideal cores:
    /// `total work / max per-thread work`. A slice schedule that starves
    /// most threads (e.g. a 2-slice root) scores ≈ 1–2 regardless of the
    /// thread count; the nnz-balanced schedule scores ≈ `nthreads`.
    ///
    /// This is the hardware-independent load-balance metric the
    /// reproduction uses where the paper used wall-clock on 18/64-core
    /// machines (see DESIGN.md substitutions).
    pub fn simulated_speedup(&self) -> f64 {
        let work = self.work_per_thread();
        let total: usize = work.iter().sum();
        let max = work.iter().copied().max().unwrap_or(0);
        if max == 0 {
            1.0
        } else {
            total as f64 / max as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sptensor::{build_csf, CooTensor};

    fn pseudo_tensor(dims: &[usize], nnz: usize, seed: u64) -> CooTensor {
        let mut t = CooTensor::new(dims.to_vec());
        let mut x = seed | 1;
        let mut coord = vec![0u32; dims.len()];
        for _ in 0..nnz {
            for (c, &d) in coord.iter_mut().zip(dims) {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *c = ((x >> 33) % d as u64) as u32;
            }
            t.push(&coord, 1.0);
        }
        t.sort_dedup();
        t
    }

    /// Simulates the kernels' traversal: returns (per-leaf visit counts,
    /// per-level per-node visit counts).
    fn traverse(csf: &Csf, sched: &Schedule) -> (Vec<usize>, Vec<Vec<usize>>) {
        let d = csf.ndim();
        let mut leaf_visits = vec![0usize; csf.nnz()];
        let mut node_visits: Vec<Vec<usize>> =
            (0..d).map(|l| vec![0usize; csf.nfibers(l)]).collect();
        for th in 0..sched.nthreads() {
            let (rlo, rhi) = sched.root_range(th);
            for idx0 in rlo..rhi {
                node_visits[0][idx0] += 1;
                rec(csf, sched, th, 1, idx0, &mut leaf_visits, &mut node_visits);
            }
        }
        return (leaf_visits, node_visits);

        fn rec(
            csf: &Csf,
            sched: &Schedule,
            th: usize,
            level: usize,
            pindex: usize,
            leaf_visits: &mut [usize],
            node_visits: &mut [Vec<usize>],
        ) {
            let d = csf.ndim();
            let (lo, hi) = (csf.ptr(level - 1)[pindex], csf.ptr(level - 1)[pindex + 1]);
            let (clo, chi) = sched.clamp(th, level, lo, hi);
            for idx in clo..chi {
                node_visits[level][idx] += 1;
                if level == d - 1 {
                    leaf_visits[idx] += 1;
                } else {
                    rec(csf, sched, th, level + 1, idx, leaf_visits, node_visits);
                }
            }
        }
    }

    fn check_cover(csf: &Csf, sched: &Schedule) {
        let (leaves, nodes) = traverse(csf, sched);
        assert!(
            leaves.iter().all(|&v| v == 1),
            "every leaf must be visited exactly once"
        );
        for (l, level_nodes) in nodes.iter().enumerate() {
            for (i, &v) in level_nodes.iter().enumerate() {
                assert!(v >= 1, "node ({l},{i}) never visited");
                assert!(
                    v <= sched.nthreads(),
                    "node ({l},{i}) visited {v} times (> thread count)"
                );
            }
        }
    }

    #[test]
    fn nnz_schedule_covers_exactly() {
        let t = pseudo_tensor(&[13, 9, 11], 300, 1);
        let csf = build_csf(&t, &[0, 1, 2]);
        for nt in [1, 2, 3, 5, 8, 16] {
            let s = Schedule::nnz_balanced(&csf, nt);
            check_cover(&csf, &s);
        }
    }

    #[test]
    fn nnz_schedule_covers_4d_and_5d() {
        for dims in [vec![6usize, 7, 8, 5], vec![4, 5, 6, 3, 4]] {
            let t = pseudo_tensor(&dims, 400, 2);
            let order: Vec<usize> = (0..dims.len()).collect();
            let csf = build_csf(&t, &order);
            for nt in [2, 4, 7] {
                let s = Schedule::nnz_balanced(&csf, nt);
                check_cover(&csf, &s);
            }
        }
    }

    #[test]
    fn slice_schedule_covers_exactly() {
        let t = pseudo_tensor(&[13, 9, 11], 300, 3);
        let csf = build_csf(&t, &[0, 1, 2]);
        for nt in [1, 2, 4, 20] {
            let s = Schedule::slice_based(&csf, nt);
            let (leaves, _) = traverse(&csf, &s);
            assert!(leaves.iter().all(|&v| v == 1), "nt={nt}");
        }
    }

    #[test]
    fn nnz_schedule_balances_leaves() {
        let t = pseudo_tensor(&[4, 50, 50], 4_000, 4);
        let csf = build_csf(&t, &[0, 1, 2]);
        let nt = 8;
        let s = Schedule::nnz_balanced(&csf, nt);
        let per_thread: Vec<usize> = (0..nt)
            .map(|th| s.start[th + 1][csf.ndim() - 1] - s.start[th][csf.ndim() - 1])
            .collect();
        let max = *per_thread.iter().max().unwrap();
        let min = *per_thread.iter().min().unwrap();
        assert!(
            max - min <= 1,
            "leaf counts {per_thread:?} must differ by at most 1"
        );
    }

    #[test]
    fn slice_schedule_starves_on_two_slices() {
        // 2 root slices, 8 threads: at most 2 threads get work — the
        // paper's §II-D motivation.
        let mut t = CooTensor::new(vec![2, 40, 40]);
        let mut x = 9u64;
        let mut coord = [0u32; 3];
        for _ in 0..800 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            coord[0] = ((x >> 20) % 2) as u32;
            coord[1] = ((x >> 30) % 40) as u32;
            coord[2] = ((x >> 40) % 40) as u32;
            t.push(&coord, 1.0);
        }
        t.sort_dedup();
        let csf = build_csf(&t, &[0, 1, 2]);
        let nt = 8;
        let slice = Schedule::slice_based(&csf, nt);
        let busy = (0..nt).filter(|&th| slice.nodes_at(th, 2) > 0).count();
        assert!(
            busy <= 2,
            "slice scheduling can use at most 2 of {nt} threads, used {busy}"
        );
        let nnzb = Schedule::nnz_balanced(&csf, nt);
        let busy_nnz = (0..nt).filter(|&th| nnzb.nodes_at(th, 2) > 0).count();
        assert_eq!(busy_nnz, nt, "nnz balancing must use all threads");
    }

    #[test]
    fn boundary_detection_flags_range_ends() {
        let t = pseudo_tensor(&[10, 10, 10], 500, 7);
        let csf = build_csf(&t, &[0, 1, 2]);
        let s = Schedule::nnz_balanced(&csf, 4);
        for th in 0..4 {
            let (lo, hi) = s.root_range(th);
            if lo < hi {
                assert!(s.is_boundary(th, 0, lo));
                assert!(s.is_boundary(th, 0, hi - 1));
                if hi - lo > 2 {
                    assert!(!s.is_boundary(th, 0, lo + 1));
                }
            }
        }
    }

    #[test]
    fn more_threads_than_nnz_is_fine() {
        let t = pseudo_tensor(&[3, 3, 3], 5, 8);
        let csf = build_csf(&t, &[0, 1, 2]);
        let s = Schedule::nnz_balanced(&csf, 16);
        check_cover(&csf, &s);
    }

    #[test]
    fn simulated_speedup_contrasts_schedules() {
        // 2 hot/cold root slices: slice scheduling caps at ~1-2x
        // simulated speedup while nnz balancing approaches T.
        let mut t = CooTensor::new(vec![2, 60, 60]);
        let mut x = 5u64;
        let mut coord = [0u32; 3];
        for _ in 0..3000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            coord[0] = if (x >> 20).is_multiple_of(10) { 1 } else { 0 };
            coord[1] = ((x >> 30) % 60) as u32;
            coord[2] = ((x >> 40) % 60) as u32;
            t.push(&coord, 1.0);
        }
        t.sort_dedup();
        let csf = build_csf(&t, &[0, 1, 2]);
        let nt = 18;
        let slice = Schedule::slice_based(&csf, nt).simulated_speedup();
        let nnzb = Schedule::nnz_balanced(&csf, nt).simulated_speedup();
        assert!(slice < 2.5, "slice speedup {slice}");
        assert!(nnzb > 10.0, "nnz speedup {nnzb}");
    }

    #[test]
    fn work_per_thread_sums_to_total_nodes_plus_shares() {
        let t = pseudo_tensor(&[10, 10, 10], 500, 6);
        let csf = build_csf(&t, &[0, 1, 2]);
        let s = Schedule::nnz_balanced(&csf, 4);
        let total: usize = s.work_per_thread().iter().sum();
        let nodes: usize = (0..3).map(|l| csf.nfibers(l)).sum();
        // Boundary nodes are counted once per sharing thread.
        assert!(total >= nodes);
        assert!(total <= nodes + 4 * 3);
    }

    #[test]
    fn single_thread_owns_everything() {
        let t = pseudo_tensor(&[6, 6, 6], 100, 10);
        let csf = build_csf(&t, &[0, 1, 2]);
        let s = Schedule::nnz_balanced(&csf, 1);
        assert_eq!(s.root_range(0), (0, csf.nfibers(0)));
        for l in 0..3 {
            assert_eq!(s.nodes_at(0, l), csf.nfibers(l));
        }
    }
}
