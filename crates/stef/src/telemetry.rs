//! Zero-overhead telemetry: structured spans, per-mode counters, a
//! model-vs-measured data-movement audit, and trace export.
//!
//! Three concerns live here, all compile-out-able via the `telemetry`
//! cargo feature (on by default; `--no-default-features` builds every
//! recording entry point down to a no-op):
//!
//! 1. **Leveled logging** (`STEF_LOG={off,warn,info,debug}`, default
//!    `warn`). Library code never writes to stderr unconditionally —
//!    every diagnostic goes through [`log`], which formats its message
//!    lazily and only when the level is enabled.
//!
//! 2. **Per-mode measurement**. The engine reports, for every MTTKRP
//!    it executes, a [`ModeStats`] derived from the *same counting
//!    rules as `counters.rs`* parameterized by the path actually taken
//!    (memoized short-circuit at level `k`, or full traversal). This
//!    is analytic — O(d) float math per mode, no per-nonzero
//!    instrumentation — so the zero-alloc and determinism invariants
//!    of the kernel layer are untouched. The ALS loop collects these
//!    into per-iteration [`IterationRecord`]s and joins them against
//!    the §IV-C model prediction ([`TelemetryReport::model_audit`]).
//!
//! 3. **Worker spans**. When tracing is enabled
//!    ([`set_trace_enabled`]), the runtime pool records one
//!    [`TraceSpan`] per claim burst (worker id, job id, start/end
//!    nanoseconds, chunks claimed). The gate is a single relaxed
//!    atomic load on the dispatch path; it is off by default, so the
//!    steady-state allocation-free guarantee holds whenever tracing is
//!    not explicitly requested. Spans export to Chrome `trace_event`
//!    JSON ([`render_chrome_trace`]) with one track per worker.
//!
//! Measured traffic is cache-oblivious element counting (the
//! `counters.rs` convention: every fiber visit pays its structure and
//! factor reads); the model prediction is the cache-aware §IV-C
//! estimate. The two coincide when the modeled cache is zero and
//! diverge by design otherwise — the audit quantifies exactly that
//! divergence.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// `true` when the `telemetry` cargo feature is enabled. Recording
/// call sites test this compile-time constant so that
/// `--no-default-features` builds dead-code-eliminate them entirely.
pub const COMPILED: bool = cfg!(feature = "telemetry");

// ---------------------------------------------------------------------------
// Leveled logging
// ---------------------------------------------------------------------------

/// Diagnostic verbosity, ordered: `Off < Warn < Info < Debug`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    Off,
    Warn,
    Info,
    Debug,
}

impl LogLevel {
    fn tag(self) -> &'static str {
        match self {
            LogLevel::Off => "off",
            LogLevel::Warn => "warn",
            LogLevel::Info => "info",
            LogLevel::Debug => "debug",
        }
    }
}

/// The active log level: `STEF_LOG` parsed once per process (default
/// `warn`; unrecognized values also fall back to `warn`). `Off` when
/// telemetry is compiled out.
pub fn log_level() -> LogLevel {
    #[cfg(feature = "telemetry")]
    {
        use std::sync::OnceLock;
        static LEVEL: OnceLock<LogLevel> = OnceLock::new();
        *LEVEL.get_or_init(|| match std::env::var("STEF_LOG").as_deref() {
            Ok("off") => LogLevel::Off,
            Ok("info") => LogLevel::Info,
            Ok("debug") => LogLevel::Debug,
            _ => LogLevel::Warn,
        })
    }
    #[cfg(not(feature = "telemetry"))]
    {
        LogLevel::Off
    }
}

/// Whether messages at `level` are emitted.
#[inline]
pub fn log_enabled(level: LogLevel) -> bool {
    level != LogLevel::Off && level <= log_level()
}

/// Seconds elapsed since the process's telemetry anchor (first call
/// wins). Every log line carries this stamp, so daemon logs line up
/// with traces, journal records and flight-recorder dumps, which all
/// use the same monotonic clock family.
pub fn uptime_seconds() -> f64 {
    use std::sync::OnceLock;
    use std::time::Instant;
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    ANCHOR.get_or_init(Instant::now).elapsed().as_secs_f64()
}

/// Emits a diagnostic at `level` for module `target`, formatted as
/// `stef[warn 12.034s supervisor] message` — level tag, monotonic
/// elapsed-time stamp, module target. The message closure runs only
/// when the level is enabled, so disabled logging costs one branch and
/// no formatting or allocation.
#[inline]
pub fn log(level: LogLevel, target: &'static str, msg: impl FnOnce() -> String) {
    if log_enabled(level) {
        eprintln!("stef[{} {:.3}s {target}] {}", level.tag(), uptime_seconds(), msg());
    }
}

/// [`log`] at `Warn`.
#[inline]
pub fn warn(target: &'static str, msg: impl FnOnce() -> String) {
    log(LogLevel::Warn, target, msg);
}

/// [`log`] at `Info`.
#[inline]
pub fn info(target: &'static str, msg: impl FnOnce() -> String) {
    log(LogLevel::Info, target, msg);
}

/// [`log`] at `Debug`.
#[inline]
pub fn debug(target: &'static str, msg: impl FnOnce() -> String) {
    log(LogLevel::Debug, target, msg);
}

// ---------------------------------------------------------------------------
// Per-mode measurement
// ---------------------------------------------------------------------------

/// What one executed MTTKRP pass did, in the element-counting
/// conventions of `counters.rs` (one element = one f64; multiply by 8
/// for bytes).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ModeStats {
    /// CSF level the mode sits at in the engine's mode order.
    pub level: usize,
    /// Leaf nonzeros touched by the pass (0 when a memoized partial
    /// short-circuited the traversal above the leaves).
    pub nnz: u64,
    /// CSF fibers traversed across all visited levels.
    pub fibers: u64,
    /// Floating-point operations: 2 per non-structure element read
    /// (one fused multiply-add each).
    pub flops: f64,
    /// Elements read (structure + factors + memoized partials).
    pub reads: f64,
    /// Elements written (output rows + memoized partials stored).
    pub writes: f64,
}

/// One timed MTTKRP execution inside an ALS iteration. Retries after
/// a recovery event appear as additional samples for the same mode.
#[derive(Clone, Debug, Default)]
pub struct ModeSample {
    pub mode: usize,
    /// Wall time of the MTTKRP call, seconds.
    pub seconds: f64,
    /// Measured traffic; `None` for engines without instrumentation
    /// (baselines).
    pub stats: Option<ModeStats>,
    /// Model-predicted `(reads, writes)` in elements for this mode
    /// under the engine's plan; `None` for unmodeled engines.
    pub predicted: Option<(f64, f64)>,
}

/// Everything telemetry captured for one ALS iteration.
#[derive(Clone, Debug, Default)]
pub struct IterationRecord {
    pub iteration: usize,
    /// Fit after this iteration.
    pub fit: f64,
    /// One entry per executed MTTKRP, in execution order.
    pub modes: Vec<ModeSample>,
    /// Cumulative workspace allocation events at the end of the
    /// iteration (steady state keeps this constant).
    pub alloc_events: u64,
}

/// The telemetry snapshot attached to a `CpdResult`.
#[derive(Clone, Debug, Default)]
pub struct TelemetryReport {
    pub records: Vec<IterationRecord>,
    /// Worker spans drained at the end of the run (empty unless
    /// tracing was enabled).
    pub spans: Vec<TraceSpan>,
    /// Name of the engine that ran the sweep (`"stef"`, `"alto"`, ...).
    /// Empty when the driver did not stamp it.
    pub engine: String,
    /// NUMA nodes the engine's executor spread workers over (1 = no
    /// placement or serial).
    pub numa_nodes: usize,
}

/// Per-mode join of measured traffic against the model prediction,
/// summed over all iterations.
#[derive(Clone, Debug, Default)]
pub struct ModeAudit {
    pub mode: usize,
    /// Total wall seconds spent in this mode's MTTKRPs.
    pub seconds: f64,
    /// Total measured elements moved (reads + writes).
    pub measured_elems: f64,
    /// Total model-predicted elements moved (reads + writes).
    pub predicted_elems: f64,
    /// `|measured - predicted|` in elements.
    pub abs_err: f64,
    /// `abs_err / max(predicted, 1)`.
    pub rel_err: f64,
}

impl TelemetryReport {
    /// True when no iterations were recorded (telemetry compiled out,
    /// or an engine/loop that does not collect).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Joins measured traffic against the model prediction per mode,
    /// summed over iterations. Modes without both sides are skipped.
    pub fn model_audit(&self) -> Vec<ModeAudit> {
        let mut audits: Vec<ModeAudit> = Vec::new();
        for rec in &self.records {
            for s in &rec.modes {
                let (stats, predicted) = match (&s.stats, s.predicted) {
                    (Some(st), Some(p)) => (st, p),
                    _ => continue,
                };
                let entry = match audits.iter_mut().find(|a| a.mode == s.mode) {
                    Some(a) => a,
                    None => {
                        audits.push(ModeAudit {
                            mode: s.mode,
                            ..ModeAudit::default()
                        });
                        audits.last_mut().expect("just pushed")
                    }
                };
                entry.seconds += s.seconds;
                entry.measured_elems += stats.reads + stats.writes;
                entry.predicted_elems += predicted.0 + predicted.1;
            }
        }
        for a in &mut audits {
            a.abs_err = (a.measured_elems - a.predicted_elems).abs();
            a.rel_err = crate::model::drift_rel_err(a.measured_elems, a.predicted_elems);
        }
        audits.sort_by_key(|a| a.mode);
        audits
    }
}

/// Accumulates [`ModeSample`]s into [`IterationRecord`]s inside the
/// ALS loop. All methods are no-ops when telemetry is compiled out,
/// so `cpd.rs` stays cfg-free.
#[derive(Debug, Default)]
pub struct Collector {
    current: Vec<ModeSample>,
    records: Vec<IterationRecord>,
}

impl Collector {
    pub fn new() -> Self {
        Collector::default()
    }

    /// Records one timed MTTKRP execution.
    pub fn record_mode(
        &mut self,
        mode: usize,
        seconds: f64,
        stats: Option<ModeStats>,
        predicted: Option<(f64, f64)>,
    ) {
        if COMPILED {
            self.current.push(ModeSample {
                mode,
                seconds,
                stats,
                predicted,
            });
        }
    }

    /// Closes the current iteration.
    pub fn end_iteration(&mut self, iteration: usize, fit: f64, alloc_events: u64) {
        if COMPILED {
            self.records.push(IterationRecord {
                iteration,
                fit,
                modes: std::mem::take(&mut self.current),
                alloc_events,
            });
        }
    }

    /// Finishes the run: drains any pending worker spans into the
    /// report. Samples from a partially-completed iteration (cancel,
    /// unrecovered error) are dropped — records always describe whole
    /// iterations.
    pub fn finish(self) -> TelemetryReport {
        TelemetryReport {
            records: self.records,
            spans: take_spans(),
            engine: String::new(),
            numa_nodes: 1,
        }
    }
}

// ---------------------------------------------------------------------------
// Worker spans
// ---------------------------------------------------------------------------

/// One claim burst by one runtime thread: the thread entered the
/// work-claiming loop for job `job` and drained `chunks` chunks
/// between `start_ns` and `end_ns` (monotonic nanoseconds from the
/// runtime's clock anchor). `tid` 0 is the dispatching thread; pool
/// workers are 1-based.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceSpan {
    pub tid: u32,
    pub job: u32,
    pub start_ns: u64,
    pub end_ns: u64,
    pub chunks: u64,
}

static TRACE_ON: AtomicBool = AtomicBool::new(false);
static SPANS: Mutex<Vec<TraceSpan>> = Mutex::new(Vec::new());

/// Turns span recording on or off process-wide. Enabling clears any
/// previously buffered spans. No-op (tracing stays off) when
/// telemetry is compiled out.
pub fn set_trace_enabled(on: bool) {
    if COMPILED {
        if on {
            lock_spans().clear();
        }
        TRACE_ON.store(on, Ordering::Relaxed);
    }
}

/// One relaxed load; constant `false` when telemetry is compiled out.
#[inline]
pub fn trace_enabled() -> bool {
    COMPILED && TRACE_ON.load(Ordering::Relaxed)
}

/// Buffers a span. Callers gate on [`trace_enabled`] *before* taking
/// timestamps, so the disabled path costs exactly the one relaxed
/// load and the enabled path is the only one that touches the global
/// buffer.
pub fn record_span(span: TraceSpan) {
    if trace_enabled() {
        lock_spans().push(span);
    }
}

/// Drains and returns all buffered spans (sorted by thread then start
/// time).
pub fn take_spans() -> Vec<TraceSpan> {
    if !COMPILED {
        return Vec::new();
    }
    let mut spans = std::mem::take(&mut *lock_spans());
    spans.sort_by_key(|s| (s.tid, s.start_ns));
    spans
}

fn lock_spans() -> std::sync::MutexGuard<'static, Vec<TraceSpan>> {
    crate::sync::lock_unpoisoned(&SPANS)
}

// ---------------------------------------------------------------------------
// Export: JSONL metrics
// ---------------------------------------------------------------------------

/// Formats a finite f64 as JSON; NaN/inf become `null` (JSON has no
/// non-finite numbers).
fn jnum(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

fn jopt(x: Option<f64>) -> String {
    match x {
        Some(v) => jnum(v),
        None => "null".to_string(),
    }
}

/// Renders the report as JSONL: one object per ALS iteration, schema
/// version 1. Traffic is reported in **bytes** (8 per element).
///
/// ```json
/// {"schema":1,"iteration":0,"fit":0.91,"alloc_events":0,
///  "engine":"stef","numa_nodes":1,"modes":[
///   {"mode":0,"seconds":1.2e-3,"nnz":1000,"fibers":1430,"flops":256000,
///    "measured_read_bytes":...,"measured_write_bytes":...,
///    "predicted_read_bytes":...,"predicted_write_bytes":...,"rel_err":0.02}]}
/// ```
pub fn render_metrics_jsonl(report: &TelemetryReport) -> String {
    render_metrics_jsonl_tagged(report, None)
}

/// [`render_metrics_jsonl`] with an optional `(job, attempt)` stamp on
/// every iteration record. The serve/batch supervisor passes the
/// HTTP-visible job id and the attempt number so a multi-attempt job's
/// iteration records stay distinguishable across retries; extra keys
/// are ignored by schema-1 consumers.
pub fn render_metrics_jsonl_tagged(
    report: &TelemetryReport,
    job_attempt: Option<(usize, usize)>,
) -> String {
    use std::fmt::Write as _;
    let tag = match job_attempt {
        Some((job, attempt)) => format!("\"job\":{job},\"attempt\":{attempt},"),
        None => String::new(),
    };
    let mut out = String::new();
    for rec in &report.records {
        let mut modes = String::new();
        for (i, s) in rec.modes.iter().enumerate() {
            if i > 0 {
                modes.push(',');
            }
            let measured = s.stats.as_ref().map(|st| (st.reads, st.writes));
            let rel_err = match (measured, s.predicted) {
                (Some((mr, mw)), Some((pr, pw))) => {
                    Some(crate::model::drift_rel_err(mr + mw, pr + pw))
                }
                _ => None,
            };
            let _ = write!(
                modes,
                "{{\"mode\":{},\"seconds\":{},\"nnz\":{},\"fibers\":{},\"flops\":{},\
                 \"measured_read_bytes\":{},\"measured_write_bytes\":{},\
                 \"predicted_read_bytes\":{},\"predicted_write_bytes\":{},\"rel_err\":{}}}",
                s.mode,
                jnum(s.seconds),
                s.stats
                    .as_ref()
                    .map(|st| st.nnz.to_string())
                    .unwrap_or_else(|| "null".into()),
                s.stats
                    .as_ref()
                    .map(|st| st.fibers.to_string())
                    .unwrap_or_else(|| "null".into()),
                jopt(s.stats.as_ref().map(|st| st.flops)),
                jopt(measured.map(|(r, _)| r * 8.0)),
                jopt(measured.map(|(_, w)| w * 8.0)),
                jopt(s.predicted.map(|(r, _)| r * 8.0)),
                jopt(s.predicted.map(|(_, w)| w * 8.0)),
                jopt(rel_err),
            );
        }
        let _ = writeln!(
            out,
            "{{\"schema\":1,{tag}\"iteration\":{},\"fit\":{},\"alloc_events\":{},\
             \"engine\":\"{}\",\"numa_nodes\":{},\"modes\":[{}]}}",
            rec.iteration,
            jnum(rec.fit),
            rec.alloc_events,
            report.engine,
            report.numa_nodes.max(1),
            modes
        );
    }
    out
}

// ---------------------------------------------------------------------------
// Export: Chrome trace_event JSON
// ---------------------------------------------------------------------------

/// Renders spans as a Chrome `trace_event` JSON array (loadable in
/// Perfetto / `chrome://tracing`): one metadata `thread_name` event
/// per runtime thread plus one complete (`"ph":"X"`) event per span,
/// so each worker gets its own track. Timestamps are microseconds.
pub fn render_chrome_trace(spans: &[TraceSpan]) -> String {
    let mut out = String::from("[");
    let mut first = true;
    let mut emit = |s: String, first: &mut bool| {
        // Manual comma threading keeps the array valid for any span count.
        if !*first {
            out.push(',');
        }
        out.push_str("\n  ");
        out.push_str(&s);
        *first = false;
    };
    let mut tids: Vec<u32> = spans.iter().map(|s| s.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    emit(
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"stef\"}}"
            .to_string(),
        &mut first,
    );
    for tid in &tids {
        let name = if *tid == 0 {
            "dispatcher".to_string()
        } else {
            format!("worker {tid}")
        };
        emit(
            format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{name}\"}}}}"
            ),
            &mut first,
        );
    }
    for s in spans {
        let ts = s.start_ns as f64 / 1e3;
        let dur = (s.end_ns.saturating_sub(s.start_ns)) as f64 / 1e3;
        emit(
            format!(
                "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"name\":\"job {}\",\
                 \"ts\":{},\"dur\":{},\"args\":{{\"chunks\":{}}}}}",
                s.tid,
                s.job,
                jnum(ts),
                jnum(dur),
                s.chunks
            ),
            &mut first,
        );
    }
    out.push_str("\n]\n");
    out
}

// ---------------------------------------------------------------------------
// Export: human-readable renders
// ---------------------------------------------------------------------------

/// Human-readable per-mode audit table for `decompose --verbose`.
pub fn render_summary(report: &TelemetryReport) -> String {
    use std::fmt::Write as _;
    let audits = report.model_audit();
    let mut out = String::new();
    if report.records.is_empty() {
        out.push_str("telemetry: no iteration records (compiled out or not collected)\n");
        return out;
    }
    let _ = writeln!(
        out,
        "telemetry: {} iterations recorded, model audit per mode \
         (measured = cache-oblivious element traffic, model = §IV-C estimate):",
        report.records.len()
    );
    let _ = writeln!(
        out,
        "  {:>4}  {:>10}  {:>12}  {:>12}  {:>8}",
        "mode", "time (s)", "measured MB", "model MB", "rel err"
    );
    for a in &audits {
        let _ = writeln!(
            out,
            "  {:>4}  {:>10.4}  {:>12.3}  {:>12.3}  {:>7.1}%",
            a.mode,
            a.seconds,
            a.measured_elems * 8.0 / 1e6,
            a.predicted_elems * 8.0 / 1e6,
            a.rel_err * 100.0
        );
    }
    if audits.is_empty() {
        out.push_str("  (engine reports no traffic instrumentation)\n");
    }
    out
}

/// Per-worker load-balance table over the runtime pool counters, with
/// a max/mean imbalance ratio over claimed chunks. The dispatching
/// thread participates in every fan-out and is shown as `disp`.
pub fn render_load_balance(c: &crate::runtime::RuntimeCounters) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "runtime pool: {} workers, {} dispatches ({} inline)",
        c.workers, c.dispatches, c.inline_runs
    );
    let _ = writeln!(
        out,
        "  {:>6}  {:>10}  {:>10}  {:>8}",
        "thread", "busy", "chunks", "parks"
    );
    let _ = writeln!(
        out,
        "  {:>6}  {:>10}  {:>10}  {:>8}",
        "disp", "-", c.dispatcher_chunks, "-"
    );
    let mut chunks: Vec<u64> = vec![c.dispatcher_chunks];
    for (i, w) in c.per_worker.iter().enumerate() {
        let _ = writeln!(
            out,
            "  {:>6}  {:>10}  {:>10}  {:>8}",
            i + 1,
            w.busy,
            w.chunks,
            w.parks
        );
        chunks.push(w.chunks);
    }
    let max = chunks.iter().copied().max().unwrap_or(0) as f64;
    let mean = chunks.iter().sum::<u64>() as f64 / chunks.len().max(1) as f64;
    if mean > 0.0 {
        let _ = writeln!(
            out,
            "  imbalance (max/mean chunks): {:.2}x over {} threads",
            max / mean,
            chunks.len()
        );
    } else {
        out.push_str("  imbalance: no chunks claimed yet (cold pool)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> TelemetryReport {
        let stats = ModeStats {
            level: 1,
            nnz: 100,
            fibers: 140,
            flops: 9600.0,
            reads: 1000.0,
            writes: 200.0,
        };
        let mut c = Collector::new();
        c.record_mode(0, 0.5e-3, Some(stats.clone()), Some((900.0, 250.0)));
        c.record_mode(1, 0.25e-3, Some(stats), Some((1200.0, 200.0)));
        c.end_iteration(0, 0.9, 3);
        c.finish()
    }

    #[test]
    fn collector_builds_whole_iteration_records() {
        let r = sample_report();
        if !COMPILED {
            assert!(r.is_empty());
            return;
        }
        assert_eq!(r.records.len(), 1);
        assert_eq!(r.records[0].modes.len(), 2);
        assert_eq!(r.records[0].alloc_events, 3);
        let audit = r.model_audit();
        assert_eq!(audit.len(), 2);
        // mode 0: measured 1200 vs predicted 1150 -> rel err 50/1150
        assert!((audit[0].rel_err - 50.0 / 1150.0).abs() < 1e-12);
    }

    #[test]
    fn jsonl_has_one_line_per_iteration_with_schema() {
        let r = sample_report();
        let jsonl = render_metrics_jsonl(&r);
        if !COMPILED {
            assert!(jsonl.is_empty());
            return;
        }
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].starts_with("{\"schema\":1,"));
        assert!(lines[0].contains("\"measured_read_bytes\":8000"));
        assert!(lines[0].contains("\"rel_err\":"));
    }

    #[test]
    fn chrome_trace_renders_tracks_and_events() {
        let spans = [
            TraceSpan {
                tid: 0,
                job: 1,
                start_ns: 1000,
                end_ns: 3000,
                chunks: 2,
            },
            TraceSpan {
                tid: 1,
                job: 1,
                start_ns: 1500,
                end_ns: 2500,
                chunks: 1,
            },
        ];
        let json = render_chrome_trace(&spans);
        assert!(json.trim_start().starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"name\":\"dispatcher\""));
        assert!(json.contains("\"name\":\"worker 1\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":2"));
    }

    #[test]
    fn span_buffer_round_trips_when_enabled() {
        if !COMPILED {
            set_trace_enabled(true);
            record_span(TraceSpan::default());
            assert!(take_spans().is_empty());
            return;
        }
        set_trace_enabled(true);
        record_span(TraceSpan {
            tid: 2,
            job: 7,
            start_ns: 10,
            end_ns: 20,
            chunks: 1,
        });
        let spans = take_spans();
        set_trace_enabled(false);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].job, 7);
        // Disabled recording drops spans.
        record_span(TraceSpan::default());
        assert!(take_spans().is_empty());
    }

    #[test]
    fn non_finite_numbers_render_as_null() {
        let mut r = sample_report();
        if COMPILED {
            r.records[0].fit = f64::NAN;
            let jsonl = render_metrics_jsonl(&r);
            assert!(jsonl.contains("\"fit\":null"));
        }
    }

    #[test]
    fn load_balance_table_reports_imbalance() {
        let c = crate::runtime::RuntimeCounters {
            workers: 2,
            dispatches: 4,
            inline_runs: 0,
            dispatcher_chunks: 2,
            panics: 0,
            cancelled_jobs: 0,
            resurrections: 0,
            respawns: 0,
            spawn_failures: 0,
            per_worker: vec![
                crate::runtime::WorkerCounters {
                    busy: 4,
                    chunks: 6,
                    parks: 1,
                },
                crate::runtime::WorkerCounters {
                    busy: 2,
                    chunks: 1,
                    parks: 3,
                },
            ],
        };
        let table = render_load_balance(&c);
        assert!(table.contains("disp"));
        assert!(table.contains("imbalance (max/mean chunks): 2.00x"));
    }
}
