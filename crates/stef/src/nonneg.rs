//! Nonnegative CP decomposition via multiplicative updates.
//!
//! Many of the applications the paper motivates (topic modelling,
//! traffic analysis, recommender factors) want *nonnegative* factors —
//! the related work it cites includes PLANC (Eswar et al., TOMS 2021),
//! a nonnegative CP/Tucker package. This module adds the classic
//! Lee–Seung-style multiplicative-update CP (Welling & Weber):
//!
//! ```text
//! A⁽ᵘ⁾ ← A⁽ᵘ⁾ ⊙ Ā⁽ᵘ⁾ ⊘ (A⁽ᵘ⁾ V + ε)       V = ⊛_{m≠u} A⁽ᵐ⁾ᵀA⁽ᵐ⁾
//! ```
//!
//! where `Ā⁽ᵘ⁾` is exactly the MTTKRP the rest of this crate computes —
//! so every engine (STeF, STeF2, all baselines) can run nonnegative CP
//! with no kernel changes, and all of STeF's memoization/scheduling
//! machinery applies as-is. Updates preserve nonnegativity whenever the
//! initialization is positive and the tensor is nonnegative.

use crate::cpd::CpdOptions;
use crate::engine::MttkrpEngine;
use linalg::ops::{frob_inner, gram_full, hadamard_inplace, matmul};
use linalg::Mat;
use std::time::Instant;

/// Result of a nonnegative CP run.
#[derive(Debug)]
pub struct NonnegCpdResult {
    /// Nonnegative factor matrices in original mode order.
    pub factors: Vec<Mat>,
    /// Fit after each iteration (same definition as [`crate::cpd`]).
    pub fits: Vec<f64>,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether the fit change dropped below the tolerance.
    pub converged: bool,
    /// Wall time of the whole loop.
    pub total_time: std::time::Duration,
}

impl NonnegCpdResult {
    /// Final fit (0 if no iteration ran).
    pub fn final_fit(&self) -> f64 {
        self.fits.last().copied().unwrap_or(0.0)
    }
}

/// Denominator floor that keeps the multiplicative update well-defined.
const EPS: f64 = 1e-12;

/// Runs multiplicative-update nonnegative CP on `engine`.
///
/// The engine's tensor should be nonnegative; negative values do not
/// break the algorithm but void the monotonicity guarantee.
pub fn cpd_mu_nonneg<E: MttkrpEngine + ?Sized>(
    engine: &mut E,
    opts: &CpdOptions,
) -> NonnegCpdResult {
    let dims = engine.dims().to_vec();
    let r = opts.rank;
    let sweep = engine.sweep_order();
    let norm_t_sq = engine.norm_sq();
    let norm_t = norm_t_sq.sqrt();

    // Positive initialization (strictly > 0 so zero entries can still
    // grow/shrink multiplicatively).
    let mut factors = crate::cpd::init_factors(&dims, r, opts.seed);
    let mut grams: Vec<Mat> = factors.iter().map(gram_full).collect();

    let mut fits = Vec::new();
    let mut converged = false;
    let start = Instant::now();
    let mut iterations = 0usize;

    for _it in 0..opts.max_iters {
        iterations += 1;
        let mut last: Option<(usize, Mat)> = None;
        for &mode in &sweep {
            let ahat = engine.mttkrp(&factors, mode);
            let mut v = Mat::from_fn(r, r, |_, _| 1.0);
            for (m, g) in grams.iter().enumerate() {
                if m != mode {
                    hadamard_inplace(&mut v, g);
                }
            }
            // denom = A · V  (N×R); update A ⊙ Ā ⊘ denom.
            let denom = matmul(&factors[mode], &v);
            {
                let a = factors[mode].as_mut_slice();
                let h = ahat.as_slice();
                let dn = denom.as_slice();
                for ((x, &num), &den) in a.iter_mut().zip(h).zip(dn) {
                    *x *= (num.max(0.0)) / (den + EPS);
                }
            }
            grams[mode] = gram_full(&factors[mode]);
            last = Some((mode, ahat));
        }

        // Fit with λ = 1 (MU does not normalize columns).
        let (last_mode, ahat) = last.expect("at least one mode");
        let inner = frob_inner(&ahat, &factors[last_mode]);
        let norm_model_sq = {
            let mut had = Mat::from_fn(r, r, |_, _| 1.0);
            for g in &grams {
                hadamard_inplace(&mut had, g);
            }
            had.as_slice().iter().sum::<f64>()
        };
        let resid_sq = (norm_t_sq + norm_model_sq - 2.0 * inner).max(0.0);
        let fit = 1.0 - resid_sq.sqrt() / norm_t;
        let prev = fits.last().copied();
        fits.push(fit);
        if let Some(p) = prev {
            if (fit - p).abs() < opts.tol {
                converged = true;
                break;
            }
        }
    }
    NonnegCpdResult {
        factors,
        fits,
        iterations,
        converged,
        total_time: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ReferenceEngine, Stef};
    use crate::options::StefOptions;
    use sptensor::CooTensor;

    fn nonneg_tensor(dims: &[usize], nnz: usize, seed: u64) -> CooTensor {
        let mut t = CooTensor::new(dims.to_vec());
        let mut x = seed | 1;
        let mut coord = vec![0u32; dims.len()];
        for _ in 0..nnz {
            for (c, &d) in coord.iter_mut().zip(dims) {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *c = ((x >> 33) % d as u64) as u32;
            }
            t.push(&coord, ((x >> 40) % 9) as f64 * 0.3 + 0.2);
        }
        t.sort_dedup();
        t
    }

    #[test]
    fn factors_stay_nonnegative() {
        let t = nonneg_tensor(&[12, 10, 8], 400, 1);
        let mut engine = Stef::prepare(&t, StefOptions::new(4));
        let mut opts = CpdOptions::new(4);
        opts.max_iters = 10;
        opts.tol = 0.0;
        let result = cpd_mu_nonneg(&mut engine, &opts);
        for f in &result.factors {
            assert!(f.as_slice().iter().all(|&v| v >= 0.0 && v.is_finite()));
        }
        assert_eq!(result.iterations, 10);
    }

    #[test]
    fn fit_is_nondecreasing_on_nonnegative_data() {
        let t = nonneg_tensor(&[15, 12, 10], 500, 2);
        let mut engine = ReferenceEngine::new(t);
        let mut opts = CpdOptions::new(3);
        opts.max_iters = 25;
        opts.tol = 0.0;
        let result = cpd_mu_nonneg(&mut engine, &opts);
        for w in result.fits.windows(2) {
            assert!(w[1] >= w[0] - 1e-7, "MU fit decreased: {:?}", result.fits);
        }
    }

    #[test]
    fn recovers_nonnegative_rank_one_block() {
        let mut t = CooTensor::new(vec![6, 6, 6]);
        for i in 0..3u32 {
            for j in 0..3u32 {
                for k in 0..3u32 {
                    t.push(&[i, j, k], (i + 1) as f64 * (j + 1) as f64 * (k + 1) as f64);
                }
            }
        }
        let mut engine = ReferenceEngine::new(t);
        let mut opts = CpdOptions::new(2);
        opts.max_iters = 200;
        opts.tol = 1e-9;
        let result = cpd_mu_nonneg(&mut engine, &opts);
        assert!(
            result.final_fit() > 0.99,
            "rank-1 nonnegative block, fit {}",
            result.final_fit()
        );
    }

    #[test]
    fn stef_and_reference_mu_agree() {
        let t = nonneg_tensor(&[10, 9, 8], 300, 3);
        let opts = CpdOptions {
            max_iters: 6,
            tol: 0.0,
            seed: 7,
            ..CpdOptions::new(3)
        };
        let mut stef_engine = Stef::prepare(&t, StefOptions::new(3));
        let sweep = stef_engine.sweep_order();
        let r1 = cpd_mu_nonneg(&mut stef_engine, &opts);
        struct Ordered {
            inner: ReferenceEngine,
            sweep: Vec<usize>,
        }
        impl MttkrpEngine for Ordered {
            fn dims(&self) -> &[usize] {
                self.inner.dims()
            }
            fn name(&self) -> String {
                "ordered".into()
            }
            fn sweep_order(&self) -> Vec<usize> {
                self.sweep.clone()
            }
            fn norm_sq(&self) -> f64 {
                self.inner.norm_sq()
            }
            fn mttkrp(&mut self, factors: &[Mat], mode: usize) -> Mat {
                self.inner.mttkrp(factors, mode)
            }
        }
        let mut reference = Ordered {
            inner: ReferenceEngine::new(t),
            sweep,
        };
        let r2 = cpd_mu_nonneg(&mut reference, &opts);
        for (a, b) in r1.fits.iter().zip(&r2.fits) {
            assert!((a - b).abs() < 1e-8, "{:?} vs {:?}", r1.fits, r2.fits);
        }
    }
}
