//! The adaptive linearized (ALTO-style) MTTKRP engine.
//!
//! Where [`crate::Stef`] compresses the tensor into a CSF tree and
//! memoizes partial contractions, this engine stores each non-zero as a
//! single bit-interleaved linearized index ([`sptensor::Linearized`])
//! plus its value, and runs MTTKRP as one flat sweep over the sorted
//! non-zero stream ([`crate::kernels_alto`]). There is no fiber
//! hierarchy to exploit — and no fiber hierarchy to pay for: on
//! irregular hypersparse tensors whose fibers barely collapse (average
//! fiber length ≈ 1) the CSF's per-fiber structure walk is pure
//! overhead, while the linearized stream reads `idx_elems + 1` words
//! per non-zero no matter how pathological the sparsity pattern is.
//!
//! The §IV-C data-movement model prices both layouts
//! ([`crate::model::AltoProfile`] vs [`crate::model::LevelProfile`]);
//! [`crate::engine::build_engine`] uses that to pick the engine under
//! `--engine auto`. Every mode shares the one linearized copy — the
//! engine never permutes or rebuilds, so its preparation is one sort.

use crate::kernels::ResolvedAccum;
use crate::kernels_alto::alto_mode_with;
use crate::model::{prefer_privatized, AltoProfile, DegradationEvent, LevelProfile};
use crate::options::{AccumStrategy, StefOptions};
use crate::runtime::{Executor, RuntimeCounters};
use crate::telemetry::ModeStats;
use crate::workspace::Workspace;
use linalg::Mat;
use sptensor::{CooTensor, Linearized};

/// Linearized-format MTTKRP engine. See the module docs.
pub struct AltoEngine {
    lin: Linearized,
    dims: Vec<usize>,
    norm_sq: f64,
    opts: StefOptions,
    /// Conflict strategy per *original mode* (the linearized layout does
    /// not permute modes).
    accum_by_mode: Vec<ResolvedAccum>,
    ws: Workspace,
    exec: Executor,
    degradations: Vec<DegradationEvent>,
    /// Telemetry: measured stats of the most recent MTTKRP per mode.
    last_stats: Vec<Option<ModeStats>>,
    /// The pricing profile preparation used — kept for
    /// `predicted_mode_traffic`.
    profile: AltoProfile,
}

impl AltoEngine {
    /// Builds the engine: linearizes + sorts the tensor, resolves the
    /// per-mode conflict strategy with the same cost model and caps the
    /// CSF engine uses, and sizes the workspace/executor.
    ///
    /// # Panics
    /// Panics on invalid input; fallible callers use
    /// [`AltoEngine::try_prepare`].
    pub fn prepare(coo: &CooTensor, opts: StefOptions) -> Self {
        match Self::try_prepare(coo, opts) {
            Ok(engine) => engine,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`AltoEngine::prepare`]. Tensors whose coordinate bits
    /// exceed 128 (the widest supported linearized index) are rejected
    /// with `StefError::Input` — `--engine auto` never selects the
    /// linearized engine for them.
    pub fn try_prepare(coo: &CooTensor, opts: StefOptions) -> Result<Self, crate::StefError> {
        use crate::error::StefError;
        if opts.rank < 1 {
            return Err(StefError::Input("rank must be positive".into()));
        }
        if coo.nnz() == 0 {
            return Err(StefError::Input("empty tensors are not supported".into()));
        }
        if coo.ndim() < 2 {
            return Err(StefError::Input(format!(
                "need at least 2 modes, got {}",
                coo.ndim()
            )));
        }
        if !crate::recover::slice_is_finite(coo.values()) {
            return Err(StefError::Input(
                "tensor contains non-finite values".into(),
            ));
        }
        linalg::simd::apply(opts.simd);
        let d = coo.ndim();
        let nthreads = opts.threads();
        let lin = Linearized::build(coo).map_err(|bits| {
            StefError::Input(format!(
                "tensor coordinates need {bits} linearized index bits; \
                 the alto engine supports at most 128"
            ))
        })?;

        let profile = AltoProfile {
            dims: coo.dims().to_vec(),
            nnz: coo.nnz(),
            rank: opts.rank,
            cache_elems: opts.cache_bytes / std::mem::size_of::<f64>(),
            idx_elems: lin.index_elems(),
        };
        // The accumulation chooser prices privatized reduction against
        // atomic scatter from per-level fiber counts. The linearized
        // sweep updates the output once per non-zero (there is no fiber
        // collapsing), so the equivalent "fiber count" at every mode is
        // simply nnz.
        let synth = LevelProfile {
            dims: coo.dims().to_vec(),
            fibers: vec![coo.nnz(); d],
            rank: opts.rank,
            cache_elems: profile.cache_elems,
        };
        let mut accum_by_mode: Vec<ResolvedAccum> = (0..d)
            .map(|mode| match opts.accum {
                AccumStrategy::Privatized => ResolvedAccum::Privatized,
                AccumStrategy::Atomic => ResolvedAccum::Atomic,
                AccumStrategy::Auto => {
                    let bytes =
                        nthreads * coo.dims()[mode] * opts.rank * std::mem::size_of::<f64>();
                    if bytes > opts.privatize_cap_bytes {
                        ResolvedAccum::Atomic
                    } else if prefer_privatized(&synth, mode, nthreads) {
                        ResolvedAccum::Privatized
                    } else {
                        ResolvedAccum::Atomic
                    }
                }
            })
            .collect();

        // Memory-budget fit: the only degradable arena here is the
        // privatized pool (there are no memoized partials to drop), so
        // flip privatized modes to atomic largest-first until the
        // configuration fits.
        let mut degradations = Vec::new();
        if opts.memory_budget > 0 {
            let fixed = Workspace::fixed_bytes(d, opts.rank, nthreads)
                + lin.memory_bytes();
            let pool = |accum: &[ResolvedAccum]| -> usize {
                let rows = (0..d)
                    .filter(|&m| accum[m] == ResolvedAccum::Privatized)
                    .map(|m| coo.dims()[m])
                    .max()
                    .unwrap_or(0);
                nthreads * rows * opts.rank * std::mem::size_of::<f64>()
            };
            while fixed + pool(&accum_by_mode) > opts.memory_budget {
                let Some(mode) = (0..d)
                    .filter(|&m| accum_by_mode[m] == ResolvedAccum::Privatized)
                    .max_by_key(|&m| coo.dims()[m])
                else {
                    return Err(StefError::BudgetExceeded {
                        required: fixed,
                        budget: opts.memory_budget,
                    });
                };
                let before = pool(&accum_by_mode);
                accum_by_mode[mode] = ResolvedAccum::Atomic;
                degradations.push(DegradationEvent::PrivatizedToAtomic {
                    level: mode,
                    bytes: before - pool(&accum_by_mode),
                });
            }
        }

        let max_priv_rows = (0..d)
            .filter(|&m| accum_by_mode[m] == ResolvedAccum::Privatized)
            .map(|m| coo.dims()[m])
            .max()
            .unwrap_or(0);
        let ws = Workspace::try_new(d, opts.rank, nthreads, max_priv_rows).map_err(|required| {
            StefError::BudgetExceeded {
                required,
                budget: opts.memory_budget,
            }
        })?;
        let exec = Executor::with_numa(opts.runtime, opts.workers(), opts.numa);
        if opts.cancel.is_some() {
            exec.set_cancel(opts.cancel.clone());
        }

        Ok(AltoEngine {
            dims: coo.dims().to_vec(),
            norm_sq: coo.norm_sq(),
            opts,
            accum_by_mode,
            ws,
            exec,
            degradations,
            last_stats: vec![None; d],
            lin,
            profile,
        })
    }

    /// The linearized representation (sorted bit-interleaved indices).
    pub fn linearized(&self) -> &Linearized {
        &self.lin
    }

    /// Engine options.
    pub fn options(&self) -> &StefOptions {
        &self.opts
    }

    /// The conflict strategy preparation resolved for an original mode.
    pub fn resolved_accum(&self, mode: usize) -> ResolvedAccum {
        self.accum_by_mode[mode]
    }

    /// Workspace arena growths since preparation — 0 is the kernels'
    /// no-steady-state-allocation guarantee.
    pub fn workspace_alloc_events(&self) -> u64 {
        self.ws.alloc_events()
    }

    /// Bytes held by the linearized representation.
    pub fn format_bytes(&self) -> usize {
        self.lin.memory_bytes()
    }

    /// The engine's execution substrate.
    pub fn executor(&self) -> &Executor {
        &self.exec
    }

    /// Telemetry: tallies the traffic of the pass just executed. O(1)
    /// float math per MTTKRP — never on the kernel hot path.
    fn record_mode_stats(&mut self, mode: usize) {
        let (reads, writes) = crate::counters::count_alto_mode(
            self.lin.nnz(),
            self.dims.len(),
            self.lin.index_elems(),
            self.opts.rank,
        );
        let stream = self.lin.nnz() as f64 * (self.lin.index_elems() as f64 + 1.0);
        self.last_stats[mode] = Some(ModeStats {
            // The linearized layout keeps natural mode order.
            level: mode,
            nnz: self.lin.nnz() as u64,
            // No fiber hierarchy: every non-zero is its own leaf.
            fibers: self.lin.nnz() as u64,
            flops: 2.0 * (reads - stream).max(0.0),
            reads,
            writes,
        });
    }
}

impl crate::engine::MttkrpEngine for AltoEngine {
    fn dims(&self) -> &[usize] {
        &self.dims
    }

    fn name(&self) -> String {
        "alto".into()
    }

    fn sweep_order(&self) -> Vec<usize> {
        // No memoization, no order constraint: natural order.
        (0..self.dims.len()).collect()
    }

    fn norm_sq(&self) -> f64 {
        self.norm_sq
    }

    fn mttkrp(&mut self, factors: &[Mat], mode: usize) -> Mat {
        assert_eq!(factors.len(), self.dims.len());
        let refs: Vec<&Mat> = factors.iter().collect();
        let mut out = Mat::zeros(self.dims[mode], self.opts.rank);
        alto_mode_with(
            &self.lin,
            &refs,
            mode,
            self.opts.threads(),
            self.accum_by_mode[mode],
            &self.exec,
            &mut self.ws,
            &mut out,
        );
        if crate::telemetry::COMPILED {
            self.record_mode_stats(mode);
        }
        out
    }

    fn degradations(&self) -> Vec<DegradationEvent> {
        self.degradations.clone()
    }

    fn last_mode_stats(&self, mode: usize) -> Option<ModeStats> {
        self.last_stats.get(mode).cloned().flatten()
    }

    fn predicted_mode_traffic(&self, mode: usize) -> Option<(f64, f64)> {
        if mode >= self.dims.len() {
            return None;
        }
        let t = self.profile.mode_traffic(mode);
        Some((t.reads, t.writes))
    }

    fn telemetry_alloc_events(&self) -> u64 {
        self.ws.alloc_events()
    }

    fn telemetry_runtime_counters(&self) -> Option<RuntimeCounters> {
        Some(self.exec.counters())
    }

    fn numa_nodes(&self) -> usize {
        self.exec.numa_nodes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::MttkrpEngine;
    use linalg::assert_mat_approx_eq;

    fn pseudo_tensor(dims: &[usize], nnz: usize, seed: u64) -> CooTensor {
        let mut t = CooTensor::new(dims.to_vec());
        let mut x = seed | 1;
        let mut coord = vec![0u32; dims.len()];
        for _ in 0..nnz {
            for (c, &d) in coord.iter_mut().zip(dims) {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *c = ((x >> 33) % d as u64) as u32;
            }
            t.push(&coord, ((x >> 40) % 9) as f64 * 0.3 + 0.4);
        }
        t.sort_dedup();
        t
    }

    fn rand_factors(dims: &[usize], r: usize, seed: u64) -> Vec<Mat> {
        let mut x = seed | 1;
        dims.iter()
            .map(|&n| {
                Mat::from_fn(n, r, |_, _| {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((x >> 35) % 1000) as f64 / 500.0 - 1.0
                })
            })
            .collect()
    }

    #[test]
    fn matches_reference_on_every_mode() {
        let t = pseudo_tensor(&[30, 14, 9], 600, 1);
        let mut engine = AltoEngine::prepare(&t, StefOptions::new(5));
        let factors = rand_factors(t.dims(), 5, 2);
        for mode in engine.sweep_order() {
            let got = engine.mttkrp(&factors, mode);
            let expect = t.mttkrp_reference(&factors, mode);
            assert_mat_approx_eq(&got, &expect, 1e-9);
        }
    }

    #[test]
    fn matches_reference_4d_5d_and_2d() {
        for dims in [vec![20usize, 17], vec![9, 6, 12, 7], vec![5, 6, 7, 4, 6]] {
            let t = pseudo_tensor(&dims, 500, 3);
            let mut engine = AltoEngine::prepare(&t, StefOptions::new(4));
            let factors = rand_factors(t.dims(), 4, 4);
            for mode in engine.sweep_order() {
                let got = engine.mttkrp(&factors, mode);
                assert_mat_approx_eq(&got, &t.mttkrp_reference(&factors, mode), 1e-9);
            }
        }
    }

    #[test]
    fn forced_accum_strategies_are_respected() {
        let t = pseudo_tensor(&[10, 9, 8], 400, 5);
        for (strategy, expect) in [
            (AccumStrategy::Privatized, ResolvedAccum::Privatized),
            (AccumStrategy::Atomic, ResolvedAccum::Atomic),
        ] {
            let mut opts = StefOptions::new(3);
            opts.accum = strategy;
            let mut engine = AltoEngine::prepare(&t, opts);
            for mode in 0..3 {
                assert_eq!(engine.resolved_accum(mode), expect);
            }
            let factors = rand_factors(t.dims(), 3, 6);
            for mode in 0..3 {
                let got = engine.mttkrp(&factors, mode);
                assert_mat_approx_eq(&got, &t.mttkrp_reference(&factors, mode), 1e-9);
            }
        }
    }

    #[test]
    fn privatize_cap_forces_atomics() {
        let t = pseudo_tensor(&[10, 9, 8], 300, 7);
        let mut opts = StefOptions::new(3);
        opts.privatize_cap_bytes = 1;
        let engine = AltoEngine::prepare(&t, opts);
        for mode in 0..3 {
            assert_eq!(engine.resolved_accum(mode), ResolvedAccum::Atomic);
        }
    }

    #[test]
    fn budget_degrades_privatized_to_atomic_with_events() {
        let t = pseudo_tensor(&[64, 48, 40], 800, 8);
        let mut opts = StefOptions::new(8);
        opts.accum = AccumStrategy::Privatized;
        opts.num_threads = 4;
        // Room for the fixed arenas + format but not the privatized pool.
        let fixed = Workspace::fixed_bytes(3, 8, 4);
        let lin_bytes = Linearized::build(&t).unwrap().memory_bytes();
        opts.memory_budget = fixed + lin_bytes + 1024;
        let mut engine = AltoEngine::try_prepare(&t, opts).expect("degrades, not dies");
        assert!(
            !engine.degradations().is_empty(),
            "expected PrivatizedToAtomic events"
        );
        // Still correct after degradation.
        let factors = rand_factors(t.dims(), 8, 9);
        let got = engine.mttkrp(&factors, 0);
        assert_mat_approx_eq(&got, &t.mttkrp_reference(&factors, 0), 1e-9);
    }

    #[test]
    fn impossible_budget_is_a_typed_error() {
        let t = pseudo_tensor(&[10, 9, 8], 200, 10);
        let mut opts = StefOptions::new(4);
        opts.memory_budget = 8; // less than the fixed arenas
        match AltoEngine::try_prepare(&t, opts) {
            Err(crate::StefError::BudgetExceeded { .. }) => {}
            Err(other) => panic!("expected BudgetExceeded, got {other:?}"),
            Ok(_) => panic!("expected BudgetExceeded, got an engine"),
        }
    }

    #[test]
    fn rejects_bad_input_like_stef() {
        let t = pseudo_tensor(&[10, 9, 8], 200, 11);
        assert!(AltoEngine::try_prepare(&t, StefOptions::new(0)).is_err());
        let empty = CooTensor::new(vec![4, 4]);
        assert!(AltoEngine::try_prepare(&empty, StefOptions::new(2)).is_err());
    }

    #[test]
    fn telemetry_surface_is_populated() {
        if !crate::telemetry::COMPILED {
            return;
        }
        let t = pseudo_tensor(&[12, 10, 8], 400, 12);
        let mut engine = AltoEngine::prepare(&t, StefOptions::new(4));
        let factors = rand_factors(t.dims(), 4, 13);
        for mode in engine.sweep_order() {
            let _ = engine.mttkrp(&factors, mode);
            let stats = engine.last_mode_stats(mode).expect("instrumented");
            assert_eq!(stats.level, mode);
            assert_eq!(stats.nnz as usize, engine.linearized().nnz());
            let (r, w) = crate::counters::count_alto_mode(
                engine.linearized().nnz(),
                3,
                engine.linearized().index_elems(),
                4,
            );
            assert_eq!(stats.reads, r);
            assert_eq!(stats.writes, w);
            let (pr, pw) = engine.predicted_mode_traffic(mode).expect("modeled");
            assert!(pr.is_finite() && pw.is_finite() && pr > 0.0 && pw > 0.0);
        }
        assert_eq!(engine.telemetry_alloc_events(), 0);
        assert!(engine.telemetry_runtime_counters().is_some());
    }

    #[test]
    fn sweeps_never_grow_the_workspace() {
        let t = pseudo_tensor(&[16, 12, 10, 8], 900, 14);
        let mut engine = AltoEngine::prepare(&t, StefOptions::new(6));
        let factors = rand_factors(t.dims(), 6, 15);
        for _ in 0..3 {
            for mode in engine.sweep_order() {
                let _ = engine.mttkrp(&factors, mode);
            }
        }
        assert_eq!(engine.workspace_alloc_events(), 0);
        assert!(engine.format_bytes() > 0);
    }
}
