//! # stef-core — Sparsity-Aware Tensor Factorization
//!
//! A from-scratch Rust implementation of **STeF** from *"Sparsity-Aware
//! Tensor Decomposition"* (Kurt, Raje, Sukumaran-Rajam, Sadayappan —
//! IPDPS 2022): memoized sparse MTTKRP for CP decomposition with
//!
//! * a **data-movement model** ([`model`]) that picks which partially
//!   contracted tensors `P^(i)` to memoize and whether to swap the CSF's
//!   last two modes, by exhaustively scoring every configuration;
//! * **nnz-balanced parallel scheduling** ([`schedule`]) where every
//!   thread processes the same number of non-zeros and write conflicts
//!   are confined to replicated boundary rows and a handful of atomic
//!   updates;
//! * **memoized MTTKRP kernels** ([`kernels`]) covering the saved /
//!   recompute-from-saved / from-scratch paths of the paper's Fig. 1;
//! * a **CPD-ALS driver** ([`cpd`]) generic over [`engine::MttkrpEngine`]
//!   so baselines (SPLATT, AdaTM-like, ALTO-like, TACO-like — in the
//!   `stef-baselines` crate) run under identical conditions;
//! * **STeF2** ([`stef2`]), the two-CSF variant that replaces the slow
//!   leaf-mode kernel with a root-mode pass on a second representation.
//!
//! ## Quick start
//!
//! ```
//! use stef_core::{cpd_als, CpdOptions, Stef, StefOptions};
//! use sptensor::CooTensor;
//!
//! // A tiny 3-way tensor.
//! let mut t = CooTensor::new(vec![4, 5, 6]);
//! t.push(&[0, 1, 2], 1.0);
//! t.push(&[3, 4, 5], 2.0);
//! t.push(&[0, 4, 2], 3.0);
//!
//! let mut engine = Stef::try_prepare(&t, StefOptions::new(2)).unwrap();
//! let result = cpd_als(&mut engine, &CpdOptions::new(2)).unwrap();
//! assert_eq!(result.factors.len(), 3);
//! assert!(result.final_fit() <= 1.0);
//! ```

#![allow(clippy::needless_range_loop)] // index loops over parallel arrays are the clearest form in these kernels

pub mod alto;
pub mod checkpoint;
pub mod counters;
pub mod cpd;
pub mod engine;
pub mod error;
pub mod fault;
pub mod flight;
pub mod kernels;
pub mod kernels_alto;
pub mod kernels_legacy;
pub mod metrics;
pub mod model;
pub mod nonneg;
pub mod numa;
pub mod options;
pub mod paper_kernels;
pub mod partials;
pub mod recover;
pub mod runtime;
pub mod schedule;
pub mod serve;
pub mod snapshot;
pub mod stef2;
pub mod supervisor;
pub mod sync;
pub mod telemetry;
pub mod validate;
pub mod workspace;

pub use alto::AltoEngine;
pub use checkpoint::{Checkpoint, CheckpointError, CheckpointPolicy};
pub use counters::{count_sweep, CountedTraffic};
pub use cpd::{cpd_als, init_factors, CheckpointHook, CpdOptions, CpdResult};
pub use engine::{build_engine, MttkrpEngine, ReferenceEngine, Stef};
pub use numa::{NumaPolicy, NumaTopology};
pub use error::StefError;
pub use fault::{parse_fault_directives, Fault, FaultyEngine};
pub use recover::{RecoveryAction, RecoveryEvent, RecoveryEvents, RecoveryPolicy};
pub use model::{stef2_leaf_gain, BudgetFit, DegradationEvent, LevelProfile, MemoPlan, RawTraffic};
pub use nonneg::{cpd_mu_nonneg, NonnegCpdResult};
pub use options::{
    AccumStrategy, EngineChoice, KernelPath, LoadBalance, MemoPolicy, ModeSwitchPolicy, SimdPath,
    SimdPolicy, StefOptions,
};
pub use partials::PartialStore;
pub use runtime::{
    set_global_cancel, CancelToken, Executor, FanoutError, Runtime, RuntimeCounters,
    WorkerCounters, WorkerPlacement, WorkerPool,
};
pub use schedule::Schedule;
pub use serve::{outcome_hook, ServeConfig, ServeHandle, Server};
pub use snapshot::{FactorSnapshot, SnapshotStore};
pub use stef2::Stef2;
pub use supervisor::{
    compact_journal_file, is_retryable, parse_job_line, price_job, scan_journal, BatchReport,
    EngineFactory, JobAttempt, JobHook, JobOutcome, JobPrice, JobSpec, JobStatus, JournalRecord,
    JournalScan, Supervisor, SupervisorConfig, TensorLoader,
};
pub use flight::FlightEvent;
pub use metrics::{parse_prometheus_text, quantile_from_buckets, PromSample};
pub use telemetry::{
    IterationRecord, LogLevel, ModeAudit, ModeSample, ModeStats, TelemetryReport, TraceSpan,
};
pub use validate::{validate_engine, ValidationReport};
pub use workspace::Workspace;
