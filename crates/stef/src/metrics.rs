//! `stef::metrics` — lock-free, label-aware metrics registry.
//!
//! Counters, gauges and fixed-bucket histograms for the long-running
//! service surfaces (runtime, kernels, supervisor, HTTP). The design
//! budget is the same as [`crate::telemetry`]'s: a *disabled* or
//! compiled-out registry must cost nothing on the hot path, and an
//! *enabled* one must cost a handful of relaxed `fetch_add`s — never a
//! lock, never an allocation.
//!
//! - **Registration** (`counter` / `gauge` / `histogram`) takes a
//!   `Mutex` and may allocate; it happens at construction time
//!   (worker-pool spawn, ALS setup, server bind) and hands back a
//!   leaked `&'static` handle. Steady-state increments through the
//!   handle are relaxed atomics on sharded, cache-line-padded cells.
//! - **Labels** are bounded: a family holds at most
//!   [`MAX_SERIES_PER_FAMILY`] series; registrations past the cap
//!   collapse into a single `overflow="true"` series so a hostile
//!   label source cannot grow memory without bound.
//! - **Gating**: everything is `#[cfg(feature = "telemetry")]`. With
//!   `--no-default-features` the same API compiles to empty inline
//!   no-ops and the whole registry is dead-code-eliminated. At runtime
//!   a relaxed [`enabled`] flag (checked *before* any clock read)
//!   turns instrumentation off without recompiling — the overhead
//!   bench uses it to measure on-vs-off per-op cost.
//!
//! The Prometheus text parser ([`parse_prometheus_text`]) and the
//! bucket-quantile helper are compiled unconditionally: `stef top` and
//! `validate_telemetry` consume scrapes even when the producer was
//! built without telemetry.

#![allow(dead_code)]

/// True when the crate was built with the `telemetry` feature; the
/// registry, flight recorder and every instrumentation site compile to
/// no-ops otherwise.
pub const COMPILED: bool = cfg!(feature = "telemetry");

/// Hard cap on distinct label sets per metric family. Registrations
/// past the cap share one `overflow="true"` series.
pub const MAX_SERIES_PER_FAMILY: usize = 64;

/// Latency bucket ladder (seconds) shared by every duration histogram:
/// 1µs … 4s, roughly ×4 per step, spanning SIMD-kernel dispatches
/// through multi-second refit attempts.
pub const TIME_BUCKETS: &[f64] = &[
    1e-6, 4e-6, 1.6e-5, 6.4e-5, 2.56e-4, 1e-3, 4e-3, 1.6e-2, 6.4e-2, 0.25, 1.0, 4.0,
];

/// Coarser ladder (1 ms … 256 s) for job-scale durations (refit
/// attempts, drains) that would pile into [`TIME_BUCKETS`]' tail.
pub const JOB_BUCKETS: &[f64] = &[
    1e-3, 4e-3, 1.6e-2, 6.4e-2, 0.25, 1.0, 4.0, 16.0, 64.0, 256.0,
];

pub(crate) const MODE_LABELS: [&str; 9] = ["0", "1", "2", "3", "4", "5", "6", "7", "8+"];

pub(crate) fn mode_label(mode: usize) -> &'static str {
    MODE_LABELS[mode.min(MODE_LABELS.len() - 1)]
}

const WORKER_LABELS: [&str; 33] = [
    "0", "1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "11", "12", "13", "14", "15", "16",
    "17", "18", "19", "20", "21", "22", "23", "24", "25", "26", "27", "28", "29", "30", "31",
    "32+",
];

pub(crate) fn worker_label(idx: usize) -> &'static str {
    WORKER_LABELS[idx.min(WORKER_LABELS.len() - 1)]
}

pub(crate) fn status_label(status: u16) -> &'static str {
    match status {
        200 => "200",
        400 => "400",
        404 => "404",
        408 => "408",
        413 => "413",
        429 => "429",
        500 => "500",
        503 => "503",
        _ => "other",
    }
}

// ---------------------------------------------------------------------------
// Real implementation (telemetry feature on)
// ---------------------------------------------------------------------------

#[cfg(feature = "telemetry")]
mod imp {
    use super::{MAX_SERIES_PER_FAMILY, TIME_BUCKETS};
    use std::cell::Cell;
    use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::Relaxed};
    use std::sync::Mutex;

    static ENABLED: AtomicBool = AtomicBool::new(true);

    /// Runtime on/off switch. Off: every increment returns after one
    /// relaxed load, before any clock read at the call site.
    pub fn set_enabled(on: bool) {
        ENABLED.store(on, Relaxed);
    }

    #[inline]
    pub fn enabled() -> bool {
        ENABLED.load(Relaxed)
    }

    const SHARDS: usize = 8;

    #[repr(align(64))]
    struct Cell64(AtomicU64);

    static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

    thread_local! {
        static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
    }

    #[inline]
    fn shard_idx() -> usize {
        SHARD.with(|s| {
            let v = s.get();
            if v != usize::MAX {
                v
            } else {
                let v = NEXT_SHARD.fetch_add(1, Relaxed) % SHARDS;
                s.set(v);
                v
            }
        })
    }

    /// Monotonic counter: increments are one relaxed `fetch_add` on a
    /// per-thread-sharded, cache-line-padded cell.
    pub struct Counter {
        cells: [Cell64; SHARDS],
    }

    impl Counter {
        const fn new() -> Self {
            Counter {
                cells: [const { Cell64(AtomicU64::new(0)) }; SHARDS],
            }
        }

        #[inline]
        pub fn inc(&self) {
            self.add(1);
        }

        #[inline]
        pub fn add(&self, n: u64) {
            if !enabled() {
                return;
            }
            self.cells[shard_idx()].0.fetch_add(n, Relaxed);
        }

        pub fn value(&self) -> u64 {
            self.cells.iter().map(|c| c.0.load(Relaxed)).sum()
        }
    }

    /// Last-write-wins gauge storing `f64` bits. Gauges are sampled at
    /// scrape/flush time (cold path) so a single cell suffices.
    pub struct Gauge {
        bits: AtomicU64,
    }

    impl Gauge {
        const fn new() -> Self {
            Gauge { bits: AtomicU64::new(0) }
        }

        #[inline]
        pub fn set(&self, v: f64) {
            if !enabled() {
                return;
            }
            self.bits.store(v.to_bits(), Relaxed);
        }

        pub fn value(&self) -> f64 {
            f64::from_bits(self.bits.load(Relaxed))
        }
    }

    /// Fixed-bucket histogram of *seconds*. An observation is three
    /// relaxed `fetch_add`s (bucket, nanosecond sum, count); the bucket
    /// scan is a linear pass over ≤ 16 bounds.
    pub struct Histogram {
        bounds: &'static [f64],
        buckets: Box<[AtomicU64]>,
        sum_nanos: AtomicU64,
        count: AtomicU64,
    }

    impl Histogram {
        fn new(bounds: &'static [f64]) -> Self {
            let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
            Histogram {
                bounds,
                buckets,
                sum_nanos: AtomicU64::new(0),
                count: AtomicU64::new(0),
            }
        }

        #[inline]
        pub fn observe(&self, seconds: f64) {
            if !enabled() {
                return;
            }
            let mut idx = self.bounds.len();
            for (i, b) in self.bounds.iter().enumerate() {
                if seconds <= *b {
                    idx = i;
                    break;
                }
            }
            self.buckets[idx].fetch_add(1, Relaxed);
            self.sum_nanos
                .fetch_add((seconds.max(0.0) * 1e9) as u64, Relaxed);
            self.count.fetch_add(1, Relaxed);
        }

        #[inline]
        pub fn observe_ns(&self, nanos: u64) {
            self.observe(nanos as f64 * 1e-9);
        }

        pub fn count(&self) -> u64 {
            self.count.load(Relaxed)
        }

        pub fn sum_seconds(&self) -> f64 {
            self.sum_nanos.load(Relaxed) as f64 * 1e-9
        }

        /// (upper-bound, cumulative-count) pairs ending with `+Inf`.
        pub fn cumulative(&self) -> Vec<(f64, u64)> {
            let mut cum = 0u64;
            let mut out = Vec::with_capacity(self.buckets.len());
            for (i, b) in self.buckets.iter().enumerate() {
                cum += b.load(Relaxed);
                let le = self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
                out.push((le, cum));
            }
            out
        }
    }

    #[derive(Clone, Copy, PartialEq, Eq)]
    enum Kind {
        Counter,
        Gauge,
        Histogram,
    }

    #[derive(Clone, Copy)]
    enum Metric {
        Counter(&'static Counter),
        Gauge(&'static Gauge),
        Histogram(&'static Histogram),
    }

    struct Series {
        labels: Vec<(String, String)>,
        metric: Metric,
    }

    struct Family {
        name: &'static str,
        help: &'static str,
        kind: Kind,
        bounds: &'static [f64],
        series: Vec<Series>,
    }

    static REGISTRY: Mutex<Vec<Family>> = Mutex::new(Vec::new());

    const OVERFLOW_LABELS: &[(&str, &str)] = &[("overflow", "true")];

    fn register(
        name: &'static str,
        help: &'static str,
        kind: Kind,
        bounds: &'static [f64],
        labels: &[(&str, &str)],
    ) -> Metric {
        let mut reg = REGISTRY.lock().unwrap_or_else(|p| p.into_inner());
        let fidx = match reg.iter().position(|f| f.name == name) {
            Some(i) => i,
            None => {
                reg.push(Family { name, help, kind, bounds, series: Vec::new() });
                reg.len() - 1
            }
        };
        // A name reused with a different kind is a programming error;
        // fall back to the overflow series of the existing family so
        // release builds stay up.
        debug_assert!(reg[fidx].kind == kind, "metric {name} re-registered with new kind");
        let effective: &[(&str, &str)] =
            if reg[fidx].kind != kind || reg[fidx].series.len() >= MAX_SERIES_PER_FAMILY {
                OVERFLOW_LABELS
            } else {
                labels
            };
        let family = &mut reg[fidx];
        let found = family.series.iter().position(|s| {
            s.labels.len() == effective.len()
                && s.labels
                    .iter()
                    .zip(effective.iter())
                    .all(|((k, v), (ek, ev))| k == ek && v == ev)
        });
        let sidx = match found {
            Some(i) => i,
            None => {
                let metric = match family.kind {
                    Kind::Counter => Metric::Counter(Box::leak(Box::new(Counter::new()))),
                    Kind::Gauge => Metric::Gauge(Box::leak(Box::new(Gauge::new()))),
                    Kind::Histogram => {
                        Metric::Histogram(Box::leak(Box::new(Histogram::new(family.bounds))))
                    }
                };
                family.series.push(Series {
                    labels: effective
                        .iter()
                        .map(|(k, v)| (k.to_string(), v.to_string()))
                        .collect(),
                    metric,
                });
                family.series.len() - 1
            }
        };
        // The metric cells are leaked (&'static), so the enum itself
        // can be handed out by value even though the series Vec may
        // reallocate on later registrations.
        family.series[sidx].metric
    }

    /// Register (or look up) a counter series. Takes a lock and may
    /// allocate — call at construction time and keep the handle.
    pub fn counter(
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> &'static Counter {
        match register(name, help, Kind::Counter, &[], labels) {
            Metric::Counter(c) => c,
            _ => unreachable!("kind mismatch handled in register"),
        }
    }

    /// Register (or look up) a gauge series.
    pub fn gauge(name: &'static str, help: &'static str, labels: &[(&str, &str)]) -> &'static Gauge {
        match register(name, help, Kind::Gauge, &[], labels) {
            Metric::Gauge(g) => g,
            _ => unreachable!("kind mismatch handled in register"),
        }
    }

    /// Register (or look up) a histogram series with the given bucket
    /// bounds (seconds). Bounds are fixed per family; the first
    /// registration wins.
    pub fn histogram(
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
        bounds: &'static [f64],
    ) -> &'static Histogram {
        match register(name, help, Kind::Histogram, bounds, labels) {
            Metric::Histogram(h) => h,
            _ => unreachable!("kind mismatch handled in register"),
        }
    }

    fn escape_label(v: &str, out: &mut String) {
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
    }

    fn write_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
        if labels.is_empty() && extra.is_none() {
            return;
        }
        out.push('{');
        let mut first = true;
        for (k, v) in labels {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            escape_label(v, out);
            out.push('"');
        }
        if let Some((k, v)) = extra {
            if !first {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            escape_label(v, out);
            out.push('"');
        }
        out.push('}');
    }

    fn fmt_f64(v: f64) -> String {
        if v == f64::INFINITY {
            "+Inf".into()
        } else if v == f64::NEG_INFINITY {
            "-Inf".into()
        } else if v.is_nan() {
            "NaN".into()
        } else if v == v.trunc() && v.abs() < 1e15 {
            format!("{}", v as i64)
        } else {
            format!("{v}")
        }
    }

    /// Render the whole registry in Prometheus text exposition format
    /// 0.0.4. Families are sorted by name so output is deterministic.
    pub fn render_prometheus() -> String {
        let reg = REGISTRY.lock().unwrap_or_else(|p| p.into_inner());
        let mut order: Vec<usize> = (0..reg.len()).collect();
        order.sort_by_key(|&i| reg[i].name);
        let mut out = String::with_capacity(4096);
        for i in order {
            let f = &reg[i];
            out.push_str("# HELP ");
            out.push_str(f.name);
            out.push(' ');
            out.push_str(&f.help.replace('\\', "\\\\").replace('\n', "\\n"));
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(f.name);
            out.push(' ');
            out.push_str(match f.kind {
                Kind::Counter => "counter",
                Kind::Gauge => "gauge",
                Kind::Histogram => "histogram",
            });
            out.push('\n');
            for s in &f.series {
                match &s.metric {
                    Metric::Counter(c) => {
                        out.push_str(f.name);
                        write_labels(&mut out, &s.labels, None);
                        out.push(' ');
                        out.push_str(&fmt_f64(c.value() as f64));
                        out.push('\n');
                    }
                    Metric::Gauge(g) => {
                        out.push_str(f.name);
                        write_labels(&mut out, &s.labels, None);
                        out.push(' ');
                        out.push_str(&fmt_f64(g.value()));
                        out.push('\n');
                    }
                    Metric::Histogram(h) => {
                        for (le, cum) in h.cumulative() {
                            out.push_str(f.name);
                            out.push_str("_bucket");
                            write_labels(&mut out, &s.labels, Some(("le", &fmt_f64(le))));
                            out.push(' ');
                            out.push_str(&fmt_f64(cum as f64));
                            out.push('\n');
                        }
                        out.push_str(f.name);
                        out.push_str("_sum");
                        write_labels(&mut out, &s.labels, None);
                        out.push(' ');
                        out.push_str(&fmt_f64(h.sum_seconds()));
                        out.push('\n');
                        out.push_str(f.name);
                        out.push_str("_count");
                        write_labels(&mut out, &s.labels, None);
                        out.push(' ');
                        out.push_str(&fmt_f64(h.count() as f64));
                        out.push('\n');
                    }
                }
            }
        }
        out
    }

    /// Render one JSONL flush record (`{"schema":2,"kind":"metrics_flush",...}`)
    /// for the periodic supervisor metrics sink. Histograms flatten to
    /// `_count`, `_sum_seconds` and a `_p99` estimate.
    pub fn render_flush_jsonl(uptime_s: f64) -> String {
        let reg = REGISTRY.lock().unwrap_or_else(|p| p.into_inner());
        let mut out = String::with_capacity(2048);
        out.push_str(&format!(
            "{{\"schema\":2,\"kind\":\"metrics_flush\",\"uptime_s\":{uptime_s:.3},\"samples\":["
        ));
        let mut first = true;
        let push_sample =
            |out: &mut String, first: &mut bool, name: &str, labels: &[(String, String)], v: f64| {
                if !v.is_finite() {
                    return;
                }
                if !*first {
                    out.push(',');
                }
                *first = false;
                out.push_str("{\"name\":\"");
                out.push_str(name);
                out.push_str("\",\"labels\":{");
                let mut lf = true;
                for (k, val) in labels {
                    if !lf {
                        out.push(',');
                    }
                    lf = false;
                    out.push_str(&format!("\"{k}\":\"{}\"", val.replace('"', "\\\"")));
                }
                out.push_str(&format!("}},\"value\":{v}}}"));
            };
        for f in reg.iter() {
            for s in &f.series {
                match &s.metric {
                    Metric::Counter(c) => {
                        push_sample(&mut out, &mut first, f.name, &s.labels, c.value() as f64)
                    }
                    Metric::Gauge(g) => {
                        push_sample(&mut out, &mut first, f.name, &s.labels, g.value())
                    }
                    Metric::Histogram(h) => {
                        push_sample(
                            &mut out,
                            &mut first,
                            &format!("{}_count", f.name),
                            &s.labels,
                            h.count() as f64,
                        );
                        push_sample(
                            &mut out,
                            &mut first,
                            &format!("{}_sum_seconds", f.name),
                            &s.labels,
                            h.sum_seconds(),
                        );
                        let pairs: Vec<(f64, f64)> =
                            h.cumulative().iter().map(|&(le, c)| (le, c as f64)).collect();
                        let p99 = super::quantile_from_buckets(&pairs, 0.99);
                        push_sample(
                            &mut out,
                            &mut first,
                            &format!("{}_p99", f.name),
                            &s.labels,
                            p99,
                        );
                    }
                }
            }
        }
        out.push_str("]}");
        out
    }

    // -- continuous §IV-C model-drift audit --------------------------------

    struct DriftCell {
        engine: String,
        mode: usize,
        measured: f64,
        predicted: f64,
        warned: bool,
    }

    static DRIFT: Mutex<Vec<DriftCell>> = Mutex::new(Vec::new());

    /// Fold one finished job's measured-vs-predicted traffic for
    /// `(engine, mode)` into the cumulative drift gauges. Logs a
    /// `STEF_LOG` warning the first time cumulative relative error
    /// crosses `warn_threshold` (re-arming once it falls below half).
    pub fn record_model_drift(
        engine: &str,
        mode: usize,
        measured_elems: f64,
        predicted_elems: f64,
        warn_threshold: f64,
    ) {
        if !enabled() || !measured_elems.is_finite() || !predicted_elems.is_finite() {
            return;
        }
        let mut drift = DRIFT.lock().unwrap_or_else(|p| p.into_inner());
        let idx = match drift.iter().position(|d| d.engine == engine && d.mode == mode) {
            Some(i) => i,
            None => {
                if drift.len() >= MAX_SERIES_PER_FAMILY {
                    return;
                }
                drift.push(DriftCell {
                    engine: engine.to_string(),
                    mode,
                    measured: 0.0,
                    predicted: 0.0,
                    warned: false,
                });
                drift.len() - 1
            }
        };
        let cell = &mut drift[idx];
        cell.measured += measured_elems;
        cell.predicted += predicted_elems;
        let rel = crate::model::drift_rel_err(cell.measured, cell.predicted);
        let mode_l = super::mode_label(mode);
        gauge(
            "stef_model_drift_rel_err",
            "Cumulative relative error of Sec. IV-C predicted vs measured traffic",
            &[("engine", engine), ("mode", mode_l)],
        )
        .set(rel);
        gauge(
            "stef_model_measured_elems",
            "Cumulative measured memory traffic (elements)",
            &[("engine", engine), ("mode", mode_l)],
        )
        .set(cell.measured);
        gauge(
            "stef_model_predicted_elems",
            "Cumulative Sec. IV-C predicted memory traffic (elements)",
            &[("engine", engine), ("mode", mode_l)],
        )
        .set(cell.predicted);
        if rel > warn_threshold && !cell.warned {
            cell.warned = true;
            let (engine, measured, predicted) =
                (cell.engine.clone(), cell.measured, cell.predicted);
            drop(drift);
            crate::telemetry::warn("model", move || {
                format!(
                    "traffic model drift: engine={engine} mode={mode} rel_err={rel:.3} \
                     (measured {measured:.3e} vs predicted {predicted:.3e} elems) — \
                     admission pricing and --engine auto bids may be stale"
                )
            });
        } else if rel < warn_threshold * 0.5 {
            cell.warned = false;
        }
    }

    // -- pre-registered hot-path handles -----------------------------------

    /// Per-worker counter handles, resolved once at pool construction
    /// so the dispatch path stays allocation-free.
    #[derive(Clone, Copy)]
    pub struct WorkerHandles {
        bursts: &'static Counter,
        chunks: &'static Counter,
        parks: &'static Counter,
    }

    pub fn worker_handles(idx: usize) -> WorkerHandles {
        let w = super::worker_label(idx);
        WorkerHandles {
            bursts: counter(
                "stef_worker_bursts_total",
                "Work-claim bursts per pool worker",
                &[("worker", w)],
            ),
            chunks: counter(
                "stef_worker_chunks_total",
                "Chunks claimed per pool worker",
                &[("worker", w)],
            ),
            parks: counter(
                "stef_worker_parks_total",
                "Futex parks per pool worker",
                &[("worker", w)],
            ),
        }
    }

    impl WorkerHandles {
        #[inline]
        pub fn park(&self) {
            self.parks.inc();
        }

        #[inline]
        pub fn burst(&self, claimed: u64) {
            self.bursts.inc();
            self.chunks.add(claimed);
        }
    }

    /// Pool-level handles (dispatch counters + latency histogram),
    /// resolved once at pool construction.
    #[derive(Clone, Copy)]
    pub struct PoolHandles {
        dispatches: &'static Counter,
        inline_runs: &'static Counter,
        panics: &'static Counter,
        cancelled: &'static Counter,
        latency: &'static Histogram,
    }

    pub fn pool_handles() -> PoolHandles {
        PoolHandles {
            dispatches: counter(
                "stef_pool_dispatches_total",
                "Parallel fan-outs published to the worker pool",
                &[],
            ),
            inline_runs: counter(
                "stef_pool_inline_runs_total",
                "Dispatches run inline on the caller (pool busy or tiny job)",
                &[],
            ),
            panics: counter(
                "stef_pool_panics_total",
                "Worker panics caught and healed by the pool",
                &[],
            ),
            cancelled: counter(
                "stef_pool_cancelled_total",
                "Dispatches aborted by cooperative cancellation",
                &[],
            ),
            latency: histogram(
                "stef_dispatch_seconds",
                "Wall time of one pool dispatch (publish to completion barrier)",
                &[],
                TIME_BUCKETS,
            ),
        }
    }

    impl PoolHandles {
        #[inline]
        pub fn dispatch(&self, nanos: u64) {
            self.dispatches.inc();
            self.latency.observe_ns(nanos);
        }

        #[inline]
        pub fn inline_run(&self) {
            self.inline_runs.inc();
        }

        #[inline]
        pub fn panic(&self) {
            self.panics.inc();
        }

        #[inline]
        pub fn cancelled(&self) {
            self.cancelled.inc();
        }
    }
}

// ---------------------------------------------------------------------------
// Stub (telemetry feature off): same API, empty inline bodies.
// ---------------------------------------------------------------------------

#[cfg(not(feature = "telemetry"))]
mod imp {
    pub fn set_enabled(_on: bool) {}

    #[inline]
    pub fn enabled() -> bool {
        false
    }

    pub struct Counter;

    impl Counter {
        #[inline]
        pub fn inc(&self) {}
        #[inline]
        pub fn add(&self, _n: u64) {}
        pub fn value(&self) -> u64 {
            0
        }
    }

    pub struct Gauge;

    impl Gauge {
        #[inline]
        pub fn set(&self, _v: f64) {}
        pub fn value(&self) -> f64 {
            0.0
        }
    }

    pub struct Histogram;

    impl Histogram {
        #[inline]
        pub fn observe(&self, _seconds: f64) {}
        #[inline]
        pub fn observe_ns(&self, _nanos: u64) {}
        pub fn count(&self) -> u64 {
            0
        }
        pub fn sum_seconds(&self) -> f64 {
            0.0
        }
        pub fn cumulative(&self) -> Vec<(f64, u64)> {
            Vec::new()
        }
    }

    static COUNTER: Counter = Counter;
    static GAUGE: Gauge = Gauge;
    static HISTOGRAM: Histogram = Histogram;

    pub fn counter(_n: &'static str, _h: &'static str, _l: &[(&str, &str)]) -> &'static Counter {
        &COUNTER
    }

    pub fn gauge(_n: &'static str, _h: &'static str, _l: &[(&str, &str)]) -> &'static Gauge {
        &GAUGE
    }

    pub fn histogram(
        _n: &'static str,
        _h: &'static str,
        _l: &[(&str, &str)],
        _b: &'static [f64],
    ) -> &'static Histogram {
        &HISTOGRAM
    }

    pub fn render_prometheus() -> String {
        String::new()
    }

    pub fn render_flush_jsonl(_uptime_s: f64) -> String {
        String::new()
    }

    pub fn record_model_drift(
        _engine: &str,
        _mode: usize,
        _measured: f64,
        _predicted: f64,
        _threshold: f64,
    ) {
    }

    #[derive(Clone, Copy)]
    pub struct WorkerHandles;

    pub fn worker_handles(_idx: usize) -> WorkerHandles {
        WorkerHandles
    }

    impl WorkerHandles {
        #[inline]
        pub fn park(&self) {}
        #[inline]
        pub fn burst(&self, _claimed: u64) {}
    }

    #[derive(Clone, Copy)]
    pub struct PoolHandles;

    pub fn pool_handles() -> PoolHandles {
        PoolHandles
    }

    impl PoolHandles {
        #[inline]
        pub fn dispatch(&self, _nanos: u64) {}
        #[inline]
        pub fn inline_run(&self) {}
        #[inline]
        pub fn panic(&self) {}
        #[inline]
        pub fn cancelled(&self) {}
    }
}

pub use imp::{
    counter, enabled, gauge, histogram, pool_handles, record_model_drift, render_flush_jsonl,
    render_prometheus, set_enabled, worker_handles, Counter, Gauge, Histogram, PoolHandles,
    WorkerHandles,
};

// ---------------------------------------------------------------------------
// Prometheus text parser + quantile helper (compiled unconditionally —
// consumers like `stef top` and `validate_telemetry` parse scrapes even
// when their own build has telemetry off).
// ---------------------------------------------------------------------------

/// One parsed exposition sample: `name{labels} value`.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

impl PromSample {
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn parse_value(s: &str) -> Result<f64, String> {
    match s {
        "+Inf" | "Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        other => other
            .parse::<f64>()
            .map_err(|_| format!("bad sample value {other:?}")),
    }
}

/// Parse Prometheus text exposition format 0.0.4. Comments (`# HELP`,
/// `# TYPE`) and blank lines are skipped; every sample line must parse
/// or an error naming the line is returned. Optional trailing
/// timestamps are accepted and ignored.
pub fn parse_prometheus_text(text: &str) -> Result<Vec<PromSample>, String> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |msg: &str| format!("line {}: {msg}: {raw:?}", lineno + 1);
        let (name, rest) = match line.find(['{', ' ', '\t']) {
            Some(i) => (&line[..i], &line[i..]),
            None => return Err(err("missing value")),
        };
        if !valid_name(name) {
            return Err(err("invalid metric name"));
        }
        let mut labels = Vec::new();
        let rest = if let Some(body) = rest.strip_prefix('{') {
            let mut chars = body.char_indices();
            let consumed;
            'outer: loop {
                // Label key.
                let mut key = String::new();
                let mut val = String::new();
                loop {
                    match chars.next() {
                        Some((i, '}')) if key.is_empty() => {
                            consumed = i + 1;
                            break 'outer;
                        }
                        Some((_, '=')) => break,
                        Some((_, c)) if c.is_ascii_alphanumeric() || c == '_' => key.push(c),
                        _ => return Err(err("bad label key")),
                    }
                }
                match chars.next() {
                    Some((_, '"')) => {}
                    _ => return Err(err("label value must be quoted")),
                }
                loop {
                    match chars.next() {
                        Some((_, '\\')) => match chars.next() {
                            Some((_, 'n')) => val.push('\n'),
                            Some((_, '\\')) => val.push('\\'),
                            Some((_, '"')) => val.push('"'),
                            _ => return Err(err("bad escape in label value")),
                        },
                        Some((_, '"')) => break,
                        Some((_, c)) => val.push(c),
                        None => return Err(err("unterminated label value")),
                    }
                }
                labels.push((key, val));
                match chars.next() {
                    Some((_, ',')) => continue,
                    Some((i, '}')) => {
                        consumed = i + 1;
                        break 'outer;
                    }
                    _ => return Err(err("expected ',' or '}' after label")),
                }
            }
            &body[consumed..]
        } else {
            rest
        };
        let mut fields = rest.split_ascii_whitespace();
        let value = parse_value(fields.next().ok_or_else(|| err("missing value"))?)?;
        // An optional timestamp may follow; anything beyond that is junk.
        let _ts = fields.next();
        if fields.next().is_some() {
            return Err(err("trailing garbage after value"));
        }
        out.push(PromSample { name: name.to_string(), labels, value });
    }
    Ok(out)
}

/// Estimate a quantile from cumulative histogram buckets
/// (`(upper_bound, cumulative_count)` sorted ascending, ending with
/// `+Inf`). Linear interpolation within the containing bucket;
/// `NaN` when the histogram is empty.
pub fn quantile_from_buckets(buckets: &[(f64, f64)], q: f64) -> f64 {
    let total = match buckets.last() {
        Some(&(_, t)) if t > 0.0 => t,
        _ => return f64::NAN,
    };
    let target = q.clamp(0.0, 1.0) * total;
    let mut prev_le = 0.0;
    let mut prev_cum = 0.0;
    for &(le, cum) in buckets {
        if cum >= target {
            if le.is_infinite() {
                // Best effort: the quantile lies above the last finite
                // bound; report that bound.
                return prev_le;
            }
            if cum <= prev_cum {
                return le;
            }
            return prev_le + (le - prev_le) * ((target - prev_cum) / (cum - prev_cum));
        }
        prev_le = le;
        prev_cum = cum;
    }
    prev_le
}

#[cfg(all(test, feature = "telemetry"))]
mod tests {
    use super::*;

    #[test]
    fn concurrent_increments_sum_exactly() {
        let c = counter("test_concurrent_total", "t", &[]);
        let threads = 8;
        let per = 100_000u64;
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    for _ in 0..per {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.value(), threads as u64 * per);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        static BOUNDS: &[f64] = &[0.001, 0.01, 0.1];
        let h = histogram("test_boundaries_seconds", "t", &[], BOUNDS);
        // On-boundary observations land in the bucket they bound
        // (le is inclusive), one observation past every bound lands
        // in +Inf.
        for v in [0.001, 0.0005, 0.01, 0.05, 0.1, 7.0] {
            h.observe(v);
        }
        let cum = h.cumulative();
        assert_eq!(cum.len(), 4);
        assert_eq!(cum[0], (0.001, 2)); // 0.0005, 0.001
        assert_eq!(cum[1], (0.01, 3)); // + 0.01
        assert_eq!(cum[2], (0.1, 5)); // + 0.05, 0.1
        assert!(cum[3].0.is_infinite());
        assert_eq!(cum[3].1, 6); // + 7.0
        assert_eq!(h.count(), 6);
        assert!((h.sum_seconds() - 7.1615).abs() < 1e-6);
    }

    #[test]
    fn label_cardinality_cap_overflows() {
        // 80 distinct label sets → the first MAX_SERIES_PER_FAMILY
        // register real series, the rest all alias one overflow series.
        let labels: Vec<String> = (0..80).map(|i| format!("job-{i}")).collect();
        for l in &labels {
            counter("test_cardinality_total", "t", &[("job", l)]).inc();
        }
        let text = render_prometheus();
        let series: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("test_cardinality_total"))
            .collect();
        assert_eq!(series.len(), MAX_SERIES_PER_FAMILY + 1);
        let overflow = series
            .iter()
            .find(|l| l.contains("overflow=\"true\""))
            .expect("overflow series rendered");
        let v: f64 = overflow.rsplit(' ').next().unwrap().parse().unwrap();
        assert_eq!(v as u64, 80 - MAX_SERIES_PER_FAMILY as u64);
    }

    #[test]
    fn render_parse_roundtrip() {
        counter("test_roundtrip_total", "a counter", &[("k", "va\"l\\ue")]).add(42);
        gauge("test_roundtrip_gauge", "a gauge", &[]).set(2.5);
        static BOUNDS: &[f64] = &[0.5, 1.5];
        let h = histogram("test_roundtrip_seconds", "a histogram", &[], BOUNDS);
        h.observe(1.0);
        let text = render_prometheus();
        let samples = parse_prometheus_text(&text).expect("own exposition parses");
        let c = samples
            .iter()
            .find(|s| s.name == "test_roundtrip_total")
            .unwrap();
        assert_eq!(c.value, 42.0);
        assert_eq!(c.label("k"), Some("va\"l\\ue"));
        let g = samples
            .iter()
            .find(|s| s.name == "test_roundtrip_gauge")
            .unwrap();
        assert_eq!(g.value, 2.5);
        let buckets: Vec<&PromSample> = samples
            .iter()
            .filter(|s| s.name == "test_roundtrip_seconds_bucket")
            .collect();
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[0].value, 0.0); // le=0.5
        assert_eq!(buckets[1].value, 1.0); // le=1.5
        assert_eq!(buckets[2].label("le"), Some("+Inf"));
        assert_eq!(buckets[2].value, 1.0);
        let count = samples
            .iter()
            .find(|s| s.name == "test_roundtrip_seconds_count")
            .unwrap();
        assert_eq!(count.value, 1.0);
    }

    #[test]
    fn quantile_interpolates() {
        // 100 observations uniform in (0, 1]: cum = [(0.25, 25), (0.5, 50), (1.0, 100), (inf, 100)]
        let b = [(0.25, 25.0), (0.5, 50.0), (1.0, 100.0), (f64::INFINITY, 100.0)];
        let p50 = quantile_from_buckets(&b, 0.5);
        assert!((p50 - 0.5).abs() < 1e-9, "p50={p50}");
        let p99 = quantile_from_buckets(&b, 0.99);
        assert!((p99 - 0.99).abs() < 0.02, "p99={p99}");
        assert!(quantile_from_buckets(&[], 0.5).is_nan());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_prometheus_text("ok_total 1\n").is_ok());
        assert!(parse_prometheus_text("bad name 1\n").is_err());
        assert!(parse_prometheus_text("x{unterminated=\"v 1\n").is_err());
        assert!(parse_prometheus_text("x 1 2 3\n").is_err());
        assert!(parse_prometheus_text("x{a=\"b\"} +Inf\n").is_ok());
    }
}
