//! Checkpoint/resume for long CPD-ALS runs.
//!
//! Decomposing a billion-non-zero tensor takes hours; a crash at
//! iteration 40 of 50 should not cost the whole run. The driver
//! serializes its complete ALS state — factors, `λ`, fit history,
//! iteration count, RNG seed, and engine identity — every `N` iterations
//! so an interrupted run can restart exactly where it stopped.
//!
//! # Format
//!
//! A line-oriented text file. Every `f64` is stored as the 16-hex-digit
//! big-endian bit pattern (`f64::to_bits`), so the round trip is *exact*:
//! a resumed run replays the identical floating-point trajectory of an
//! uninterrupted one. The file ends with an FNV-64 checksum of everything
//! before it, and saves go through a `.tmp` + rename so a crash mid-write
//! can never destroy the previous good checkpoint.

use linalg::Mat;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Current on-disk format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Endianness tag written into checkpoint/journal headers. The formats
/// are text (floats as big-endian hex bit patterns), so `be` is the only
/// tag this implementation ever produces or accepts; the token exists so
/// a hypothetical binary sibling format written on a different
/// convention is rejected with a typed [`CheckpointError::Version`]
/// instead of a checksum mismatch masquerading as corruption.
pub const CHECKPOINT_ENDIANNESS: &str = "be";

/// Why a checkpoint could not be saved or loaded.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file is truncated, checksum-mismatched, or malformed.
    Corrupt { reason: String },
    /// The file is valid but does not match the requested run (wrong
    /// dims or rank).
    Mismatch { reason: String },
    /// The file declares a future format version or a foreign
    /// endianness. Detected from the header *before* checksum
    /// verification, so a file this build cannot read reports *why*
    /// instead of a misleading checksum mismatch.
    Version {
        /// Version the file declares.
        found: u32,
        /// Newest version this build reads.
        supported: u32,
        /// Human-readable specifics (e.g. the offending endianness tag).
        detail: String,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Corrupt { reason } => write!(f, "corrupt checkpoint: {reason}"),
            CheckpointError::Mismatch { reason } => {
                write!(f, "checkpoint does not match this run: {reason}")
            }
            CheckpointError::Version {
                found,
                supported,
                detail,
            } => write!(
                f,
                "unreadable format version: file declares v{found}, this build reads up to v{supported} ({detail})"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// When and where the CPD driver writes checkpoints.
#[derive(Clone, Debug)]
pub struct CheckpointPolicy {
    /// Target file; the atomic save uses `<path>.tmp` as scratch.
    pub path: PathBuf,
    /// Write after every `every` completed iterations (0 disables).
    pub every: usize,
}

impl CheckpointPolicy {
    /// Checkpoint to `path` every `every` iterations.
    pub fn new(path: impl Into<PathBuf>, every: usize) -> Self {
        CheckpointPolicy {
            path: path.into(),
            every,
        }
    }
}

/// A complete snapshot of CPD-ALS state after some iteration.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// Format version (see [`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// Completed iterations at snapshot time.
    pub iteration: usize,
    /// The run's factor-initialization seed (recovery reinits derive
    /// fresh seeds from it, so it is part of the state).
    pub seed: u64,
    /// Decomposition rank.
    pub rank: usize,
    /// Original mode lengths.
    pub dims: Vec<usize>,
    /// Engine name the snapshot was taken under (informational; any
    /// engine over the same tensor can resume, at possibly different
    /// floating-point trajectories).
    pub engine: String,
    /// Component weights.
    pub lambda: Vec<f64>,
    /// Fit after each completed iteration.
    pub fits: Vec<f64>,
    /// Factor matrices in original mode order.
    pub factors: Vec<Mat>,
}

pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

pub(crate) fn hex_f64(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Parses a `<magic> v<N>[ <endianness>]` header line shared by the
/// checkpoint and the job-journal formats. Returns the declared version,
/// or a typed error: [`CheckpointError::Version`] for a future version
/// or a foreign endianness (checked *before* any checksum, so those
/// files fail with the real reason), [`CheckpointError::Corrupt`] for a
/// line that is not a header at all.
pub(crate) fn parse_versioned_header(
    line: &str,
    magic: &str,
    supported: u32,
) -> Result<u32, CheckpointError> {
    let rest = line.strip_prefix(magic).and_then(|r| r.strip_prefix(" v")).ok_or_else(|| {
        CheckpointError::Corrupt {
            reason: format!("missing '{magic} v<N>' header"),
        }
    })?;
    let (ver_tok, endian_tok) = match rest.split_once(' ') {
        Some((v, e)) => (v, Some(e.trim())),
        None => (rest, None),
    };
    let found: u32 = ver_tok.parse().map_err(|_| CheckpointError::Corrupt {
        reason: format!("bad version token '{ver_tok}' in '{magic}' header"),
    })?;
    if found > supported {
        return Err(CheckpointError::Version {
            found,
            supported,
            detail: "written by a newer build".into(),
        });
    }
    // Files from the pre-endianness-tag era carry no token; they are
    // all this implementation's own big-endian-hex text format.
    if let Some(endian) = endian_tok {
        if endian != CHECKPOINT_ENDIANNESS {
            return Err(CheckpointError::Version {
                found,
                supported,
                detail: format!(
                    "endianness tag '{endian}', this build reads '{CHECKPOINT_ENDIANNESS}'"
                ),
            });
        }
    }
    Ok(found)
}

pub(crate) fn parse_f64(tok: &str, what: &str) -> Result<f64, CheckpointError> {
    let bits = u64::from_str_radix(tok, 16).map_err(|_| CheckpointError::Corrupt {
        reason: format!("bad {what} float '{tok}'"),
    })?;
    Ok(f64::from_bits(bits))
}

fn parse_usize(tok: &str, what: &str) -> Result<usize, CheckpointError> {
    tok.parse().map_err(|_| CheckpointError::Corrupt {
        reason: format!("bad {what} '{tok}'"),
    })
}

impl Checkpoint {
    /// Serializes to the text format (including the trailing checksum).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut body = String::new();
        body.push_str(&format!(
            "stef-checkpoint v{} {}\n",
            self.version, CHECKPOINT_ENDIANNESS
        ));
        body.push_str(&format!("iteration {}\n", self.iteration));
        body.push_str(&format!("seed {}\n", self.seed));
        body.push_str(&format!("rank {}\n", self.rank));
        body.push_str("dims");
        for &d in &self.dims {
            body.push_str(&format!(" {d}"));
        }
        body.push('\n');
        body.push_str(&format!("engine {}\n", self.engine));
        body.push_str("lambda");
        for &l in &self.lambda {
            body.push_str(&format!(" {}", hex_f64(l)));
        }
        body.push('\n');
        body.push_str("fits");
        for &f in &self.fits {
            body.push_str(&format!(" {}", hex_f64(f)));
        }
        body.push('\n');
        for (m, f) in self.factors.iter().enumerate() {
            body.push_str(&format!("factor {m} {} {}\n", f.rows(), f.cols()));
            for i in 0..f.rows() {
                let row: Vec<String> = f.row(i).iter().map(|&v| hex_f64(v)).collect();
                body.push_str(&row.join(" "));
                body.push('\n');
            }
        }
        body.push_str(&format!("checksum {:016x}\n", fnv64(body.as_bytes())));
        body.into_bytes()
    }

    /// Atomic save: writes `<path>.tmp`, then renames over `path`.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&self.to_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Parses the text format, verifying the checksum and internal
    /// consistency (factor shapes vs dims and rank).
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
        let text = std::str::from_utf8(bytes).map_err(|_| CheckpointError::Corrupt {
            reason: "not UTF-8".into(),
        })?;
        // Validate the version header *before* the checksum: a file this
        // build cannot read must report the real reason, not a checksum
        // mismatch (a v2 file legitimately checksums differently).
        let first = text.lines().next().ok_or(CheckpointError::Corrupt {
            reason: "empty file".into(),
        })?;
        let version = parse_versioned_header(first, "stef-checkpoint", CHECKPOINT_VERSION)?;
        // Split off and verify the checksum line.
        let trimmed = text.trim_end_matches('\n');
        let (body_end, checksum_line) =
            trimmed
                .rfind('\n')
                .map(|i| (i + 1, &trimmed[i + 1..]))
                .ok_or(CheckpointError::Corrupt {
                    reason: "truncated: no checksum line".into(),
                })?;
        let want = checksum_line
            .strip_prefix("checksum ")
            .ok_or(CheckpointError::Corrupt {
                reason: "truncated: missing checksum line".into(),
            })?;
        let want = u64::from_str_radix(want.trim(), 16).map_err(|_| CheckpointError::Corrupt {
            reason: "bad checksum value".into(),
        })?;
        let body = &text[..body_end];
        let got = fnv64(body.as_bytes());
        if got != want {
            return Err(CheckpointError::Corrupt {
                reason: format!("checksum mismatch (stored {want:016x}, computed {got:016x})"),
            });
        }

        let mut lines = body.lines();
        let mut next_line = |what: &str| {
            lines.next().ok_or_else(|| CheckpointError::Corrupt {
                reason: format!("truncated before {what}"),
            })
        };

        next_line("header")?; // already validated above

        let field = |line: &str, key: &str| -> Result<String, CheckpointError> {
            line.strip_prefix(key)
                .and_then(|r| r.strip_prefix(' '))
                .map(|r| r.to_string())
                .ok_or(CheckpointError::Corrupt {
                    reason: format!("expected '{key} ...', got '{line}'"),
                })
        };

        let iteration = parse_usize(&field(next_line("iteration")?, "iteration")?, "iteration")?;
        let seed: u64 = field(next_line("seed")?, "seed")?
            .parse()
            .map_err(|_| CheckpointError::Corrupt {
                reason: "bad seed".into(),
            })?;
        let rank = parse_usize(&field(next_line("rank")?, "rank")?, "rank")?;
        let dims_line = next_line("dims")?;
        let dims: Vec<usize> = field(dims_line, "dims")?
            .split_whitespace()
            .map(|t| parse_usize(t, "dim"))
            .collect::<Result<_, _>>()?;
        let engine = field(next_line("engine")?, "engine")?;
        let lambda: Vec<f64> = field(next_line("lambda")?, "lambda")?
            .split_whitespace()
            .map(|t| parse_f64(t, "lambda"))
            .collect::<Result<_, _>>()?;
        let fits: Vec<f64> = next_line("fits")?
            .strip_prefix("fits")
            .ok_or(CheckpointError::Corrupt {
                reason: "expected 'fits' line".into(),
            })?
            .split_whitespace()
            .map(|t| parse_f64(t, "fit"))
            .collect::<Result<_, _>>()?;

        if rank == 0 || dims.is_empty() {
            return Err(CheckpointError::Corrupt {
                reason: "rank and dims must be positive".into(),
            });
        }
        if lambda.len() != rank {
            return Err(CheckpointError::Corrupt {
                reason: format!("lambda has {} entries, rank is {rank}", lambda.len()),
            });
        }

        let mut factors = Vec::with_capacity(dims.len());
        for m in 0..dims.len() {
            let hdr = next_line("factor header")?;
            let toks: Vec<&str> = hdr.split_whitespace().collect();
            if toks.len() != 4 || toks[0] != "factor" {
                return Err(CheckpointError::Corrupt {
                    reason: format!("expected 'factor {m} <rows> <cols>', got '{hdr}'"),
                });
            }
            let mode = parse_usize(toks[1], "factor mode")?;
            let rows = parse_usize(toks[2], "factor rows")?;
            let cols = parse_usize(toks[3], "factor cols")?;
            if mode != m {
                return Err(CheckpointError::Corrupt {
                    reason: format!("factor {mode} out of order (expected {m})"),
                });
            }
            if rows != dims[m] || cols != rank {
                return Err(CheckpointError::Corrupt {
                    reason: format!(
                        "factor {m} is {rows}x{cols}, dims/rank say {}x{rank}",
                        dims[m]
                    ),
                });
            }
            let mut data = Vec::with_capacity(rows * cols);
            for i in 0..rows {
                let row_line = next_line("factor row")?;
                let mut count = 0usize;
                for t in row_line.split_whitespace() {
                    data.push(parse_f64(t, "factor entry")?);
                    count += 1;
                }
                if count != cols {
                    return Err(CheckpointError::Corrupt {
                        reason: format!("factor {m} row {i} has {count} entries, expected {cols}"),
                    });
                }
            }
            factors.push(Mat::from_vec(rows, cols, data));
        }
        if lines.next().is_some() {
            return Err(CheckpointError::Corrupt {
                reason: "trailing data after factors".into(),
            });
        }

        Ok(Checkpoint {
            version,
            iteration,
            seed,
            rank,
            dims,
            engine,
            lambda,
            fits,
            factors,
        })
    }

    /// Loads and validates a checkpoint file.
    pub fn load(path: &Path) -> Result<Checkpoint, CheckpointError> {
        Checkpoint::from_bytes(&std::fs::read(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            version: CHECKPOINT_VERSION,
            iteration: 7,
            seed: 42,
            rank: 2,
            dims: vec![3, 4],
            engine: "stef".into(),
            lambda: vec![1.5, -0.25],
            fits: vec![0.1, 0.2, 1.0 / 3.0, f64::MIN_POSITIVE, -0.0],
            factors: vec![
                Mat::from_fn(3, 2, |i, j| (i * 2 + j) as f64 * 0.3 + 0.01),
                Mat::from_fn(4, 2, |i, j| 1.0 / (1.0 + i as f64 + j as f64)),
            ],
        }
    }

    #[test]
    fn round_trips_exactly() {
        let cp = sample();
        let back = Checkpoint::from_bytes(&cp.to_bytes()).expect("round trip");
        assert_eq!(back.iteration, cp.iteration);
        assert_eq!(back.seed, cp.seed);
        assert_eq!(back.dims, cp.dims);
        assert_eq!(back.engine, cp.engine);
        // Bit-exact floats, including the awkward ones.
        assert_eq!(back.lambda, cp.lambda);
        for (a, b) in back.factors.iter().zip(&cp.factors) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
    }

    #[test]
    fn save_and_load_through_disk() {
        let dir = std::env::temp_dir().join("stef-ckpt-test-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.ckpt");
        let cp = sample();
        cp.save(&path).expect("save");
        let back = Checkpoint::load(&path).expect("load");
        assert_eq!(back, cp);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = sample().to_bytes();
        for cut in [bytes.len() / 4, bytes.len() / 2, bytes.len() - 10] {
            match Checkpoint::from_bytes(&bytes[..cut]) {
                Err(CheckpointError::Corrupt { .. }) => {}
                other => panic!("cut at {cut}: expected Corrupt, got {other:?}"),
            }
        }
    }

    #[test]
    fn bit_flip_is_detected() {
        let mut bytes = sample().to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] = if bytes[mid] == b'0' { b'1' } else { b'0' };
        assert!(matches!(
            Checkpoint::from_bytes(&bytes),
            Err(CheckpointError::Corrupt { .. })
        ));
    }

    #[test]
    fn future_version_is_typed_not_corrupt() {
        let mut cp = sample();
        cp.version = CHECKPOINT_VERSION + 1;
        match Checkpoint::from_bytes(&cp.to_bytes()) {
            Err(CheckpointError::Version {
                found, supported, ..
            }) => {
                assert_eq!(found, CHECKPOINT_VERSION + 1);
                assert_eq!(supported, CHECKPOINT_VERSION);
            }
            other => panic!("expected Version error, got {other:?}"),
        }
    }

    #[test]
    fn wrong_endianness_is_typed_not_corrupt() {
        let text = String::from_utf8(sample().to_bytes()).unwrap();
        let le = text.replacen("stef-checkpoint v1 be", "stef-checkpoint v1 le", 1);
        match Checkpoint::from_bytes(le.as_bytes()) {
            Err(CheckpointError::Version { detail, .. }) => {
                assert!(detail.contains("le"), "detail should name the tag: {detail}");
            }
            other => panic!("expected Version error, got {other:?}"),
        }
    }

    #[test]
    fn legacy_header_without_endianness_still_loads() {
        // Pre-tag files say just "stef-checkpoint v1"; rebuild the
        // checksum after rewriting the header so only the header differs.
        let text = String::from_utf8(sample().to_bytes()).unwrap();
        let legacy = text.replacen("stef-checkpoint v1 be", "stef-checkpoint v1", 1);
        let body_end = legacy.trim_end_matches('\n').rfind('\n').unwrap() + 1;
        let rebuilt = format!(
            "{}checksum {:016x}\n",
            &legacy[..body_end],
            fnv64(legacy[..body_end].as_bytes())
        );
        let back = Checkpoint::from_bytes(rebuilt.as_bytes()).expect("legacy load");
        assert_eq!(back, sample());
    }

    #[test]
    fn inconsistent_shapes_are_corrupt() {
        let mut cp = sample();
        cp.lambda.push(9.0); // lambda no longer matches rank
        assert!(matches!(
            Checkpoint::from_bytes(&cp.to_bytes()),
            Err(CheckpointError::Corrupt { .. })
        ));
    }
}
