//! Persistent worker-pool runtime: epoch-dispatched, work-stealing,
//! allocation-free parallel fan-out.
//!
//! Every parallel region in this workspace has the same shape: run
//! `f(th)` once for each *logical thread* `0..nthreads` of an
//! nnz-balanced schedule, then join. The old substrate
//! (`sync::fanout`) spawned fresh OS threads through
//! `std::thread::scope` on every call — four call sites per MTTKRP
//! pass, one pass per mode per ALS iteration — so a 50-iteration CPD
//! paid hundreds of spawn/join round-trips, each with its own heap
//! allocations, and then handed every worker a *static* contiguous
//! block of logical threads, so one slow worker stalled the whole mode
//! even though the logical-thread decomposition was perfectly balanced.
//!
//! [`WorkerPool`] replaces that with workers created **once** and
//! parked between dispatches:
//!
//! * **Epoch dispatch.** A job is published as a raw function pointer
//!   plus an opaque context pointer (the monomorphizing trampoline the
//!   kernels already use for their `Emitter`s — no `&dyn Fn(usize)`
//!   anywhere on the hot path), guarded by a seqlock-style `seq`
//!   counter: odd while the dispatcher writes the slot, bumped to even
//!   to publish. Workers that observe a torn window simply retry.
//! * **Dynamic claiming (work stealing).** Workers claim logical
//!   threads from a single atomic cursor in small chunks instead of
//!   being assigned static ranges, so a straggler (NUMA, frequency
//!   scaling, co-tenancy) only delays the chunks it actually holds.
//!   The cursor word packs a 32-bit job id next to the 32-bit cursor,
//!   so a stale worker waking up with a previous job's snapshot cannot
//!   claim work from the current one (ids wrap only after 2^32
//!   dispatches — see [`pack`] for why that ABA window is accepted).
//! * **Bounded spin-then-park.** Workers spin briefly (cheap when
//!   dispatches arrive back-to-back inside one ALS sweep), then yield,
//!   then park on a condvar. The dispatcher does the same while
//!   waiting for completion. Mutex/condvar on Linux are futex-based:
//!   steady-state dispatch performs **zero allocator calls**, which
//!   `tests/alloc_free.rs` pins with a counting global allocator.
//! * **Determinism.** Which OS worker runs which logical thread is
//!   scheduling-dependent, but every combining step in the kernels
//!   (privatized reduction, boundary-row handling, gram reduction)
//!   already merges contributions in *logical-thread order*, never in
//!   arrival order — so results are bitwise identical to the scoped
//!   fallback for any worker count (`tests/determinism.rs`).
//!
//! [`Executor`] is the handle the engine and kernels carry: either a
//! shared [`WorkerPool`] or the legacy [`scoped_fanout`] path
//! (selectable via `StefOptions::runtime`) kept for A/B benchmarking.
//! [`global`] is the process-wide default used by call sites that have
//! no engine (the `sync::fanout` free function, and the
//! `linalg::par` hook that routes `gram`/`matmul`/swap-count
//! fan-outs through the same pool).

use crate::numa::{self, NumaPolicy, NumaTopology};
use crate::sync::{lock_unpoisoned, wait_unpoisoned};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, TryLockError};
use std::time::{Duration, Instant};

/// Spin iterations (with `spin_loop` hints) before a waiter starts
/// yielding. Kept modest so oversubscribed pools cede the core quickly.
const SPIN_HINTS: usize = 256;
/// `yield_now` rounds after the spin phase before parking on a condvar.
const YIELD_ROUNDS: usize = 64;

/// Which execution substrate the engine fans out on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Runtime {
    /// The persistent worker pool (the default).
    #[default]
    Pool,
    /// `std::thread::scope` with static contiguous blocks per worker —
    /// the pre-pool behavior, kept selectable for A/B benchmarks.
    Scoped,
}

/// Monotonic nanoseconds since a process-wide anchor, for storing
/// deadlines in an `AtomicU64` (0 is reserved for "no deadline").
pub(crate) fn now_ns() -> u64 {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    let anchor = *ANCHOR.get_or_init(Instant::now);
    (anchor.elapsed().as_nanos() as u64).max(1)
}

/// The shared state behind a [`CancelToken`]: a sticky flag plus an
/// optional deadline. Kept separate from the token so a pool can cache a
/// raw pointer to it and check it with one relaxed load per chunk claim.
struct CancelState {
    flag: AtomicBool,
    /// Deadline as [`now_ns`] nanoseconds; 0 = no deadline armed.
    deadline_ns: AtomicU64,
}

impl CancelState {
    /// Returns whether the token is (now) cancelled, promoting an
    /// expired deadline into the sticky flag. Reads the clock only when
    /// a deadline is armed.
    fn expired_promote(&self) -> bool {
        if self.flag.load(Ordering::Relaxed) {
            return true;
        }
        let dl = self.deadline_ns.load(Ordering::Relaxed);
        if dl != 0 && now_ns() >= dl {
            self.flag.store(true, Ordering::Relaxed);
            return true;
        }
        false
    }
}

/// A cooperative cancellation token: a shared sticky flag plus an
/// optional deadline.
///
/// Cancellation is *cooperative*: setting the token never interrupts a
/// running chunk. The worker pool checks the flag once (one relaxed
/// load) per chunk claim and skips the remaining logical threads of the
/// job; the ALS driver checks it between modes and iterations and turns
/// it into a typed [`crate::StefError::Cancelled`] after writing a
/// checkpoint. Clones share state — cancel any clone, all observers see
/// it.
#[derive(Clone)]
pub struct CancelToken {
    state: Arc<CancelState>,
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.is_cancelled())
            .field("deadline_armed", &self.deadline_armed())
            .finish()
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    /// A fresh, un-cancelled token with no deadline.
    pub fn new() -> Self {
        CancelToken {
            state: Arc::new(CancelState {
                flag: AtomicBool::new(false),
                deadline_ns: AtomicU64::new(0),
            }),
        }
    }

    /// Requests cancellation. Sticky: there is no un-cancel.
    pub fn cancel(&self) {
        self.state.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested (flag only — does not
    /// read the clock; see [`CancelToken::expired`]).
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.state.flag.load(Ordering::Relaxed)
    }

    /// Arms (or re-arms) a deadline `after` from now. The deadline is
    /// promoted into the sticky flag by whichever observer first calls
    /// [`CancelToken::expired`] past it.
    pub fn set_deadline(&self, after: Duration) {
        let dl = now_ns().saturating_add(after.as_nanos().min(u64::MAX as u128) as u64);
        self.state.deadline_ns.store(dl.max(1), Ordering::Relaxed);
    }

    /// Whether a deadline is armed.
    pub fn deadline_armed(&self) -> bool {
        self.state.deadline_ns.load(Ordering::Relaxed) != 0
    }

    /// Whether an armed deadline has passed — distinguishes a timeout
    /// from an explicit [`CancelToken::cancel`] after the fact.
    pub fn deadline_expired(&self) -> bool {
        let dl = self.state.deadline_ns.load(Ordering::Relaxed);
        dl != 0 && now_ns() >= dl
    }

    /// Whether the token is cancelled *or* its deadline has passed,
    /// promoting an expired deadline into the sticky flag.
    pub fn expired(&self) -> bool {
        self.state.expired_promote()
    }
}

/// Why a fan-out did not run every logical thread to completion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FanoutError {
    /// At least one logical thread panicked. The panicked threads are
    /// still counted as completed (the join barrier always resolves);
    /// the message is the last recorded panic payload.
    Panicked(String),
    /// The installed [`CancelToken`] fired; unclaimed logical threads
    /// were skipped. Already-claimed chunks ran to completion.
    Cancelled,
}

impl std::fmt::Display for FanoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FanoutError::Panicked(msg) => write!(f, "worker panicked during fan-out: {msg}"),
            FanoutError::Cancelled => write!(f, "fan-out cancelled"),
        }
    }
}

impl std::error::Error for FanoutError {}

/// Best-effort extraction of a human-readable message from a panic
/// payload (allocates — only ever runs on the panic path).
pub(crate) fn payload_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Counters one pool worker accumulates across its lifetime.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkerCounters {
    /// Dispatches in which this worker claimed at least one chunk.
    pub busy: u64,
    /// Chunks dynamically claimed from the shared cursor ("steals").
    pub chunks: u64,
    /// Times this worker gave up spinning and parked on the condvar.
    pub parks: u64,
}

/// Aggregate runtime counters, surfaced through `stef::counters` and
/// the `stef analyze` CLI.
#[derive(Clone, Debug, Default)]
pub struct RuntimeCounters {
    /// Total workers (spawned pool threads + the dispatching caller).
    pub workers: usize,
    /// Jobs dispatched through the pool machinery.
    pub dispatches: u64,
    /// Fan-outs executed inline (single logical thread, reentrant
    /// calls, or a contended dispatcher).
    pub inline_runs: u64,
    /// Chunks the dispatching thread claimed for itself.
    pub dispatcher_chunks: u64,
    /// Dispatches in which at least one logical thread panicked (the
    /// panic was isolated and surfaced as a typed error).
    pub panics: u64,
    /// Dispatches cut short by an installed [`CancelToken`].
    pub cancelled_jobs: u64,
    /// Worker threads revived in place after a panic escaped the
    /// per-chunk isolation boundary.
    pub resurrections: u64,
    /// Dead worker threads replaced with freshly spawned ones.
    pub respawns: u64,
    /// Worker threads the pool wanted but could not spawn (at
    /// construction or during healing); the pool degrades to fewer
    /// workers instead of failing.
    pub spawn_failures: u64,
    /// Per spawned worker: busy/steal/park counts.
    pub per_worker: Vec<WorkerCounters>,
}

/// One spawned worker's counter slab, cache-line padded so neighbours
/// never false-share.
#[repr(align(64))]
#[derive(Default)]
struct WorkerStat {
    busy: AtomicU64,
    chunks: AtomicU64,
    parks: AtomicU64,
}

/// One NUMA segment's claim cursor, cache-line padded so cursors of
/// different nodes never false-share. Packs `(job_id << 32) | cursor`
/// exactly like the single-cursor layout it generalizes.
#[repr(align(64))]
struct ClaimCursor {
    cur: AtomicU64,
}

/// One spawned worker's NUMA placement, fixed at pool construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkerPlacement {
    /// Claim-segment index (position in the pool's node list, not the
    /// kernel node id). 0 when placement is off.
    pub node: usize,
    /// Whether `sched_setaffinity` to the node's CPUs succeeded on this
    /// worker's thread. Always `false` when placement is off, off
    /// Linux, or when the affinity call was rejected.
    pub pinned: bool,
}

/// Shared dispatcher/worker state. All job fields are atomics: a worker
/// waking mid-publish may read a torn *combination*, but never tears an
/// individual field, and the seqlock validation below discards any
/// inconsistent snapshot before it can be used.
struct Shared {
    /// Seqlock word: odd while the dispatcher writes the job slot,
    /// even once published. `seq >> 1` is the job id.
    seq: AtomicU64,
    /// Trampoline `fn(*const (), usize)` stored as an address.
    call: AtomicUsize,
    /// Opaque context pointer (the borrowed closure) for the trampoline.
    ctx: AtomicUsize,
    nthreads: AtomicUsize,
    chunk: AtomicUsize,
    /// Per-NUMA-segment claim cursors, each
    /// `(job_id << 32) | next_unclaimed_logical_thread` within its
    /// segment. Segment `i` of a job covers logical threads
    /// `[i·nthreads/N, (i+1)·nthreads/N)`; workers drain their own
    /// node's segment first, then steal from the others. Length 1 when
    /// NUMA placement is off — which degenerates to exactly the single
    /// shared cursor this generalizes.
    work: Vec<ClaimCursor>,
    /// Home segment per spawned worker index (all zeros when placement
    /// is off). The dispatching caller always homes at segment 0.
    home_node: Vec<usize>,
    /// CPUs each spawned worker pins to at startup (empty = no pin).
    pin_cpus: Vec<Vec<usize>>,
    /// Whether each spawned worker's affinity call succeeded.
    pinned: Vec<AtomicBool>,
    /// Logical threads fully executed for the current job.
    completed: AtomicUsize,
    shutdown: AtomicBool,
    /// Parking lot for idle workers.
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
    /// Parking lot for a dispatcher waiting on completion.
    done_lock: Mutex<()>,
    done_cv: Condvar,
    done_parked: AtomicBool,
    /// Raw pointer to the [`CancelState`] of the installed token (0 =
    /// none). The owning `Arc` is retained in `WorkerPool::installed`
    /// for the pool's whole lifetime, so dereferencing is always safe
    /// while the pool is alive.
    cancel_ptr: AtomicUsize,
    /// Logical threads of the *current* job that panicked (reset at
    /// publish). Panicked threads are still counted in `completed`.
    panicked: AtomicUsize,
    /// Last recorded panic payload of the current job.
    panic_msg: Mutex<Option<String>>,
    /// Whether the current job's cursor was swallowed by cancellation.
    job_cancelled: AtomicBool,
    /// Workers revived in place after an escaped panic.
    resurrections: AtomicU64,
    /// Worker threads that have begun executing (ever; respawns count
    /// again). [`WorkerPool::new`] waits for this to reach the spawn
    /// count so per-thread runtime startup — the stack-overflow-handler
    /// install and its thread-name allocation — happens before the
    /// constructor returns, keeping post-construction dispatch
    /// genuinely allocation-free.
    started: AtomicUsize,
    stats: Vec<WorkerStat>,
    /// Per-worker metrics-registry handles, resolved at construction
    /// (registration locks and allocates; incrementing does neither),
    /// so the worker loop can mirror parks/bursts into the registry
    /// without breaking the zero-alloc dispatch invariant. Zero-sized
    /// no-ops without the `telemetry` feature.
    wmetrics: Vec<crate::metrics::WorkerHandles>,
}

/// The installed cancel state, if any. SAFETY: see `Shared::cancel_ptr`.
#[inline]
fn cancel_state(s: &Shared) -> Option<&CancelState> {
    let p = s.cancel_ptr.load(Ordering::Relaxed);
    if p == 0 {
        None
    } else {
        Some(unsafe { &*(p as *const CancelState) })
    }
}

/// One-relaxed-load cancellation check used per chunk claim.
#[inline]
fn cancel_flag(s: &Shared) -> bool {
    cancel_state(s).is_some_and(|c| c.flag.load(Ordering::Relaxed))
}

// SAFETY: `ctx` is an address dereferenced only through the matching
// trampoline while the dispatching call frame is alive — the dispatch
// protocol (completion barrier + job-id-tagged cursor) guarantees no
// claim outlives the dispatch that published it.
unsafe impl Send for Shared {}
unsafe impl Sync for Shared {}

/// Packs the claim word: `(job_id << 32) | next_unclaimed_thread`.
///
/// The job id is the low 32 bits of `seq >> 1`, so it wraps after 2^32
/// dispatches: a worker stalled with a snapshot *exactly* 2^32 jobs old
/// whose cursor value also matches could in principle pass the CAS and
/// claim stale work (classic ABA). This is an accepted, documented
/// assumption rather than a widened id — at the measured sub-microsecond
/// dispatch latency, 2^32 back-to-back dispatches take over an hour of
/// nothing but dispatch, during which the stalled worker would have to
/// stay descheduled between two adjacent loads without the OS ever
/// running it; no realistic schedule produces that.
#[inline]
fn pack(id: u32, cursor: u32) -> u64 {
    (u64::from(id) << 32) | u64::from(cursor)
}

#[inline]
fn unpack(w: u64) -> (u32, u32) {
    ((w >> 32) as u32, w as u32)
}

thread_local! {
    /// Address of the `Shared` block of the pool this thread serves as
    /// a worker (0 on non-pool threads). Scoped *per pool* so a worker
    /// of one pool can still dispatch on a different, idle pool — e.g.
    /// a kernel closure running on an engine's pool calling
    /// `linalg::par::fanout`, which routes to the global pool. Only a
    /// fan-out back onto the worker's *own* pool is forced inline:
    /// dispatching there would park on a completion barrier this very
    /// thread is supposed to help drain. Cross-pool dispatch cycles
    /// cannot deadlock because a pool's `dispatch_lock` is only ever
    /// `try_lock`ed, failing over to inline execution.
    static WORKER_OF: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Monomorphized per-closure entry point — the only indirect call per
/// logical thread, same cost as the old closure-ref dispatch.
fn trampoline<F: Fn(usize) + Sync>(ctx: usize, th: usize) {
    // SAFETY: `ctx` was produced from `&F` by the `run::<F>` activation
    // that published this job; the completion barrier keeps that borrow
    // alive until every claimed logical thread has finished.
    let f = unsafe { &*(ctx as *const F) };
    f(th);
}

/// Claims chunks from the shared cursor and runs them until the job is
/// drained (or superseded). Returns the number of chunks claimed.
///
/// The `notify_done` flag is set for workers (the dispatcher polls the
/// `completed` counter itself and must not be woken by its own claims).
#[allow(clippy::too_many_arguments)]
fn drain_work(
    s: &Shared,
    id: u32,
    nthreads: usize,
    chunk: usize,
    run: impl Fn(usize),
    notify_done: bool,
    promote_deadline: bool,
    home: usize,
) -> u64 {
    let nsegs = s.work.len();
    let mut claimed = 0u64;
    // Node-local preference: drain the home segment dry before touching
    // the others (cross-node claims are the straggler insurance, not the
    // steady state). With one segment this is the old single-cursor loop.
    for off in 0..nsegs {
        let i = (home + off) % nsegs;
        let slot = &s.work[i].cur;
        let (_, seg_hi) = numa::node_block(nthreads, nsegs, i);
        loop {
            let cur = slot.load(Ordering::Acquire);
            let (wid, wc) = unpack(cur);
            let lo = wc as usize;
            if wid != id || lo >= seg_hi {
                break;
            }
            // Cooperative cancellation, checked once per claim. Workers pay
            // one relaxed load; the dispatcher (`promote_deadline`) also
            // promotes an armed deadline, so it is the only thread that ever
            // reads the clock. On cancel the claimant swallows the rest of
            // the segment's cursor and accounts the skipped logical threads
            // as completed — the join barrier always resolves (the sticky
            // flag swallows every later segment the same way);
            // already-claimed chunks run to completion (that is the chunk
            // granularity of the cancellation contract).
            let cancelled = if promote_deadline {
                cancel_state(s).is_some_and(CancelState::expired_promote)
            } else {
                cancel_flag(s)
            };
            if cancelled {
                if slot
                    .compare_exchange(cur, pack(id, seg_hi as u32), Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    s.job_cancelled.store(true, Ordering::Release);
                    finish_chunk(s, nthreads, seg_hi - lo, notify_done);
                }
                continue;
            }
            let hi = (lo + chunk).min(seg_hi);
            if slot
                .compare_exchange_weak(cur, pack(id, hi as u32), Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                continue;
            }
            for th in lo..hi {
                // Panic isolation: a panicking logical thread must still be
                // counted as completed below, or the dispatcher sleeps on
                // `done_cv` forever. The payload is recorded for the
                // dispatcher to surface as a typed error after the barrier.
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| run(th))) {
                    s.panicked.fetch_add(1, Ordering::Relaxed);
                    *lock_unpoisoned(&s.panic_msg) = Some(payload_message(payload.as_ref()));
                }
            }
            claimed += 1;
            finish_chunk(s, nthreads, hi - lo, notify_done);
        }
    }
    claimed
}

/// Counts `done` logical threads as completed and wakes a parked
/// dispatcher when the job just finished. This path must stay
/// panic-free: it is the only code between a claim and its completion
/// accounting, so a panic here (unlike one inside `run`) could strand
/// the dispatcher.
fn finish_chunk(s: &Shared, nthreads: usize, done: usize, notify_done: bool) {
    // SeqCst: release the work just done to the dispatcher's
    // acquire load AND order against the `done_parked` handshake
    // (see `try_run`): if the dispatcher parked before this add became
    // visible, we observe `done_parked == true` and wake it.
    let prev = s.completed.fetch_add(done, Ordering::SeqCst);
    if notify_done && prev + done == nthreads && s.done_parked.load(Ordering::SeqCst) {
        drop(lock_unpoisoned(&s.done_lock));
        s.done_cv.notify_one();
    }
}

/// Spawned-thread entry point: serves the pool, reviving itself in
/// place if a panic ever escapes the per-chunk isolation in
/// [`drain_work`] (an infrastructure fault, not a job fault — job
/// panics are caught and recorded without unwinding the worker).
/// Completion accounting is panic-free outside the isolated region, so
/// no dispatcher is ever stranded by the escape.
fn worker_entry(shared: Arc<Shared>, idx: usize) {
    // NUMA placement: pin this thread to its node's CPUs before serving
    // any job, so every page its fills first-touch lands node-local.
    // Affinity is sticky per OS thread — respawned workers re-pin here.
    if let Some(cpus) = shared.pin_cpus.get(idx) {
        if !cpus.is_empty() && numa::pin_to_cpus(cpus) {
            shared.pinned[idx].store(true, Ordering::Release);
        }
    }
    shared.started.fetch_add(1, Ordering::Release);
    WORKER_OF.with(|c| c.set(Arc::as_ptr(&shared) as usize));
    loop {
        if catch_unwind(AssertUnwindSafe(|| worker_loop(&shared, idx))).is_ok() {
            return; // clean shutdown
        }
        shared.resurrections.fetch_add(1, Ordering::Relaxed);
    }
}

fn worker_loop(shared: &Shared, idx: usize) {
    let stat = &shared.stats[idx];
    let home = shared.home_node.get(idx).copied().unwrap_or(0);
    // Last job id this worker fully processed (seq values are even when
    // stable; `seen` stores the raw even seq).
    let mut seen = 0u64;
    loop {
        // ---- wait for a new published job (spin → yield → park) ----
        let mut rounds = 0usize;
        let e1 = loop {
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            let s = shared.seq.load(Ordering::Acquire);
            if s != seen && s & 1 == 0 {
                break s;
            }
            rounds += 1;
            if rounds < SPIN_HINTS {
                std::hint::spin_loop();
            } else if rounds < SPIN_HINTS + YIELD_ROUNDS {
                std::thread::yield_now();
            } else {
                stat.parks.fetch_add(1, Ordering::Relaxed);
                shared.wmetrics[idx].park();
                let mut g = lock_unpoisoned(&shared.idle_lock);
                while shared.seq.load(Ordering::Acquire) == seen
                    && !shared.shutdown.load(Ordering::Acquire)
                {
                    g = wait_unpoisoned(&shared.idle_cv, g);
                }
                rounds = 0;
            }
        };
        // ---- seqlock read of the job slot ----
        let call_addr = shared.call.load(Ordering::Acquire);
        let ctx = shared.ctx.load(Ordering::Acquire);
        let nthreads = shared.nthreads.load(Ordering::Acquire);
        let chunk = shared.chunk.load(Ordering::Acquire);
        if shared.seq.load(Ordering::Acquire) != e1 {
            // Publish raced our read: the snapshot may mix two jobs.
            // Retry from the top; the cursor's job id would reject a
            // stale snapshot anyway, but we never act on one.
            continue;
        }
        seen = e1;
        // SAFETY: fn pointers and `usize` are the same size on every
        // supported target; `call_addr` was stored from a real
        // `fn(usize, usize)` by `run` under the validated seqlock.
        let call: fn(usize, usize) = unsafe { std::mem::transmute(call_addr) };
        let id = (e1 >> 1) as u32;
        // Span capture is behind a relaxed flag that is off by default;
        // the timestamp reads and the span push only happen while a
        // trace export was explicitly requested, so the steady-state
        // hot path (and the zero-alloc invariant) are untouched.
        let tracing = crate::telemetry::trace_enabled();
        let t0 = if tracing { now_ns() } else { 0 };
        let claimed = drain_work(shared, id, nthreads, chunk, |th| call(ctx, th), true, false, home);
        if claimed > 0 {
            stat.busy.fetch_add(1, Ordering::Relaxed);
            stat.chunks.fetch_add(claimed, Ordering::Relaxed);
            shared.wmetrics[idx].burst(claimed);
            if tracing {
                crate::telemetry::record_span(crate::telemetry::TraceSpan {
                    tid: idx as u32 + 1,
                    job: id,
                    start_ns: t0,
                    end_ns: now_ns(),
                    chunks: claimed,
                });
            }
        }
    }
}

/// A persistent pool of parked OS workers, dispatched by epoch.
///
/// A pool of `workers` executes fan-outs on up to `workers` threads:
/// `workers - 1` spawned pool threads plus the dispatching caller,
/// matching the old scoped-spawn accounting. `workers <= 1` spawns
/// nothing and runs every fan-out inline.
pub struct WorkerPool {
    shared: Arc<Shared>,
    /// Join handles by worker index; `None` while a slot is being
    /// healed. Behind a mutex so [`WorkerPool::heal`] can respawn dead
    /// workers through `&self` (off the dispatch hot path).
    handles: Mutex<Vec<Option<std::thread::JoinHandle<()>>>>,
    /// Live spawned workers (dispatch width is `spawned + 1`). Shrinks
    /// when a spawn fails and the pool degrades instead of panicking.
    workers: AtomicUsize,
    /// Serializes dispatchers; contended callers fall back to inline
    /// execution rather than blocking (the fan-out contract is "each
    /// logical thread exactly once", which inline trivially satisfies).
    dispatch_lock: Mutex<()>,
    /// Keeps every installed [`CancelToken`]'s state alive for the
    /// pool's lifetime so `Shared::cancel_ptr` can never dangle.
    /// Installs are rare (engine construction, CLI setup), so the
    /// unbounded-growth concern is theoretical.
    installed: Mutex<Vec<CancelToken>>,
    dispatches: AtomicU64,
    inline_runs: AtomicU64,
    dispatcher_chunks: AtomicU64,
    panics: AtomicU64,
    cancelled_jobs: AtomicU64,
    respawns: AtomicU64,
    spawn_failures: AtomicU64,
    /// Registry handles for pool-level metrics (dispatch count +
    /// latency histogram, inline runs, panics, cancellations), resolved
    /// at construction for the same zero-alloc reason as
    /// `Shared::wmetrics`.
    metrics: crate::metrics::PoolHandles,
}

fn spawn_worker(shared: &Arc<Shared>, idx: usize) -> std::io::Result<std::thread::JoinHandle<()>> {
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("stef-pool-{idx}"))
        .spawn(move || worker_entry(shared, idx))
}

impl WorkerPool {
    /// Creates a pool sized for `workers` concurrent executors
    /// (spawning `workers - 1` OS threads, created once and parked).
    ///
    /// Spawn failure is not fatal: the pool degrades to however many
    /// workers the OS granted (logging once and counting the shortfall
    /// in [`RuntimeCounters::spawn_failures`]) — worst case a pool of
    /// one, which runs every fan-out inline.
    pub fn new(workers: usize) -> Self {
        Self::with_numa(workers, NumaPolicy::from_env(), &NumaTopology::detect())
    }

    /// [`WorkerPool::new`] with an explicit NUMA policy and topology.
    ///
    /// Under [`NumaPolicy::Auto`] with more than one node, spawned
    /// workers are split into contiguous per-node blocks, each worker
    /// pins itself to its node's CPUs at startup, and the job cursor
    /// becomes one cursor per node so workers claim node-local chunks
    /// first and steal cross-node only when their own segment runs dry.
    /// With one node (every laptop and most CI) or `Off`, nothing is
    /// pinned and the single-cursor behavior is byte-for-byte the old
    /// one. The topology is passed in (rather than probed) so tests can
    /// exercise multi-node placement on single-node hosts.
    pub fn with_numa(workers: usize, policy: NumaPolicy, topo: &NumaTopology) -> Self {
        let workers = workers.max(1);
        let planned = workers - 1;
        let place = policy == NumaPolicy::Auto && topo.num_nodes() > 1 && planned > 1;
        let nsegs = if place {
            topo.num_nodes().min(planned)
        } else {
            1
        };
        let (home_node, pin_cpus): (Vec<usize>, Vec<Vec<usize>>) = (0..planned)
            .map(|idx| {
                if !place {
                    return (0usize, Vec::new());
                }
                // Contiguous blocks: worker idx's node is the segment
                // whose `node_block(planned, nsegs, ·)` range contains
                // idx (closed-form inverse of the block partition).
                let node = ((idx * nsegs + nsegs - 1) / planned).min(nsegs - 1);
                debug_assert!({
                    let (lo, hi) = numa::node_block(planned, nsegs, node);
                    lo <= idx && idx < hi
                });
                (node, topo.nodes()[node].cpus.clone())
            })
            .unzip();
        let shared = Arc::new(Shared {
            seq: AtomicU64::new(0),
            call: AtomicUsize::new(0),
            ctx: AtomicUsize::new(0),
            nthreads: AtomicUsize::new(0),
            chunk: AtomicUsize::new(1),
            work: (0..nsegs).map(|_| ClaimCursor { cur: AtomicU64::new(0) }).collect(),
            home_node,
            pin_cpus,
            pinned: (0..planned).map(|_| AtomicBool::new(false)).collect(),
            completed: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
            done_lock: Mutex::new(()),
            done_cv: Condvar::new(),
            done_parked: AtomicBool::new(false),
            cancel_ptr: AtomicUsize::new(0),
            panicked: AtomicUsize::new(0),
            panic_msg: Mutex::new(None),
            job_cancelled: AtomicBool::new(false),
            resurrections: AtomicU64::new(0),
            started: AtomicUsize::new(0),
            stats: (0..planned).map(|_| WorkerStat::default()).collect(),
            wmetrics: (0..planned).map(crate::metrics::worker_handles).collect(),
        });
        let mut handles: Vec<Option<std::thread::JoinHandle<()>>> = Vec::with_capacity(planned);
        let mut spawn_failures = 0u64;
        for idx in 0..planned {
            match spawn_worker(&shared, idx) {
                Ok(h) => handles.push(Some(h)),
                Err(e) => {
                    spawn_failures = (planned - idx) as u64;
                    crate::telemetry::warn("runtime", || {
                        format!(
                            "could not spawn pool worker {idx} of {planned} ({e}); \
                             degrading to a {}-worker pool",
                            idx + 1
                        )
                    });
                    break;
                }
            }
        }
        let spawned = handles.len();
        // Rendezvous: a freshly spawned OS thread performs one-time
        // runtime setup (signal-stack handler, thread-name clone — a
        // heap allocation) the first time the scheduler runs it, which
        // on a loaded single-core box can be arbitrarily far after
        // `spawn` returns. Waiting here pins those allocations inside
        // construction, so steady-state dispatch stays allocation-free
        // (asserted by `tests/alloc_free.rs`).
        while shared.started.load(Ordering::Acquire) < spawned {
            std::thread::yield_now();
        }
        WorkerPool {
            shared,
            handles: Mutex::new(handles),
            workers: AtomicUsize::new(spawned + 1),
            dispatch_lock: Mutex::new(()),
            installed: Mutex::new(Vec::new()),
            dispatches: AtomicU64::new(0),
            inline_runs: AtomicU64::new(0),
            dispatcher_chunks: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            cancelled_jobs: AtomicU64::new(0),
            respawns: AtomicU64::new(0),
            spawn_failures: AtomicU64::new(spawn_failures),
            metrics: crate::metrics::pool_handles(),
        }
    }

    /// Total workers (spawned threads + the dispatching caller). May be
    /// smaller than requested after degraded spawns.
    pub fn workers(&self) -> usize {
        self.workers.load(Ordering::Relaxed)
    }

    /// Number of NUMA claim segments the pool partitions jobs into
    /// (1 when placement is off or the machine has one node).
    pub fn numa_nodes(&self) -> usize {
        self.shared.work.len()
    }

    /// Per spawned worker: its claim segment and whether its affinity
    /// pin succeeded. Empty for a pool of one (nothing is spawned).
    pub fn placement(&self) -> Vec<WorkerPlacement> {
        self.shared
            .home_node
            .iter()
            .enumerate()
            .map(|(i, &node)| WorkerPlacement {
                node,
                pinned: self.shared.pinned[i].load(Ordering::Acquire),
            })
            .collect()
    }

    /// Installs (or clears) the cancellation token checked by every
    /// chunk claim of every subsequent dispatch. The token's state is
    /// retained for the pool's lifetime.
    pub fn set_cancel(&self, token: Option<CancelToken>) {
        let mut installed = lock_unpoisoned(&self.installed);
        match token {
            Some(t) => {
                self.shared
                    .cancel_ptr
                    .store(Arc::as_ptr(&t.state) as usize, Ordering::Release);
                installed.push(t);
            }
            None => self.shared.cancel_ptr.store(0, Ordering::Release),
        }
    }

    /// Joins and replaces any worker thread that died (a panic escaping
    /// even the in-place resurrection loop). Called off the hot path,
    /// only after a dispatch observed a panic. A failed respawn shrinks
    /// the pool instead of erroring.
    fn heal(&self) {
        let mut handles = lock_unpoisoned(&self.handles);
        for (idx, slot) in handles.iter_mut().enumerate() {
            let dead = slot.as_ref().is_some_and(|h| h.is_finished());
            if !dead && slot.is_some() {
                continue;
            }
            if let Some(h) = slot.take() {
                let _ = h.join();
            }
            match spawn_worker(&self.shared, idx) {
                Ok(h) => {
                    *slot = Some(h);
                    self.respawns.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => {
                    self.spawn_failures.fetch_add(1, Ordering::Relaxed);
                    let w = self.workers.load(Ordering::Relaxed).saturating_sub(1).max(1);
                    self.workers.store(w, Ordering::Relaxed);
                    crate::telemetry::warn("runtime", || {
                        format!("could not respawn pool worker {idx} ({e}); degrading to {w} workers")
                    });
                }
            }
        }
    }

    /// Whether the current thread is one of *this* pool's workers (a
    /// reentrant fan-out from it must run inline; see [`WORKER_OF`]).
    fn on_own_worker(&self) -> bool {
        WORKER_OF.with(|c| c.get()) == Arc::as_ptr(&self.shared) as usize
    }

    /// Runs `f(th)` for every `th in 0..nthreads`, returning after the
    /// join barrier (reads after `run` see every write the job
    /// performed). A worker panic is isolated, the pool healed, and the
    /// panic re-raised on this thread; a cancellation leaves the job
    /// partially executed (callers observe the token). Prefer
    /// [`WorkerPool::try_run`] for typed outcomes.
    pub fn run<F: Fn(usize) + Sync>(&self, nthreads: usize, f: &F) {
        if let Err(FanoutError::Panicked(msg)) = self.try_run(nthreads, f) {
            panic!("worker panicked during parallel fan-out: {msg}");
        }
    }

    /// Runs `f(th)` for every logical thread `0..nthreads` and joins,
    /// reporting worker panics and cancellation as typed errors instead
    /// of deadlocking or unwinding.
    ///
    /// Steady-state calls perform no heap allocation.
    pub fn try_run<F: Fn(usize) + Sync>(&self, nthreads: usize, f: &F) -> Result<(), FanoutError> {
        if nthreads == 0 {
            return Ok(());
        }
        let s = &*self.shared;
        if nthreads == 1 || self.workers() <= 1 || self.on_own_worker() {
            self.inline_runs.fetch_add(1, Ordering::Relaxed);
            self.metrics.inline_run();
            return traced_inline(s, nthreads, f);
        }
        // One dispatcher at a time; a second concurrent caller (e.g.
        // two test threads sharing the global pool) runs inline. A
        // poisoned lock is recovered, not propagated: it guards no data.
        let _guard = match self.dispatch_lock.try_lock() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
            Err(TryLockError::WouldBlock) => {
                self.inline_runs.fetch_add(1, Ordering::Relaxed);
                self.metrics.inline_run();
                return traced_inline(s, nthreads, f);
            }
        };
        // Promote an armed deadline once per dispatch and refuse to
        // start a job on an already-cancelled token.
        if cancel_state(s).is_some_and(CancelState::expired_promote) {
            self.cancelled_jobs.fetch_add(1, Ordering::Relaxed);
            return Err(FanoutError::Cancelled);
        }
        assert!(nthreads < u32::MAX as usize, "fan-out width overflows the claim cursor");
        self.dispatches.fetch_add(1, Ordering::Relaxed);
        // Dispatch-latency metric (publish → completion barrier). The
        // enabled check precedes the clock read, mirroring the tracing
        // gate, so a disabled registry costs one relaxed load here.
        let m_on = crate::metrics::enabled();
        let mt0 = if m_on { now_ns() } else { 0 };
        let chunk = (nthreads / (4 * self.workers())).max(1);

        // ---- publish the job (seqlock write) ----
        let s0 = s.seq.load(Ordering::Relaxed);
        s.seq.store(s0 + 1, Ordering::Relaxed); // odd: writer active
        // Release fence between the odd store and the field stores
        // (fence-then-store rule): if a reader's Acquire load observes
        // any of the new field values below, the fence synchronizes-with
        // that load, so the odd `seq` store above happens-before the
        // reader's validating `seq` re-load — which therefore cannot
        // still return the old even value and accept a mixed snapshot.
        // Without this fence the Relaxed field stores may become visible
        // *before* the odd store on weakly-ordered targets (aarch64);
        // x86 TSO hides the bug.
        std::sync::atomic::fence(Ordering::Release);
        let id = ((s0 + 2) >> 1) as u32;
        s.call.store(trampoline::<F> as *const () as usize, Ordering::Relaxed);
        s.ctx.store(f as *const F as usize, Ordering::Relaxed);
        s.nthreads.store(nthreads, Ordering::Relaxed);
        s.chunk.store(chunk, Ordering::Relaxed);
        s.completed.store(0, Ordering::Relaxed);
        s.done_parked.store(false, Ordering::Relaxed);
        s.panicked.store(0, Ordering::Relaxed);
        s.job_cancelled.store(false, Ordering::Relaxed);
        for (i, c) in s.work.iter().enumerate() {
            let (lo, _) = numa::node_block(nthreads, s.work.len(), i);
            c.cur.store(pack(id, lo as u32), Ordering::Relaxed);
        }
        s.seq.store(s0 + 2, Ordering::Release); // even: published

        // Wake parked workers. The empty critical section pairs with
        // the workers' check-under-lock: any worker that checked the
        // old seq is now inside `wait`, so `notify_all` reaches it.
        drop(lock_unpoisoned(&s.idle_lock));
        s.idle_cv.notify_all();

        // ---- participate ----
        let tracing = crate::telemetry::trace_enabled();
        let t0 = if tracing { now_ns() } else { 0 };
        let claimed = drain_work(s, id, nthreads, chunk, f, false, true, 0);
        self.dispatcher_chunks.fetch_add(claimed, Ordering::Relaxed);
        if tracing && claimed > 0 {
            crate::telemetry::record_span(crate::telemetry::TraceSpan {
                tid: 0,
                job: id,
                start_ns: t0,
                end_ns: now_ns(),
                chunks: claimed,
            });
        }

        // ---- completion barrier (spin → yield → park) ----
        let mut rounds = 0usize;
        while s.completed.load(Ordering::Acquire) < nthreads {
            rounds += 1;
            if rounds < SPIN_HINTS {
                std::hint::spin_loop();
            } else if rounds < SPIN_HINTS + YIELD_ROUNDS {
                std::thread::yield_now();
            } else {
                s.done_parked.store(true, Ordering::SeqCst);
                let mut g = lock_unpoisoned(&s.done_lock);
                while s.completed.load(Ordering::SeqCst) < nthreads {
                    g = wait_unpoisoned(&s.done_cv, g);
                }
                drop(g);
                s.done_parked.store(false, Ordering::Relaxed);
                break;
            }
        }

        if m_on {
            self.metrics.dispatch(now_ns().saturating_sub(mt0));
        }

        // ---- surface the job's outcome as a typed error ----
        if s.panicked.load(Ordering::Acquire) > 0 {
            self.panics.fetch_add(1, Ordering::Relaxed);
            self.metrics.panic();
            crate::flight::record(crate::flight::FlightEvent::WorkerPanic, 0, 0);
            let msg = lock_unpoisoned(&s.panic_msg).take().unwrap_or_default();
            self.heal();
            return Err(FanoutError::Panicked(msg));
        }
        if s.job_cancelled.load(Ordering::Acquire) {
            self.cancelled_jobs.fetch_add(1, Ordering::Relaxed);
            self.metrics.cancelled();
            return Err(FanoutError::Cancelled);
        }
        Ok(())
    }

    /// Snapshot of the pool's counters.
    pub fn counters(&self) -> RuntimeCounters {
        RuntimeCounters {
            workers: self.workers(),
            dispatches: self.dispatches.load(Ordering::Relaxed),
            inline_runs: self.inline_runs.load(Ordering::Relaxed),
            dispatcher_chunks: self.dispatcher_chunks.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            cancelled_jobs: self.cancelled_jobs.load(Ordering::Relaxed),
            resurrections: self.shared.resurrections.load(Ordering::Relaxed),
            respawns: self.respawns.load(Ordering::Relaxed),
            spawn_failures: self.spawn_failures.load(Ordering::Relaxed),
            per_worker: self
                .shared
                .stats
                .iter()
                .map(|w| WorkerCounters {
                    busy: w.busy.load(Ordering::Relaxed),
                    chunks: w.chunks.load(Ordering::Relaxed),
                    parks: w.parks.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        drop(lock_unpoisoned(&self.shared.idle_lock));
        self.shared.idle_cv.notify_all();
        // Workers are joined before `installed` drops, so no thread can
        // observe a dangling `cancel_ptr`.
        for h in lock_unpoisoned(&self.handles).drain(..).flatten() {
            let _ = h.join();
        }
    }
}

/// [`inline_fanout`] with a dispatcher-track span when tracing is on,
/// so traces stay informative on machines (or reentrant paths) where
/// fan-outs never reach the spawned workers.
fn traced_inline<F: Fn(usize)>(s: &Shared, nthreads: usize, f: &F) -> Result<(), FanoutError> {
    let tracing = crate::telemetry::trace_enabled();
    let t0 = if tracing { now_ns() } else { 0 };
    let r = inline_fanout(s, nthreads, f);
    if tracing {
        crate::telemetry::record_span(crate::telemetry::TraceSpan {
            tid: 0,
            job: 0,
            start_ns: t0,
            end_ns: now_ns(),
            chunks: 1,
        });
    }
    r
}

/// Inline execution with the same typed-outcome contract as a pool
/// dispatch: per-thread panic isolation and per-thread cancellation
/// checks. Used for single-thread jobs, reentrant fan-outs, contended
/// dispatchers, and pools degraded to one worker.
fn inline_fanout<F: Fn(usize)>(s: &Shared, nthreads: usize, f: &F) -> Result<(), FanoutError> {
    for th in 0..nthreads {
        if cancel_flag(s) {
            return Err(FanoutError::Cancelled);
        }
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(th))) {
            return Err(FanoutError::Panicked(payload_message(payload.as_ref())));
        }
    }
    Ok(())
}

/// The old execution model, kept verbatim for A/B benchmarking: fresh
/// scoped OS threads per call, static contiguous logical-thread blocks.
pub fn scoped_fanout<F: Fn(usize) + Sync>(workers: usize, nthreads: usize, f: &F) {
    if nthreads == 0 {
        return;
    }
    let workers = workers.clamp(1, nthreads);
    if workers == 1 {
        for th in 0..nthreads {
            f(th);
        }
        return;
    }
    std::thread::scope(|scope| {
        for w in 1..workers {
            let lo = w * nthreads / workers;
            let hi = (w + 1) * nthreads / workers;
            scope.spawn(move || {
                for th in lo..hi {
                    f(th);
                }
            });
        }
        for th in 0..nthreads / workers {
            f(th);
        }
    });
}

/// Cancellation-aware variant of [`scoped_fanout`] used by the scoped
/// executor's typed path: static contiguous blocks, but every logical
/// thread is panic-isolated and checks the token before running.
fn scoped_try_fanout<F: Fn(usize) + Sync>(
    workers: usize,
    nthreads: usize,
    f: &F,
    cancel: Option<&CancelToken>,
) -> Result<(), FanoutError> {
    if nthreads == 0 {
        return Ok(());
    }
    if let Some(t) = cancel {
        if t.expired() {
            return Err(FanoutError::Cancelled);
        }
    }
    let panic_slot: Mutex<Option<String>> = Mutex::new(None);
    let cancelled = AtomicBool::new(false);
    let run_block = |lo: usize, hi: usize| {
        for th in lo..hi {
            if cancel.is_some_and(CancelToken::is_cancelled) {
                cancelled.store(true, Ordering::Relaxed);
                return;
            }
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(th))) {
                *lock_unpoisoned(&panic_slot) = Some(payload_message(payload.as_ref()));
            }
        }
    };
    let workers = workers.clamp(1, nthreads);
    if workers == 1 {
        run_block(0, nthreads);
    } else {
        std::thread::scope(|scope| {
            for w in 1..workers {
                let lo = w * nthreads / workers;
                let hi = (w + 1) * nthreads / workers;
                let rb = &run_block;
                scope.spawn(move || rb(lo, hi));
            }
            run_block(0, nthreads / workers);
        });
    }
    if let Some(msg) = lock_unpoisoned(&panic_slot).take() {
        return Err(FanoutError::Panicked(msg));
    }
    if cancelled.load(Ordering::Relaxed) {
        return Err(FanoutError::Cancelled);
    }
    Ok(())
}

/// The handle every fan-out site goes through: a shared persistent pool
/// or the scoped-spawn fallback.
#[derive(Clone)]
pub enum Executor {
    /// Dispatch on a persistent [`WorkerPool`].
    Pool(Arc<WorkerPool>),
    /// Spawn scoped threads per call (the pre-pool behavior).
    Scoped {
        /// Maximum concurrent executors per fan-out.
        workers: usize,
        /// Installed cancellation token, shared across clones.
        cancel: Arc<Mutex<Option<CancelToken>>>,
    },
}

impl Executor {
    /// Builds an executor of the requested kind sized for `workers`
    /// concurrent executors.
    pub fn new(kind: Runtime, workers: usize) -> Self {
        match kind {
            Runtime::Pool => Executor::Pool(Arc::new(WorkerPool::new(workers))),
            Runtime::Scoped => Executor::Scoped {
                workers: workers.max(1),
                cancel: Arc::new(Mutex::new(None)),
            },
        }
    }

    /// [`Executor::new`] with an explicit NUMA policy (the engine path:
    /// `StefOptions::numa` instead of the `STEF_NUMA` env default). The
    /// scoped substrate spawns fresh threads per call, so placement
    /// does not apply there and the policy is ignored.
    pub fn with_numa(kind: Runtime, workers: usize, policy: NumaPolicy) -> Self {
        match kind {
            Runtime::Pool => Executor::Pool(Arc::new(WorkerPool::with_numa(
                workers,
                policy,
                &NumaTopology::detect(),
            ))),
            Runtime::Scoped => Executor::Scoped {
                workers: workers.max(1),
                cancel: Arc::new(Mutex::new(None)),
            },
        }
    }

    /// NUMA claim segments of the underlying pool (1 for the scoped
    /// substrate, which has no persistent workers to place).
    pub fn numa_nodes(&self) -> usize {
        match self {
            Executor::Pool(p) => p.numa_nodes(),
            Executor::Scoped { .. } => 1,
        }
    }

    /// Per spawned worker placement (empty for the scoped substrate).
    pub fn placement(&self) -> Vec<WorkerPlacement> {
        match self {
            Executor::Pool(p) => p.placement(),
            Executor::Scoped { .. } => Vec::new(),
        }
    }

    /// Which [`Runtime`] this executor implements.
    pub fn kind(&self) -> Runtime {
        match self {
            Executor::Pool(_) => Runtime::Pool,
            Executor::Scoped { .. } => Runtime::Scoped,
        }
    }

    /// Worker budget of this executor.
    pub fn workers(&self) -> usize {
        match self {
            Executor::Pool(p) => p.workers(),
            Executor::Scoped { workers, .. } => *workers,
        }
    }

    /// Whether every fan-out through this executor runs its logical
    /// threads sequentially on the calling thread. True for a worker
    /// budget of ≤ 1: the pool then never publishes a job (every
    /// `try_run` takes the inline path) and the scoped fallback loops
    /// `0..nthreads` on the caller. Kernels use this to drop
    /// synchronization whose only purpose is surviving *concurrent*
    /// writers — notably the atomic accumulation sweep, which degrades
    /// to plain fused row adds performing the same additions in the
    /// same order, bit for bit.
    pub fn is_serial(&self) -> bool {
        self.workers() <= 1
    }

    /// Installs (or clears) the cancellation token checked by every
    /// subsequent fan-out's chunk claims.
    pub fn set_cancel(&self, token: Option<CancelToken>) {
        match self {
            Executor::Pool(p) => p.set_cancel(token),
            Executor::Scoped { cancel, .. } => *lock_unpoisoned(cancel) = token,
        }
    }

    /// Whether the installed token (if any) has requested cancellation.
    /// Kernels check this between multi-pass fan-outs to skip passes
    /// whose inputs were already cut short.
    pub fn cancelled(&self) -> bool {
        match self {
            Executor::Pool(p) => cancel_flag(&p.shared),
            Executor::Scoped { cancel, .. } => {
                lock_unpoisoned(cancel).as_ref().is_some_and(CancelToken::is_cancelled)
            }
        }
    }

    /// Runs `f(th)` for every logical thread `0..nthreads` and joins.
    /// A worker panic is re-raised on this thread after the pool healed;
    /// cancellation returns with the job partially executed (callers
    /// observe the token via [`Executor::cancelled`]).
    pub fn fanout<F: Fn(usize) + Sync>(&self, nthreads: usize, f: F) {
        if let Err(FanoutError::Panicked(msg)) = self.try_fanout(nthreads, f) {
            panic!("worker panicked during parallel fan-out: {msg}");
        }
    }

    /// Runs `f(th)` for every logical thread `0..nthreads` and joins,
    /// reporting worker panics and cancellation as typed errors. The
    /// join barrier always resolves in bounded time — panicked and
    /// skipped logical threads are counted as completed.
    pub fn try_fanout<F: Fn(usize) + Sync>(&self, nthreads: usize, f: F) -> Result<(), FanoutError> {
        match self {
            Executor::Pool(p) => p.try_run(nthreads, &f),
            Executor::Scoped { workers, cancel } => {
                let token = lock_unpoisoned(cancel).clone();
                scoped_try_fanout(*workers, nthreads, &f, token.as_ref())
            }
        }
    }

    /// Counter snapshot (zeros for the scoped fallback, which has no
    /// persistent state to count).
    pub fn counters(&self) -> RuntimeCounters {
        match self {
            Executor::Pool(p) => p.counters(),
            Executor::Scoped { workers, .. } => RuntimeCounters {
                workers: *workers,
                ..RuntimeCounters::default()
            },
        }
    }
}

/// Available hardware parallelism, probed once per process.
pub fn hardware_workers() -> usize {
    static HW: OnceLock<usize> = OnceLock::new();
    *HW.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Parses a thread-count environment value: a positive integer, else
/// `None` (empty, unparsable, and `0` all fall through to the probe).
fn parse_thread_env(v: &str) -> Option<usize> {
    v.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

/// Default logical-thread count used when `num_threads == 0`:
/// `STEF_NUM_THREADS` if set, else `RAYON_NUM_THREADS` (honored for
/// continuity — the pre-pool substrate sized itself from rayon's global
/// pool, so deployments that capped parallelism through rayon keep
/// their cap instead of silently getting every logical CPU), else the
/// hardware probe. Cached once per process.
pub fn default_threads() -> usize {
    static DEF: OnceLock<usize> = OnceLock::new();
    *DEF.get_or_init(|| {
        ["STEF_NUM_THREADS", "RAYON_NUM_THREADS"]
            .iter()
            .find_map(|var| std::env::var(var).ok().as_deref().and_then(parse_thread_env))
            .unwrap_or_else(hardware_workers)
    })
}

/// Resolves an engine's worker budget from `StefOptions::num_threads`:
/// `0` means "the [`default_threads`] resolution" (env override or all
/// hardware workers), an explicit logical-thread count caps the workers
/// at that count (more OS workers than logical threads can never help);
/// either way the pool never exceeds the hardware probe.
pub fn resolve_workers(num_threads: usize) -> usize {
    let n = if num_threads == 0 {
        default_threads()
    } else {
        num_threads
    };
    n.min(hardware_workers())
}

/// Routes `linalg::par` fan-outs (gram/matmul reductions, the
/// swap-count pass) through the global pool. Installed by [`global`].
fn linalg_bridge(tasks: usize, f: &(dyn Fn(usize) + Sync)) {
    global().fanout(tasks, f);
}

/// The process-wide default executor, used by call sites that have no
/// engine: the `sync::fanout` free function, the kernel convenience
/// wrappers, and (via [`linalg::par`]) the dense-algebra fan-outs.
pub fn global() -> &'static Executor {
    static GLOBAL: OnceLock<Executor> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        linalg::par::install_fanout(linalg_bridge);
        Executor::new(Runtime::Pool, resolve_workers(0))
    })
}

/// Installs (or clears, with `None`) a cancel token on the
/// process-global executor, so the dense-algebra fan-outs routed through
/// [`linalg::par`] and the `sync::fanout` free function observe
/// cancellation too. Engine executors get their token separately, at
/// preparation, from `StefOptions::cancel`.
pub fn set_global_cancel(token: Option<CancelToken>) {
    global().set_cancel(token);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn coverage(exec: &Executor, nthreads: usize) {
        let hits: Vec<AtomicUsize> = (0..nthreads).map(|_| AtomicUsize::new(0)).collect();
        exec.fanout(nthreads, |th| {
            hits[th].fetch_add(1, Ordering::Relaxed);
        });
        for (th, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "thread {th} of {nthreads}");
        }
    }

    #[test]
    fn pool_covers_every_logical_thread_once() {
        for workers in [1usize, 2, 4, 8] {
            let exec = Executor::new(Runtime::Pool, workers);
            for nthreads in [0usize, 1, 2, 3, 7, 16, 33, 257] {
                coverage(&exec, nthreads);
            }
        }
    }

    #[test]
    fn scoped_covers_every_logical_thread_once() {
        for workers in [1usize, 2, 4] {
            let exec = Executor::new(Runtime::Scoped, workers);
            for nthreads in [0usize, 1, 2, 3, 7, 16, 33] {
                coverage(&exec, nthreads);
            }
        }
    }

    #[test]
    fn join_barrier_publishes_writes() {
        let exec = Executor::new(Runtime::Pool, 4);
        let mut data = vec![0usize; 64];
        {
            let shared = crate::sync::SharedSlice::new(&mut data);
            exec.fanout(64, |th| {
                // SAFETY: each logical thread owns exactly one element.
                let slot = unsafe { shared.range_mut(th, th + 1) };
                slot[0] = th * 3;
            });
        }
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i * 3);
        }
    }

    #[test]
    fn reentrant_fanout_runs_inline() {
        let exec = Executor::new(Runtime::Pool, 4);
        let outer = AtomicUsize::new(0);
        let inner = AtomicUsize::new(0);
        let e2 = exec.clone();
        exec.fanout(8, |_| {
            outer.fetch_add(1, Ordering::Relaxed);
            // From the dispatcher thread the dispatch lock is held; from
            // a worker the thread-local guard trips — both run inline.
            e2.fanout(4, |_| {
                inner.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(outer.load(Ordering::Relaxed), 8);
        assert_eq!(inner.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn counters_track_dispatches() {
        let exec = Executor::new(Runtime::Pool, 4);
        for _ in 0..10 {
            exec.fanout(16, |_| {});
        }
        let c = exec.counters();
        assert_eq!(c.workers, 4);
        assert_eq!(c.dispatches, 10);
        assert_eq!(c.per_worker.len(), 3);
        let worker_chunks: u64 = c.per_worker.iter().map(|w| w.chunks).sum();
        // Every chunk was claimed by somebody; 16 threads / chunk 1 = 16.
        assert_eq!(c.dispatcher_chunks + worker_chunks, 160);
    }

    #[test]
    fn resolve_workers_honors_explicit_counts() {
        assert_eq!(resolve_workers(0), default_threads().min(hardware_workers()));
        assert_eq!(resolve_workers(1), 1);
        let want = 3usize.min(hardware_workers());
        assert_eq!(resolve_workers(3), want);
    }

    #[test]
    fn thread_env_parsing() {
        assert_eq!(parse_thread_env("4"), Some(4));
        assert_eq!(parse_thread_env(" 12\n"), Some(12));
        assert_eq!(parse_thread_env("0"), None);
        assert_eq!(parse_thread_env(""), None);
        assert_eq!(parse_thread_env("lots"), None);
        assert_eq!(parse_thread_env("-2"), None);
    }

    #[test]
    fn cross_pool_nested_fanout_dispatches() {
        // A worker of pool `a` is NOT a worker of pool `b`: nested
        // fan-outs onto the distinct (idle) pool must be allowed to
        // dispatch there, not forced inline by a process-global guard.
        let a = Executor::new(Runtime::Pool, 4);
        let b = Executor::new(Runtime::Pool, 4);
        let inner = AtomicUsize::new(0);
        a.fanout(8, |_| {
            b.fanout(16, |_| {
                inner.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(inner.load(Ordering::Relaxed), 128);
        let c = b.counters();
        // All 8 nested fan-outs ran through b (dispatched or, under
        // dispatch-lock contention, inline)...
        assert_eq!(c.dispatches + c.inline_runs, 8);
        // ...and at least the first to arrive found the lock free and
        // actually dispatched on b's workers.
        assert!(c.dispatches >= 1, "cross-pool fan-out never dispatched");
    }

    #[test]
    fn global_executor_is_a_pool() {
        assert_eq!(global().kind(), Runtime::Pool);
        coverage(global(), 9);
    }

    #[test]
    fn worker_panic_surfaces_typed_error_and_pool_stays_usable() {
        let exec = Executor::new(Runtime::Pool, 4);
        let ran = AtomicUsize::new(0);
        let r = exec.try_fanout(64, |th| {
            if th == 7 {
                panic!("injected panic on thread {th}");
            }
            ran.fetch_add(1, Ordering::Relaxed);
        });
        match r {
            Err(FanoutError::Panicked(msg)) => assert!(msg.contains("injected panic"), "{msg}"),
            other => panic!("expected Panicked, got {other:?}"),
        }
        assert_eq!(ran.load(Ordering::Relaxed), 63, "non-panicking threads all ran");
        let c = exec.counters();
        assert_eq!(c.panics, 1);
        // The healed pool completes subsequent clean dispatches.
        for _ in 0..5 {
            coverage(&exec, 33);
        }
    }

    #[test]
    fn infallible_fanout_repanics_on_worker_panic() {
        let exec = Executor::new(Runtime::Pool, 4);
        let r = catch_unwind(AssertUnwindSafe(|| {
            exec.fanout(16, |th| {
                if th == 3 {
                    panic!("boom");
                }
            });
        }));
        assert!(r.is_err(), "fanout must re-raise a worker panic");
        coverage(&exec, 16);
    }

    #[test]
    fn cancel_mid_job_skips_unclaimed_threads() {
        let exec = Executor::new(Runtime::Pool, 4);
        let token = CancelToken::new();
        exec.set_cancel(Some(token.clone()));
        let ran = AtomicUsize::new(0);
        let t2 = token.clone();
        // 1000 threads with chunk ~62: at most `workers` chunks are in
        // flight when thread 0 cancels, so some threads must be skipped.
        let r = exec.try_fanout(1000, |th| {
            if th == 0 {
                t2.cancel();
            }
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(r, Err(FanoutError::Cancelled));
        assert!(exec.cancelled());
        let executed = ran.load(Ordering::Relaxed);
        assert!(executed < 1000, "cancellation never took effect");
        let c = exec.counters();
        assert_eq!(c.cancelled_jobs, 1);
        // Clearing the token restores normal dispatch.
        exec.set_cancel(None);
        coverage(&exec, 64);
    }

    #[test]
    fn pre_cancelled_token_refuses_dispatch() {
        for kind in [Runtime::Pool, Runtime::Scoped] {
            let exec = Executor::new(kind, 4);
            let token = CancelToken::new();
            token.cancel();
            exec.set_cancel(Some(token));
            let ran = AtomicUsize::new(0);
            let r = exec.try_fanout(16, |_| {
                ran.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(r, Err(FanoutError::Cancelled), "{kind:?}");
            assert_eq!(ran.load(Ordering::Relaxed), 0, "{kind:?}");
        }
    }

    #[test]
    fn expired_deadline_promotes_to_cancelled() {
        let token = CancelToken::new();
        assert!(!token.expired());
        token.set_deadline(Duration::from_nanos(1));
        std::thread::sleep(Duration::from_millis(2));
        assert!(token.expired());
        assert!(token.is_cancelled(), "expiry must be promoted to the sticky flag");

        let exec = Executor::new(Runtime::Pool, 2);
        exec.set_cancel(Some(token));
        assert_eq!(exec.try_fanout(8, |_| {}), Err(FanoutError::Cancelled));
    }

    #[test]
    fn scoped_executor_panic_and_cancel_are_typed() {
        let exec = Executor::new(Runtime::Scoped, 3);
        match exec.try_fanout(9, |th| {
            if th == 4 {
                panic!("scoped boom");
            }
        }) {
            Err(FanoutError::Panicked(msg)) => assert!(msg.contains("scoped boom")),
            other => panic!("expected Panicked, got {other:?}"),
        }
        let token = CancelToken::new();
        exec.set_cancel(Some(token.clone()));
        let t2 = token.clone();
        let r = exec.try_fanout(64, move |th| {
            if th == 0 {
                t2.cancel();
            }
        });
        // Thread 0 runs in the dispatcher's own block after the spawned
        // blocks start, so whether spawned blocks observe the flag is
        // timing-dependent — but the outcome must be typed either way.
        assert!(matches!(r, Ok(()) | Err(FanoutError::Cancelled)));
    }

    #[test]
    fn synthetic_numa_pool_covers_every_thread_once() {
        let topo = NumaTopology::synthetic(vec![vec![0, 1], vec![0, 1]]);
        let pool = WorkerPool::with_numa(4, NumaPolicy::Auto, &topo);
        assert_eq!(pool.numa_nodes(), 2);
        let exec = Executor::Pool(Arc::new(pool));
        for nthreads in [1usize, 2, 3, 7, 16, 33, 257] {
            coverage(&exec, nthreads);
        }
    }

    #[test]
    fn numa_off_or_single_node_keeps_single_cursor() {
        let two = NumaTopology::synthetic(vec![vec![0], vec![0]]);
        let off = WorkerPool::with_numa(4, NumaPolicy::Off, &two);
        assert_eq!(off.numa_nodes(), 1);
        assert!(off.placement().iter().all(|p| p.node == 0 && !p.pinned));
        let one = NumaTopology::synthetic(vec![vec![0, 1]]);
        let single = WorkerPool::with_numa(4, NumaPolicy::Auto, &one);
        assert_eq!(single.numa_nodes(), 1);
        // A pool of two (one spawned worker) has nothing to split.
        let tiny = WorkerPool::with_numa(2, NumaPolicy::Auto, &two);
        assert_eq!(tiny.numa_nodes(), 1);
    }

    #[test]
    fn numa_pool_chunk_accounting_stays_exact() {
        let topo = NumaTopology::synthetic(vec![vec![0, 1], vec![0, 1]]);
        let exec = Executor::Pool(Arc::new(WorkerPool::with_numa(4, NumaPolicy::Auto, &topo)));
        for _ in 0..10 {
            exec.fanout(16, |_| {});
        }
        let c = exec.counters();
        assert_eq!(c.dispatches, 10);
        let worker_chunks: u64 = c.per_worker.iter().map(|w| w.chunks).sum();
        // Every logical thread claimed exactly once across both
        // segments; 16 threads / chunk 1 = 16 chunks per dispatch.
        assert_eq!(c.dispatcher_chunks + worker_chunks, 160);
    }

    #[test]
    fn numa_pool_cancel_still_resolves_barrier() {
        let topo = NumaTopology::synthetic(vec![vec![0, 1], vec![0, 1]]);
        let exec = Executor::Pool(Arc::new(WorkerPool::with_numa(4, NumaPolicy::Auto, &topo)));
        let token = CancelToken::new();
        exec.set_cancel(Some(token.clone()));
        let t2 = token.clone();
        // Both segments' cursors must be swallowed or the barrier hangs.
        let r = exec.try_fanout(1000, move |th| {
            if th == 0 {
                t2.cancel();
            }
        });
        assert!(matches!(r, Ok(()) | Err(FanoutError::Cancelled)));
        exec.set_cancel(None);
        coverage(&exec, 64);
    }

    #[test]
    fn numa_placement_blocks_are_contiguous() {
        let topo = NumaTopology::synthetic(vec![vec![0, 1], vec![0, 1]]);
        let pool = WorkerPool::with_numa(5, NumaPolicy::Auto, &topo);
        let p = pool.placement();
        assert_eq!(p.len(), 4);
        assert!(p.windows(2).all(|w| w[0].node <= w[1].node), "{p:?}");
        assert_eq!(p.first().unwrap().node, 0);
        assert_eq!(p.last().unwrap().node, 1);
    }

    #[test]
    fn numa_results_match_single_node_results() {
        // The segmented cursor changes who computes what, never what is
        // computed: summing th*th over claims must agree exactly.
        let multi = Executor::Pool(Arc::new(WorkerPool::with_numa(
            4,
            NumaPolicy::Auto,
            &NumaTopology::synthetic(vec![vec![0, 1], vec![0, 1]]),
        )));
        let plain = Executor::new(Runtime::Pool, 4);
        for nthreads in [3usize, 17, 64] {
            let total = |exec: &Executor| {
                let acc = AtomicUsize::new(0);
                exec.fanout(nthreads, |th| {
                    acc.fetch_add(th * th + 1, Ordering::Relaxed);
                });
                acc.load(Ordering::Relaxed)
            };
            assert_eq!(total(&multi), total(&plain));
        }
    }

    #[test]
    fn inline_paths_are_cancel_aware_and_panic_isolated() {
        // A 1-worker pool runs everything inline.
        let exec = Executor::new(Runtime::Pool, 1);
        match exec.try_fanout(4, |th| {
            if th == 2 {
                panic!("inline boom");
            }
        }) {
            Err(FanoutError::Panicked(msg)) => assert!(msg.contains("inline boom")),
            other => panic!("expected Panicked, got {other:?}"),
        }
        let token = CancelToken::new();
        exec.set_cancel(Some(token.clone()));
        let ran = AtomicUsize::new(0);
        let r = exec.try_fanout(8, |th| {
            if th == 1 {
                token.cancel();
            }
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(r, Err(FanoutError::Cancelled));
        assert_eq!(ran.load(Ordering::Relaxed), 2, "threads after the cancel must be skipped");
    }
}
