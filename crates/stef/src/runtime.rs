//! Persistent worker-pool runtime: epoch-dispatched, work-stealing,
//! allocation-free parallel fan-out.
//!
//! Every parallel region in this workspace has the same shape: run
//! `f(th)` once for each *logical thread* `0..nthreads` of an
//! nnz-balanced schedule, then join. The old substrate
//! (`sync::fanout`) spawned fresh OS threads through
//! `std::thread::scope` on every call — four call sites per MTTKRP
//! pass, one pass per mode per ALS iteration — so a 50-iteration CPD
//! paid hundreds of spawn/join round-trips, each with its own heap
//! allocations, and then handed every worker a *static* contiguous
//! block of logical threads, so one slow worker stalled the whole mode
//! even though the logical-thread decomposition was perfectly balanced.
//!
//! [`WorkerPool`] replaces that with workers created **once** and
//! parked between dispatches:
//!
//! * **Epoch dispatch.** A job is published as a raw function pointer
//!   plus an opaque context pointer (the monomorphizing trampoline the
//!   kernels already use for their `Emitter`s — no `&dyn Fn(usize)`
//!   anywhere on the hot path), guarded by a seqlock-style `seq`
//!   counter: odd while the dispatcher writes the slot, bumped to even
//!   to publish. Workers that observe a torn window simply retry.
//! * **Dynamic claiming (work stealing).** Workers claim logical
//!   threads from a single atomic cursor in small chunks instead of
//!   being assigned static ranges, so a straggler (NUMA, frequency
//!   scaling, co-tenancy) only delays the chunks it actually holds.
//!   The cursor word packs a 32-bit job id next to the 32-bit cursor,
//!   so a stale worker waking up with a previous job's snapshot cannot
//!   claim work from the current one (ids wrap only after 2^32
//!   dispatches — see [`pack`] for why that ABA window is accepted).
//! * **Bounded spin-then-park.** Workers spin briefly (cheap when
//!   dispatches arrive back-to-back inside one ALS sweep), then yield,
//!   then park on a condvar. The dispatcher does the same while
//!   waiting for completion. Mutex/condvar on Linux are futex-based:
//!   steady-state dispatch performs **zero allocator calls**, which
//!   `tests/alloc_free.rs` pins with a counting global allocator.
//! * **Determinism.** Which OS worker runs which logical thread is
//!   scheduling-dependent, but every combining step in the kernels
//!   (privatized reduction, boundary-row handling, gram reduction)
//!   already merges contributions in *logical-thread order*, never in
//!   arrival order — so results are bitwise identical to the scoped
//!   fallback for any worker count (`tests/determinism.rs`).
//!
//! [`Executor`] is the handle the engine and kernels carry: either a
//! shared [`WorkerPool`] or the legacy [`scoped_fanout`] path
//! (selectable via `StefOptions::runtime`) kept for A/B benchmarking.
//! [`global`] is the process-wide default used by call sites that have
//! no engine (the `sync::fanout` free function, and the
//! `linalg::par` hook that routes `gram`/`matmul`/swap-count
//! fan-outs through the same pool).

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Spin iterations (with `spin_loop` hints) before a waiter starts
/// yielding. Kept modest so oversubscribed pools cede the core quickly.
const SPIN_HINTS: usize = 256;
/// `yield_now` rounds after the spin phase before parking on a condvar.
const YIELD_ROUNDS: usize = 64;

/// Which execution substrate the engine fans out on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Runtime {
    /// The persistent worker pool (the default).
    #[default]
    Pool,
    /// `std::thread::scope` with static contiguous blocks per worker —
    /// the pre-pool behavior, kept selectable for A/B benchmarks.
    Scoped,
}

/// Counters one pool worker accumulates across its lifetime.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkerCounters {
    /// Dispatches in which this worker claimed at least one chunk.
    pub busy: u64,
    /// Chunks dynamically claimed from the shared cursor ("steals").
    pub chunks: u64,
    /// Times this worker gave up spinning and parked on the condvar.
    pub parks: u64,
}

/// Aggregate runtime counters, surfaced through `stef::counters` and
/// the `stef analyze` CLI.
#[derive(Clone, Debug, Default)]
pub struct RuntimeCounters {
    /// Total workers (spawned pool threads + the dispatching caller).
    pub workers: usize,
    /// Jobs dispatched through the pool machinery.
    pub dispatches: u64,
    /// Fan-outs executed inline (single logical thread, reentrant
    /// calls, or a contended dispatcher).
    pub inline_runs: u64,
    /// Chunks the dispatching thread claimed for itself.
    pub dispatcher_chunks: u64,
    /// Per spawned worker: busy/steal/park counts.
    pub per_worker: Vec<WorkerCounters>,
}

/// One spawned worker's counter slab, cache-line padded so neighbours
/// never false-share.
#[repr(align(64))]
#[derive(Default)]
struct WorkerStat {
    busy: AtomicU64,
    chunks: AtomicU64,
    parks: AtomicU64,
}

/// Shared dispatcher/worker state. All job fields are atomics: a worker
/// waking mid-publish may read a torn *combination*, but never tears an
/// individual field, and the seqlock validation below discards any
/// inconsistent snapshot before it can be used.
struct Shared {
    /// Seqlock word: odd while the dispatcher writes the job slot,
    /// even once published. `seq >> 1` is the job id.
    seq: AtomicU64,
    /// Trampoline `fn(*const (), usize)` stored as an address.
    call: AtomicUsize,
    /// Opaque context pointer (the borrowed closure) for the trampoline.
    ctx: AtomicUsize,
    nthreads: AtomicUsize,
    chunk: AtomicUsize,
    /// `(job_id << 32) | next_unclaimed_logical_thread`.
    work: AtomicU64,
    /// Logical threads fully executed for the current job.
    completed: AtomicUsize,
    shutdown: AtomicBool,
    /// Parking lot for idle workers.
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
    /// Parking lot for a dispatcher waiting on completion.
    done_lock: Mutex<()>,
    done_cv: Condvar,
    done_parked: AtomicBool,
    stats: Vec<WorkerStat>,
}

// SAFETY: `ctx` is an address dereferenced only through the matching
// trampoline while the dispatching call frame is alive — the dispatch
// protocol (completion barrier + job-id-tagged cursor) guarantees no
// claim outlives the dispatch that published it.
unsafe impl Send for Shared {}
unsafe impl Sync for Shared {}

/// Packs the claim word: `(job_id << 32) | next_unclaimed_thread`.
///
/// The job id is the low 32 bits of `seq >> 1`, so it wraps after 2^32
/// dispatches: a worker stalled with a snapshot *exactly* 2^32 jobs old
/// whose cursor value also matches could in principle pass the CAS and
/// claim stale work (classic ABA). This is an accepted, documented
/// assumption rather than a widened id — at the measured sub-microsecond
/// dispatch latency, 2^32 back-to-back dispatches take over an hour of
/// nothing but dispatch, during which the stalled worker would have to
/// stay descheduled between two adjacent loads without the OS ever
/// running it; no realistic schedule produces that.
#[inline]
fn pack(id: u32, cursor: u32) -> u64 {
    (u64::from(id) << 32) | u64::from(cursor)
}

#[inline]
fn unpack(w: u64) -> (u32, u32) {
    ((w >> 32) as u32, w as u32)
}

thread_local! {
    /// Address of the `Shared` block of the pool this thread serves as
    /// a worker (0 on non-pool threads). Scoped *per pool* so a worker
    /// of one pool can still dispatch on a different, idle pool — e.g.
    /// a kernel closure running on an engine's pool calling
    /// `linalg::par::fanout`, which routes to the global pool. Only a
    /// fan-out back onto the worker's *own* pool is forced inline:
    /// dispatching there would park on a completion barrier this very
    /// thread is supposed to help drain. Cross-pool dispatch cycles
    /// cannot deadlock because a pool's `dispatch_lock` is only ever
    /// `try_lock`ed, failing over to inline execution.
    static WORKER_OF: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Monomorphized per-closure entry point — the only indirect call per
/// logical thread, same cost as the old closure-ref dispatch.
fn trampoline<F: Fn(usize) + Sync>(ctx: usize, th: usize) {
    // SAFETY: `ctx` was produced from `&F` by the `run::<F>` activation
    // that published this job; the completion barrier keeps that borrow
    // alive until every claimed logical thread has finished.
    let f = unsafe { &*(ctx as *const F) };
    f(th);
}

/// Claims chunks from the shared cursor and runs them until the job is
/// drained (or superseded). Returns the number of chunks claimed.
///
/// The `notify_done` flag is set for workers (the dispatcher polls the
/// `completed` counter itself and must not be woken by its own claims).
fn drain_work(s: &Shared, id: u32, nthreads: usize, chunk: usize, run: impl Fn(usize), notify_done: bool) -> u64 {
    let mut claimed = 0u64;
    loop {
        let cur = s.work.load(Ordering::Acquire);
        let (wid, wc) = unpack(cur);
        let lo = wc as usize;
        if wid != id || lo >= nthreads {
            return claimed;
        }
        let hi = (lo + chunk).min(nthreads);
        if s
            .work
            .compare_exchange_weak(cur, pack(id, hi as u32), Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            continue;
        }
        for th in lo..hi {
            run(th);
        }
        claimed += 1;
        // SeqCst: release the work just done to the dispatcher's
        // acquire load AND order against the `done_parked` handshake
        // (see `run`): if the dispatcher parked before this add became
        // visible, we observe `done_parked == true` and wake it.
        let prev = s.completed.fetch_add(hi - lo, Ordering::SeqCst);
        if notify_done && prev + (hi - lo) == nthreads && s.done_parked.load(Ordering::SeqCst) {
            drop(s.done_lock.lock().unwrap());
            s.done_cv.notify_one();
        }
    }
}

fn worker_loop(shared: Arc<Shared>, idx: usize) {
    WORKER_OF.with(|c| c.set(Arc::as_ptr(&shared) as usize));
    let stat = &shared.stats[idx];
    // Last job id this worker fully processed (seq values are even when
    // stable; `seen` stores the raw even seq).
    let mut seen = 0u64;
    loop {
        // ---- wait for a new published job (spin → yield → park) ----
        let mut rounds = 0usize;
        let e1 = loop {
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            let s = shared.seq.load(Ordering::Acquire);
            if s != seen && s & 1 == 0 {
                break s;
            }
            rounds += 1;
            if rounds < SPIN_HINTS {
                std::hint::spin_loop();
            } else if rounds < SPIN_HINTS + YIELD_ROUNDS {
                std::thread::yield_now();
            } else {
                stat.parks.fetch_add(1, Ordering::Relaxed);
                let mut g = shared.idle_lock.lock().unwrap();
                while shared.seq.load(Ordering::Acquire) == seen
                    && !shared.shutdown.load(Ordering::Acquire)
                {
                    g = shared.idle_cv.wait(g).unwrap();
                }
                rounds = 0;
            }
        };
        // ---- seqlock read of the job slot ----
        let call_addr = shared.call.load(Ordering::Acquire);
        let ctx = shared.ctx.load(Ordering::Acquire);
        let nthreads = shared.nthreads.load(Ordering::Acquire);
        let chunk = shared.chunk.load(Ordering::Acquire);
        if shared.seq.load(Ordering::Acquire) != e1 {
            // Publish raced our read: the snapshot may mix two jobs.
            // Retry from the top; the cursor's job id would reject a
            // stale snapshot anyway, but we never act on one.
            continue;
        }
        seen = e1;
        // SAFETY: fn pointers and `usize` are the same size on every
        // supported target; `call_addr` was stored from a real
        // `fn(usize, usize)` by `run` under the validated seqlock.
        let call: fn(usize, usize) = unsafe { std::mem::transmute(call_addr) };
        let id = (e1 >> 1) as u32;
        let claimed = drain_work(&shared, id, nthreads, chunk, |th| call(ctx, th), true);
        if claimed > 0 {
            stat.busy.fetch_add(1, Ordering::Relaxed);
            stat.chunks.fetch_add(claimed, Ordering::Relaxed);
        }
    }
}

/// A persistent pool of parked OS workers, dispatched by epoch.
///
/// A pool of `workers` executes fan-outs on up to `workers` threads:
/// `workers - 1` spawned pool threads plus the dispatching caller,
/// matching the old scoped-spawn accounting. `workers <= 1` spawns
/// nothing and runs every fan-out inline.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    workers: usize,
    /// Serializes dispatchers; contended callers fall back to inline
    /// execution rather than blocking (the fan-out contract is "each
    /// logical thread exactly once", which inline trivially satisfies).
    dispatch_lock: Mutex<()>,
    dispatches: AtomicU64,
    inline_runs: AtomicU64,
    dispatcher_chunks: AtomicU64,
}

impl WorkerPool {
    /// Creates a pool sized for `workers` concurrent executors
    /// (spawning `workers - 1` OS threads, created once and parked).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let spawned = workers - 1;
        let shared = Arc::new(Shared {
            seq: AtomicU64::new(0),
            call: AtomicUsize::new(0),
            ctx: AtomicUsize::new(0),
            nthreads: AtomicUsize::new(0),
            chunk: AtomicUsize::new(1),
            work: AtomicU64::new(0),
            completed: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
            done_lock: Mutex::new(()),
            done_cv: Condvar::new(),
            done_parked: AtomicBool::new(false),
            stats: (0..spawned).map(|_| WorkerStat::default()).collect(),
        });
        let handles = (0..spawned)
            .map(|idx| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("stef-pool-{idx}"))
                    .spawn(move || worker_loop(shared, idx))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            workers,
            dispatch_lock: Mutex::new(()),
            dispatches: AtomicU64::new(0),
            inline_runs: AtomicU64::new(0),
            dispatcher_chunks: AtomicU64::new(0),
        }
    }

    /// Total workers (spawned threads + the dispatching caller).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Whether the current thread is one of *this* pool's workers (a
    /// reentrant fan-out from it must run inline; see [`WORKER_OF`]).
    fn on_own_worker(&self) -> bool {
        WORKER_OF.with(|c| c.get()) == Arc::as_ptr(&self.shared) as usize
    }

    /// Runs `f(th)` exactly once for every `th in 0..nthreads`,
    /// returning after all logical threads completed (a full join
    /// barrier: reads after `run` see every write the job performed).
    ///
    /// Steady-state calls perform no heap allocation.
    pub fn run<F: Fn(usize) + Sync>(&self, nthreads: usize, f: &F) {
        if nthreads == 0 {
            return;
        }
        if nthreads == 1 || self.handles.is_empty() || self.on_own_worker() {
            self.inline_runs.fetch_add(1, Ordering::Relaxed);
            for th in 0..nthreads {
                f(th);
            }
            return;
        }
        // One dispatcher at a time; a second concurrent caller (e.g.
        // two test threads sharing the global pool) runs inline.
        let Ok(_guard) = self.dispatch_lock.try_lock() else {
            self.inline_runs.fetch_add(1, Ordering::Relaxed);
            for th in 0..nthreads {
                f(th);
            }
            return;
        };
        assert!(nthreads < u32::MAX as usize, "fan-out width overflows the claim cursor");
        self.dispatches.fetch_add(1, Ordering::Relaxed);
        let s = &*self.shared;
        let chunk = (nthreads / (4 * self.workers)).max(1);

        // ---- publish the job (seqlock write) ----
        let s0 = s.seq.load(Ordering::Relaxed);
        s.seq.store(s0 + 1, Ordering::Relaxed); // odd: writer active
        // Release fence between the odd store and the field stores
        // (fence-then-store rule): if a reader's Acquire load observes
        // any of the new field values below, the fence synchronizes-with
        // that load, so the odd `seq` store above happens-before the
        // reader's validating `seq` re-load — which therefore cannot
        // still return the old even value and accept a mixed snapshot.
        // Without this fence the Relaxed field stores may become visible
        // *before* the odd store on weakly-ordered targets (aarch64);
        // x86 TSO hides the bug.
        std::sync::atomic::fence(Ordering::Release);
        let id = ((s0 + 2) >> 1) as u32;
        s.call.store(trampoline::<F> as *const () as usize, Ordering::Relaxed);
        s.ctx.store(f as *const F as usize, Ordering::Relaxed);
        s.nthreads.store(nthreads, Ordering::Relaxed);
        s.chunk.store(chunk, Ordering::Relaxed);
        s.completed.store(0, Ordering::Relaxed);
        s.done_parked.store(false, Ordering::Relaxed);
        s.work.store(pack(id, 0), Ordering::Relaxed);
        s.seq.store(s0 + 2, Ordering::Release); // even: published

        // Wake parked workers. The empty critical section pairs with
        // the workers' check-under-lock: any worker that checked the
        // old seq is now inside `wait`, so `notify_all` reaches it.
        drop(s.idle_lock.lock().unwrap());
        s.idle_cv.notify_all();

        // ---- participate ----
        let claimed = drain_work(s, id, nthreads, chunk, f, false);
        self.dispatcher_chunks.fetch_add(claimed, Ordering::Relaxed);

        // ---- completion barrier (spin → yield → park) ----
        let mut rounds = 0usize;
        while s.completed.load(Ordering::Acquire) < nthreads {
            rounds += 1;
            if rounds < SPIN_HINTS {
                std::hint::spin_loop();
            } else if rounds < SPIN_HINTS + YIELD_ROUNDS {
                std::thread::yield_now();
            } else {
                s.done_parked.store(true, Ordering::SeqCst);
                let mut g = s.done_lock.lock().unwrap();
                while s.completed.load(Ordering::SeqCst) < nthreads {
                    g = s.done_cv.wait(g).unwrap();
                }
                drop(g);
                s.done_parked.store(false, Ordering::Relaxed);
                break;
            }
        }
    }

    /// Snapshot of the pool's counters.
    pub fn counters(&self) -> RuntimeCounters {
        RuntimeCounters {
            workers: self.workers,
            dispatches: self.dispatches.load(Ordering::Relaxed),
            inline_runs: self.inline_runs.load(Ordering::Relaxed),
            dispatcher_chunks: self.dispatcher_chunks.load(Ordering::Relaxed),
            per_worker: self
                .shared
                .stats
                .iter()
                .map(|w| WorkerCounters {
                    busy: w.busy.load(Ordering::Relaxed),
                    chunks: w.chunks.load(Ordering::Relaxed),
                    parks: w.parks.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        drop(self.shared.idle_lock.lock().unwrap());
        self.shared.idle_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// The old execution model, kept verbatim for A/B benchmarking: fresh
/// scoped OS threads per call, static contiguous logical-thread blocks.
pub fn scoped_fanout<F: Fn(usize) + Sync>(workers: usize, nthreads: usize, f: &F) {
    if nthreads == 0 {
        return;
    }
    let workers = workers.clamp(1, nthreads);
    if workers == 1 {
        for th in 0..nthreads {
            f(th);
        }
        return;
    }
    std::thread::scope(|scope| {
        for w in 1..workers {
            let lo = w * nthreads / workers;
            let hi = (w + 1) * nthreads / workers;
            scope.spawn(move || {
                for th in lo..hi {
                    f(th);
                }
            });
        }
        for th in 0..nthreads / workers {
            f(th);
        }
    });
}

/// The handle every fan-out site goes through: a shared persistent pool
/// or the scoped-spawn fallback.
#[derive(Clone)]
pub enum Executor {
    /// Dispatch on a persistent [`WorkerPool`].
    Pool(Arc<WorkerPool>),
    /// Spawn scoped threads per call (the pre-pool behavior).
    Scoped {
        /// Maximum concurrent executors per fan-out.
        workers: usize,
    },
}

impl Executor {
    /// Builds an executor of the requested kind sized for `workers`
    /// concurrent executors.
    pub fn new(kind: Runtime, workers: usize) -> Self {
        match kind {
            Runtime::Pool => Executor::Pool(Arc::new(WorkerPool::new(workers))),
            Runtime::Scoped => Executor::Scoped {
                workers: workers.max(1),
            },
        }
    }

    /// Which [`Runtime`] this executor implements.
    pub fn kind(&self) -> Runtime {
        match self {
            Executor::Pool(_) => Runtime::Pool,
            Executor::Scoped { .. } => Runtime::Scoped,
        }
    }

    /// Worker budget of this executor.
    pub fn workers(&self) -> usize {
        match self {
            Executor::Pool(p) => p.workers(),
            Executor::Scoped { workers } => *workers,
        }
    }

    /// Runs `f(th)` for every logical thread `0..nthreads` and joins.
    pub fn fanout<F: Fn(usize) + Sync>(&self, nthreads: usize, f: F) {
        match self {
            Executor::Pool(p) => p.run(nthreads, &f),
            Executor::Scoped { workers } => scoped_fanout(*workers, nthreads, &f),
        }
    }

    /// Counter snapshot (zeros for the scoped fallback, which has no
    /// persistent state to count).
    pub fn counters(&self) -> RuntimeCounters {
        match self {
            Executor::Pool(p) => p.counters(),
            Executor::Scoped { workers } => RuntimeCounters {
                workers: *workers,
                ..RuntimeCounters::default()
            },
        }
    }
}

/// Available hardware parallelism, probed once per process.
pub fn hardware_workers() -> usize {
    static HW: OnceLock<usize> = OnceLock::new();
    *HW.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Parses a thread-count environment value: a positive integer, else
/// `None` (empty, unparsable, and `0` all fall through to the probe).
fn parse_thread_env(v: &str) -> Option<usize> {
    v.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

/// Default logical-thread count used when `num_threads == 0`:
/// `STEF_NUM_THREADS` if set, else `RAYON_NUM_THREADS` (honored for
/// continuity — the pre-pool substrate sized itself from rayon's global
/// pool, so deployments that capped parallelism through rayon keep
/// their cap instead of silently getting every logical CPU), else the
/// hardware probe. Cached once per process.
pub fn default_threads() -> usize {
    static DEF: OnceLock<usize> = OnceLock::new();
    *DEF.get_or_init(|| {
        ["STEF_NUM_THREADS", "RAYON_NUM_THREADS"]
            .iter()
            .find_map(|var| std::env::var(var).ok().as_deref().and_then(parse_thread_env))
            .unwrap_or_else(hardware_workers)
    })
}

/// Resolves an engine's worker budget from `StefOptions::num_threads`:
/// `0` means "the [`default_threads`] resolution" (env override or all
/// hardware workers), an explicit logical-thread count caps the workers
/// at that count (more OS workers than logical threads can never help);
/// either way the pool never exceeds the hardware probe.
pub fn resolve_workers(num_threads: usize) -> usize {
    let n = if num_threads == 0 {
        default_threads()
    } else {
        num_threads
    };
    n.min(hardware_workers())
}

/// Routes `linalg::par` fan-outs (gram/matmul reductions, the
/// swap-count pass) through the global pool. Installed by [`global`].
fn linalg_bridge(tasks: usize, f: &(dyn Fn(usize) + Sync)) {
    global().fanout(tasks, f);
}

/// The process-wide default executor, used by call sites that have no
/// engine: the `sync::fanout` free function, the kernel convenience
/// wrappers, and (via [`linalg::par`]) the dense-algebra fan-outs.
pub fn global() -> &'static Executor {
    static GLOBAL: OnceLock<Executor> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        linalg::par::install_fanout(linalg_bridge);
        Executor::new(Runtime::Pool, resolve_workers(0))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn coverage(exec: &Executor, nthreads: usize) {
        let hits: Vec<AtomicUsize> = (0..nthreads).map(|_| AtomicUsize::new(0)).collect();
        exec.fanout(nthreads, |th| {
            hits[th].fetch_add(1, Ordering::Relaxed);
        });
        for (th, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "thread {th} of {nthreads}");
        }
    }

    #[test]
    fn pool_covers_every_logical_thread_once() {
        for workers in [1usize, 2, 4, 8] {
            let exec = Executor::new(Runtime::Pool, workers);
            for nthreads in [0usize, 1, 2, 3, 7, 16, 33, 257] {
                coverage(&exec, nthreads);
            }
        }
    }

    #[test]
    fn scoped_covers_every_logical_thread_once() {
        for workers in [1usize, 2, 4] {
            let exec = Executor::new(Runtime::Scoped, workers);
            for nthreads in [0usize, 1, 2, 3, 7, 16, 33] {
                coverage(&exec, nthreads);
            }
        }
    }

    #[test]
    fn join_barrier_publishes_writes() {
        let exec = Executor::new(Runtime::Pool, 4);
        let mut data = vec![0usize; 64];
        {
            let shared = crate::sync::SharedSlice::new(&mut data);
            exec.fanout(64, |th| {
                // SAFETY: each logical thread owns exactly one element.
                let slot = unsafe { shared.range_mut(th, th + 1) };
                slot[0] = th * 3;
            });
        }
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i * 3);
        }
    }

    #[test]
    fn reentrant_fanout_runs_inline() {
        let exec = Executor::new(Runtime::Pool, 4);
        let outer = AtomicUsize::new(0);
        let inner = AtomicUsize::new(0);
        let e2 = exec.clone();
        exec.fanout(8, |_| {
            outer.fetch_add(1, Ordering::Relaxed);
            // From the dispatcher thread the dispatch lock is held; from
            // a worker the thread-local guard trips — both run inline.
            e2.fanout(4, |_| {
                inner.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(outer.load(Ordering::Relaxed), 8);
        assert_eq!(inner.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn counters_track_dispatches() {
        let exec = Executor::new(Runtime::Pool, 4);
        for _ in 0..10 {
            exec.fanout(16, |_| {});
        }
        let c = exec.counters();
        assert_eq!(c.workers, 4);
        assert_eq!(c.dispatches, 10);
        assert_eq!(c.per_worker.len(), 3);
        let worker_chunks: u64 = c.per_worker.iter().map(|w| w.chunks).sum();
        // Every chunk was claimed by somebody; 16 threads / chunk 1 = 16.
        assert_eq!(c.dispatcher_chunks + worker_chunks, 160);
    }

    #[test]
    fn resolve_workers_honors_explicit_counts() {
        assert_eq!(resolve_workers(0), default_threads().min(hardware_workers()));
        assert_eq!(resolve_workers(1), 1);
        let want = 3usize.min(hardware_workers());
        assert_eq!(resolve_workers(3), want);
    }

    #[test]
    fn thread_env_parsing() {
        assert_eq!(parse_thread_env("4"), Some(4));
        assert_eq!(parse_thread_env(" 12\n"), Some(12));
        assert_eq!(parse_thread_env("0"), None);
        assert_eq!(parse_thread_env(""), None);
        assert_eq!(parse_thread_env("lots"), None);
        assert_eq!(parse_thread_env("-2"), None);
    }

    #[test]
    fn cross_pool_nested_fanout_dispatches() {
        // A worker of pool `a` is NOT a worker of pool `b`: nested
        // fan-outs onto the distinct (idle) pool must be allowed to
        // dispatch there, not forced inline by a process-global guard.
        let a = Executor::new(Runtime::Pool, 4);
        let b = Executor::new(Runtime::Pool, 4);
        let inner = AtomicUsize::new(0);
        a.fanout(8, |_| {
            b.fanout(16, |_| {
                inner.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(inner.load(Ordering::Relaxed), 128);
        let c = b.counters();
        // All 8 nested fan-outs ran through b (dispatched or, under
        // dispatch-lock contention, inline)...
        assert_eq!(c.dispatches + c.inline_runs, 8);
        // ...and at least the first to arrive found the lock free and
        // actually dispatched on b's workers.
        assert!(c.dispatches >= 1, "cross-pool fan-out never dispatched");
    }

    #[test]
    fn global_executor_is_a_pool() {
        assert_eq!(global().kind(), Runtime::Pool);
        coverage(global(), 9);
    }
}
