//! NUMA topology detection and worker placement.
//!
//! Linux exposes the node layout under `/sys/devices/system/node/`:
//! one `node<N>` directory per memory node, each with a `cpulist` file
//! ("0-3,8-11" style). [`NumaTopology::detect`] parses that; on any
//! other OS — or when sysfs is absent — it degrades to a single node
//! covering every hardware CPU, which makes all placement logic a
//! no-op.
//!
//! Pinning goes through a raw `sched_setaffinity` declaration
//! (`std` already links libc, so no new dependency), gated to Linux
//! with a portable no-op fallback. The policy knob ([`NumaPolicy`],
//! `--numa {auto,off}` / `STEF_NUMA`) decides whether the worker pool
//! pins at all; even under `Auto` a single-node machine is left
//! untouched, so laptops and single-socket CI keep exactly the
//! pre-NUMA behavior.

/// Whether the worker pool applies NUMA placement.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum NumaPolicy {
    /// Pin workers node-by-node when more than one NUMA node is
    /// detected; no-op on single-node machines.
    #[default]
    Auto,
    /// Never pin; ignore topology.
    Off,
}

impl NumaPolicy {
    /// Parses `auto` / `off` (case-insensitive).
    pub fn parse(s: &str) -> Option<NumaPolicy> {
        match s.to_ascii_lowercase().as_str() {
            "auto" => Some(NumaPolicy::Auto),
            "off" => Some(NumaPolicy::Off),
            _ => None,
        }
    }

    /// Reads `STEF_NUMA`, defaulting to [`NumaPolicy::Auto`]. An
    /// unparsable value falls back to `Auto` (same forgiving convention
    /// as `STEF_SIMD`).
    pub fn from_env() -> NumaPolicy {
        match std::env::var("STEF_NUMA") {
            Ok(v) => NumaPolicy::parse(&v).unwrap_or(NumaPolicy::Auto),
            Err(_) => NumaPolicy::Auto,
        }
    }

    /// The canonical flag spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            NumaPolicy::Auto => "auto",
            NumaPolicy::Off => "off",
        }
    }
}

/// One memory node and its CPUs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NumaNode {
    /// Kernel node id (the `N` of `node<N>`).
    pub id: usize,
    /// Logical CPU ids on this node, ascending.
    pub cpus: Vec<usize>,
}

/// The machine's memory-node layout.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NumaTopology {
    nodes: Vec<NumaNode>,
}

impl NumaTopology {
    /// Detects the topology from sysfs (Linux), degrading to a single
    /// node covering every hardware CPU elsewhere or on parse failure.
    pub fn detect() -> NumaTopology {
        #[cfg(target_os = "linux")]
        {
            if let Some(t) = Self::from_sysfs(std::path::Path::new("/sys/devices/system/node")) {
                return t;
            }
        }
        Self::single_node()
    }

    /// A one-node topology covering every hardware CPU — the portable
    /// fallback under which all placement logic is a no-op.
    pub fn single_node() -> NumaTopology {
        let ncpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        NumaTopology {
            nodes: vec![NumaNode {
                id: 0,
                cpus: (0..ncpus).collect(),
            }],
        }
    }

    /// Builds a synthetic topology — test seam for exercising
    /// multi-node placement logic on single-node hosts.
    pub fn synthetic(cpus_per_node: Vec<Vec<usize>>) -> NumaTopology {
        assert!(!cpus_per_node.is_empty());
        NumaTopology {
            nodes: cpus_per_node
                .into_iter()
                .enumerate()
                .map(|(id, cpus)| NumaNode { id, cpus })
                .collect(),
        }
    }

    /// Parses `node*/cpulist` under `root`. Returns `None` when the
    /// directory is missing or yields no node with CPUs.
    pub fn from_sysfs(root: &std::path::Path) -> Option<NumaTopology> {
        let entries = std::fs::read_dir(root).ok()?;
        let mut nodes: Vec<NumaNode> = Vec::new();
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let Some(idstr) = name.strip_prefix("node") else {
                continue;
            };
            let Ok(id) = idstr.parse::<usize>() else {
                continue;
            };
            let Ok(list) = std::fs::read_to_string(entry.path().join("cpulist")) else {
                continue;
            };
            let cpus = parse_cpulist(list.trim());
            if !cpus.is_empty() {
                nodes.push(NumaNode { id, cpus });
            }
        }
        if nodes.is_empty() {
            return None;
        }
        nodes.sort_by_key(|n| n.id);
        Some(NumaTopology { nodes })
    }

    /// The nodes, ascending by id.
    pub fn nodes(&self) -> &[NumaNode] {
        &self.nodes
    }

    /// Number of memory nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Assigns `workers` pool workers to `(node_index, cpu)` slots:
    /// contiguous worker blocks per node (worker `w` goes to node
    /// `w·N/W`-style splits, so neighbouring workers share a node and
    /// the pool's node-local chunk segments stay contiguous), cycling
    /// through the node's CPUs when a block outnumbers them.
    /// `node_index` is the position in [`NumaTopology::nodes`], not the
    /// kernel id.
    pub fn assign_workers(&self, workers: usize) -> Vec<(usize, usize)> {
        let n = self.nodes.len();
        let mut out = Vec::with_capacity(workers);
        for w in 0..workers {
            let node = w * n / workers.max(1);
            let node = node.min(n - 1);
            let block_lo = node_block(workers, n, node).0;
            let cpus = &self.nodes[node].cpus;
            let cpu = cpus[(w - block_lo) % cpus.len()];
            out.push((node, cpu));
        }
        out
    }
}

/// The contiguous worker range `[lo, hi)` owned by `node` when
/// `workers` workers are split over `n` nodes — the same arithmetic
/// the pool uses to segment logical threads per node.
pub fn node_block(workers: usize, n: usize, node: usize) -> (usize, usize) {
    (node * workers / n, (node + 1) * workers / n)
}

/// Parses a sysfs cpulist ("0-3,8,10-11") into ascending CPU ids.
/// Malformed pieces are skipped rather than failing the whole list.
pub fn parse_cpulist(s: &str) -> Vec<usize> {
    let mut cpus = Vec::new();
    for piece in s.split(',') {
        let piece = piece.trim();
        if piece.is_empty() {
            continue;
        }
        if let Some((lo, hi)) = piece.split_once('-') {
            if let (Ok(lo), Ok(hi)) = (lo.trim().parse::<usize>(), hi.trim().parse::<usize>()) {
                cpus.extend(lo..=hi);
            }
        } else if let Ok(c) = piece.parse::<usize>() {
            cpus.push(c);
        }
    }
    cpus.sort_unstable();
    cpus.dedup();
    cpus
}

/// Pins the calling thread to the given CPUs. Returns `true` when the
/// affinity call succeeded; always `false` off Linux or with an empty
/// CPU set (the portable no-op).
pub fn pin_to_cpus(cpus: &[usize]) -> bool {
    if cpus.is_empty() {
        return false;
    }
    #[cfg(target_os = "linux")]
    {
        // std already links libc; declaring the symbol directly avoids a
        // libc-crate dependency. glibc/musl signature:
        // int sched_setaffinity(pid_t, size_t, const cpu_set_t *).
        extern "C" {
            fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
        }
        let words = cpus.iter().max().unwrap() / 64 + 1;
        let mut mask = vec![0u64; words];
        for &c in cpus {
            mask[c / 64] |= 1u64 << (c % 64);
        }
        // SAFETY: pid 0 = calling thread; the mask buffer is valid for
        // `words * 8` bytes for the duration of the call.
        unsafe { sched_setaffinity(0, mask.len() * 8, mask.as_ptr()) == 0 }
    }
    #[cfg(not(target_os = "linux"))]
    {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpulist_parses_ranges_and_singles() {
        assert_eq!(parse_cpulist("0-3,8,10-11"), vec![0, 1, 2, 3, 8, 10, 11]);
        assert_eq!(parse_cpulist("5"), vec![5]);
        assert_eq!(parse_cpulist(""), Vec::<usize>::new());
        assert_eq!(parse_cpulist("2-2"), vec![2]);
        // Malformed pieces skipped, duplicates collapsed.
        assert_eq!(parse_cpulist("1,junk,1,0-1"), vec![0, 1]);
    }

    #[test]
    fn policy_parse_and_env_spelling() {
        assert_eq!(NumaPolicy::parse("auto"), Some(NumaPolicy::Auto));
        assert_eq!(NumaPolicy::parse("OFF"), Some(NumaPolicy::Off));
        assert_eq!(NumaPolicy::parse("bogus"), None);
        assert_eq!(NumaPolicy::Auto.as_str(), "auto");
        assert_eq!(NumaPolicy::Off.as_str(), "off");
    }

    #[test]
    fn detect_always_yields_at_least_one_node_with_cpus() {
        let t = NumaTopology::detect();
        assert!(t.num_nodes() >= 1);
        assert!(t.nodes().iter().all(|n| !n.cpus.is_empty()));
    }

    #[test]
    fn synthetic_assignment_blocks_are_contiguous_per_node() {
        let t = NumaTopology::synthetic(vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]]);
        let placement = t.assign_workers(6);
        assert_eq!(placement.len(), 6);
        // Workers 0..3 on node 0, 3..6 on node 1 (6·{0..6}/2 splits).
        assert_eq!(
            placement.iter().map(|&(n, _)| n).collect::<Vec<_>>(),
            vec![0, 0, 0, 1, 1, 1]
        );
        // CPUs come from the owning node's list.
        for &(node, cpu) in &placement {
            assert!(t.nodes()[node].cpus.contains(&cpu));
        }
    }

    #[test]
    fn assignment_cycles_cpus_when_workers_exceed_them() {
        let t = NumaTopology::synthetic(vec![vec![0, 1]]);
        let placement = t.assign_workers(5);
        assert_eq!(
            placement,
            vec![(0, 0), (0, 1), (0, 0), (0, 1), (0, 0)]
        );
    }

    #[test]
    fn node_block_partitions_exactly() {
        for workers in [1usize, 3, 7, 16] {
            for n in [1usize, 2, 3, 4] {
                let mut covered = 0;
                for node in 0..n {
                    let (lo, hi) = node_block(workers, n, node);
                    assert_eq!(lo, covered);
                    covered = hi;
                }
                assert_eq!(covered, workers);
            }
        }
    }

    #[test]
    fn sysfs_parser_reads_fake_tree() {
        let dir = std::env::temp_dir().join(format!("stef-numa-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("node0")).unwrap();
        std::fs::create_dir_all(dir.join("node1")).unwrap();
        std::fs::create_dir_all(dir.join("has_cpu")).unwrap(); // non-node entry
        std::fs::write(dir.join("node0/cpulist"), "0-1\n").unwrap();
        std::fs::write(dir.join("node1/cpulist"), "2-3\n").unwrap();
        let t = NumaTopology::from_sysfs(&dir).unwrap();
        assert_eq!(t.num_nodes(), 2);
        assert_eq!(t.nodes()[0].cpus, vec![0, 1]);
        assert_eq!(t.nodes()[1].cpus, vec![2, 3]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pin_to_cpus_empty_is_noop() {
        assert!(!pin_to_cpus(&[]));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn pin_to_current_cpuset_succeeds() {
        // Pinning to every CPU of the single-node fallback must succeed
        // (it is a superset of the current affinity mask in CI).
        let t = NumaTopology::single_node();
        assert!(pin_to_cpus(&t.nodes()[0].cpus));
    }
}
