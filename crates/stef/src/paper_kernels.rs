//! Direct transcriptions of the paper's specialized kernel listings
//! (Algorithms 6, 7 and 8): MTTKRP for mode 1 of a 4-way tensor with
//! `P^(1)` stored, with `P^(2)` stored, and with nothing stored.
//!
//! The production engine ([`crate::kernels`]) implements the *generic*
//! Algorithm 4/5 recursion, of which these are the unrolled 4-D
//! specializations. Keeping the paper's exact listings executable serves
//! two purposes:
//!
//! 1. **fidelity** — tests assert that the generic kernels compute the
//!    same thing as the literal pseudo-code, so any divergence from the
//!    paper is caught mechanically;
//! 2. **readability** — these functions are the clearest statement of
//!    what Fig. 1(b)/(c)/(d) mean operationally, without the recursion
//!    and scheduling machinery around them.
//!
//! All three are sequential (the paper's listings parallelize over the
//! root mode and privatize the output; correctness is unaffected).

use linalg::krp::{axpy_row, hadamard_row, krp_row};
use linalg::Mat;
use sptensor::Csf;

/// Computes the dense `P^(1)` / `P^(2)` partials of a 4-way CSF with one
/// row per fiber at the given level — the sequential analogue of what the
/// mode-0 pass memoizes. Returns a `nfibers(level) × R` matrix.
pub fn dense_partials_4d(csf: &Csf, factors: &[&Mat], level: usize, rank: usize) -> Mat {
    assert_eq!(csf.ndim(), 4, "this helper is specific to 4-way tensors");
    assert!(level == 1 || level == 2, "P^(1) or P^(2) only");
    let mut out = Mat::zeros(csf.nfibers(level), rank);
    // t2 for a level-2 node: Σ_l T[..l] · A3[l,:].
    let compute_t2 = |k_idx: usize, row: &mut [f64]| {
        row.fill(0.0);
        let (lo, hi) = (csf.ptr(2)[k_idx], csf.ptr(2)[k_idx + 1]);
        for l_idx in lo..hi {
            axpy_row(
                row,
                csf.vals()[l_idx],
                factors[3].row(csf.fids(3)[l_idx] as usize),
            );
        }
    };
    if level == 2 {
        for k_idx in 0..csf.nfibers(2) {
            compute_t2(k_idx, out.row_mut(k_idx));
        }
    } else {
        let mut t2 = vec![0.0; rank];
        for j_idx in 0..csf.nfibers(1) {
            let row = out.row_mut(j_idx);
            let (lo, hi) = (csf.ptr(1)[j_idx], csf.ptr(1)[j_idx + 1]);
            for k_idx in lo..hi {
                compute_t2(k_idx, &mut t2);
                hadamard_row(row, &t2, factors[2].row(csf.fids(2)[k_idx] as usize));
            }
        }
    }
    out
}

/// **Algorithm 6**: STeF MTTKRP for `A^(1)` of a 4-way tensor where
/// `P^(1)` is stored — a single MTTV over the saved partials.
pub fn alg6_mode1_with_p1(csf: &Csf, factors: &[&Mat], p1: &Mat, rank: usize) -> Mat {
    assert_eq!(csf.ndim(), 4);
    assert_eq!(p1.rows(), csf.nfibers(1));
    let n1 = csf.level_dims()[1];
    let mut out = Mat::zeros(n1, rank);
    // for i ∈ T[*,*,*,:] (root slices)
    for i_idx in 0..csf.nfibers(0) {
        let k0 = factors[0].row(csf.fids(0)[i_idx] as usize); // k0 ← A0[i,:]
        let (jlo, jhi) = (csf.ptr(0)[i_idx], csf.ptr(0)[i_idx + 1]);
        for j_idx in jlo..jhi {
            // t1 ← P^(1)[i,j];  Ā1[j,:] += t1 ⊙ k0
            let t1 = p1.row(j_idx);
            hadamard_row(out.row_mut(csf.fids(1)[j_idx] as usize), t1, k0);
        }
    }
    out
}

/// **Algorithm 7**: STeF MTTKRP for `A^(1)` of a 4-way tensor where
/// `P^(2)` is stored — contract `A^(2)` into the saved `P^(2)` on the
/// fly, then the MTTV with `k0`.
pub fn alg7_mode1_with_p2(csf: &Csf, factors: &[&Mat], p2: &Mat, rank: usize) -> Mat {
    assert_eq!(csf.ndim(), 4);
    assert_eq!(p2.rows(), csf.nfibers(2));
    let n1 = csf.level_dims()[1];
    let mut out = Mat::zeros(n1, rank);
    let mut t1 = vec![0.0; rank];
    let mut upd = vec![0.0; rank];
    for i_idx in 0..csf.nfibers(0) {
        let k0 = factors[0].row(csf.fids(0)[i_idx] as usize);
        let (jlo, jhi) = (csf.ptr(0)[i_idx], csf.ptr(0)[i_idx + 1]);
        for j_idx in jlo..jhi {
            t1.fill(0.0); // t1 ← 0
            let (klo, khi) = (csf.ptr(1)[j_idx], csf.ptr(1)[j_idx + 1]);
            for k_idx in klo..khi {
                // t2 ← P^(2)[i,j,k];  t1 += t2 ⊙ A2[k,:]
                let t2 = p2.row(k_idx);
                hadamard_row(&mut t1, t2, factors[2].row(csf.fids(2)[k_idx] as usize));
            }
            // Ā1[j,:] += t1 ⊙ k0
            krp_row(&mut upd, &t1, k0);
            let row = out.row_mut(csf.fids(1)[j_idx] as usize);
            for (o, &u) in row.iter_mut().zip(&upd) {
                *o += u;
            }
        }
    }
    out
}

/// **Algorithm 8**: STeF MTTKRP for `A^(1)` of a 4-way tensor with no
/// partials stored — the full CSF traversal.
pub fn alg8_mode1_no_save(csf: &Csf, factors: &[&Mat], rank: usize) -> Mat {
    assert_eq!(csf.ndim(), 4);
    let n1 = csf.level_dims()[1];
    let mut out = Mat::zeros(n1, rank);
    let mut t1 = vec![0.0; rank];
    let mut t2 = vec![0.0; rank];
    let mut upd = vec![0.0; rank];
    for i_idx in 0..csf.nfibers(0) {
        let k0 = factors[0].row(csf.fids(0)[i_idx] as usize);
        let (jlo, jhi) = (csf.ptr(0)[i_idx], csf.ptr(0)[i_idx + 1]);
        for j_idx in jlo..jhi {
            t1.fill(0.0);
            let (klo, khi) = (csf.ptr(1)[j_idx], csf.ptr(1)[j_idx + 1]);
            for k_idx in klo..khi {
                t2.fill(0.0);
                let (llo, lhi) = (csf.ptr(2)[k_idx], csf.ptr(2)[k_idx + 1]);
                for l_idx in llo..lhi {
                    // t2 += T[i,j,k,l] · A3[l,:]
                    axpy_row(
                        &mut t2,
                        csf.vals()[l_idx],
                        factors[3].row(csf.fids(3)[l_idx] as usize),
                    );
                }
                // t1 += t2 ⊙ A2[k,:]
                hadamard_row(&mut t1, &t2, factors[2].row(csf.fids(2)[k_idx] as usize));
            }
            // Ā1[j,:] += t1 ⊙ k0
            krp_row(&mut upd, &t1, k0);
            let row = out.row_mut(csf.fids(1)[j_idx] as usize);
            for (o, &u) in row.iter_mut().zip(&upd) {
                *o += u;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::assert_mat_approx_eq;
    use sptensor::{build_csf, CooTensor};

    fn tensor_4d(seed: u64) -> CooTensor {
        let dims = [7usize, 9, 6, 8];
        let mut t = CooTensor::new(dims.to_vec());
        let mut x = seed | 1;
        let mut coord = [0u32; 4];
        for _ in 0..500 {
            for (c, &d) in coord.iter_mut().zip(&dims) {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *c = ((x >> 33) % d as u64) as u32;
            }
            t.push(&coord, ((x >> 40) % 7) as f64 * 0.5 + 0.5);
        }
        t.sort_dedup();
        t
    }

    fn factors_for(dims: &[usize], r: usize, seed: u64) -> Vec<Mat> {
        let mut x = seed | 1;
        dims.iter()
            .map(|&n| {
                Mat::from_fn(n, r, |_, _| {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((x >> 35) % 1000) as f64 / 500.0 - 1.0
                })
            })
            .collect()
    }

    #[test]
    fn all_three_algorithms_agree_with_the_reference() {
        let t = tensor_4d(1);
        let rank = 4;
        let csf = build_csf(&t, &[0, 1, 2, 3]);
        let factors = factors_for(t.dims(), rank, 2);
        let refs: Vec<&Mat> = factors.iter().collect();
        let expect = t.mttkrp_reference(&factors, 1);

        let p1 = dense_partials_4d(&csf, &refs, 1, rank);
        let p2 = dense_partials_4d(&csf, &refs, 2, rank);
        assert_mat_approx_eq(&alg6_mode1_with_p1(&csf, &refs, &p1, rank), &expect, 1e-9);
        assert_mat_approx_eq(&alg7_mode1_with_p2(&csf, &refs, &p2, rank), &expect, 1e-9);
        assert_mat_approx_eq(&alg8_mode1_no_save(&csf, &refs, rank), &expect, 1e-9);
    }

    #[test]
    fn paper_listings_match_the_generic_engine() {
        // The crucial fidelity check: the production kernels (Algorithms
        // 4/5 generic recursion) equal the paper's specialized listings.
        use crate::kernels::{modeu_pass, KernelCtx, ResolvedAccum};
        use crate::partials::PartialStore;
        use crate::schedule::Schedule;
        use crate::LoadBalance;

        let t = tensor_4d(3);
        let rank = 3;
        let csf = build_csf(&t, &[0, 1, 2, 3]);
        let factors = factors_for(t.dims(), rank, 4);
        let refs: Vec<&Mat> = factors.iter().collect();
        let sched = Schedule::build(&csf, 4, LoadBalance::NnzBalanced);

        // Generic engine with P^(1) memoized.
        let mut partials = PartialStore::allocate(&csf, &[false, true, false, false], 4, rank);
        {
            let ctx = KernelCtx::new(&csf, &sched, refs.clone(), rank);
            let mut out0 = Mat::zeros(t.dims()[0], rank);
            crate::kernels::mode0_pass(&ctx, &mut partials, &mut out0);
        }
        let generic = {
            let ctx = KernelCtx::new(&csf, &sched, refs.clone(), rank);
            modeu_pass(&ctx, &mut partials, 1, ResolvedAccum::Privatized, true)
        };
        let p1 = dense_partials_4d(&csf, &refs, 1, rank);
        let paper = alg6_mode1_with_p1(&csf, &refs, &p1, rank);
        assert_mat_approx_eq(&generic, &paper, 1e-9);
    }

    #[test]
    fn dense_partials_match_level_semantics() {
        // P^(2) rows must equal the per-fiber contraction of A3; P^(1)
        // rows the further contraction of A2.
        let t = tensor_4d(5);
        let rank = 2;
        let csf = build_csf(&t, &[0, 1, 2, 3]);
        let factors = factors_for(t.dims(), rank, 6);
        let refs: Vec<&Mat> = factors.iter().collect();
        let p2 = dense_partials_4d(&csf, &refs, 2, rank);
        // Brute force one row: pick the middle level-2 fiber.
        let k_idx = csf.nfibers(2) / 2;
        let (lo, hi) = (csf.ptr(2)[k_idx], csf.ptr(2)[k_idx + 1]);
        let mut expect = vec![0.0; rank];
        for l in lo..hi {
            for (e, &f) in expect
                .iter_mut()
                .zip(factors[3].row(csf.fids(3)[l] as usize))
            {
                *e += csf.vals()[l] * f;
            }
        }
        for (a, b) in p2.row(k_idx).iter().zip(&expect) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "4-way")]
    fn rejects_non_4d() {
        let mut t = CooTensor::new(vec![3, 3, 3]);
        t.push(&[0, 0, 0], 1.0);
        let csf = build_csf(&t, &[0, 1, 2]);
        let f = factors_for(t.dims(), 2, 1);
        let refs: Vec<&Mat> = f.iter().collect();
        let _ = dense_partials_4d(&csf, &refs, 1, 2);
    }
}
