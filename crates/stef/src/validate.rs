//! Engine self-validation harness.
//!
//! Anyone adding a new [`MttkrpEngine`] (a new format, a new kernel, a
//! GPU offload) can call [`validate_engine`] to compare it against the
//! naive COO reference on deterministic factor matrices, mode by mode,
//! before trusting it in CPD. The workspace's own engines are validated
//! this way in the integration tests; the function is public so that
//! downstream implementations get the same safety net.

use crate::cpd::init_factors;
use crate::engine::MttkrpEngine;
use linalg::approx_eq;
use sptensor::CooTensor;

/// One detected mismatch.
#[derive(Debug, Clone, PartialEq)]
pub struct Mismatch {
    /// Which mode's MTTKRP disagreed.
    pub mode: usize,
    /// Output coordinate of the worst element.
    pub row: usize,
    /// Column (rank index) of the worst element.
    pub col: usize,
    /// Engine's value.
    pub got: f64,
    /// Reference value.
    pub expected: f64,
}

/// Outcome of a validation run.
#[derive(Debug)]
pub struct ValidationReport {
    /// Mismatches found (empty = engine is consistent).
    pub mismatches: Vec<Mismatch>,
    /// Modes checked, in the order they were exercised.
    pub modes_checked: Vec<usize>,
    /// Relative tolerance used.
    pub tol: f64,
}

impl ValidationReport {
    /// `true` when no mismatch was found.
    pub fn is_ok(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Compares `engine` against `reference_tensor`'s naive MTTKRP for every
/// mode (in the engine's sweep order, twice — the second sweep exercises
/// warm memoized state). Collects at most one mismatch (the worst
/// element) per mode per sweep.
pub fn validate_engine<E: MttkrpEngine + ?Sized>(
    engine: &mut E,
    reference_tensor: &CooTensor,
    rank: usize,
    tol: f64,
    seed: u64,
) -> ValidationReport {
    assert_eq!(
        engine.dims(),
        reference_tensor.dims(),
        "engine and reference tensor shapes differ"
    );
    let factors = init_factors(engine.dims(), rank, seed);
    let mut mismatches = Vec::new();
    let mut modes_checked = Vec::new();
    for sweep in 0..2 {
        for mode in engine.sweep_order() {
            if sweep == 0 {
                modes_checked.push(mode);
            }
            let got = engine.mttkrp(&factors, mode);
            let expect = reference_tensor.mttkrp_reference(&factors, mode);
            if let Some(w) = worst_mismatch(mode, &got, &expect, tol) {
                mismatches.push(w);
            }
        }
    }
    ValidationReport {
        mismatches,
        modes_checked,
        tol,
    }
}

/// Scans `got` against `expect` for the worst out-of-tolerance element,
/// fanning row blocks out on the global runtime. Each task records its
/// block's worst (first-encountered on ties, like the serial scan) in a
/// private slot; the slots are combined in task order with a strict
/// comparison, so the result is identical to a serial row-major scan
/// for any worker count.
fn worst_mismatch(mode: usize, got: &linalg::Mat, expect: &linalg::Mat, tol: f64) -> Option<Mismatch> {
    let rows = expect.rows();
    if rows == 0 {
        return None;
    }
    let ntasks = crate::runtime::global().workers().clamp(1, rows);
    let mut slots: Vec<Option<Mismatch>> = vec![None; ntasks];
    {
        let shared = crate::sync::SharedSlice::new(&mut slots);
        crate::sync::fanout(ntasks, |w| {
            let lo = w * rows / ntasks;
            let hi = (w + 1) * rows / ntasks;
            let mut worst: Option<Mismatch> = None;
            for i in lo..hi {
                for j in 0..expect.cols() {
                    let (g, e) = (got[(i, j)], expect[(i, j)]);
                    if !approx_eq(g, e, tol) {
                        let err = (g - e).abs();
                        let is_worse = worst
                            .as_ref()
                            .map(|m| err > (m.got - m.expected).abs())
                            .unwrap_or(true);
                        if is_worse {
                            worst = Some(Mismatch {
                                mode,
                                row: i,
                                col: j,
                                got: g,
                                expected: e,
                            });
                        }
                    }
                }
            }
            // SAFETY: each task owns exactly its own slot.
            let slot = unsafe { shared.range_mut(w, w + 1) };
            slot[0] = worst;
        });
    }
    slots.into_iter().flatten().reduce(|a, b| {
        if (b.got - b.expected).abs() > (a.got - a.expected).abs() {
            b
        } else {
            a
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Stef;
    use crate::options::StefOptions;
    use linalg::Mat;

    fn tensor(seed: u64) -> CooTensor {
        let dims = [9usize, 8, 7];
        let mut t = CooTensor::new(dims.to_vec());
        let mut x = seed | 1;
        let mut coord = [0u32; 3];
        for _ in 0..300 {
            for (c, &d) in coord.iter_mut().zip(&dims) {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *c = ((x >> 33) % d as u64) as u32;
            }
            t.push(&coord, 0.5 + ((x >> 40) % 5) as f64);
        }
        t.sort_dedup();
        t
    }

    #[test]
    fn healthy_engine_passes() {
        let t = tensor(1);
        let mut engine = Stef::prepare(&t, StefOptions::new(3));
        let report = validate_engine(&mut engine, &t, 3, 1e-9, 7);
        assert!(report.is_ok(), "{:?}", report.mismatches);
        assert_eq!(report.modes_checked.len(), 3);
    }

    #[test]
    fn broken_engine_is_caught() {
        /// An engine that corrupts mode 1.
        struct Saboteur {
            inner: crate::engine::ReferenceEngine,
        }
        impl MttkrpEngine for Saboteur {
            fn dims(&self) -> &[usize] {
                self.inner.dims()
            }
            fn name(&self) -> String {
                "saboteur".into()
            }
            fn sweep_order(&self) -> Vec<usize> {
                self.inner.sweep_order()
            }
            fn norm_sq(&self) -> f64 {
                self.inner.norm_sq()
            }
            fn mttkrp(&mut self, factors: &[Mat], mode: usize) -> Mat {
                let mut out = self.inner.mttkrp(factors, mode);
                if mode == 1 && out.rows() > 0 {
                    out[(0, 0)] += 1.0;
                }
                out
            }
        }
        let t = tensor(2);
        let mut engine = Saboteur {
            inner: crate::engine::ReferenceEngine::new(t.clone()),
        };
        let report = validate_engine(&mut engine, &t, 2, 1e-9, 8);
        assert!(!report.is_ok());
        assert!(report.mismatches.iter().all(|m| m.mode == 1));
        let m = &report.mismatches[0];
        assert_eq!((m.row, m.col), (0, 0));
        assert!((m.got - m.expected - 1.0).abs() < 1e-12);
    }

    #[test]
    fn engine_with_wrong_rows_on_one_mode_is_localized() {
        /// An engine that returns entirely wrong rows (doubled) for a
        /// band of output rows on one mode — the realistic bug class
        /// where a scheduler assigns a fiber range to the wrong thread
        /// or a scatter writes with a bad offset.
        struct RowSaboteur {
            inner: crate::engine::ReferenceEngine,
            bad_mode: usize,
            bad_rows: std::ops::Range<usize>,
        }
        impl MttkrpEngine for RowSaboteur {
            fn dims(&self) -> &[usize] {
                self.inner.dims()
            }
            fn name(&self) -> String {
                "row-saboteur".into()
            }
            fn sweep_order(&self) -> Vec<usize> {
                self.inner.sweep_order()
            }
            fn norm_sq(&self) -> f64 {
                self.inner.norm_sq()
            }
            fn mttkrp(&mut self, factors: &[Mat], mode: usize) -> Mat {
                let mut out = self.inner.mttkrp(factors, mode);
                if mode == self.bad_mode {
                    for i in self.bad_rows.clone() {
                        for j in 0..out.cols() {
                            out[(i, j)] *= 2.0;
                        }
                    }
                }
                out
            }
        }
        let t = tensor(5);
        let mut engine = RowSaboteur {
            inner: crate::engine::ReferenceEngine::new(t.clone()),
            bad_mode: 2,
            bad_rows: 1..4,
        };
        let report = validate_engine(&mut engine, &t, 3, 1e-9, 10);
        assert!(!report.is_ok());
        // Every mismatch must be localized to the broken mode and lie in
        // the corrupted row band; both sweeps must report it.
        assert_eq!(report.mismatches.len(), 2, "{:?}", report.mismatches);
        for m in &report.mismatches {
            assert_eq!(m.mode, 2);
            assert!((1..4).contains(&m.row), "row {} outside band", m.row);
            assert!(
                (m.got - 2.0 * m.expected).abs() < 1e-9 * m.expected.abs().max(1.0),
                "worst element should come from the doubled band: {m:?}"
            );
        }
        // Healthy modes stay clean.
        assert!(report.mismatches.iter().all(|m| m.mode == 2));
    }

    #[test]
    #[should_panic(expected = "shapes differ")]
    fn shape_mismatch_panics() {
        let t = tensor(3);
        let other = tensor(4); // same dims; make a different one
        let mut small = CooTensor::new(vec![2, 2]);
        small.push(&[0, 0], 1.0);
        let mut engine = Stef::prepare(&other, StefOptions::new(2));
        let _ = validate_engine(&mut engine, &small, 2, 1e-9, 9);
        let _ = t;
    }
}
