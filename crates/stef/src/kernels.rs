//! The memoized MTTKRP kernels (paper §III-B, Algorithms 4–8).
//!
//! Two passes cover all modes of the CSF:
//!
//! * [`mode0_pass`] — the downward/upward traversal that computes the
//!   root-mode MTTKRP `Ā⁽⁰⁾` *and* stores every flagged partial result
//!   `P^(i)` on the way (TTM followed by a chain of mTTV operations,
//!   Fig. 1a). Output rows are owned per thread; the ≤ 2 boundary rows
//!   per thread are updated atomically (Algorithm 4, lines 8–12).
//! * [`modeu_pass`] — MTTKRP for a non-root level `u`. The traversal
//!   builds the Khatri–Rao row `k_{u-1}` going down (Algorithm 5, line 7)
//!   and at each level-`u` node obtains `t_u` either from the memoized
//!   `P^(u)` (Fig. 1b / Algorithm 6), by recomputing from a deeper saved
//!   level (Fig. 1c / Algorithm 7), or from scratch (Fig. 1d /
//!   Algorithm 8) — whichever the save flags make possible. The leaf
//!   level needs no `t`: it scatters `val · k_{d-2}` directly (the KRP
//!   form of Algorithm 5, line 14).
//!
//! Both passes run one rayon task per *logical thread* of the
//! [`Schedule`]; the schedule — not rayon — defines who owns what, so
//! results are identical for any physical core count.

use crate::partials::PartialStore;
use crate::schedule::Schedule;
use crate::sync::SharedRows;
use linalg::krp::{axpy_row, hadamard_row, krp_row};
use linalg::Mat;
use rayon::prelude::*;
use sptensor::Csf;

/// Everything a kernel invocation needs, borrowed for its duration.
pub struct KernelCtx<'a> {
    /// The tensor.
    pub csf: &'a Csf,
    /// Work distribution (same object for producer and consumer passes).
    pub sched: &'a Schedule,
    /// Factor matrices in *level* order: `factors[l]` corresponds to
    /// `csf.mode_order()[l]`.
    pub factors: Vec<&'a Mat>,
    /// Rank `R`.
    pub rank: usize,
}

impl<'a> KernelCtx<'a> {
    /// Builds a context, checking factor shapes against the CSF.
    pub fn new(csf: &'a Csf, sched: &'a Schedule, factors: Vec<&'a Mat>, rank: usize) -> Self {
        assert_eq!(factors.len(), csf.ndim(), "one factor per level");
        for (l, f) in factors.iter().enumerate() {
            assert_eq!(
                f.rows(),
                csf.level_dims()[l],
                "factor at level {l} has wrong row count"
            );
            assert_eq!(f.cols(), rank, "factor at level {l} has wrong rank");
        }
        KernelCtx {
            csf,
            sched,
            factors,
            rank,
        }
    }
}

/// Resolved output-conflict strategy for non-root modes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResolvedAccum {
    /// One output matrix per logical thread, reduced in thread order.
    Privatized,
    /// One shared output, every update an atomic add.
    Atomic,
}

// ---------------------------------------------------------------------
// Mode-0 pass
// ---------------------------------------------------------------------

/// Computes `Ā⁽⁰⁾` and stores all partials flagged in `partials`.
///
/// `out` must be `level_dims[0] × R`; it is zeroed here.
pub fn mode0_pass(ctx: &KernelCtx<'_>, partials: &mut PartialStore, out: &mut Mat) {
    let d = ctx.csf.ndim();
    let r = ctx.rank;
    assert_eq!(out.rows(), ctx.csf.level_dims()[0]);
    assert_eq!(out.cols(), r);
    assert_eq!(partials.nthreads(), ctx.sched.nthreads());
    out.fill_zero();

    let views = partials.shared_views();
    let out_shared = SharedRows::new(out.as_mut_slice(), r);
    let nthreads = ctx.sched.nthreads();

    (0..nthreads).into_par_iter().for_each(|th| {
        let mut scratch: Vec<Vec<f64>> = (0..d).map(|_| vec![0.0; r]).collect();
        let (rlo, rhi) = ctx.sched.root_range(th);
        for idx0 in rlo..rhi {
            scratch[0].fill(0.0);
            if d == 1 {
                unreachable!("tensors have at least 2 modes");
            }
            walk_down(ctx, th, 1, idx0, &mut scratch, &views);
            let fid = ctx.csf.fids(0)[idx0] as usize;
            if ctx.sched.is_boundary(th, 0, idx0) {
                // Possibly shared with a neighbour: atomic accumulate.
                out_shared.atomic_add_row(fid, &scratch[0]);
            } else {
                // SAFETY: a non-boundary root node — and hence its output
                // row, since root fids are unique — is owned by exactly
                // this thread.
                let row = unsafe { out_shared.row_mut(fid) };
                row.copy_from_slice(&scratch[0]);
            }
        }
    });
}

/// Recursive worker of the mode-0 pass: accumulates the subtree
/// contribution of node `pindex`'s children into `scratch[level-1]`,
/// storing `t_level` rows into memoized buffers on the way up.
fn walk_down(
    ctx: &KernelCtx<'_>,
    th: usize,
    level: usize,
    pindex: usize,
    scratch: &mut [Vec<f64>],
    views: &[Option<SharedRows<'_>>],
) {
    let d = ctx.csf.ndim();
    let (lo, hi) = child_range(ctx.csf, level, pindex);
    let (clo, chi) = ctx.sched.clamp(th, level, lo, hi);
    if level == d - 1 {
        let fids = ctx.csf.fids(level);
        let vals = ctx.csf.vals();
        let t_prev = &mut scratch[level - 1];
        let leaf_factor = ctx.factors[level];
        for idx in clo..chi {
            axpy_row(t_prev, vals[idx], leaf_factor.row(fids[idx] as usize));
        }
        return;
    }
    let fids = ctx.csf.fids(level);
    for idx in clo..chi {
        scratch[level].fill(0.0);
        walk_down(ctx, th, level + 1, idx, scratch, views);
        if let Some(view) = &views[level] {
            // SAFETY: the shift-by-thread-id rule makes row `idx + th`
            // exclusively this thread's (see partials.rs).
            let dst = unsafe { view.row_mut(idx + th) };
            dst.copy_from_slice(&scratch[level]);
        }
        let (head, tail) = scratch.split_at_mut(level);
        hadamard_row(
            &mut head[level - 1],
            &tail[0],
            ctx.factors[level].row(fids[idx] as usize),
        );
    }
}

// ---------------------------------------------------------------------
// Mode-u pass (u > 0)
// ---------------------------------------------------------------------

/// Computes `Ā⁽ᵘ⁾` for a non-root level `u`, using memoized partials
/// where available (`use_saved`), and returns it (`level_dims[u] × R`).
pub fn modeu_pass(
    ctx: &KernelCtx<'_>,
    partials: &mut PartialStore,
    u: usize,
    accum: ResolvedAccum,
    use_saved: bool,
) -> Mat {
    let d = ctx.csf.ndim();
    assert!(u >= 1 && u < d, "mode0_pass handles the root level");
    assert_eq!(partials.nthreads(), ctx.sched.nthreads());
    let r = ctx.rank;
    let n_u = ctx.csf.level_dims()[u];
    let nthreads = ctx.sched.nthreads();
    let saved: Vec<bool> = if use_saved {
        partials.save_flags().to_vec()
    } else {
        vec![false; d]
    };
    let views = partials.shared_views();

    match accum {
        ResolvedAccum::Privatized => {
            let mut locals: Vec<Mat> = (0..nthreads)
                .into_par_iter()
                .map(|th| {
                    let mut local = Mat::zeros(n_u, r);
                    run_thread(ctx, th, u, &saved, &views, &mut |fid, row| {
                        hadd(local.row_mut(fid), row);
                    });
                    local
                })
                .collect();
            // Reduce in thread order for determinism.
            let mut out = locals.remove(0);
            for l in locals {
                out.add_assign(&l);
            }
            out
        }
        ResolvedAccum::Atomic => {
            let mut out = Mat::zeros(n_u, r);
            {
                let shared = SharedRows::new(out.as_mut_slice(), r);
                (0..nthreads).into_par_iter().for_each(|th| {
                    run_thread(ctx, th, u, &saved, &views, &mut |fid, row| {
                        shared.atomic_add_row(fid, row);
                    });
                });
            }
            out
        }
    }
}

/// One logical thread's traversal for mode `u`; `emit(fid, row)` receives
/// each `Ā⁽ᵘ⁾` contribution.
fn run_thread(
    ctx: &KernelCtx<'_>,
    th: usize,
    u: usize,
    saved: &[bool],
    views: &[Option<SharedRows<'_>>],
    emit: &mut dyn FnMut(usize, &[f64]),
) {
    let d = ctx.csf.ndim();
    let r = ctx.rank;
    let mut k_scratch: Vec<Vec<f64>> = (0..u.max(1)).map(|_| vec![0.0; r]).collect();
    let mut t_scratch: Vec<Vec<f64>> = (0..d).map(|_| vec![0.0; r]).collect();
    let mut upd = vec![0.0; r];
    let (rlo, rhi) = ctx.sched.root_range(th);
    for idx0 in rlo..rhi {
        let fid0 = ctx.csf.fids(0)[idx0] as usize;
        k_scratch[0].copy_from_slice(ctx.factors[0].row(fid0));
        walk_u(
            ctx,
            th,
            1,
            idx0,
            u,
            saved,
            views,
            &mut k_scratch,
            &mut t_scratch,
            &mut upd,
            emit,
        );
    }
}

/// Recursive descent for mode `u`: precondition — `k_scratch[level-1]`
/// holds the KRP row of levels `0..level-1` on the current path.
#[allow(clippy::too_many_arguments)]
fn walk_u(
    ctx: &KernelCtx<'_>,
    th: usize,
    level: usize,
    pindex: usize,
    u: usize,
    saved: &[bool],
    views: &[Option<SharedRows<'_>>],
    k_scratch: &mut [Vec<f64>],
    t_scratch: &mut [Vec<f64>],
    upd: &mut [f64],
    emit: &mut dyn FnMut(usize, &[f64]),
) {
    let d = ctx.csf.ndim();
    let (lo, hi) = child_range(ctx.csf, level, pindex);
    let (clo, chi) = ctx.sched.clamp(th, level, lo, hi);
    let fids = ctx.csf.fids(level);
    if level == u {
        if u == d - 1 {
            // Leaf mode: Ā⁽ᵈ⁻¹⁾[fid] += val · k_{d-2}  (KRP scatter).
            let vals = ctx.csf.vals();
            let k_prev = &k_scratch[u - 1];
            for idx in clo..chi {
                for (o, &kv) in upd.iter_mut().zip(k_prev.iter()) {
                    *o = vals[idx] * kv;
                }
                emit(fids[idx] as usize, upd);
            }
        } else {
            for idx in clo..chi {
                if saved[u] {
                    // Fig. 1b: load the memoized partial.
                    // SAFETY: row `idx + th` was written by this thread
                    // during the mode-0 pass under the same schedule, and
                    // no pass writes it concurrently with this read.
                    let t_u = unsafe { views[u].as_ref().unwrap().row(idx + th) };
                    krp_row(upd, &k_scratch[u - 1], t_u);
                } else {
                    // Fig. 1c/1d: recompute t_u from the deepest usable
                    // saved level (or the leaves).
                    compute_t(ctx, th, u, idx, saved, views, t_scratch);
                    krp_row(upd, &k_scratch[u - 1], &t_scratch[u]);
                }
                emit(fids[idx] as usize, upd);
            }
        }
        return;
    }
    // level < u: extend the KRP row and descend.
    for idx in clo..chi {
        {
            let (head, tail) = k_scratch.split_at_mut(level);
            krp_row(
                &mut tail[0],
                &head[level - 1],
                ctx.factors[level].row(fids[idx] as usize),
            );
        }
        walk_u(
            ctx,
            th,
            level + 1,
            idx,
            u,
            saved,
            views,
            k_scratch,
            t_scratch,
            upd,
            emit,
        );
    }
}

/// Fills `t_scratch[level]` with `t_level` for node `idx`: the partial
/// MTTKRP of the node's (thread-clamped) subtree with factors
/// `level+1..d-1` contracted — recursing only until a memoized level or
/// the leaves (Algorithms 7/8).
fn compute_t(
    ctx: &KernelCtx<'_>,
    th: usize,
    level: usize,
    idx: usize,
    saved: &[bool],
    views: &[Option<SharedRows<'_>>],
    t_scratch: &mut [Vec<f64>],
) {
    let d = ctx.csf.ndim();
    t_scratch[level].fill(0.0);
    let (lo, hi) = child_range(ctx.csf, level + 1, idx);
    let (clo, chi) = ctx.sched.clamp(th, level + 1, lo, hi);
    if level + 1 == d - 1 {
        let fids = ctx.csf.fids(d - 1);
        let vals = ctx.csf.vals();
        let leaf_factor = ctx.factors[d - 1];
        let dst = &mut t_scratch[level];
        for c in clo..chi {
            axpy_row(dst, vals[c], leaf_factor.row(fids[c] as usize));
        }
        return;
    }
    let fids = ctx.csf.fids(level + 1);
    for c in clo..chi {
        let frow = ctx.factors[level + 1].row(fids[c] as usize);
        if saved[level + 1] {
            // SAFETY: same ownership argument as in walk_u.
            let t_child = unsafe { views[level + 1].as_ref().unwrap().row(c + th) };
            let (head, _) = t_scratch.split_at_mut(level + 1);
            hadamard_row(&mut head[level], t_child, frow);
        } else {
            compute_t(ctx, th, level + 1, c, saved, views, t_scratch);
            let (head, tail) = t_scratch.split_at_mut(level + 1);
            hadamard_row(&mut head[level], &tail[0], frow);
        }
    }
}

/// `acc += row`, element-wise.
#[inline]
fn hadd(acc: &mut [f64], row: &[f64]) {
    for (a, &b) in acc.iter_mut().zip(row) {
        *a += b;
    }
}

/// Children of node `(level-1, pindex)` — the root "parent" is virtual.
#[inline]
fn child_range(csf: &Csf, level: usize, pindex: usize) -> (usize, usize) {
    let p = csf.ptr(level - 1);
    (p[pindex], p[pindex + 1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::LoadBalance;
    use linalg::assert_mat_approx_eq;
    use sptensor::{build_csf, CooTensor};

    fn pseudo_tensor(dims: &[usize], nnz: usize, seed: u64) -> CooTensor {
        let mut t = CooTensor::new(dims.to_vec());
        let mut x = seed | 1;
        let mut coord = vec![0u32; dims.len()];
        for _ in 0..nnz {
            for (c, &d) in coord.iter_mut().zip(dims) {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *c = ((x >> 33) % d as u64) as u32;
            }
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            t.push(&coord, ((x >> 40) % 7) as f64 * 0.25 + 0.5);
        }
        t.sort_dedup();
        t
    }

    fn rand_factors(dims: &[usize], r: usize, seed: u64) -> Vec<Mat> {
        let mut x = seed | 1;
        dims.iter()
            .map(|&n| {
                Mat::from_fn(n, r, |_, _| {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((x >> 35) % 1000) as f64 / 500.0 - 1.0
                })
            })
            .collect()
    }

    /// Runs every mode's MTTKRP with the given config and compares each
    /// against the COO reference.
    #[allow(clippy::too_many_arguments)]
    fn check_all_modes(
        dims: &[usize],
        nnz: usize,
        rank: usize,
        nthreads: usize,
        save: Vec<bool>,
        accum: ResolvedAccum,
        balance: LoadBalance,
        seed: u64,
    ) {
        let t = pseudo_tensor(dims, nnz, seed);
        let order: Vec<usize> = (0..dims.len()).collect();
        let csf = build_csf(&t, &order);
        let sched = Schedule::build(&csf, nthreads, balance);
        let mut partials = if save.iter().any(|&s| s) {
            PartialStore::allocate(&csf, &save, nthreads, rank)
        } else {
            PartialStore::empty(dims.len(), nthreads, rank)
        };
        let factors = rand_factors(dims, rank, seed.wrapping_add(1));
        let refs: Vec<&Mat> = factors.iter().collect();
        let ctx = KernelCtx::new(&csf, &sched, refs, rank);

        let mut out0 = Mat::zeros(dims[0], rank);
        mode0_pass(&ctx, &mut partials, &mut out0);
        let expect0 = t.mttkrp_reference(&factors, 0);
        assert_mat_approx_eq(&out0, &expect0, 1e-9);

        for u in 1..dims.len() {
            let got = modeu_pass(&ctx, &mut partials, u, accum, true);
            let expect = t.mttkrp_reference(&factors, u);
            assert_mat_approx_eq(&got, &expect, 1e-9);
        }
    }

    #[test]
    fn three_d_no_memo_single_thread() {
        check_all_modes(
            &[8, 9, 10],
            300,
            4,
            1,
            vec![false; 3],
            ResolvedAccum::Privatized,
            LoadBalance::NnzBalanced,
            1,
        );
    }

    #[test]
    fn three_d_memo_multi_thread() {
        check_all_modes(
            &[8, 9, 10],
            300,
            4,
            5,
            vec![false, true, false],
            ResolvedAccum::Privatized,
            LoadBalance::NnzBalanced,
            2,
        );
    }

    #[test]
    fn four_d_all_memo_configs() {
        for mask in 0..4u32 {
            let save = vec![false, mask & 1 != 0, mask & 2 != 0, false];
            check_all_modes(
                &[6, 7, 8, 5],
                400,
                3,
                4,
                save,
                ResolvedAccum::Privatized,
                LoadBalance::NnzBalanced,
                3,
            );
        }
    }

    #[test]
    fn five_d_with_memo() {
        check_all_modes(
            &[4, 5, 6, 4, 5],
            500,
            3,
            6,
            vec![false, true, false, true, false],
            ResolvedAccum::Privatized,
            LoadBalance::NnzBalanced,
            4,
        );
    }

    #[test]
    fn atomic_accumulation_matches() {
        check_all_modes(
            &[8, 9, 10],
            300,
            4,
            5,
            vec![false, true, false],
            ResolvedAccum::Atomic,
            LoadBalance::NnzBalanced,
            5,
        );
    }

    #[test]
    fn slice_schedule_matches() {
        check_all_modes(
            &[8, 9, 10],
            300,
            4,
            3,
            vec![false, true, false],
            ResolvedAccum::Privatized,
            LoadBalance::SliceBased,
            6,
        );
    }

    #[test]
    fn many_threads_tiny_tensor() {
        check_all_modes(
            &[3, 3, 3],
            10,
            2,
            16,
            vec![false, true, false],
            ResolvedAccum::Privatized,
            LoadBalance::NnzBalanced,
            7,
        );
    }

    #[test]
    fn two_d_matrix_case() {
        check_all_modes(
            &[12, 15],
            100,
            4,
            3,
            vec![false, false],
            ResolvedAccum::Privatized,
            LoadBalance::NnzBalanced,
            8,
        );
    }

    #[test]
    fn skewed_tensor_with_heavy_boundaries() {
        // Two root slices, most mass in one: thread boundaries fall
        // mid-slice, exercising replication + atomics heavily.
        let mut t = CooTensor::new(vec![2, 20, 20]);
        let mut x = 11u64;
        let mut coord = [0u32; 3];
        for _ in 0..600 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            coord[0] = if (x >> 20).is_multiple_of(10) { 1 } else { 0 };
            coord[1] = ((x >> 30) % 20) as u32;
            coord[2] = ((x >> 40) % 20) as u32;
            t.push(&coord, 1.0 + ((x >> 50) % 3) as f64);
        }
        t.sort_dedup();
        let csf = build_csf(&t, &[0, 1, 2]);
        let rank = 4;
        for nthreads in [2, 4, 8] {
            let sched = Schedule::nnz_balanced(&csf, nthreads);
            let save = vec![false, true, false];
            let mut partials = PartialStore::allocate(&csf, &save, nthreads, rank);
            let factors = rand_factors(t.dims(), rank, 99);
            let refs: Vec<&Mat> = factors.iter().collect();
            let ctx = KernelCtx::new(&csf, &sched, refs, rank);
            let mut out0 = Mat::zeros(2, rank);
            mode0_pass(&ctx, &mut partials, &mut out0);
            assert_mat_approx_eq(&out0, &t.mttkrp_reference(&factors, 0), 1e-9);
            for u in 1..3 {
                let got = modeu_pass(&ctx, &mut partials, u, ResolvedAccum::Privatized, true);
                assert_mat_approx_eq(&got, &t.mttkrp_reference(&factors, u), 1e-9);
            }
        }
    }

    #[test]
    fn stale_partials_can_be_bypassed() {
        // Consume with use_saved = false: saved buffers must be ignored.
        let t = pseudo_tensor(&[8, 9, 10], 250, 12);
        let csf = build_csf(&t, &[0, 1, 2]);
        let rank = 4;
        let nthreads = 4;
        let sched = Schedule::nnz_balanced(&csf, nthreads);
        let save = vec![false, true, false];
        let mut partials = PartialStore::allocate(&csf, &save, nthreads, rank);
        // Poison the memo buffer (as if factors had changed since mode 0).
        let factors = rand_factors(t.dims(), rank, 13);
        let refs: Vec<&Mat> = factors.iter().collect();
        let ctx = KernelCtx::new(&csf, &sched, refs, rank);
        let got = modeu_pass(&ctx, &mut partials, 1, ResolvedAccum::Privatized, false);
        assert_mat_approx_eq(&got, &t.mttkrp_reference(&factors, 1), 1e-9);
    }

    #[test]
    fn permuted_level_order_still_correct() {
        // CSF in a non-identity order: kernels work in level space, the
        // reference in mode space — map factors and outputs accordingly.
        let t = pseudo_tensor(&[7, 11, 5], 300, 14);
        let order = vec![2usize, 0, 1];
        let csf = build_csf(&t, &order);
        let rank = 3;
        let nthreads = 3;
        let sched = Schedule::nnz_balanced(&csf, nthreads);
        let save = vec![false, true, false];
        let mut partials = PartialStore::allocate(&csf, &save, nthreads, rank);
        let factors = rand_factors(t.dims(), rank, 15);
        let level_refs: Vec<&Mat> = order.iter().map(|&m| &factors[m]).collect();
        let ctx = KernelCtx::new(&csf, &sched, level_refs, rank);

        let mut out0 = Mat::zeros(t.dims()[order[0]], rank);
        mode0_pass(&ctx, &mut partials, &mut out0);
        assert_mat_approx_eq(&out0, &t.mttkrp_reference(&factors, order[0]), 1e-9);
        for u in 1..3 {
            let got = modeu_pass(&ctx, &mut partials, u, ResolvedAccum::Privatized, true);
            assert_mat_approx_eq(&got, &t.mttkrp_reference(&factors, order[u]), 1e-9);
        }
    }
}
